//! `analysis` — the closed-form runtime model of Section IV-B and the
//! numerical sweeps behind Figure 5.
//!
//! The model considers a map-only job on a homogeneous cluster of `N`
//! nodes in `R` racks, `L` map slots per node, map time `T`, block size
//! `S`, rack download bandwidth `W`, `F` native blocks under an `(n, k)`
//! code, and a single failed node (so `F/N` degraded tasks, `F/(N·R)`
//! per rack):
//!
//! * normal mode:        `F·T / (N·L)`
//! * locality-first:     `F·T/(N·L) + F/(N·R) · (R−1)·k·S/(R·W) + T`
//! * degraded-first:     `max( F·T/((N−1)·L) + T ,  F/(N·R)·(R−1)·k·S/(R·W) + T )`
//!
//! # Example
//!
//! ```
//! use analysis::ModelParams;
//!
//! let p = ModelParams::paper_default(); // N=40, R=4, L=4, T=20s, (16,12), F=1440, W=1Gbps
//! let lf = p.locality_first_runtime();
//! let df = p.degraded_first_runtime();
//! assert!(df < lf);
//! // The paper reports 15%–43% reductions across its sweeps.
//! let reduction = (lf - df) / lf;
//! assert!(reduction > 0.10 && reduction < 0.45);
//! ```

use serde::{Deserialize, Serialize};

/// Inputs of the Section IV-B model. All times in seconds, sizes in
/// bytes, bandwidth in bits/second.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// Nodes in the cluster (`N`).
    pub nodes: usize,
    /// Racks (`R`), nodes evenly spread.
    pub racks: usize,
    /// Map slots per node (`L`).
    pub map_slots: usize,
    /// Map task processing time in seconds (`T`).
    pub map_time_secs: f64,
    /// Block size in bytes (`S`).
    pub block_bytes: u64,
    /// Rack download bandwidth in bits/second (`W`).
    pub rack_bandwidth_bps: u64,
    /// Native blocks processed by the job (`F`).
    pub num_blocks: usize,
    /// Stripe width (`n`).
    pub n: usize,
    /// Data blocks per stripe (`k`).
    pub k: usize,
}

impl ModelParams {
    /// The paper's default setting: `N=40`, `R=4`, `L=4`, `S=128 MB`,
    /// `W=1 Gbps`, `T=20 s`, `F=1440`, `(n,k)=(16,12)`.
    pub fn paper_default() -> ModelParams {
        ModelParams {
            nodes: 40,
            racks: 4,
            map_slots: 4,
            map_time_secs: 20.0,
            block_bytes: 128 * 1024 * 1024,
            rack_bandwidth_bps: 1_000_000_000,
            num_blocks: 1440,
            n: 16,
            k: 12,
        }
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics on zero counts, `k ≥ n`, or more than one node per slot of
    /// nonsense (`racks > nodes`).
    fn check(&self) {
        assert!(self.nodes > 1, "need at least two nodes");
        assert!(
            self.racks >= 1 && self.racks <= self.nodes,
            "bad rack count"
        );
        assert!(self.map_slots >= 1, "need map slots");
        assert!(self.map_time_secs > 0.0, "map time must be positive");
        assert!(
            self.block_bytes > 0 && self.rack_bandwidth_bps > 0,
            "bad sizes"
        );
        assert!(self.num_blocks > 0, "no blocks");
        assert!(self.k >= 1 && self.k < self.n, "bad (n,k)");
    }

    /// Expected inter-rack download seconds of one degraded read:
    /// `(R−1)·k·S / (R·W)`.
    pub fn degraded_read_secs(&self) -> f64 {
        self.check();
        let r = self.racks as f64;
        (r - 1.0) * self.k as f64 * (self.block_bytes as f64 * 8.0)
            / (r * self.rack_bandwidth_bps as f64)
    }

    /// Aggregate inter-rack download seconds of one rack's degraded
    /// tasks: `F/(N·R) · (R−1)·k·S/(R·W)`.
    pub fn per_rack_degraded_download_secs(&self) -> f64 {
        let per_rack_tasks = self.num_blocks as f64 / (self.nodes as f64 * self.racks as f64);
        per_rack_tasks * self.degraded_read_secs()
    }

    /// Normal-mode runtime `F·T/(N·L)`.
    pub fn normal_runtime(&self) -> f64 {
        self.check();
        self.num_blocks as f64 * self.map_time_secs / (self.nodes as f64 * self.map_slots as f64)
    }

    /// Locality-first failure-mode runtime.
    pub fn locality_first_runtime(&self) -> f64 {
        self.normal_runtime() + self.per_rack_degraded_download_secs() + self.map_time_secs
    }

    /// Degraded-first failure-mode runtime.
    pub fn degraded_first_runtime(&self) -> f64 {
        self.check();
        let rounds = self.num_blocks as f64 * self.map_time_secs
            / ((self.nodes - 1) as f64 * self.map_slots as f64);
        let one_round = rounds + self.map_time_secs;
        let bottlenecked = self.per_rack_degraded_download_secs() + self.map_time_secs;
        one_round.max(bottlenecked)
    }

    /// Locality-first runtime normalized over normal mode.
    pub fn locality_first_normalized(&self) -> f64 {
        self.locality_first_runtime() / self.normal_runtime()
    }

    /// Degraded-first runtime normalized over normal mode.
    pub fn degraded_first_normalized(&self) -> f64 {
        self.degraded_first_runtime() / self.normal_runtime()
    }

    /// Relative reduction of degraded-first over locality-first.
    pub fn reduction(&self) -> f64 {
        let lf = self.locality_first_runtime();
        (lf - self.degraded_first_runtime()) / lf
    }
}

/// One sweep point: the varied label plus both normalized runtimes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Human-readable value of the varied parameter.
    pub label: String,
    /// Normalized locality-first runtime.
    pub lf: f64,
    /// Normalized degraded-first runtime.
    pub df: f64,
    /// Relative reduction.
    pub reduction: f64,
}

fn point(label: String, p: &ModelParams) -> SweepPoint {
    SweepPoint {
        label,
        lf: p.locality_first_normalized(),
        df: p.degraded_first_normalized(),
        reduction: p.reduction(),
    }
}

/// Figure 5(a): sweep the erasure coding scheme.
pub fn sweep_schemes(base: &ModelParams, schemes: &[(usize, usize)]) -> Vec<SweepPoint> {
    schemes
        .iter()
        .map(|&(n, k)| {
            let p = ModelParams { n, k, ..*base };
            point(format!("({n},{k})"), &p)
        })
        .collect()
}

/// Figure 5(b): sweep the number of native blocks `F`.
pub fn sweep_blocks(base: &ModelParams, blocks: &[usize]) -> Vec<SweepPoint> {
    blocks
        .iter()
        .map(|&f| {
            let p = ModelParams {
                num_blocks: f,
                ..*base
            };
            point(format!("F={f}"), &p)
        })
        .collect()
}

/// Figure 5(c): sweep the rack download bandwidth `W`.
pub fn sweep_bandwidth(base: &ModelParams, mbps: &[u64]) -> Vec<SweepPoint> {
    mbps.iter()
        .map(|&m| {
            let p = ModelParams {
                rack_bandwidth_bps: m * 1_000_000,
                ..*base
            };
            point(format!("{m}Mbps"), &p)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_values_are_self_consistent() {
        let p = ModelParams::paper_default();
        // Normal runtime: 1440*20/(40*4) = 180s.
        assert!((p.normal_runtime() - 180.0).abs() < 1e-9);
        // Degraded read: (3/4)*12*128MB*8/1Gbps = 9.66s.
        let dr = p.degraded_read_secs();
        assert!((dr - 9.663).abs() < 0.01, "{dr}");
        // Per rack: F/(N*R)=9 tasks * dr.
        assert!((p.per_rack_degraded_download_secs() - 9.0 * dr).abs() < 1e-9);
    }

    #[test]
    fn df_always_at_most_lf() {
        let base = ModelParams::paper_default();
        for (n, k) in [(8, 6), (12, 9), (16, 12), (20, 15)] {
            for f in [720, 1440, 2160, 2880] {
                for w in [100, 250, 500, 1000] {
                    let p = ModelParams {
                        n,
                        k,
                        num_blocks: f,
                        rack_bandwidth_bps: w * 1_000_000,
                        ..base
                    };
                    assert!(
                        p.degraded_first_runtime() <= p.locality_first_runtime() + 1e-9,
                        "DF worse at ({n},{k}) F={f} W={w}"
                    );
                }
            }
        }
    }

    #[test]
    fn figure5a_reduction_band() {
        // Paper: reductions range 15%–32% across the four schemes.
        let pts = sweep_schemes(
            &ModelParams::paper_default(),
            &[(8, 6), (12, 9), (16, 12), (20, 15)],
        );
        for pt in &pts {
            assert!(
                pt.reduction > 0.13 && pt.reduction < 0.36,
                "{}: reduction {:.3}",
                pt.label,
                pt.reduction
            );
        }
        // LF worsens with k; DF stays flat (one-round case).
        assert!(pts.windows(2).all(|w| w[1].lf >= w[0].lf - 1e-9));
        let df0 = pts[0].df;
        assert!(pts.iter().all(|p| (p.df - df0).abs() < 1e-9));
    }

    #[test]
    fn figure5b_reduction_band() {
        // Paper: 25%–28% for F in 720..2880; normalized runtimes fall
        // with F.
        let pts = sweep_blocks(&ModelParams::paper_default(), &[720, 1440, 2160, 2880]);
        for pt in &pts {
            assert!(
                pt.reduction > 0.22 && pt.reduction < 0.31,
                "{}: reduction {:.3}",
                pt.label,
                pt.reduction
            );
        }
        assert!(pts.windows(2).all(|w| w[1].lf <= w[0].lf + 1e-9));
    }

    #[test]
    fn figure5c_reduction_band() {
        // Paper: 18%–43% for W in 100 Mbps..1 Gbps; DF equal at 500 Mbps
        // and 1 Gbps (one-round case).
        let pts = sweep_bandwidth(&ModelParams::paper_default(), &[100, 250, 500, 1000]);
        for pt in &pts {
            assert!(
                pt.reduction > 0.15 && pt.reduction < 0.46,
                "{}: reduction {:.3}",
                pt.label,
                pt.reduction
            );
        }
        let df_500 = &pts[2];
        let df_1000 = &pts[3];
        assert!((df_500.df - df_1000.df).abs() < 1e-9, "DF should saturate");
    }

    #[test]
    fn normalized_values_exceed_one_in_failure_mode() {
        let p = ModelParams::paper_default();
        assert!(p.locality_first_normalized() > 1.0);
        assert!(p.degraded_first_normalized() > 1.0);
    }

    #[test]
    #[should_panic(expected = "bad (n,k)")]
    fn rejects_bad_code() {
        let p = ModelParams {
            n: 4,
            k: 4,
            ..ModelParams::paper_default()
        };
        let _ = p.normal_runtime();
    }

    #[test]
    fn serde_round_trip_shape() {
        let p = ModelParams::paper_default();
        let q = p;
        assert_eq!(p, q);
    }
}
