//! Criterion micro-benchmarks for the simulation core: event calendar
//! scheduling/popping and cancellation churn.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dfs::simkit::calendar::Calendar;
use dfs::simkit::time::SimTime;

fn bench_schedule_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("calendar_schedule_pop");
    for size in [1_000u64, 10_000, 100_000] {
        group.throughput(Throughput::Elements(size));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| {
                let mut cal = Calendar::new();
                let mut x: u64 = 0x243f6a8885a308d3;
                for i in 0..size {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    cal.schedule(SimTime::from_micros(x % 1_000_000_000), i);
                }
                let mut n = 0u64;
                while cal.pop().is_some() {
                    n += 1;
                }
                assert_eq!(n, size);
            })
        });
    }
    group.finish();
}

fn bench_cancellation_churn(c: &mut Criterion) {
    // The engine's NetCheck management cancels and reschedules
    // constantly; measure interleaved schedule/cancel/pop.
    let mut group = c.benchmark_group("calendar_cancel_churn");
    let size = 10_000u64;
    group.throughput(Throughput::Elements(size));
    group.bench_function("10k", |b| {
        b.iter(|| {
            let mut cal = Calendar::new();
            let mut pending = Vec::new();
            for i in 0..size {
                let id = cal.schedule(SimTime::from_micros(i * 7 % 10_000), i);
                pending.push(id);
                if i % 3 == 0 {
                    if let Some(id) = pending.pop() {
                        cal.cancel(id);
                    }
                }
                if i % 5 == 0 {
                    let _ = cal.pop();
                }
            }
            while cal.pop().is_some() {}
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_schedule_pop, bench_cancellation_churn
);
criterion_main!(benches);
