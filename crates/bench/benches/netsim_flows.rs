//! Criterion micro-benchmarks for the flow-level network: max-min rate
//! recomputation under flow churn at cluster scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dfs::netsim::{NetConfig, Network};
use dfs::simkit::time::{SimDuration, SimTime};

/// Start `flows` random flows on a 40-node/4-rack cluster, then drive
/// the network to completion — every start and finish triggers a full
/// max-min reallocation, as in the simulator's hot loop.
fn churn(flows: u64) {
    let mut net = Network::new(&[10, 10, 10, 10], NetConfig::gigabit());
    let mut now = SimTime::ZERO;
    let mut x: u64 = 0x9e3779b97f4a7c15;
    let mut rand = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for _ in 0..flows {
        let src = (rand() % 40) as usize;
        let mut dst = (rand() % 40) as usize;
        if dst == src {
            dst = (dst + 1) % 40;
        }
        net.start_flow(now, src, dst, 1024 * 1024 + rand() % (8 * 1024 * 1024));
        now += SimDuration::from_micros(rand() % 1000);
    }
    while let Some(t) = net.next_completion() {
        let done = net.complete_flows(t.max(now));
        now = t.max(now);
        if done.is_empty() && net.active_flows() == 0 {
            break;
        }
    }
    assert_eq!(net.active_flows(), 0);
}

fn bench_flow_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim_flow_churn");
    for flows in [50u64, 200, 800] {
        group.throughput(Throughput::Elements(flows));
        group.bench_with_input(BenchmarkId::from_parameter(flows), &flows, |b, &flows| {
            b.iter(|| churn(flows))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_flow_churn
);
criterion_main!(benches);
