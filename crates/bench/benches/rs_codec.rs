//! Criterion micro-benchmarks for the Reed–Solomon codec: encode
//! throughput, full-stripe decode, and the degraded-read primitive
//! (reconstruct one lost shard) for the paper's coding schemes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dfs::erasure::{CodeConstruction, CodeParams, ReedSolomon, StripeCodec};

const SHARD_BYTES: usize = 256 * 1024;

fn sample_data(k: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| {
            (0..SHARD_BYTES)
                .map(|j| ((i * 31 + j * 7 + 13) % 256) as u8)
                .collect()
        })
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("rs_encode");
    for (n, k) in [(8usize, 6usize), (12, 10), (16, 12), (20, 15)] {
        let data = sample_data(k);
        group.throughput(Throughput::Bytes((k * SHARD_BYTES) as u64));
        for construction in [CodeConstruction::Vandermonde, CodeConstruction::Cauchy] {
            let rs = ReedSolomon::new(CodeParams::new(n, k).unwrap(), construction).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("{construction:?}"), format!("({n},{k})")),
                &data,
                |b, data| b.iter(|| rs.encode_parity(data).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_degraded_reconstruct(c: &mut Criterion) {
    let mut group = c.benchmark_group("rs_degraded_read");
    for (n, k) in [(12usize, 10usize), (16, 12)] {
        let codec = StripeCodec::new(CodeParams::new(n, k).unwrap()).unwrap();
        let data = sample_data(k);
        let stripe = codec.encode(&data).unwrap();
        // Lose shard 0; rebuild from the last k shards.
        let survivors: Vec<(usize, Vec<u8>)> = (n - k..n).map(|i| (i, stripe[i].clone())).collect();
        group.throughput(Throughput::Bytes(SHARD_BYTES as u64));
        group.bench_function(BenchmarkId::from_parameter(format!("({n},{k})")), |b| {
            b.iter(|| codec.reconstruct(&survivors, 0).unwrap())
        });
    }
    group.finish();
}

fn bench_full_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("rs_decode_all");
    let (n, k) = (12usize, 10usize);
    let codec = StripeCodec::new(CodeParams::new(n, k).unwrap()).unwrap();
    let data = sample_data(k);
    let stripe = codec.encode(&data).unwrap();
    let survivors: Vec<(usize, Vec<u8>)> = (n - k..n).map(|i| (i, stripe[i].clone())).collect();
    group.throughput(Throughput::Bytes((k * SHARD_BYTES) as u64));
    group.bench_function("(12,10)", |b| {
        b.iter(|| codec.decode_natives(&survivors).unwrap())
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_encode, bench_degraded_reconstruct, bench_full_decode
);
criterion_main!(benches);
