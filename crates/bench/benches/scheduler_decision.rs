//! Criterion macro-benchmarks of the simulator itself: full end-to-end
//! runs under each policy. This measures the cost of the scheduling
//! decision path (heartbeats × policy logic) together with engine and
//! network overheads — the simulator's own "how long does one
//! configuration take" number that the sweep budgets are built on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfs::experiment::Policy;
use dfs::presets;

fn bench_full_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_full_run");
    group.sample_size(10);
    let exp = presets::small_default();
    for policy in [
        Policy::LocalityFirst,
        Policy::BasicDegradedFirst,
        Policy::EnhancedDegradedFirst,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &policy,
            |b, &policy| b.iter(|| exp.run(policy, 1).unwrap()),
        );
    }
    group.finish();
}

fn bench_paper_scale_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_paper_scale");
    group.sample_size(10);
    let exp = presets::simulation_default();
    group.bench_function("EDF_40nodes_1440blocks", |b| {
        b.iter(|| exp.run(Policy::EnhancedDegradedFirst, 1).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_full_runs, bench_paper_scale_run);
criterion_main!(benches);
