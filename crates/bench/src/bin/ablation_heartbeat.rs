//! Regenerates one evaluation artifact; see `bench::figs::heartbeat`.
//! Set `DFS_SEEDS` to control the number of randomized runs.

fn main() {
    bench::figs::heartbeat::run();
}
