//! PR9 benchmark: redundant degraded reads vs exact reads on a
//! straggler-prone cluster.
//!
//! Runs the straggler preset (16 nodes, four of them at 25% speed, one
//! failed node, (8,6) code) across a seed sweep under both fetch
//! policies and records the pooled degraded-read latency distribution.
//! The paper-adjacent claim under test (MDS-Queue / redundant-request
//! literature): racing `k + extra` sources and cancelling the
//! stragglers at the decode quorum cuts the tail of degraded reads when
//! service times are heterogeneous, at a bounded extra-bytes cost.
//!
//! Writes `BENCH_PR9.json` for the CI snapshot and prints a summary.

use dfs::ecstore::FetchPolicy;
use dfs::experiment::Policy;
use dfs::presets;

const SEEDS: std::ops::RangeInclusive<u64> = 1..=20;

/// Pooled degraded-read seconds and makespans for one fetch policy
/// across the seed sweep.
struct PolicyStats {
    reads: Vec<f64>,
    mean_makespan: f64,
}

fn run_policy(fetch: FetchPolicy) -> PolicyStats {
    let exp = presets::straggler_default(fetch);
    let mut reads = Vec::new();
    let mut makespan_sum = 0.0;
    let mut runs = 0usize;
    for seed in SEEDS {
        let run = exp
            .run(Policy::EnhancedDegradedFirst, seed)
            .expect("straggler preset runs");
        reads.extend(run.degraded_read_secs());
        makespan_sum += run.makespan.as_secs_f64();
        runs += 1;
    }
    reads.sort_unstable_by(f64::total_cmp);
    PolicyStats {
        reads,
        mean_makespan: makespan_sum / runs as f64,
    }
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() {
    let exact = run_policy(FetchPolicy::Exact);
    let redundant = run_policy(FetchPolicy::Redundant { extra: 2 });

    let e_p50 = percentile(&exact.reads, 50.0);
    let e_p95 = percentile(&exact.reads, 95.0);
    let e_p99 = percentile(&exact.reads, 99.0);
    let r_p50 = percentile(&redundant.reads, 50.0);
    let r_p95 = percentile(&redundant.reads, 95.0);
    let r_p99 = percentile(&redundant.reads, 99.0);
    let p99_cut = (e_p99 - r_p99) / e_p99 * 100.0;

    println!(
        "degraded reads, exact fetch:     n {}, p50 {e_p50:.3} s, p95 {e_p95:.3} s, p99 {e_p99:.3} s",
        exact.reads.len()
    );
    println!(
        "degraded reads, redundant(+2):   n {}, p50 {r_p50:.3} s, p95 {r_p95:.3} s, p99 {r_p99:.3} s",
        redundant.reads.len()
    );
    println!("p99 reduction from redundancy: {p99_cut:.1}%");
    println!(
        "mean makespan: exact {:.2} s, redundant {:.2} s",
        exact.mean_makespan, redundant.mean_makespan
    );

    // The point of the feature: on this straggler profile the tail must
    // actually come in. Enforced here so the snapshot can never record
    // a regression as if it were a win.
    assert!(
        r_p99 < e_p99,
        "redundant fetch should cut the degraded-read p99 ({r_p99:.3} s vs {e_p99:.3} s)"
    );

    let json = format!(
        r#"{{
  "pr": 9,
  "harness": "cargo run --release -p bench --bin bench_pr9",
  "preset": "straggler_default (16 nodes, 4 stragglers at 0.25x, (8,6), single node failed)",
  "policy": "edf",
  "seeds": 20,
  "degraded_read_secs_exact": {{
    "samples": {en},
    "p50": {e_p50:.3},
    "p95": {e_p95:.3},
    "p99": {e_p99:.3}
  }},
  "degraded_read_secs_redundant_2": {{
    "samples": {rn},
    "p50": {r_p50:.3},
    "p95": {r_p95:.3},
    "p99": {r_p99:.3}
  }},
  "p99_reduction_pct": {p99_cut:.1},
  "mean_makespan_s": {{
    "exact": {em:.3},
    "redundant_2": {rm:.3}
  }}
}}
"#,
        en = exact.reads.len(),
        rn = redundant.reads.len(),
        em = exact.mean_makespan,
        rm = redundant.mean_makespan,
    );
    std::fs::write("BENCH_PR9.json", json).expect("write BENCH_PR9.json");
    println!("wrote BENCH_PR9.json");
}
