//! One-shot performance snapshot: times the hot-path kernels with their
//! retained reference implementations under the *same* harness, plus
//! current throughput of the four benchmark suites and the wall-clock of
//! a fixed fig7-style configuration, and writes everything to
//! `BENCH_PR1.json` in the current directory.
//!
//! Run with `cargo run --release -p bench --bin bench_snapshot`.

use std::time::Instant;

use dfs::erasure::gf256::{mul_acc_slice, mul_acc_slice_ref, Gf256};
use dfs::erasure::rs::{CodeConstruction, ReedSolomon};
use dfs::erasure::CodeParams;
use dfs::experiment::Policy;
use dfs::netsim::fairshare::{max_min_rates_ref, FairshareWorkspace};
use dfs::netsim::{NetConfig, Network};
use dfs::presets;
use dfs::simkit::calendar::Calendar;
use dfs::simkit::time::SimTime;

/// Times `op` over enough repetitions to fill ~200ms after one warmup
/// pass, returning seconds per call.
fn time_per_call<F: FnMut()>(mut op: F) -> f64 {
    op();
    let probe = Instant::now();
    op();
    let one = probe.elapsed().as_secs_f64();
    let iters = ((0.2 / one.max(1e-9)) as u64).clamp(3, 10_000);
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

const SHARD_BYTES: usize = 256 * 1024;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// GF(256) multiply-accumulate: table/SIMD kernel vs the byte-at-a-time
/// reference, identical buffers and coefficient.
fn gf_mul_acc() -> (f64, f64) {
    let src: Vec<u8> = (0..SHARD_BYTES).map(|i| (i * 31 + 7) as u8).collect();
    let mut acc = vec![0u8; SHARD_BYTES];
    let c = Gf256::new(0xCA);
    let ref_s = time_per_call(|| mul_acc_slice_ref(&mut acc, &src, c));
    let opt_s = time_per_call(|| mul_acc_slice(&mut acc, &src, c));
    (ref_s, opt_s)
}

/// Full-stripe decode, (12,10) Cauchy over 256 KiB shards. The reference
/// side reproduces the pre-change `decode_data` byte-for-byte in work:
/// one freshly zero-allocated output per data shard, filled by k naive
/// multiply-accumulates (decode cost is coefficient-independent, so the
/// synthetic rows below do exactly the old matrix-apply's work).
fn rs_decode() -> (f64, f64) {
    let (n, k) = (12usize, 10usize);
    let rs = ReedSolomon::new(CodeParams::new(n, k).unwrap(), CodeConstruction::Cauchy).unwrap();
    let data: Vec<Vec<u8>> = (0..k)
        .map(|s| (0..SHARD_BYTES).map(|i| (i * 13 + s * 101) as u8).collect())
        .collect();
    let parity = rs.encode_parity(&data).unwrap();
    let mut stripe = data;
    stripe.extend(parity);
    // Survive on shards 2..12: two data shards lost, both parities used.
    let survivors: Vec<(usize, Vec<u8>)> = (2..n).map(|i| (i, stripe[i].clone())).collect();

    // The real decode matrix for this survivor set: outputs 2..9 are the
    // surviving data shards themselves (identity rows — one coefficient
    // of 1), only the two lost shards get dense rows.
    let rows: Vec<Vec<Gf256>> = (0..k)
        .map(|r| {
            (0..k)
                .map(|c| {
                    if r >= 2 {
                        if c == r - 2 {
                            Gf256::ONE
                        } else {
                            Gf256::ZERO
                        }
                    } else {
                        Gf256::new((r * 16 + c * 7 + 3) as u8)
                    }
                })
                .collect()
        })
        .collect();
    let ref_s = time_per_call(|| {
        let mut out: Vec<Vec<u8>> = Vec::with_capacity(k);
        for row in &rows {
            let mut shard = vec![0u8; SHARD_BYTES];
            for (j, (_, survivor)) in row.iter().zip(&survivors) {
                mul_acc_slice_ref(&mut shard, survivor, *j);
            }
            out.push(shard);
        }
        assert_eq!(out.len(), k);
    });

    let mut out: Vec<Vec<u8>> = Vec::new();
    let opt_s = time_per_call(|| rs.decode_data_into(&survivors, &mut out).unwrap());
    (ref_s, opt_s)
}

/// A realistic reallocation mix for the 40-node/4-rack fig7 topology:
/// 256 concurrent flows (the churn benchmark's steady state). The
/// reference side does what the pre-change `Network::reallocate` did per
/// event — clone every path into a fresh `Vec<Vec<usize>>` and run the
/// allocating naive allocator.
fn fairshare_realloc() -> (f64, f64) {
    let (nodes, racks, flows) = (40usize, 4usize, 256usize);
    let num_links = 2 * nodes + 2 * racks;
    let caps = vec![1e9f64; num_links];
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let paths: Vec<Vec<usize>> = (0..flows)
        .map(|_| {
            let src = (xorshift(&mut state) as usize) % nodes;
            let dst = (xorshift(&mut state) as usize) % nodes;
            let (sr, dr) = (src / (nodes / racks), dst / (nodes / racks));
            if src == dst {
                Vec::new()
            } else if sr == dr {
                vec![2 * src, 2 * dst + 1]
            } else {
                vec![
                    2 * src,
                    2 * nodes + 2 * sr,
                    2 * nodes + 2 * dr + 1,
                    2 * dst + 1,
                ]
            }
        })
        .collect();
    let ref_s = time_per_call(|| {
        let cloned: Vec<Vec<usize>> = paths.clone();
        let rates = max_min_rates_ref(&caps, &cloned);
        assert_eq!(rates.len(), flows);
    });

    let paths32: Vec<Vec<u32>> = paths
        .iter()
        .map(|p| p.iter().map(|&l| l as u32).collect())
        .collect();
    let mut ws = FairshareWorkspace::new();
    let mut rates = Vec::new();
    let opt_s = time_per_call(|| {
        ws.compute(&caps, &paths32, &mut rates);
        assert_eq!(rates.len(), flows);
    });
    (ref_s, opt_s)
}

/// The `netsim_flows` churn workload (drive a 40-node network through
/// `flows` transfers to completion), as ops/sec per flow.
fn netsim_churn_ops(flows: u64) -> f64 {
    let per_call = time_per_call(|| {
        let mut net = Network::new(&[10, 10, 10, 10], NetConfig::gigabit());
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut now = SimTime::ZERO;
        for _ in 0..flows {
            let src = (xorshift(&mut state) % 40) as usize;
            let dst = (xorshift(&mut state) % 40) as usize;
            let bytes = 1_000_000 + xorshift(&mut state) % 64_000_000;
            net.start_flow(now, src, dst, bytes);
            if let Some(t) = net.next_completion() {
                now = t;
                net.complete_flows(now);
            }
        }
        while let Some(t) = net.next_completion() {
            net.complete_flows(t);
            if net.active_flows() == 0 {
                break;
            }
        }
    });
    flows as f64 / per_call
}

/// The `event_calendar` schedule+pop workload, ops/sec.
fn calendar_ops(events: u64) -> f64 {
    let per_call = time_per_call(|| {
        let mut cal = Calendar::new();
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for i in 0..events {
            cal.schedule(
                SimTime::from_micros(xorshift(&mut state) % 1_000_000_000),
                i,
            );
        }
        while cal.pop().is_some() {}
    });
    events as f64 / per_call
}

fn main() {
    let (mul_ref, mul_opt) = gf_mul_acc();
    let mib = SHARD_BYTES as f64 / (1024.0 * 1024.0);
    println!(
        "gf256 mul-acc: ref {:.0} MiB/s, opt {:.0} MiB/s, speedup {:.2}x",
        mib / mul_ref,
        mib / mul_opt,
        mul_ref / mul_opt
    );

    let (dec_ref, dec_opt) = rs_decode();
    println!(
        "rs decode (12,10): ref {:.1} ms, opt {:.1} ms, speedup {:.2}x",
        dec_ref * 1e3,
        dec_opt * 1e3,
        dec_ref / dec_opt
    );

    let (fs_ref, fs_opt) = fairshare_realloc();
    println!(
        "fairshare realloc (256 flows): ref {:.1} us, opt {:.1} us, speedup {:.2}x",
        fs_ref * 1e6,
        fs_opt * 1e6,
        fs_ref / fs_opt
    );

    let encode = {
        let rs =
            ReedSolomon::new(CodeParams::new(12, 10).unwrap(), CodeConstruction::Cauchy).unwrap();
        let data: Vec<Vec<u8>> = (0..10)
            .map(|s| (0..SHARD_BYTES).map(|i| (i * 13 + s * 101) as u8).collect())
            .collect();
        time_per_call(|| {
            let p = rs.encode_parity(&data).unwrap();
            assert_eq!(p.len(), 2);
        })
    };
    let churn_200 = netsim_churn_ops(200);
    let cal_10k = calendar_ops(10_000);
    let sched = {
        let exp = presets::small_default();
        time_per_call(|| {
            exp.run(Policy::EnhancedDegradedFirst, 1).unwrap();
        })
    };
    let fig7 = {
        let exp = presets::simulation_default();
        let start = Instant::now();
        for policy in [
            Policy::LocalityFirst,
            Policy::BasicDegradedFirst,
            Policy::EnhancedDegradedFirst,
        ] {
            exp.run(policy, 1).unwrap();
        }
        start.elapsed().as_secs_f64()
    };
    println!("rs encode (12,10): {:.2} ms", encode * 1e3);
    println!("netsim churn 200 flows: {:.0} flows/s", churn_200);
    println!("calendar schedule+pop 10k: {:.0} ops/s", cal_10k);
    println!("engine EDF small run: {:.0} runs/s", 1.0 / sched);
    println!("fig7 fixed config (3 policies, seed 1): {:.2} s", fig7);

    let json = format!(
        r#"{{
  "pr": 1,
  "harness": "cargo run --release -p bench --bin bench_snapshot",
  "kernel_speedups_vs_retained_reference": {{
    "gf256_mul_acc": {{
      "ref_mib_per_s": {:.1},
      "opt_mib_per_s": {:.1},
      "speedup": {:.2}
    }},
    "rs_decode_12_10_256KiB": {{
      "ref_s_per_decode": {:.6},
      "opt_s_per_decode": {:.6},
      "speedup": {:.2}
    }},
    "netsim_fairshare_realloc_256_flows": {{
      "ref_s_per_call": {:.9},
      "opt_s_per_call": {:.9},
      "speedup": {:.2}
    }}
  }},
  "suites_ops_per_sec": {{
    "rs_codec_encode_12_10": {:.2},
    "event_calendar_schedule_pop_10k": {:.0},
    "netsim_flows_churn_200": {:.0},
    "scheduler_decision_small_edf_runs": {:.2}
  }},
  "fig7_fixed_config_wall_s": {:.3}
}}
"#,
        mib / mul_ref,
        mib / mul_opt,
        mul_ref / mul_opt,
        dec_ref,
        dec_opt,
        dec_ref / dec_opt,
        fs_ref,
        fs_opt,
        fs_ref / fs_opt,
        1.0 / encode,
        cal_10k,
        churn_200,
        1.0 / sched,
        fig7,
    );
    std::fs::write("BENCH_PR1.json", json).expect("write BENCH_PR1.json");
    println!("wrote BENCH_PR1.json");
}
