//! One-shot performance snapshot: times the GF(2^8) kernel tiers
//! (log/antilog reference → PR 1's table-driven scalar → the dispatched
//! SIMD tier) and the Reed–Solomon stripe paths built on them under the
//! *same* harness, plus current throughput of the long-running suites,
//! the sweep engine's shards/sec at 1/2/4 worker threads, fair-share
//! reallocation at 1k- and 10k-node scale (dense epoch pass vs the
//! bounded-recompute sparse pass, pinned bit-identical to the retained
//! naive reference), one full 10,000-node sweep shard, and the
//! wall-clock of a fixed fig7-style configuration. Everything is
//! written to `BENCH_PR7.json` in the current directory. The PR 1
//! recorded numbers are embedded as constants so the perf trajectory
//! (log/exp → table-driven → SIMD) stays visible in one file.
//!
//! Run with `cargo run --release -p bench --bin bench_snapshot`.

use std::time::Instant;

use dfs::cluster::SpeedProfile;
use dfs::ecstore::FetchPolicy;
use dfs::erasure::gf256::{mul_acc_slice_ref, Gf256};
use dfs::erasure::rs::{CodeConstruction, ReedSolomon};
use dfs::erasure::{simd, CodeParams};
use dfs::experiment::Policy;
use dfs::netsim::fairshare::{max_min_rates_ref, FairshareWorkspace};
use dfs::netsim::{NetConfig, Network};
use dfs::presets;
use dfs::simkit::calendar::Calendar;
use dfs::simkit::time::SimTime;
use sweep::{run_sweep, FailureAxis, SweepBase, SweepSpec, WorkloadAxis};

/// Times `op` over enough repetitions to fill ~200ms after one warmup
/// pass, returning seconds per call.
fn time_per_call<F: FnMut()>(mut op: F) -> f64 {
    op();
    let probe = Instant::now();
    op();
    let one = probe.elapsed().as_secs_f64();
    let iters = ((0.2 / one.max(1e-9)) as u64).clamp(3, 10_000);
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

const SHARD_BYTES: usize = 256 * 1024;
/// L1-resident buffer for peak-rate kernel measurement (memory
/// bandwidth stops being the limiter).
const SMALL_BYTES: usize = 16 * 1024;

/// PR 1 recorded `gf256_mul_acc` "opt" throughput (BENCH_PR1.json) —
/// the table-driven-era kernel line this PR is measured against.
const PR1_MUL_ACC_MIB_S: f64 = 24_036.3;
/// PR 1 recorded `rs_decode_12_10_256KiB` "opt" seconds per decode.
const PR1_DECODE_S: f64 = 0.000_468;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn make_shard(bytes: usize, salt: usize) -> Vec<u8> {
    (0..bytes)
        .map(|i| (i * 31 + salt * 101 + 7) as u8)
        .collect()
}

/// GF(256) multiply-accumulate over one `bytes`-sized buffer, timed for
/// the log/exp reference, the table-driven scalar tier, and the
/// dispatched SIMD tier. Returns seconds per call as (ref, scalar, simd).
fn gf_mul_acc(bytes: usize) -> (f64, f64, f64) {
    let src = make_shard(bytes, 0);
    let mut acc = vec![0u8; bytes];
    let c = Gf256::new(0xCA);
    let ref_s = time_per_call(|| mul_acc_slice_ref(&mut acc, &src, c));
    let scalar = simd::scalar();
    let scalar_s = time_per_call(|| scalar.mul_acc_slice(&mut acc, &src, c));
    let active = simd::active();
    let simd_s = time_per_call(|| active.mul_acc_slice(&mut acc, &src, c));
    (ref_s, scalar_s, simd_s)
}

/// Fused multi-source accumulate (10 sources, the (12,10) decode shape):
/// sequential table-scalar passes vs the dispatched fused kernel.
fn gf_mul_acc_multi() -> (f64, f64) {
    let nsrc = 10usize;
    let sources: Vec<Vec<u8>> = (0..nsrc).map(|s| make_shard(SHARD_BYTES, s)).collect();
    let terms: Vec<(Gf256, &[u8])> = sources
        .iter()
        .enumerate()
        .map(|(i, s)| (Gf256::new((i * 23 + 3) as u8), s.as_slice()))
        .collect();
    let mut acc = vec![0u8; SHARD_BYTES];
    let scalar = simd::scalar();
    let seq_s = time_per_call(|| {
        for &(c, s) in &terms {
            scalar.mul_acc_slice(&mut acc, s, c);
        }
    });
    let active = simd::active();
    let fused_s = time_per_call(|| active.mul_acc_multi(&mut acc, &terms));
    (seq_s, fused_s)
}

type Survivors = Vec<(usize, Vec<u8>)>;

fn decode_fixture() -> (ReedSolomon, Vec<Vec<u8>>, Survivors) {
    let (n, k) = (12usize, 10usize);
    let rs = ReedSolomon::new(CodeParams::new(n, k).unwrap(), CodeConstruction::Cauchy).unwrap();
    let data: Vec<Vec<u8>> = (0..k).map(|s| make_shard(SHARD_BYTES, s)).collect();
    let parity = rs.encode_parity(&data).unwrap();
    let mut stripe = data;
    stripe.extend(parity);
    // Survive on shards 2..12: two data shards lost, both parities used.
    let survivors: Vec<(usize, Vec<u8>)> = (2..n).map(|i| (i, stripe[i].clone())).collect();
    (rs, stripe, survivors)
}

/// Full-stripe decode, (12,10) Cauchy over 256 KiB shards, three ways:
/// the PR 1 log/exp reference shape (fresh zeroed outputs, naive
/// per-byte multiply-accumulate), the PR 1 table-driven algorithm
/// (buffer-reusing combine with one sequential scalar `mul_acc` sweep
/// per coefficient), and the current SIMD fused `decode_data_into`.
fn rs_decode() -> (f64, f64, f64) {
    let (rs, _stripe, survivors) = decode_fixture();
    let k = 10usize;
    let indices: Vec<usize> = survivors.iter().map(|&(i, _)| i).collect();
    let inv = rs.encode_matrix().select_rows(&indices).inverted().unwrap();

    let ref_s = time_per_call(|| {
        let mut out: Vec<Vec<u8>> = Vec::with_capacity(k);
        for t in 0..k {
            let mut shard = vec![0u8; SHARD_BYTES];
            for (j, (_, survivor)) in survivors.iter().enumerate() {
                mul_acc_slice_ref(&mut shard, survivor, inv[(t, j)]);
            }
            out.push(shard);
        }
        assert_eq!(out.len(), k);
    });

    // PR 1's decode_data_into, pinned to the table-driven scalar tier:
    // seed each output from the first nonzero coefficient, then one
    // full mul_acc sweep per remaining coefficient.
    let scalar = simd::scalar();
    let mut table_out: Vec<Vec<u8>> = vec![Vec::new(); k];
    let table_s = time_per_call(|| {
        for (t, o) in table_out.iter_mut().enumerate() {
            let row: Vec<Gf256> = (0..k).map(|j| inv[(t, j)]).collect();
            let j0 = row.iter().position(|c| !c.is_zero()).unwrap();
            o.clear();
            o.extend_from_slice(&survivors[j0].1);
            scalar.mul_slice_in_place(o, row[j0]);
            for (j, (_, survivor)) in survivors.iter().enumerate().skip(j0 + 1) {
                scalar.mul_acc_slice(o, survivor, row[j]);
            }
        }
    });

    let mut out: Vec<Vec<u8>> = Vec::new();
    let simd_s = time_per_call(|| rs.decode_data_into(&survivors, &mut out).unwrap());
    assert_eq!(out, table_out, "scalar and SIMD decodes must agree");
    (ref_s, table_s, simd_s)
}

/// Single-shard degraded read, (12,10) over 256 KiB: the pre-PR 6 path
/// (full `decode_data_into`, then take the one wanted shard) vs the
/// single-row `reconstruct_shard_into`.
fn rs_reconstruct_one() -> (f64, f64) {
    let (rs, stripe, survivors) = decode_fixture();
    let mut full: Vec<Vec<u8>> = Vec::new();
    let full_s = time_per_call(|| {
        rs.decode_data_into(&survivors, &mut full).unwrap();
        assert_eq!(full[0], stripe[0]);
    });
    let mut one = Vec::new();
    let one_s = time_per_call(|| {
        rs.reconstruct_shard_into(&survivors, 0, &mut one).unwrap();
        assert_eq!(one.len(), SHARD_BYTES);
    });
    assert_eq!(one, stripe[0]);
    (full_s, one_s)
}

/// A realistic reallocation mix for the 40-node/4-rack fig7 topology:
/// 256 concurrent flows (the churn benchmark's steady state). The
/// reference side does what the pre-change `Network::reallocate` did per
/// event — clone every path into a fresh `Vec<Vec<usize>>` and run the
/// allocating naive allocator.
fn fairshare_realloc() -> (f64, f64) {
    let (nodes, racks, flows) = (40usize, 4usize, 256usize);
    let num_links = 2 * nodes + 2 * racks;
    let caps = vec![1e9f64; num_links];
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let paths: Vec<Vec<usize>> = (0..flows)
        .map(|_| {
            let src = (xorshift(&mut state) as usize) % nodes;
            let dst = (xorshift(&mut state) as usize) % nodes;
            let (sr, dr) = (src / (nodes / racks), dst / (nodes / racks));
            if src == dst {
                Vec::new()
            } else if sr == dr {
                vec![2 * src, 2 * dst + 1]
            } else {
                vec![
                    2 * src,
                    2 * nodes + 2 * sr,
                    2 * nodes + 2 * dr + 1,
                    2 * dst + 1,
                ]
            }
        })
        .collect();
    let ref_s = time_per_call(|| {
        let cloned: Vec<Vec<usize>> = paths.clone();
        let rates = max_min_rates_ref(&caps, &cloned);
        assert_eq!(rates.len(), flows);
    });

    let paths32: Vec<Vec<u32>> = paths
        .iter()
        .map(|p| p.iter().map(|&l| l as u32).collect())
        .collect();
    let mut ws = FairshareWorkspace::new();
    let mut rates = Vec::new();
    let opt_s = time_per_call(|| {
        ws.compute(&caps, &paths32, &mut rates);
        assert_eq!(rates.len(), flows);
    });
    (ref_s, opt_s)
}

/// Builds the synthetic reallocation mix used by the scale suites:
/// `flows` transfers over a `nodes`-host, `racks`-rack topology with
/// two links per host and two per rack (the netsim link layout).
fn scale_paths(nodes: usize, racks: usize, flows: usize) -> Vec<Vec<usize>> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ (nodes as u64);
    (0..flows)
        .map(|_| {
            let src = (xorshift(&mut state) as usize) % nodes;
            let dst = (xorshift(&mut state) as usize) % nodes;
            let (sr, dr) = (src / (nodes / racks), dst / (nodes / racks));
            if src == dst {
                Vec::new()
            } else if sr == dr {
                vec![2 * src, 2 * dst + 1]
            } else {
                vec![
                    2 * src,
                    2 * nodes + 2 * sr,
                    2 * nodes + 2 * dr + 1,
                    2 * dst + 1,
                ]
            }
        })
        .collect()
}

/// Fair-share reallocation at cluster scale: times the dense
/// epoch-workspace pass against the bounded-recompute sparse pass on
/// the same flow mix, and pins the sparse rates bit-identical to the
/// retained naive reference. Returns (dense, sparse) seconds per call.
fn fairshare_realloc_at(nodes: usize, racks: usize, flows: usize) -> (f64, f64) {
    let num_links = 2 * nodes + 2 * racks;
    let caps = vec![1e9f64; num_links];
    let paths = scale_paths(nodes, racks, flows);
    let paths32: Vec<Vec<u32>> = paths
        .iter()
        .map(|p| p.iter().map(|&l| l as u32).collect())
        .collect();
    let mut ws = FairshareWorkspace::new();
    let mut rates = Vec::new();
    let dense_s = time_per_call(|| {
        ws.compute(&caps, &paths32, &mut rates);
        assert_eq!(rates.len(), flows);
    });
    let mut ws_sparse = FairshareWorkspace::new();
    let mut sparse_rates = Vec::new();
    let sparse_s = time_per_call(|| {
        ws_sparse.compute_sparse(&caps, &paths32, &mut sparse_rates);
        assert_eq!(sparse_rates.len(), flows);
    });
    let reference = max_min_rates_ref(&caps, &paths);
    assert_eq!(
        sparse_rates, reference,
        "sparse fair-share drifted from the retained reference at {nodes} nodes"
    );
    assert_eq!(
        rates, reference,
        "dense fair-share drifted at {nodes} nodes"
    );
    (dense_s, sparse_s)
}

/// The sweep-throughput grid: 12 fig7-small shards (LF/EDF × node/rack
/// failure × 3 seeds on one (8,6) code).
fn sweep_bench_spec() -> SweepSpec {
    SweepSpec {
        base: SweepBase::fig7_small(),
        policies: vec![Policy::LocalityFirst, Policy::EnhancedDegradedFirst],
        codes: vec![(8, 6)],
        failures: vec![FailureAxis::SingleNode, FailureAxis::Rack],
        workloads: vec![WorkloadAxis::MapOnly { map_secs: 10.0 }],
        fetch_policies: vec![FetchPolicy::Exact],
        speeds: vec![SpeedProfile::Homogeneous],
        seeds: vec![1, 2, 3],
    }
}

/// Sweep engine throughput in shards/sec at each thread count, with
/// the merged report checked byte-identical against the single-thread
/// baseline (the engine's determinism contract, enforced here so a
/// perf number can never come from a wrong result).
fn sweep_shards_per_sec(thread_counts: &[usize]) -> Vec<(usize, f64)> {
    let spec = sweep_bench_spec();
    let shards = 12.0;
    let baseline = run_sweep(&spec, 1).expect("sweep runs").to_json();
    thread_counts
        .iter()
        .map(|&threads| {
            let per_call = time_per_call(|| {
                let report = run_sweep(&spec, threads).expect("sweep runs");
                assert_eq!(report.shards_ok(), 12);
            });
            let json = run_sweep(&spec, threads).expect("sweep runs").to_json();
            assert_eq!(json, baseline, "report changed at {threads} threads");
            (threads, shards / per_call)
        })
        .collect()
}

/// One full 10,000-node sweep shard (scale_10k base: 100 racks × 100
/// hosts, 7500 blocks), run once; returns wall-clock seconds.
fn scale_10k_shard_wall() -> f64 {
    let spec = SweepSpec {
        base: SweepBase::scale_10k(),
        policies: vec![Policy::LocalityFirst],
        codes: vec![(8, 6)],
        failures: vec![FailureAxis::SingleNode],
        workloads: vec![WorkloadAxis::MapOnly { map_secs: 10.0 }],
        fetch_policies: vec![FetchPolicy::Exact],
        speeds: vec![SpeedProfile::Homogeneous],
        seeds: vec![1],
    };
    let start = Instant::now();
    let report = run_sweep(&spec, 1).expect("sweep runs");
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(report.shards_ok(), 1, "10k-node shard must complete");
    wall
}

/// The `netsim_flows` churn workload (drive a 40-node network through
/// `flows` transfers to completion), as ops/sec per flow.
fn netsim_churn_ops(flows: u64) -> f64 {
    let per_call = time_per_call(|| {
        let mut net = Network::new(&[10, 10, 10, 10], NetConfig::gigabit());
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut now = SimTime::ZERO;
        for _ in 0..flows {
            let src = (xorshift(&mut state) % 40) as usize;
            let dst = (xorshift(&mut state) % 40) as usize;
            let bytes = 1_000_000 + xorshift(&mut state) % 64_000_000;
            net.start_flow(now, src, dst, bytes);
            if let Some(t) = net.next_completion() {
                now = t;
                net.complete_flows(now);
            }
        }
        while let Some(t) = net.next_completion() {
            net.complete_flows(t);
            if net.active_flows() == 0 {
                break;
            }
        }
    });
    flows as f64 / per_call
}

/// The `event_calendar` schedule+pop workload, ops/sec.
fn calendar_ops(events: u64) -> f64 {
    let per_call = time_per_call(|| {
        let mut cal = Calendar::new();
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for i in 0..events {
            cal.schedule(
                SimTime::from_micros(xorshift(&mut state) % 1_000_000_000),
                i,
            );
        }
        while cal.pop().is_some() {}
    });
    events as f64 / per_call
}

fn main() {
    let active = simd::active().name();
    let supported: Vec<String> = simd::all_supported()
        .iter()
        .map(|k| format!("\"{}\"", k.name()))
        .collect();
    println!(
        "kernel dispatch: active {active}, supported [{}]",
        supported.join(", ")
    );

    let mib = SHARD_BYTES as f64 / (1024.0 * 1024.0);
    let small_mib = SMALL_BYTES as f64 / (1024.0 * 1024.0);

    let (ma_ref, ma_tab, ma_simd) = gf_mul_acc(SHARD_BYTES);
    println!(
        "gf256 mul-acc 256KiB: ref {:.0} MiB/s, table {:.0} MiB/s, {active} {:.0} MiB/s ({:.2}x vs table)",
        mib / ma_ref,
        mib / ma_tab,
        mib / ma_simd,
        ma_tab / ma_simd
    );
    let (sm_ref, sm_tab, sm_simd) = gf_mul_acc(SMALL_BYTES);
    println!(
        "gf256 mul-acc 16KiB (L1): ref {:.0} MiB/s, table {:.0} MiB/s, {active} {:.0} MiB/s ({:.2}x vs table)",
        small_mib / sm_ref,
        small_mib / sm_tab,
        small_mib / sm_simd,
        sm_tab / sm_simd
    );

    let (mm_seq, mm_fused) = gf_mul_acc_multi();
    println!(
        "gf256 mul-acc-multi 10x256KiB: table-sequential {:.0} MiB/s, fused {:.0} MiB/s ({:.2}x)",
        10.0 * mib / mm_seq,
        10.0 * mib / mm_fused,
        mm_seq / mm_fused
    );

    let (dec_ref, dec_tab, dec_simd) = rs_decode();
    println!(
        "rs decode (12,10) 256KiB: ref {:.2} ms, table {:.2} ms, simd {:.3} ms ({:.2}x vs table, {:.2}x vs PR1 recorded)",
        dec_ref * 1e3,
        dec_tab * 1e3,
        dec_simd * 1e3,
        dec_tab / dec_simd,
        PR1_DECODE_S / dec_simd
    );

    let (rec_full, rec_one) = rs_reconstruct_one();
    println!(
        "rs reconstruct one of (12,10): full-decode {:.2} ms, single-row {:.3} ms ({:.2}x)",
        rec_full * 1e3,
        rec_one * 1e3,
        rec_full / rec_one
    );

    let (fs_ref, fs_opt) = fairshare_realloc();
    println!(
        "fairshare realloc (256 flows): ref {:.1} us, opt {:.1} us, speedup {:.2}x",
        fs_ref * 1e6,
        fs_opt * 1e6,
        fs_ref / fs_opt
    );

    let (fs1k_dense, fs1k_sparse) = fairshare_realloc_at(1_000, 10, 1_024);
    println!(
        "fairshare realloc 1k nodes / 1024 flows: dense {:.1} us, sparse {:.1} us, speedup {:.2}x",
        fs1k_dense * 1e6,
        fs1k_sparse * 1e6,
        fs1k_dense / fs1k_sparse
    );
    let (fs10k_dense, fs10k_sparse) = fairshare_realloc_at(10_000, 100, 4_096);
    println!(
        "fairshare realloc 10k nodes / 4096 flows: dense {:.1} us, sparse {:.1} us, speedup {:.2}x",
        fs10k_dense * 1e6,
        fs10k_sparse * 1e6,
        fs10k_dense / fs10k_sparse
    );

    let sweep_rates = sweep_shards_per_sec(&[1, 2, 4]);
    for &(threads, rate) in &sweep_rates {
        println!("sweep fig7-small 12 shards @ {threads} thread(s): {rate:.1} shards/s");
    }
    let shard10k_wall = scale_10k_shard_wall();
    println!("sweep scale-10k single shard (10,000 nodes): {shard10k_wall:.2} s wall");

    let encode = {
        let rs =
            ReedSolomon::new(CodeParams::new(12, 10).unwrap(), CodeConstruction::Cauchy).unwrap();
        let data: Vec<Vec<u8>> = (0..10).map(|s| make_shard(SHARD_BYTES, s)).collect();
        let mut parity = Vec::new();
        time_per_call(|| {
            rs.encode_parity_into(&data, &mut parity).unwrap();
            assert_eq!(parity.len(), 2);
        })
    };
    let churn_200 = netsim_churn_ops(200);
    let cal_10k = calendar_ops(10_000);
    let sched = {
        let exp = presets::small_default();
        time_per_call(|| {
            exp.run(Policy::EnhancedDegradedFirst, 1).unwrap();
        })
    };
    let fig7 = {
        let exp = presets::simulation_default();
        let start = Instant::now();
        for policy in [
            Policy::LocalityFirst,
            Policy::BasicDegradedFirst,
            Policy::EnhancedDegradedFirst,
        ] {
            exp.run(policy, 1).unwrap();
        }
        start.elapsed().as_secs_f64()
    };
    println!("rs encode (12,10): {:.2} ms", encode * 1e3);
    println!("netsim churn 200 flows: {:.0} flows/s", churn_200);
    println!("calendar schedule+pop 10k: {:.0} ops/s", cal_10k);
    println!("engine EDF small run: {:.0} runs/s", 1.0 / sched);
    println!("fig7 fixed config (3 policies, seed 1): {:.2} s", fig7);

    let json = format!(
        r#"{{
  "pr": 7,
  "harness": "cargo run --release -p bench --bin bench_snapshot",
  "kernel_dispatch": {{
    "active": "{active}",
    "supported": [{supported}],
    "force_scalar_env": "ERASURE_FORCE_SCALAR"
  }},
  "gf256_mul_acc_256KiB": {{
    "ref_logexp_mib_per_s": {ref256:.1},
    "table_scalar_mib_per_s": {tab256:.1},
    "simd_mib_per_s": {simd256:.1},
    "simd_vs_table_scalar": {r256:.2},
    "pr1_recorded_mib_per_s": {pr1ma:.1},
    "simd_vs_pr1_recorded": {r256pr1:.2}
  }},
  "gf256_mul_acc_16KiB_l1": {{
    "ref_logexp_mib_per_s": {ref16:.1},
    "table_scalar_mib_per_s": {tab16:.1},
    "simd_mib_per_s": {simd16:.1},
    "simd_vs_table_scalar": {r16:.2}
  }},
  "gf256_mul_acc_multi_10x256KiB": {{
    "table_sequential_mib_per_s": {mmseq:.1},
    "simd_fused_mib_per_s": {mmfused:.1},
    "fused_vs_sequential": {mmr:.2}
  }},
  "rs_decode_12_10_256KiB": {{
    "ref_logexp_s_per_decode": {dref:.6},
    "table_scalar_s_per_decode": {dtab:.6},
    "simd_s_per_decode": {dsimd:.6},
    "simd_vs_table_scalar": {dr:.2},
    "pr1_recorded_s_per_decode": {pr1d:.6},
    "simd_vs_pr1_recorded": {drpr1:.2}
  }},
  "rs_reconstruct_one_12_10_256KiB": {{
    "full_decode_s": {rfull:.6},
    "single_row_s": {rone:.6},
    "speedup": {rr:.2}
  }},
  "netsim_fairshare_realloc_256_flows": {{
    "ref_s_per_call": {fsr:.9},
    "opt_s_per_call": {fso:.9},
    "speedup": {fsx:.2}
  }},
  "netsim_fairshare_realloc_1k_nodes_1024_flows": {{
    "dense_s_per_call": {fs1kd:.9},
    "sparse_s_per_call": {fs1ks:.9},
    "speedup": {fs1kx:.2},
    "bit_identical_to_ref": true
  }},
  "netsim_fairshare_realloc_10k_nodes_4096_flows": {{
    "dense_s_per_call": {fs10kd:.9},
    "sparse_s_per_call": {fs10ks:.9},
    "speedup": {fs10kx:.2},
    "bit_identical_to_ref": true
  }},
  "sweep_fig7_small_12_shards_per_sec": {{
    "threads_1": {sw1:.2},
    "threads_2": {sw2:.2},
    "threads_4": {sw4:.2},
    "report_byte_identical_across_threads": true
  }},
  "sweep_scale_10k_single_shard": {{
    "nodes": 10000,
    "blocks": 7500,
    "wall_s": {sh10k:.3}
  }},
  "suites_ops_per_sec": {{
    "rs_codec_encode_12_10": {enc:.2},
    "event_calendar_schedule_pop_10k": {cal:.0},
    "netsim_flows_churn_200": {churn:.0},
    "scheduler_decision_small_edf_runs": {schedr:.2}
  }},
  "fig7_fixed_config_wall_s": {fig7:.3}
}}
"#,
        active = active,
        supported = supported.join(", "),
        ref256 = mib / ma_ref,
        tab256 = mib / ma_tab,
        simd256 = mib / ma_simd,
        r256 = ma_tab / ma_simd,
        pr1ma = PR1_MUL_ACC_MIB_S,
        r256pr1 = (mib / ma_simd) / PR1_MUL_ACC_MIB_S,
        ref16 = small_mib / sm_ref,
        tab16 = small_mib / sm_tab,
        simd16 = small_mib / sm_simd,
        r16 = sm_tab / sm_simd,
        mmseq = 10.0 * mib / mm_seq,
        mmfused = 10.0 * mib / mm_fused,
        mmr = mm_seq / mm_fused,
        dref = dec_ref,
        dtab = dec_tab,
        dsimd = dec_simd,
        dr = dec_tab / dec_simd,
        pr1d = PR1_DECODE_S,
        drpr1 = PR1_DECODE_S / dec_simd,
        rfull = rec_full,
        rone = rec_one,
        rr = rec_full / rec_one,
        fsr = fs_ref,
        fso = fs_opt,
        fsx = fs_ref / fs_opt,
        fs1kd = fs1k_dense,
        fs1ks = fs1k_sparse,
        fs1kx = fs1k_dense / fs1k_sparse,
        fs10kd = fs10k_dense,
        fs10ks = fs10k_sparse,
        fs10kx = fs10k_dense / fs10k_sparse,
        sw1 = sweep_rates[0].1,
        sw2 = sweep_rates[1].1,
        sw4 = sweep_rates[2].1,
        sh10k = shard10k_wall,
        enc = 1.0 / encode,
        cal = cal_10k,
        churn = churn_200,
        schedr = 1.0 / sched,
        fig7 = fig7,
    );
    std::fs::write("BENCH_PR7.json", json).expect("write BENCH_PR7.json");
    println!("wrote BENCH_PR7.json");
}
