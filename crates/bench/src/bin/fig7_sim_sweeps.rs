//! Regenerates Figure 7 panels (a)-(e); see `bench::figs::fig7`.
//! Set `DFS_SEEDS` to control the number of randomized runs.

fn main() {
    bench::figs::fig7::run_sweeps();
}
