//! Regenerates one evaluation artifact; see `bench::figs` for details.
//! Set `DFS_SEEDS` to control the number of randomized runs.

fn main() {
    bench::figs::fig9::run();
}
