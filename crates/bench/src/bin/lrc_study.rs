//! Regenerates one evaluation artifact; see `bench::figs::lrc_study`.
//! Set `DFS_SEEDS` to control the number of randomized runs.

fn main() {
    bench::figs::lrc_study::run();
}
