//! Regenerates one evaluation artifact; see `bench::figs::motivation`.
//! Set `DFS_SEEDS` to control the number of randomized runs.

fn main() {
    bench::figs::motivation::run();
}
