//! Regenerates one evaluation artifact; see `bench::figs::repair_study`.
//! Set `DFS_SEEDS` to control the number of randomized runs.

fn main() {
    bench::figs::repair_study::run();
}
