//! Regenerates every table and figure of the paper in order.
//! Set `DFS_SEEDS` (default 30 for simulations, 5 for testbed mode) to
//! trade fidelity for speed.

fn main() {
    let t0 = std::time::Instant::now();
    println!("# Degraded-First Scheduling (DSN 2014) — full reproduction\n");
    bench::figs::fig3::run();
    bench::figs::fig5::run();
    bench::figs::fig7::run();
    bench::figs::fig8::run();
    bench::figs::fig9::run();
    bench::figs::table1::run();
    bench::figs::ablation::run();
    bench::figs::motivation::run();
    bench::figs::heartbeat::run();
    bench::figs::repair_study::run();
    bench::figs::speculation::run();
    bench::figs::lrc_study::run();
    println!("\nall artifacts regenerated in {:?}", t0.elapsed());
}
