//! Regenerates one evaluation artifact; see `bench::figs::speculation`.
//! Set `DFS_SEEDS` to control the number of randomized runs.

fn main() {
    bench::figs::speculation::run();
}
