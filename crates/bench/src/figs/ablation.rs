//! Ablation of the Section IV-C heuristics (beyond the paper's BDF/EDF
//! split): locality preservation and rack awareness toggled
//! independently, across the homogeneous, heterogeneous and extreme
//! clusters. This isolates which heuristic buys what — DESIGN.md calls
//! this out as the design-choice study.

use dfs::experiment::{Experiment, Policy};
use dfs::mapreduce::MapLocality;
use dfs::presets;
use dfs::simkit::report::Table;
use dfs::sweep::sweep_seeds_vec;

use crate::seeds;

const VARIANTS: [(&str, Policy); 5] = [
    ("LF", Policy::LocalityFirst),
    ("BDF", Policy::BasicDegradedFirst),
    (
        "BDF+locality",
        Policy::DegradedFirstWith {
            locality_preservation: true,
            rack_awareness: false,
        },
    ),
    (
        "BDF+rack",
        Policy::DegradedFirstWith {
            locality_preservation: false,
            rack_awareness: true,
        },
    ),
    ("EDF", Policy::EnhancedDegradedFirst),
];

fn run_cluster(label: &str, exp: &Experiment, table: &mut Table) {
    let n = seeds();
    let sweeps = sweep_seeds_vec(n, |seed| {
        let normal = exp.run_normal_mode(seed).ok()?;
        let base = normal.jobs[0].runtime().as_secs_f64();
        let mut row = Vec::new();
        for (_, policy) in VARIANTS {
            let result = exp.run(policy, seed).ok()?;
            row.push(result.jobs[0].runtime().as_secs_f64() / base);
            row.push(
                (result.map_count(MapLocality::Remote) + result.map_count(MapLocality::RackLocal))
                    as f64,
            );
            let reads = result.degraded_read_secs();
            row.push(reads.iter().sum::<f64>() / reads.len().max(1) as f64);
        }
        Some(row)
    });
    let lf_runtime = sweeps[0].mean();
    for (i, (name, _)) in VARIANTS.iter().enumerate() {
        let runtime = sweeps[i * 3].mean();
        let non_local = sweeps[i * 3 + 1].mean();
        let read = sweeps[i * 3 + 2].mean();
        table.row(&[
            format!("{label} {name}"),
            format!("{runtime:.3}"),
            format!("{:.1}%", (lf_runtime - runtime) / lf_runtime * 100.0),
            format!("{non_local:.1}"),
            format!("{read:.1}"),
        ]);
    }
}

/// Runs the ablation across all three cluster presets.
pub fn run() {
    let mut table = Table::new(&[
        "cluster / variant",
        "norm. runtime",
        "vs LF",
        "non-local maps",
        "mean degraded read (s)",
    ]);
    run_cluster("homogeneous", &presets::simulation_default(), &mut table);
    run_cluster(
        "heterogeneous",
        &presets::heterogeneous_default(),
        &mut table,
    );
    run_cluster("extreme", &presets::extreme_case(), &mut table);
    table.print("Ablation — EDF heuristics toggled independently");
}
