//! Figure 3 — the motivating example (Section III): a five-node,
//! two-rack cluster with a (4,2) code over 12 native blocks and 100 Mbps
//! links. With Node 1 failed, locality-first scheduling finishes the map
//! phase in ~40 s while degraded-first needs ~30 s (25% less), because
//! LF's four degraded reads compete for the rack downlinks at the end.

use dfs::cluster::{NodeId, Topology};
use dfs::ecstore::ExplicitPlacement;
use dfs::erasure::CodeParams;
use dfs::experiment::Policy;
use dfs::mapreduce::engine::{Engine, EngineConfig};
use dfs::mapreduce::job::JobSpec;
use dfs::mapreduce::MapLocality;
use dfs::netsim::NetConfig;
use dfs::simkit::report::{pct, reduction, Table};
use dfs::simkit::time::SimDuration;

/// The Figure 2 placement, 0-indexed (paper node `i+1` = `NodeId(i)`).
/// Rack 0 = nodes {0,1,2}, rack 1 = nodes {3,4}. Node 0 holds the four
/// native blocks `B_{0..3,0}` that become degraded tasks when it fails;
/// `P_{0,0}` and `P_{1,0}` sit in rack 1 so their readers in rack 0 must
/// download across racks, `P_{2,0}` sits on node 2 (read from rack 1),
/// and `P_{3,0}` sits on node 3 (read within rack 1).
fn figure2_placement() -> ExplicitPlacement {
    let n = |i: u32| NodeId(i);
    // Stripe layout order per stripe: [B0, B1, P0, P1].
    #[rustfmt::skip]
    let map = vec![
        // s0: B00@0 B01@1 | P00@3 P01@4   (node1's reader fetches P00 cross-rack)
        n(0), n(1), n(3), n(4),
        // s1: B10@0 B11@2 | P10@4 P11@3   (node2's reader fetches P10 cross-rack)
        n(0), n(2), n(4), n(3),
        // s2: B20@0 B21@3 | P20@2 P21@4   (node3's reader fetches P20 cross-rack)
        n(0), n(3), n(2), n(4),
        // s3: B30@0 B31@4 | P30@3 P31@1   (node4's reader fetches P30 in-rack)
        n(0), n(4), n(3), n(1),
        // s4/s5: remaining natives spread over the surviving nodes.
        n(1), n(2), n(3), n(4),
        n(2), n(1), n(4), n(3),
    ];
    ExplicitPlacement::new(map)
}

/// Runs the motivating example and prints LF vs BDF map-phase durations.
pub fn run() {
    let topo = Topology::with_rack_sizes(&[3, 2], 2, 1);
    let cfg = EngineConfig {
        block_bytes: 128 * 1024 * 1024,
        net: NetConfig::uniform(100_000_000),
        // The example's readers each hold a block of the stripe and only
        // download what they miss (Section III narrates single-parity
        // downloads), i.e. local-first source selection.
        source_selection: dfs::ecstore::SourceSelection::LocalFirst,
        ..EngineConfig::default()
    };
    let job = JobSpec::builder("motivating")
        .map_time(SimDuration::from_secs(10), SimDuration::ZERO)
        .map_only()
        .build();
    let placement = figure2_placement();

    let mut table = Table::new(&[
        "policy",
        "map phase (s)",
        "degraded maps",
        "mean degraded read (s)",
    ]);
    let mut durations = Vec::new();
    for policy in [Policy::LocalityFirst, Policy::BasicDegradedFirst] {
        let engine = Engine::builder(topo.clone())
            .code(CodeParams::new(4, 2).expect("(4,2)"), 12)
            .placement(&placement)
            .failure(dfs::cluster::FailureScenario::nodes([NodeId(0)]))
            .config(cfg)
            .seed(0)
            .job(job.clone())
            .build()
            .expect("engine");
        let result = engine.run(policy.scheduler()).expect("run");
        let phase = result.jobs[0].runtime().as_secs_f64();
        let reads = result.degraded_read_secs();
        table.row(&[
            policy.name().to_string(),
            format!("{phase:.1}"),
            result.map_count(MapLocality::Degraded).to_string(),
            format!("{:.1}", reads.iter().sum::<f64>() / reads.len() as f64),
        ]);
        durations.push(phase);
    }
    table.print("Figure 3 — motivating example (paper: LF 40 s, DF 30 s, 25% saving)");
    println!(
        "degraded-first saves {} of the map phase (paper: 25%)",
        pct(reduction(durations[0], durations[1]))
    );
}

/// Renders the paper's "map-slot activities" Gantt chart from task
/// records: one lane per map slot, `.` fetch/degraded-read time, `#`
/// processing time.
fn gantt(result: &dfs::mapreduce::RunResult, topo: &Topology, cols: usize) {
    let end = result
        .tasks
        .iter()
        .map(|t| t.completed_at.as_secs_f64())
        .fold(0.0f64, f64::max);
    let scale = cols as f64 / end.max(1.0);
    println!("    0s{}{:.0}s", " ".repeat(cols.saturating_sub(6)), end);
    for node in topo.node_ids() {
        // Greedy lane assignment: tasks sorted by start, packed into the
        // node's slots.
        let mut tasks: Vec<&dfs::mapreduce::TaskRecord> = result
            .tasks
            .iter()
            .filter(|t| t.node == node && t.map_locality().is_some())
            .collect();
        tasks.sort_by_key(|t| t.assigned_at);
        let slots = topo.spec(node).map_slots as usize;
        let mut lanes: Vec<Vec<&dfs::mapreduce::TaskRecord>> = vec![Vec::new(); slots];
        'place: for t in tasks {
            for lane in &mut lanes {
                if lane
                    .last()
                    .is_none_or(|prev| prev.completed_at <= t.assigned_at)
                {
                    lane.push(t);
                    continue 'place;
                }
            }
        }
        for (s, lane) in lanes.iter().enumerate() {
            let mut row = vec![b' '; cols];
            for t in lane {
                let a = (t.assigned_at.as_secs_f64() * scale) as usize;
                let f = (t.input_ready_at.as_secs_f64() * scale) as usize;
                let c = ((t.completed_at.as_secs_f64() * scale) as usize).min(cols);
                for cell in row.iter_mut().take(f.min(cols)).skip(a) {
                    *cell = b'.';
                }
                for cell in row.iter_mut().take(c).skip(f.min(cols)) {
                    *cell = b'#';
                }
            }
            println!("{node}/{s} |{}|", String::from_utf8_lossy(&row));
        }
    }
    println!("      (. = waiting for input transfer, # = processing)");
}

/// Runs the example and prints the per-slot Gantt charts (the paper's
/// Figure 3(a)/(b) view).
pub fn run_gantt() {
    let topo = Topology::with_rack_sizes(&[3, 2], 2, 1);
    let cfg = EngineConfig {
        block_bytes: 128 * 1024 * 1024,
        net: NetConfig::uniform(100_000_000),
        source_selection: dfs::ecstore::SourceSelection::LocalFirst,
        ..EngineConfig::default()
    };
    let job = JobSpec::builder("motivating")
        .map_time(SimDuration::from_secs(10), SimDuration::ZERO)
        .map_only()
        .build();
    let placement = figure2_placement();
    for policy in [Policy::LocalityFirst, Policy::BasicDegradedFirst] {
        let engine = Engine::builder(topo.clone())
            .code(CodeParams::new(4, 2).expect("(4,2)"), 12)
            .placement(&placement)
            .failure(dfs::cluster::FailureScenario::nodes([NodeId(0)]))
            .config(cfg)
            .seed(0)
            .job(job.clone())
            .build()
            .expect("engine");
        let result = engine.run(policy.scheduler()).expect("run");
        println!("\nmap-slot activities under {}:", policy.name());
        gantt(&result, &topo, 64);
    }
}
