//! Figure 5 — numerical results of the Section IV-B analysis: normalized
//! runtimes of locality-first vs degraded-first under the closed-form
//! model, sweeping (a) the coding scheme, (b) the block count, (c) the
//! rack download bandwidth.

use dfs::analysis::{sweep_bandwidth, sweep_blocks, sweep_schemes, ModelParams, SweepPoint};
use dfs::simkit::report::{f3, pct, Table};

fn print_points(title: &str, points: &[SweepPoint]) {
    let mut table = Table::new(&["x", "LF normalized", "DF normalized", "reduction"]);
    for p in points {
        table.row(&[p.label.clone(), f3(p.lf), f3(p.df), pct(p.reduction)]);
    }
    table.print(title);
}

/// Regenerates all three panels of Figure 5.
pub fn run() {
    let base = ModelParams::paper_default();
    print_points(
        "Figure 5(a) — analysis vs coding scheme (paper: 15%-32% reduction)",
        &sweep_schemes(&base, &[(8, 6), (12, 9), (16, 12), (20, 15)]),
    );
    print_points(
        "Figure 5(b) — analysis vs block count F (paper: 25%-28% reduction)",
        &sweep_blocks(&base, &[720, 1440, 2160, 2880]),
    );
    print_points(
        "Figure 5(c) — analysis vs bandwidth W (paper: 18%-43% reduction)",
        &sweep_bandwidth(&base, &[100, 250, 500, 1000]),
    );
}
