//! Figure 7 — discrete event simulation of locality-first (LF) vs
//! enhanced degraded-first (EDF), boxplots over randomized
//! configurations (the paper uses 30 per point):
//!
//! * (a) coding scheme sweep, (b) block count sweep, (c) rack bandwidth
//!   sweep, (d) failure patterns, (e) shuffle volume sweep — all on the
//!   Section V-B default cluster;
//! * (f) ten simultaneous jobs with exponential inter-arrivals.

use dfs::erasure::CodeParams;
use dfs::experiment::{Experiment, FailureSpec, Policy};
use dfs::presets::{self, MBPS};
use dfs::simkit::report::Table;
use dfs::simkit::SimRng;
use dfs::sweep::sweep_seeds_vec;
use dfs::workloads::multi_job_workload;

use crate::{boxplot_table, compare_policies, lf_edf, seeds};

fn run_panel(title: &str, experiments: Vec<(String, Experiment)>) {
    let mut rows = Vec::new();
    for (label, exp) in &experiments {
        for (policy, sweep) in compare_policies(exp, &lf_edf()) {
            rows.push((format!("{label} {policy}"), sweep));
        }
    }
    boxplot_table(&rows).print(title);
    // Pairwise reductions per x-value.
    let mut table = Table::new(&["x", "mean EDF reduction vs LF"]);
    for pair in rows.chunks(2) {
        let (lf_label, lf) = &pair[0];
        let (_, edf) = &pair[1];
        let x = lf_label.trim_end_matches(" LF");
        table.row(&[
            x.to_string(),
            format!("{:.1}%", edf.mean_reduction_vs(lf) * 100.0),
        ]);
    }
    table.print(&format!("{title} — reductions"));
}

/// Figure 7(a): normalized runtime vs coding scheme
/// (paper: 17.4% reduction at (8,6) up to 32.9% at (20,15)).
pub fn panel_a() {
    let base = presets::simulation_default();
    let schemes = [(8usize, 6usize), (12, 9), (16, 12), (20, 15)];
    let experiments = schemes
        .iter()
        .map(|&(n, k)| {
            let mut exp = base.clone();
            exp.code = CodeParams::new(n, k).expect("valid scheme");
            (format!("({n},{k})"), exp)
        })
        .collect();
    run_panel("Figure 7(a) — simulation vs coding scheme", experiments);
}

/// Figure 7(b): vs block count (paper: 34.8%-39.6% reduction).
pub fn panel_b() {
    let base = presets::simulation_default();
    let experiments = [720usize, 1440, 2160, 2880]
        .iter()
        .map(|&f| {
            let mut exp = base.clone();
            exp.num_blocks = f;
            (format!("F={f}"), exp)
        })
        .collect();
    run_panel("Figure 7(b) — simulation vs block count", experiments);
}

/// Figure 7(c): vs rack download bandwidth (paper: up to 35.1% at
/// 500 Mbps).
pub fn panel_c() {
    let base = presets::simulation_default();
    let experiments = [250u64, 500, 1000]
        .iter()
        .map(|&mbps| {
            let mut exp = base.clone();
            exp.config.net.rack_bps = mbps * MBPS;
            (format!("{mbps}Mbps"), exp)
        })
        .collect();
    run_panel("Figure 7(c) — simulation vs rack bandwidth", experiments);
}

/// Figure 7(d): failure patterns (paper reductions: 33.2% single-node,
/// 22.3% double-node, 5.9% rack).
pub fn panel_d() {
    let base = presets::simulation_default();
    let patterns = [
        ("single-node", FailureSpec::RandomSingleNode),
        ("double-node", FailureSpec::RandomDoubleNode),
        ("rack", FailureSpec::RandomRack),
    ];
    let experiments = patterns
        .iter()
        .map(|(label, spec)| {
            let mut exp = base.clone();
            exp.failure = spec.clone();
            (label.to_string(), exp)
        })
        .collect();
    run_panel("Figure 7(d) — simulation vs failure pattern", experiments);
}

/// Figure 7(e): shuffle volume sweep (paper: 20.0%-33.2% reduction; EDF
/// worsens with shuffle because its degraded reads overlap shuffle
/// traffic, LF stays flat).
pub fn panel_e() {
    let base = presets::simulation_default();
    let experiments = [0.01f64, 0.05, 0.10, 0.20, 0.30]
        .iter()
        .map(|&ratio| {
            let mut exp = base.clone();
            exp.jobs[0].shuffle_ratio = ratio;
            (format!("{}%", (ratio * 100.0) as u32), exp)
        })
        .collect();
    run_panel("Figure 7(e) — simulation vs shuffle volume", experiments);
}

/// Figure 7(f): ten jobs, exponential inter-arrivals with mean 120 s,
/// FIFO slots (paper: per-job reductions 28.6%-48.6%).
pub fn panel_f() {
    const JOBS: usize = 10;
    let base = presets::simulation_default();
    let n = seeds();
    let sweeps = sweep_seeds_vec(n, |seed| {
        let mut exp = base.clone();
        let mut rng = SimRng::seed_from_u64(seed ^ 0x6a6f_6273);
        exp.jobs = multi_job_workload(&mut rng, JOBS, 120.0).expect("valid workload parameters");
        let lf = exp.normalized_runtimes(Policy::LocalityFirst, seed).ok()?;
        let edf = exp
            .normalized_runtimes(Policy::EnhancedDegradedFirst, seed)
            .ok()?;
        let mut row = lf;
        row.extend(edf);
        Some(row)
    });
    let (lf, edf) = sweeps.split_at(JOBS);
    let mut rows = Vec::new();
    let mut reductions = Table::new(&["job", "mean EDF reduction vs LF"]);
    for j in 0..JOBS {
        rows.push((format!("job{j} LF"), lf[j].clone()));
        rows.push((format!("job{j} EDF"), edf[j].clone()));
        reductions.row(&[
            format!("job{j}"),
            format!("{:.1}%", edf[j].mean_reduction_vs(&lf[j]) * 100.0),
        ]);
    }
    boxplot_table(&rows).print("Figure 7(f) — multi-job normalized runtimes");
    reductions.print("Figure 7(f) — reductions (paper: 28.6%-48.6%)");
}

/// Panels (a)–(e).
pub fn run_sweeps() {
    panel_a();
    panel_b();
    panel_c();
    panel_d();
    panel_e();
}

/// Everything, including (f).
pub fn run() {
    run_sweeps();
    panel_f();
}
