//! Figure 8 — basic vs enhanced degraded-first scheduling (Section V-C):
//!
//! * (a) percentage change in launched remote tasks vs LF (paper: BDF
//!   +35.4%/+25.4%, EDF −10.7%/−6.7% for homogeneous/heterogeneous);
//! * (b) reduction of degraded read time vs LF (paper: BDF 80.5%/83.1%,
//!   EDF 85.4%/85.5%);
//! * (c) reduction of MapReduce runtime vs LF (paper: BDF 32.3%/24.4%,
//!   EDF 34.0%/27.9%);
//! * (d) the extreme case — five 10×-slower nodes, 150-block map-only
//!   job (paper: BDF 11.7% vs EDF 32.6% runtime reduction).

use dfs::experiment::{Experiment, Policy};
use dfs::mapreduce::{MapLocality, RunResult};
use dfs::presets;
use dfs::simkit::report::Table;
use dfs::sweep::sweep_seeds_vec;

use crate::seeds;

const POLICIES: [Policy; 3] = [
    Policy::LocalityFirst,
    Policy::BasicDegradedFirst,
    Policy::EnhancedDegradedFirst,
];

fn remote_count(result: &RunResult) -> f64 {
    result.map_count(MapLocality::Remote) as f64
}

fn mean_degraded_read(result: &RunResult) -> f64 {
    let reads = result.degraded_read_secs();
    reads.iter().sum::<f64>() / reads.len().max(1) as f64
}

/// Per-seed metric rows: for each policy, `(remote, read, runtime)`.
fn collect(exp: &Experiment) -> Vec<Vec<(f64, f64, f64)>> {
    let n = seeds();
    let triples = sweep_seeds_vec(n, |seed| {
        let mut row = Vec::new();
        for policy in POLICIES {
            let result = exp.run(policy, seed).ok()?;
            row.push(remote_count(&result));
            row.push(mean_degraded_read(&result));
            row.push(result.jobs[0].runtime().as_secs_f64());
        }
        Some(row)
    });
    // Regroup flat sweeps into per-policy triples per seed.
    let samples = triples[0].samples.len();
    (0..samples)
        .map(|s| {
            POLICIES
                .iter()
                .enumerate()
                .map(|(p, _)| {
                    (
                        triples[p * 3].samples[s],
                        triples[p * 3 + 1].samples[s],
                        triples[p * 3 + 2].samples[s],
                    )
                })
                .collect()
        })
        .collect()
}

fn pct_change(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (new - base) / base * 100.0
    }
}

fn summarize(label: &str, rows: &[Vec<(f64, f64, f64)>], table: &mut Table) {
    // Mean per-seed percentage changes vs LF (index 0). Absolute remote
    // counts are reported too: our native-balanced placement leaves LF
    // with almost no remote tasks, so the paper's percentage metric is
    // computed over a tiny base.
    let mut remote = [0.0f64; 2];
    let mut remote_abs = [0.0f64; 3];
    let mut read = [0.0f64; 2];
    let mut runtime = [0.0f64; 2];
    for row in rows {
        let (lf_remote, lf_read, lf_rt) = row[0];
        remote_abs[0] += lf_remote;
        for p in 0..2 {
            let (r, d, t) = row[p + 1];
            remote[p] += pct_change(lf_remote, r);
            remote_abs[p + 1] += r;
            read[p] += (lf_read - d) / lf_read * 100.0;
            runtime[p] += (lf_rt - t) / lf_rt * 100.0;
        }
    }
    let n = rows.len() as f64;
    for (p, name) in ["BDF", "EDF"].iter().enumerate() {
        table.row(&[
            format!("{label} {name}"),
            format!(
                "{:+.1}% ({:.1} vs LF {:.1})",
                remote[p] / n,
                remote_abs[p + 1] / n,
                remote_abs[0] / n
            ),
            format!("{:.1}%", read[p] / n),
            format!("{:.1}%", runtime[p] / n),
        ]);
    }
}

/// Panels (a)–(c) on the homogeneous and heterogeneous clusters.
pub fn panels_abc() {
    let mut table = Table::new(&[
        "cluster / policy",
        "remote tasks vs LF",
        "degraded-read time cut",
        "runtime cut",
    ]);
    summarize(
        "homogeneous",
        &collect(&presets::simulation_default()),
        &mut table,
    );
    summarize(
        "heterogeneous",
        &collect(&presets::heterogeneous_default()),
        &mut table,
    );
    table.print(
        "Figure 8(a)-(c) — BDF vs EDF vs LF \
         (paper: remote +35.4/+25.4 BDF, -10.7/-6.7 EDF; reads ~80-85% cut; runtime ~24-34% cut)",
    );
}

/// Panel (d): the extreme case.
pub fn panel_d() {
    let exp = presets::extreme_case();
    let rows = collect(&exp);
    let mut table = Table::new(&[
        "cluster / policy",
        "remote tasks vs LF",
        "degraded-read time cut",
        "runtime cut",
    ]);
    summarize("extreme", &rows, &mut table);
    table.print("Figure 8(d) — extreme case (paper: BDF 11.7% vs EDF 32.6% runtime cut)");
}

/// All panels.
pub fn run() {
    panels_abc();
    panel_d();
}
