//! Figure 9 — the testbed experiments (Section VI), reproduced on the
//! simulator's "testbed mode" (12 slaves / 3 racks, (12,10) over 240
//! 64 MB blocks, round-robin placement, Table-I-calibrated jobs; see
//! DESIGN.md for the substitution note).
//!
//! * (a) single-job scenario: each of WordCount / Grep / LineCount run
//!   alone (paper: EDF cuts runtime 27.0% / 26.1% / 24.8%);
//! * (b) multi-job scenario: the three jobs submitted back-to-back
//!   (paper: 16.6% / 28.4% / 22.6%).
//!
//! The paper averages 5 runs and plots min/max whiskers; so do we.

use dfs::experiment::Policy;
use dfs::presets;
use dfs::simkit::report::Table;
use dfs::sweep::sweep_seeds_vec;
use dfs::workloads::TestbedWorkload;

/// Runs per configuration; the paper's testbed numbers average 5 runs.
fn runs() -> u64 {
    std::env::var("DFS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(5)
}

/// Figure 9(a): single-job runtimes.
pub fn panel_a() {
    let mut table = Table::new(&[
        "job",
        "LF mean (s)",
        "LF min/max",
        "EDF mean (s)",
        "EDF min/max",
        "reduction",
    ]);
    for workload in TestbedWorkload::ALL {
        let exp = presets::testbed(&[workload]);
        let sweeps = sweep_seeds_vec(runs(), |seed| {
            let lf = exp.run(Policy::LocalityFirst, seed).ok()?;
            let edf = exp.run(Policy::EnhancedDegradedFirst, seed).ok()?;
            Some(vec![
                lf.jobs[0].runtime().as_secs_f64(),
                edf.jobs[0].runtime().as_secs_f64(),
            ])
        });
        let (lf, edf) = (&sweeps[0], &sweeps[1]);
        let (ls, es) = (
            lf.summary().expect("finite runtimes"),
            edf.summary().expect("finite runtimes"),
        );
        table.row(&[
            workload.name().to_string(),
            format!("{:.1}", ls.mean),
            format!("{:.0}/{:.0}", ls.min, ls.max),
            format!("{:.1}", es.mean),
            format!("{:.0}/{:.0}", es.min, es.max),
            format!("{:.1}%", edf.mean_reduction_vs(lf) * 100.0),
        ]);
    }
    table.print("Figure 9(a) — testbed single-job (paper: 27.0/26.1/24.8% reductions)");
}

/// Figure 9(b): the three jobs submitted in a FIFO burst.
pub fn panel_b() {
    let exp = presets::testbed(&TestbedWorkload::ALL);
    let sweeps = sweep_seeds_vec(runs(), |seed| {
        let lf = exp.run(Policy::LocalityFirst, seed).ok()?;
        let edf = exp.run(Policy::EnhancedDegradedFirst, seed).ok()?;
        let mut row: Vec<f64> = lf.jobs.iter().map(|j| j.runtime().as_secs_f64()).collect();
        row.extend(edf.jobs.iter().map(|j| j.runtime().as_secs_f64()));
        Some(row)
    });
    let (lf, edf) = sweeps.split_at(TestbedWorkload::ALL.len());
    let mut table = Table::new(&["job", "LF mean (s)", "EDF mean (s)", "reduction"]);
    for (i, workload) in TestbedWorkload::ALL.iter().enumerate() {
        table.row(&[
            workload.name().to_string(),
            format!("{:.1}", lf[i].mean()),
            format!("{:.1}", edf[i].mean()),
            format!("{:.1}%", edf[i].mean_reduction_vs(&lf[i]) * 100.0),
        ]);
    }
    table.print("Figure 9(b) — testbed multi-job (paper: 16.6/28.4/22.6% reductions)");
}

/// Both panels.
pub fn run() {
    panel_a();
    panel_b();
}
