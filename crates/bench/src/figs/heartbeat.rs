//! Sensitivity of the LF/EDF comparison to the heartbeat mechanism —
//! an ablation beyond the paper (which fixes 3 s periodic heartbeats):
//! periods of 1 s / 3 s / 10 s, with and without out-of-band completion
//! heartbeats.

use dfs::experiment::Policy;
use dfs::presets;
use dfs::simkit::report::Table;
use dfs::simkit::time::SimDuration;
use dfs::sweep::sweep_seeds_vec;

fn seeds() -> u64 {
    std::env::var("DFS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10)
}

/// Runs the heartbeat sensitivity sweep.
pub fn run() {
    let mut table = Table::new(&[
        "heartbeat",
        "LF mean norm.",
        "EDF mean norm.",
        "EDF reduction",
    ]);
    for (label, period_secs, oob) in [
        ("1s", 1u64, false),
        ("3s (paper)", 3, false),
        ("10s", 10, false),
        ("3s + OOB", 3, true),
    ] {
        let mut exp = presets::small_default();
        exp.config.heartbeat_period = SimDuration::from_secs(period_secs);
        exp.config.oob_heartbeats = oob;
        let sweeps = sweep_seeds_vec(seeds(), |seed| {
            let normal = exp.run_normal_mode(seed).ok()?;
            let base = normal.jobs[0].runtime().as_secs_f64();
            let lf = exp.run(Policy::LocalityFirst, seed).ok()?;
            let edf = exp.run(Policy::EnhancedDegradedFirst, seed).ok()?;
            Some(vec![
                lf.jobs[0].runtime().as_secs_f64() / base,
                edf.jobs[0].runtime().as_secs_f64() / base,
            ])
        });
        let (lf, edf) = (&sweeps[0], &sweeps[1]);
        table.row(&[
            label.to_string(),
            format!("{:.3}", lf.mean()),
            format!("{:.3}", edf.mean()),
            format!("{:.1}%", edf.mean_reduction_vs(lf) * 100.0),
        ]);
    }
    table.print(
        "Heartbeat ablation — the EDF advantage holds across heartbeat \
         periods and with out-of-band completion beats",
    );
}
