//! LRC study (extension): the paper's footnote 1 claims degraded-first
//! scheduling "also applies to" erasure codes that need fewer blocks per
//! degraded read (Azure's local reconstruction codes, the paper's
//! reference \[20\]). This artifact sweeps the degraded-read fetch count
//! on the default cluster: as reads get cheaper, LF's pile-up hurts less
//! and the LF/EDF gap narrows — but EDF never loses.
//!
//! The fetch counts correspond to real codes of similar storage
//! overhead: 15 = RS(20,15) (the paper's default), 8 ≈ a two-group LRC
//! over 15 data blocks, 5 ≈ a three-group LRC, 3 ≈ a five-group LRC.
//! The `erasure::lrc` module implements the actual codec (encode,
//! local-group repair, verification); here only the fetch *count* enters
//! the fluid model.

use dfs::experiment::Policy;
use dfs::presets;
use dfs::simkit::report::Table;
use dfs::sweep::sweep_seeds_vec;

fn seeds() -> u64 {
    std::env::var("DFS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10)
}

/// Runs the fetch-count sweep.
pub fn run() {
    let mut table = Table::new(&[
        "degraded read fetches",
        "LF mean norm.",
        "EDF mean norm.",
        "EDF reduction",
    ]);
    for (label, fetch) in [
        ("15 (RS(20,15))", None),
        ("8 (2-group LRC)", Some(8usize)),
        ("5 (3-group LRC)", Some(5)),
        ("3 (5-group LRC)", Some(3)),
    ] {
        let mut exp = presets::simulation_default();
        exp.config.degraded_fetch_blocks = fetch;
        let sweeps = sweep_seeds_vec(seeds(), |seed| {
            let normal = exp.run_normal_mode(seed).ok()?;
            let base = normal.jobs[0].runtime().as_secs_f64();
            let lf = exp.run(Policy::LocalityFirst, seed).ok()?;
            let edf = exp.run(Policy::EnhancedDegradedFirst, seed).ok()?;
            Some(vec![
                lf.jobs[0].runtime().as_secs_f64() / base,
                edf.jobs[0].runtime().as_secs_f64() / base,
            ])
        });
        let (lf, edf) = (&sweeps[0], &sweeps[1]);
        table.row(&[
            label.to_string(),
            format!("{:.3}", lf.mean()),
            format!("{:.3}", edf.mean()),
            format!("{:.1}%", edf.mean_reduction_vs(lf) * 100.0),
        ]);
    }
    table.print(
        "LRC study — degraded-first under degraded-read-optimized codes \
         (paper footnote 1): cheaper reads shrink but never erase the gap",
    );
}
