//! One module per reproduced table/figure. Each exposes `run()`, which
//! prints the regenerated rows; the `repro_all` binary chains them.

pub mod ablation;
pub mod fig3;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod heartbeat;
pub mod lrc_study;
pub mod motivation;
pub mod repair_study;
pub mod speculation;
pub mod table1;
