//! The paper's motivating observation (Section III): "while local tasks
//! are running, the MapReduce job does not fully utilize the available
//! network resources". This artifact measures rack-downlink utilization
//! over time under LF and EDF in failure mode — LF idles the network
//! during the local phase and saturates it at the end; EDF spreads the
//! same traffic across the phase.

use dfs::experiment::Policy;
use dfs::presets;
use dfs::simkit::report::Table;

/// Buckets a run's utilization log into fixed windows, prorating each
/// sample across the windows it overlaps.
fn windows(result: &dfs::mapreduce::RunResult, window_secs: f64, count: usize) -> Vec<f64> {
    let mut bits = vec![0.0f64; count];
    for sample in &result.utilization {
        let (s, e) = (sample.since.as_secs_f64(), sample.until.as_secs_f64());
        if e <= s {
            continue;
        }
        let rate = sample.rack_down_bits / (e - s);
        let first = ((s / window_secs) as usize).min(count.saturating_sub(1));
        let last = ((e / window_secs) as usize).min(count.saturating_sub(1));
        for (w, bit) in bits.iter_mut().enumerate().take(last + 1).skip(first) {
            let w_start = w as f64 * window_secs;
            let w_end = w_start + window_secs;
            let overlap = (e.min(w_end) - s.max(w_start)).max(0.0);
            *bit += rate * overlap;
        }
    }
    // Capacity per window is constant: R racks x W for window_secs.
    let sample0 = result.utilization.first();
    let cap_per_sec = sample0
        .map(|s| {
            let dt = s.until.as_secs_f64() - s.since.as_secs_f64();
            if dt > 0.0 {
                s.rack_down_capacity_bits / dt
            } else {
                f64::INFINITY
            }
        })
        .unwrap_or(f64::INFINITY);
    bits.iter()
        .map(|&b| (b / (cap_per_sec * window_secs)).min(1.0))
        .collect()
}

/// Prints the utilization time series for LF vs EDF.
pub fn run() {
    let mut exp = presets::small_default();
    exp.config.log_network_utilization = true;
    let seed = 1;

    let lf = exp.run(Policy::LocalityFirst, seed).expect("LF run");
    let edf = exp
        .run(Policy::EnhancedDegradedFirst, seed)
        .expect("EDF run");
    let horizon = lf.makespan.as_secs_f64().max(edf.makespan.as_secs_f64());
    let window = 20.0;
    let count = (horizon / window).ceil() as usize;

    let lf_u = windows(&lf, window, count);
    let edf_u = windows(&edf, window, count);

    let bar = |frac: f64| "#".repeat((frac * 30.0).round() as usize);
    let mut table = Table::new(&["window", "LF util", "LF", "EDF util", "EDF"]);
    for i in 0..count {
        table.row(&[
            format!(
                "{:>4.0}-{:<4.0}s",
                i as f64 * window,
                (i + 1) as f64 * window
            ),
            format!("{:.0}%", lf_u[i] * 100.0),
            bar(lf_u[i]),
            format!("{:.0}%", edf_u[i] * 100.0),
            bar(edf_u[i]),
        ]);
    }
    table.print(
        "Motivation — rack-downlink utilization over time \
         (LF idles early and saturates at the end; EDF spreads the load)",
    );

    // Headline numbers: utilization variance and peak.
    let stats = |u: &[f64]| {
        let active: Vec<f64> = u.to_vec();
        let mean = active.iter().sum::<f64>() / active.len() as f64;
        let peak = active.iter().cloned().fold(0.0, f64::max);
        (mean, peak)
    };
    let (lf_mean, lf_peak) = stats(&lf_u);
    let (edf_mean, edf_peak) = stats(&edf_u);
    println!(
        "LF: mean {:.0}% peak {:.0}% over {:.0}s | EDF: mean {:.0}% peak {:.0}% over {:.0}s \
         (same degraded-read bytes; EDF uses the idle early-phase network and finishes sooner)",
        lf_mean * 100.0,
        lf_peak * 100.0,
        lf.makespan.as_secs_f64(),
        edf_mean * 100.0,
        edf_peak * 100.0,
        edf.makespan.as_secs_f64()
    );
}
