//! Repair study (extension): once degraded-first scheduling has carried
//! the cluster through the failure, the lost node must be *repaired*.
//! This artifact quantifies the conventional repair: traffic (k blocks
//! moved per lost block) and makespan versus reconstruction parallelism,
//! on the paper's default cluster.

use dfs::cluster::ClusterState;
use dfs::presets;
use dfs::repair::{simulate, RepairPlan};
use dfs::simkit::report::Table;
use dfs::simkit::SimRng;

/// Placement stream label (DESIGN.md §9, R1): mirrors the engine's
/// placement fork so this study reproduces the placed store the
/// experiment would have used for the same seed.
const PLACEMENT_STREAM: u64 = 1;

/// Runs the repair parallelism sweep.
pub fn run() {
    let exp = presets::simulation_default();
    let seed = 1;
    // Build the same placed store the experiment would use, then fail
    // one node and plan its repair.
    let scenario = exp.failure_for_seed(seed);
    let mut rng = SimRng::seed_from_u64(seed);
    let mut placement_rng = rng.fork(PLACEMENT_STREAM);
    let layout = dfs::ecstore::StripeLayout::new(exp.code, exp.num_blocks).expect("layout");
    let store = dfs::ecstore::BlockStore::place(
        &exp.topo,
        layout,
        &dfs::ecstore::RackAwarePlacement,
        &mut placement_rng,
    )
    .expect("placement");
    let state = ClusterState::from_scenario(&exp.topo, &scenario);
    let plan = RepairPlan::plan(&store, &exp.topo, &state, &mut rng).expect("plan");

    println!(
        "failure {scenario}: {} lost blocks, {} network transfers ({} cross-rack), {:.1} GB moved",
        plan.tasks.len(),
        plan.network_block_count(),
        plan.cross_rack_block_count(&exp.topo),
        plan.network_block_count() as f64 * exp.config.block_bytes as f64 / 1e9,
    );

    let mut table = Table::new(&[
        "parallel reconstructions",
        "repair makespan (s)",
        "mean per-block (s)",
    ]);
    for parallelism in [1usize, 2, 4, 8, 16] {
        let report = simulate(
            &plan,
            &exp.topo,
            exp.config.net,
            exp.config.block_bytes,
            parallelism,
        );
        let mean = report
            .task_durations
            .iter()
            .map(|d| d.as_secs_f64())
            .sum::<f64>()
            / report.task_durations.len().max(1) as f64;
        table.row(&[
            parallelism.to_string(),
            format!("{:.1}", report.makespan.as_secs_f64()),
            format!("{:.1}", mean),
        ]);
    }
    table.print(
        "Repair study — conventional repair of one failed node \
         (k blocks downloaded per lost block) vs reconstruction parallelism",
    );
}
