//! Speculation study (extension): Hadoop's answer to stragglers is
//! *speculative execution* — re-run slow tasks elsewhere. In failure
//! mode, LF's late degraded tasks look exactly like stragglers, so a
//! natural question the paper leaves open is whether speculation alone
//! recovers the degraded-first win. It cannot: a backup copy of a
//! degraded task must perform its *own* degraded read over the same
//! contended links, so speculation burns slots and bandwidth where EDF
//! removes the contention by scheduling.

use dfs::experiment::Policy;
use dfs::presets;
use dfs::simkit::report::Table;
use dfs::sweep::sweep_seeds_vec;

fn seeds() -> u64 {
    std::env::var("DFS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10)
}

/// Runs LF and EDF with and without speculative execution on the
/// default failure-mode cluster.
pub fn run() {
    let mut table = Table::new(&["variant", "mean norm. runtime", "vs plain LF"]);
    let mut lf_plain = None;
    for (label, policy, speculative) in [
        ("LF", Policy::LocalityFirst, false),
        ("LF + speculation", Policy::LocalityFirst, true),
        ("EDF", Policy::EnhancedDegradedFirst, false),
        ("EDF + speculation", Policy::EnhancedDegradedFirst, true),
    ] {
        let mut exp = presets::simulation_default();
        exp.config.speculative = speculative;
        let sweeps = sweep_seeds_vec(seeds(), |seed| {
            let normal = exp.run_normal_mode(seed).ok()?;
            let run = exp.run(policy, seed).ok()?;
            Some(vec![
                run.jobs[0].runtime().as_secs_f64() / normal.jobs[0].runtime().as_secs_f64(),
            ])
        });
        let mean = sweeps[0].mean();
        let vs = match lf_plain {
            None => {
                lf_plain = Some(mean);
                "-".to_string()
            }
            Some(base) => format!("{:.1}%", (base - mean) / base * 100.0),
        };
        table.row(&[label.to_string(), format!("{mean:.3}"), vs]);
    }
    table.print(
        "Speculation study — straggler re-execution vs degraded-first \
         scheduling in failure mode",
    );
}
