//! Table I — average runtime (seconds) of normal map tasks, degraded map
//! tasks and reduce tasks per workload in the single-job testbed
//! scenario, LF vs EDF.
//!
//! Paper values (LF → EDF): degraded maps 84.97→48.42 (WordCount),
//! 77.97→50.96 (Grep), 91.48→47.88 (LineCount) — a 43.0%/34.6%/47.7%
//! cut; reduce tasks cut ~26%; normal maps essentially unchanged.

use dfs::experiment::Policy;
use dfs::presets;
use dfs::simkit::report::Table;
use dfs::sweep::sweep_seeds_vec;
use dfs::workloads::TestbedWorkload;

fn runs() -> u64 {
    std::env::var("DFS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(5)
}

/// Regenerates Table I.
pub fn run() {
    let mut table = Table::new(&[
        "task type",
        "WordCount LF",
        "WordCount EDF",
        "Grep LF",
        "Grep EDF",
        "LineCount LF",
        "LineCount EDF",
    ]);
    // columns[workload][policy][tasktype] = mean secs
    let mut cells = [[[0.0f64; 3]; 2]; 3];
    for (w, workload) in TestbedWorkload::ALL.iter().enumerate() {
        let exp = presets::testbed(&[*workload]);
        let sweeps = sweep_seeds_vec(runs(), |seed| {
            let mut row = Vec::new();
            for policy in [Policy::LocalityFirst, Policy::EnhancedDegradedFirst] {
                let result = exp.run(policy, seed).ok()?;
                row.push(result.mean_normal_map_secs()?);
                row.push(result.mean_degraded_map_secs()?);
                row.push(result.mean_reduce_secs()?);
            }
            Some(row)
        });
        for p in 0..2 {
            for t in 0..3 {
                cells[w][p][t] = sweeps[p * 3 + t].mean();
            }
        }
    }
    for (t, task) in ["Normal map", "Degraded map", "Reduce"].iter().enumerate() {
        let mut row = vec![task.to_string()];
        for cells_w in &cells {
            for cells_wp in cells_w.iter().take(2) {
                row.push(format!("{:.2}", cells_wp[t]));
            }
        }
        table.row(&row);
    }
    table.print(
        "Table I — mean task runtimes (s), single-job testbed mode \
         (paper: EDF cuts degraded maps 43.0/34.6/47.7%, reduces ~26%, normal maps unchanged)",
    );

    // The paper's quoted degraded-map reductions.
    let mut cuts = Table::new(&["job", "degraded-map cut", "reduce cut", "normal-map change"]);
    for (w, workload) in TestbedWorkload::ALL.iter().enumerate() {
        let cut = |t: usize| (cells[w][0][t] - cells[w][1][t]) / cells[w][0][t] * 100.0;
        cuts.row(&[
            workload.name().to_string(),
            format!("{:.1}%", cut(1)),
            format!("{:.1}%", cut(2)),
            format!("{:+.1}%", -cut(0)),
        ]);
    }
    cuts.print("Table I — derived reductions");
}
