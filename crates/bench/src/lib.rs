//! Shared harness for the figure/table regeneration binaries.
//!
//! Every binary in `src/bin/` reproduces one table or figure of the
//! paper (see DESIGN.md's experiment index). They share:
//!
//! * [`seeds`] — how many randomized configurations per data point
//!   (the paper uses 30; override with `DFS_SEEDS=n` for quick runs);
//! * [`compare_policies`] — run an experiment under several policies
//!   over all seeds, in parallel, normalized against normal mode;
//! * [`boxplot_table`] — render sweeps the way the paper plots them
//!   (min / Q1 / median / Q3 / max boxes plus the mean).

use dfs::experiment::{Experiment, Policy};
use dfs::simkit::report::Table;
use dfs::sweep::{sweep_seeds, sweep_seeds_vec, SweepSummary};

pub mod figs;

/// Number of randomized configurations per data point. The paper uses
/// 30; set `DFS_SEEDS` to override (e.g. `DFS_SEEDS=5` for a smoke run).
pub fn seeds() -> u64 {
    std::env::var("DFS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(30)
}

/// Runs `exp` under each policy across [`seeds`] seeds and returns the
/// per-policy sweeps of **normalized runtime** (failure mode over normal
/// mode, first job). The normal-mode baseline is run once per seed and
/// shared across policies.
pub fn compare_policies(exp: &Experiment, policies: &[Policy]) -> Vec<(String, SweepSummary)> {
    let n = seeds();
    let sweeps = sweep_seeds_vec(n, |seed| {
        let normal = exp.run_normal_mode(seed).ok()?;
        let base = normal.jobs[0].runtime().as_secs_f64();
        let mut row = Vec::with_capacity(policies.len());
        for &policy in policies {
            let result = exp.run(policy, seed).ok()?;
            row.push(result.jobs[0].runtime().as_secs_f64() / base);
        }
        Some(row)
    });
    policies
        .iter()
        .zip(sweeps)
        .map(|(p, s)| (p.name().to_string(), s))
        .collect()
}

/// Runs `exp` under each policy and summarizes an arbitrary per-run
/// metric extracted by `metric` from the failure-mode [`dfs::mapreduce::RunResult`].
pub fn compare_policies_metric(
    exp: &Experiment,
    policies: &[Policy],
    metric: impl Fn(&dfs::mapreduce::RunResult) -> Option<f64> + Sync,
) -> Vec<(String, SweepSummary)> {
    let n = seeds();
    policies
        .iter()
        .map(|&policy| {
            let sweep = sweep_seeds(n, |seed| {
                exp.run(policy, seed).ok().and_then(|r| metric(&r))
            });
            (policy.name().to_string(), sweep)
        })
        .collect()
}

/// Builds the standard boxplot table: one row per `(label, sweep)`.
pub fn boxplot_table(rows: &[(String, SweepSummary)]) -> Table {
    let mut table = Table::new(&["series", "min", "q1", "median", "q3", "max", "mean", "n"]);
    for (label, sweep) in rows {
        let s = sweep.summary().expect("finite sweep samples");
        table.row(&[
            label.clone(),
            format!("{:.3}", s.min),
            format!("{:.3}", s.q1),
            format!("{:.3}", s.median),
            format!("{:.3}", s.q3),
            format!("{:.3}", s.max),
            format!("{:.3}", s.mean),
            s.count.to_string(),
        ]);
    }
    table
}

/// Appends a "reduction vs first row" column view: prints mean
/// reductions of each non-baseline sweep against the first (baseline)
/// sweep.
pub fn print_reductions(title: &str, rows: &[(String, SweepSummary)]) {
    if rows.len() < 2 {
        return;
    }
    let (base_name, baseline) = &rows[0];
    let mut table = Table::new(&["policy", &format!("mean reduction vs {base_name}")]);
    for (name, sweep) in &rows[1..] {
        table.row(&[
            name.clone(),
            format!("{:.1}%", sweep.mean_reduction_vs(baseline) * 100.0),
        ]);
    }
    table.print(title);
}

/// The three headline policies in the paper's order.
pub fn lf_bdf_edf() -> [Policy; 3] {
    [
        Policy::LocalityFirst,
        Policy::BasicDegradedFirst,
        Policy::EnhancedDegradedFirst,
    ]
}

/// LF and EDF only (the Figure 7 comparisons).
pub fn lf_edf() -> [Policy; 2] {
    [Policy::LocalityFirst, Policy::EnhancedDegradedFirst]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs::presets;

    #[test]
    fn seeds_env_override() {
        // Default is 30 when unset (the test environment does not set it).
        if std::env::var("DFS_SEEDS").is_err() {
            assert_eq!(seeds(), 30);
        }
    }

    #[test]
    fn compare_policies_produces_sweeps() {
        std::env::set_var("DFS_SEEDS", "2");
        let exp = presets::small_default();
        let rows = compare_policies(&exp, &lf_edf());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "LF");
        assert_eq!(rows[1].0, "EDF");
        assert_eq!(rows[0].1.samples.len(), 2);
        let table = boxplot_table(&rows);
        assert_eq!(table.len(), 2);
        print_reductions("test", &rows);
        std::env::remove_var("DFS_SEEDS");
    }
}
