//! A small `--key value` argument parser (the workspace's dependency
//! policy excludes clap; see DESIGN.md).

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    command: Option<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Errors from parsing or typed access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A positional argument appeared after options.
    UnexpectedPositional(String),
    /// A value failed to parse as the requested type.
    BadValue {
        /// Option name.
        key: String,
        /// Raw value.
        value: String,
        /// Expected type/format description.
        expected: &'static str,
    },
    /// An option the command does not understand.
    UnknownOption(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::UnexpectedPositional(arg) => {
                write!(f, "unexpected positional argument {arg:?}")
            }
            ArgError::BadValue {
                key,
                value,
                expected,
            } => {
                write!(f, "--{key} {value:?} is not a valid {expected}")
            }
            ArgError::UnknownOption(key) => write!(f, "unknown option --{key}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `argv` (without the program name): an optional leading
    /// subcommand, then `--key value` pairs. A `--key` directly followed
    /// by another `--option` or the end of input is a boolean flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::UnexpectedPositional`] for stray positionals.
    pub fn parse<I, S>(argv: I) -> Result<Args, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut args = Args::default();
        let mut iter = argv.into_iter().map(Into::into).peekable();
        if let Some(first) = iter.peek() {
            if !first.starts_with("--") {
                args.command = iter.next();
            }
        }
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(ArgError::UnexpectedPositional(arg));
            };
            match iter.next_if(|next| !next.starts_with("--")) {
                Some(value) => {
                    args.options.insert(key.to_string(), value);
                }
                None => args.flags.push(key.to_string()),
            }
        }
        Ok(args)
    }

    /// The subcommand, if any.
    pub fn command(&self) -> Option<&str> {
        self.command.as_deref()
    }

    /// A raw option value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// True if `--key` was given as a bare flag.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// A typed option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] when the value does not parse.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                key: key.to_string(),
                value: raw.to_string(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// An `(n,k)` code option such as `--code 16,12`.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] unless the value is `n,k` with
    /// `k < n`.
    pub fn get_code_or(
        &self,
        key: &str,
        default: (usize, usize),
    ) -> Result<(usize, usize), ArgError> {
        let Some(raw) = self.get(key) else {
            return Ok(default);
        };
        let bad = || ArgError::BadValue {
            key: key.to_string(),
            value: raw.to_string(),
            expected: "code written as n,k (e.g. 16,12)",
        };
        let (n, k) = raw.split_once(',').ok_or_else(bad)?;
        let n: usize = n.trim().parse().map_err(|_| bad())?;
        let k: usize = k.trim().parse().map_err(|_| bad())?;
        if k == 0 || k >= n {
            return Err(bad());
        }
        Ok((n, k))
    }

    /// Rejects options outside `allowed` (catches typos).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::UnknownOption`] for the first unknown key.
    pub fn ensure_known(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.options.keys().chain(self.flags.iter()) {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError::UnknownOption(key.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_and_options() {
        let args = Args::parse(["simulate", "--seeds", "5", "--code", "8,6", "--multi"]).unwrap();
        assert_eq!(args.command(), Some("simulate"));
        assert_eq!(args.get("seeds"), Some("5"));
        assert_eq!(args.get_or("seeds", 0u64).unwrap(), 5);
        assert_eq!(args.get_code_or("code", (4, 2)).unwrap(), (8, 6));
        assert!(args.flag("multi"));
        assert!(!args.flag("other"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let args = Args::parse(["analyze"]).unwrap();
        assert_eq!(args.get_or("nodes", 40usize).unwrap(), 40);
        assert_eq!(args.get_code_or("code", (16, 12)).unwrap(), (16, 12));
    }

    #[test]
    fn no_command_is_allowed() {
        let args = Args::parse(["--help"]).unwrap();
        assert_eq!(args.command(), None);
        assert!(args.flag("help"));
    }

    #[test]
    fn rejects_stray_positionals() {
        let err = Args::parse(["run", "--seeds", "3", "oops"]).unwrap_err();
        assert_eq!(err, ArgError::UnexpectedPositional("oops".into()));
    }

    #[test]
    fn rejects_bad_values() {
        let args = Args::parse(["x", "--seeds", "many"]).unwrap();
        assert!(matches!(
            args.get_or("seeds", 0u64).unwrap_err(),
            ArgError::BadValue { .. }
        ));
        let args = Args::parse(["x", "--code", "6"]).unwrap();
        assert!(args.get_code_or("code", (4, 2)).is_err());
        let args = Args::parse(["x", "--code", "6,6"]).unwrap();
        assert!(args.get_code_or("code", (4, 2)).is_err());
    }

    #[test]
    fn unknown_options_are_caught() {
        let args = Args::parse(["x", "--sedes", "3"]).unwrap();
        let err = args.ensure_known(&["seeds"]).unwrap_err();
        assert_eq!(err, ArgError::UnknownOption("sedes".into()));
        assert!(!err.to_string().is_empty());
        let args = Args::parse(["x", "--seeds", "3"]).unwrap();
        assert!(args.ensure_known(&["seeds"]).is_ok());
    }

    #[test]
    fn error_display() {
        for e in [
            ArgError::UnexpectedPositional("p".into()),
            ArgError::BadValue {
                key: "k".into(),
                value: "v".into(),
                expected: "usize",
            },
            ArgError::UnknownOption("u".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
