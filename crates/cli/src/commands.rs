//! The CLI subcommands, each a thin shell over the `dfs` library.

use std::error::Error;
use std::fs::File;
use std::io::BufWriter;

use dfs::analysis::ModelParams;
use dfs::cluster::{FailureTimeline, NodeId, SpeedProfile, Topology};
use dfs::ecstore::FetchPolicy;
use dfs::erasure::CodeParams;
use dfs::experiment::{Experiment, FailureSpec, PlacementKind, Policy};
use dfs::mapreduce::engine::EngineConfig;
use dfs::mapreduce::job::JobSpec;
use dfs::mapreduce::MapLocality;
use dfs::netsim::NetConfig;
use dfs::obs::aggregate::{Aggregator, AggregatorConfig, AggregatorMode};
use dfs::obs::chrome::ChromeTraceSink;
use dfs::obs::jsonl::{parse_line, JsonlSink};
use dfs::obs::schema::{validate_jsonl, TraceSchema, TRACE_SCHEMA_V1};
use dfs::obs::sink::{EventSink, FlowRateFilter, FlowRateFilterConfig};
use dfs::obs::spill::{validate_spill, SpillConfig, SpillSink};
use dfs::simkit::report::Table;
use dfs::simkit::time::{SimDuration, SimTime};
use dfs::simkit::SimRng;
use dfs::sweep::sweep_seeds_vec;
use dfs::textlab::{run_job, CorpusBuilder, Grep, LineCount, MiniGrid, WordCount};
use dfs::workloads::{ArrivalTrace, TestbedWorkload};
use sweep::{
    parse_code as parse_sweep_code, parse_policy as parse_sweep_policy, parse_spec_jsonl,
    run_sweep as run_grid_sweep, trace_diff_scenario, FailureAxis as SweepFailureAxis, SweepBase,
    SweepSpec, WorkloadAxis as SweepWorkloadAxis,
};

use crate::args::Args;

/// Placement stream label (DESIGN.md §9, R1): repair planning builds
/// the same placed store the engine would, so it forks placement with
/// the engine's label. Frozen — seeded repair plans replay it.
const PLACEMENT_STREAM: u64 = 1;

/// Top-level usage text.
pub const USAGE: &str = "\
dfs-cli — degraded-first scheduling for MapReduce in erasure-coded clusters

USAGE:
  dfs-cli analyze   [--nodes 40 --racks 4 --slots 4 --map-secs 20 --block-mb 128
                     --bandwidth-mbps 1000 --blocks 1440 --code 16,12]
  dfs-cli simulate  [--policy lf|bdf|edf|delay --seeds 5 --code 20,15 --racks 4
                     --nodes-per-rack 10 --map-slots 4 --blocks 1440 --block-mb 128
                     --bandwidth-mbps 1000 --failure node|double|rack|none
                     --fail-at node3@120s --recover-at node3@300s
                     --fetch-policy exact|redundant:R
                     --node-speeds homogeneous|slowdisk:F,S|stragglers:C,S|hot:C,M
                     --map-secs 20 --reducers 30 --shuffle 0.01
                     --poisson 120,10 --poisson-seed 1 --emit-arrivals out.jsonl
                     --arrivals trace.jsonl
                     --trace out.jsonl --trace-format jsonl|chrome|spill --trace-seed 1
                     --spill-segment-bytes 67108864
                     --flow-rate-min-delta 1e6 --flow-rate-min-interval 5]
  dfs-cli testbed   [--workload wordcount|grep|linecount|all --runs 5]
  dfs-cli repair    [--parallelism 4 --seed 1]
  dfs-cli wordcount [--lines 20000 --fail-node 0 --needle whale]
  dfs-cli obs-report --trace out.jsonl [--bucket-secs 10 --map-slots 160
                     --trace-window 60 --trace-max-windows 1024]
  dfs-cli trace-validate --trace out.jsonl [--spill]
  dfs-cli trace-diff --a a.jsonl --b b.jsonl [--top 10]
  dfs-cli sweep     [--policies lf,edf --codes \"8,6;9,6\" --failures node,rack
                     --workloads maponly:10 --fetch-policies exact,redundant:2
                     --speeds \"homogeneous;stragglers:3,0.25\"
                     --seeds 3 --seed-list 1,5,9
                     --threads 4 --base fig7-small|paper|scale-10k
                     --racks 4 --nodes-per-rack 4 --map-slots 2 --blocks 240
                     --block-mb 128 --node-mbps 1000 --rack-mbps 100
                     --spec grid.jsonl --out report.json --json
                     --diff lf,edf --diff-top 10]
  dfs-cli --help";

type CliResult = Result<(), Box<dyn Error>>;

/// `dfs-cli analyze`: the Section IV-B closed-form model.
pub fn analyze(args: &Args) -> CliResult {
    args.ensure_known(&[
        "nodes",
        "racks",
        "slots",
        "map-secs",
        "block-mb",
        "bandwidth-mbps",
        "blocks",
        "code",
    ])?;
    let (n, k) = args.get_code_or("code", (16, 12))?;
    let params = ModelParams {
        nodes: args.get_or("nodes", 40usize)?,
        racks: args.get_or("racks", 4usize)?,
        map_slots: args.get_or("slots", 4usize)?,
        map_time_secs: args.get_or("map-secs", 20.0f64)?,
        block_bytes: args.get_or("block-mb", 128u64)? * 1024 * 1024,
        rack_bandwidth_bps: args.get_or("bandwidth-mbps", 1000u64)? * 1_000_000,
        num_blocks: args.get_or("blocks", 1440usize)?,
        n,
        k,
    };
    let mut table = Table::new(&["quantity", "value"]);
    table.row(&[
        "normal-mode runtime (s)".into(),
        format!("{:.1}", params.normal_runtime()),
    ]);
    table.row(&[
        "locality-first runtime (s)".into(),
        format!("{:.1}", params.locality_first_runtime()),
    ]);
    table.row(&[
        "degraded-first runtime (s)".into(),
        format!("{:.1}", params.degraded_first_runtime()),
    ]);
    table.row(&[
        "LF normalized".into(),
        format!("{:.3}", params.locality_first_normalized()),
    ]);
    table.row(&[
        "DF normalized".into(),
        format!("{:.3}", params.degraded_first_normalized()),
    ]);
    table.row(&[
        "DF reduction".into(),
        format!("{:.1}%", params.reduction() * 100.0),
    ]);
    table.row(&[
        "one degraded read, inter-rack (s)".into(),
        format!("{:.1}", params.degraded_read_secs()),
    ]);
    table.print("closed-form analysis (Section IV-B)");
    Ok(())
}

fn parse_policy(raw: &str) -> Result<Policy, String> {
    Ok(match raw {
        "lf" => Policy::LocalityFirst,
        "bdf" => Policy::BasicDegradedFirst,
        "edf" => Policy::EnhancedDegradedFirst,
        "bdf-locality" => Policy::DegradedFirstWith {
            locality_preservation: true,
            rack_awareness: false,
        },
        "bdf-rack" => Policy::DegradedFirstWith {
            locality_preservation: false,
            rack_awareness: true,
        },
        "delay" => Policy::DelayScheduling {
            max_wait: SimDuration::from_secs(6),
        },
        other => {
            return Err(format!(
                "unknown policy {other:?} (lf|bdf|edf|bdf-locality|bdf-rack|delay)"
            ))
        }
    })
}

fn parse_failure(raw: &str) -> Result<FailureSpec, String> {
    Ok(match raw {
        "none" => FailureSpec::None,
        "node" => FailureSpec::RandomSingleNode,
        "double" => FailureSpec::RandomDoubleNode,
        "rack" => FailureSpec::RandomRack,
        other => return Err(format!("unknown failure {other:?} (none|node|double|rack)")),
    })
}

/// Parses one `node3@120s` timeline entry.
fn parse_timeline_entry(raw: &str) -> Result<(NodeId, SimTime), String> {
    let bad = || format!("bad timeline entry {raw:?} (want node3@120s)");
    let (node, at) = raw.split_once('@').ok_or_else(bad)?;
    let idx: u32 = node
        .strip_prefix("node")
        .unwrap_or(node)
        .parse()
        .map_err(|_| bad())?;
    let secs: f64 = at
        .strip_suffix('s')
        .unwrap_or(at)
        .parse()
        .map_err(|_| bad())?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(bad());
    }
    Ok((NodeId(idx), SimTime::from_secs_f64(secs)))
}

/// Builds a mid-run churn timeline from comma-separated `--fail-at` /
/// `--recover-at` values like `node3@120s,node5@200s`.
fn parse_timeline(fail: Option<&str>, recover: Option<&str>) -> Result<FailureTimeline, String> {
    let mut timeline = FailureTimeline::new();
    for raw in fail.iter().flat_map(|s| s.split(',')) {
        let (node, at) = parse_timeline_entry(raw)?;
        timeline = timeline.fail_node_at(node, at);
    }
    for raw in recover.iter().flat_map(|s| s.split(',')) {
        let (node, at) = parse_timeline_entry(raw)?;
        timeline = timeline.recover_node_at(node, at);
    }
    Ok(timeline)
}

/// `dfs-cli simulate`: a configurable failure-mode experiment.
pub fn simulate(args: &Args) -> CliResult {
    args.ensure_known(&[
        "policy",
        "seeds",
        "code",
        "racks",
        "nodes-per-rack",
        "map-slots",
        "blocks",
        "block-mb",
        "bandwidth-mbps",
        "failure",
        "fail-at",
        "recover-at",
        "fetch-policy",
        "node-speeds",
        "map-secs",
        "reduce-secs",
        "reducers",
        "shuffle",
        "trace",
        "trace-format",
        "trace-seed",
        "spill-segment-bytes",
        "flow-rate-min-delta",
        "flow-rate-min-interval",
        "arrivals",
        "poisson",
        "poisson-seed",
        "emit-arrivals",
    ])?;
    let (n, k) = args.get_code_or("code", (20, 15))?;
    let policy = parse_policy(args.get("policy").unwrap_or("edf"))?;
    let timeline = parse_timeline(args.get("fail-at"), args.get("recover-at"))?;
    // With an explicit churn timeline the cluster starts healthy unless
    // a t=0 scenario is also requested.
    let default_failure = if timeline.is_empty() { "node" } else { "none" };
    let failure = parse_failure(args.get("failure").unwrap_or(default_failure))?;
    let fetch_policy = FetchPolicy::parse(args.get("fetch-policy").unwrap_or("exact"))?;
    let node_speeds = SpeedProfile::parse(args.get("node-speeds").unwrap_or("homogeneous"))?;
    let seeds: u64 = args.get_or("seeds", 5u64)?;
    let reducers: usize = args.get_or("reducers", 30usize)?;
    let map_secs: f64 = args.get_or("map-secs", 20.0f64)?;
    let reduce_secs: f64 = args.get_or("reduce-secs", 30.0f64)?;
    let shuffle: f64 = args.get_or("shuffle", 0.01f64)?;

    let mut job = JobSpec::builder("cli")
        .map_time(
            SimDuration::from_secs_f64(map_secs),
            SimDuration::from_secs_f64(map_secs / 20.0),
        )
        .reduce_time(
            SimDuration::from_secs_f64(reduce_secs),
            SimDuration::from_secs_f64(reduce_secs / 15.0),
        )
        .reduce_tasks(reducers)
        .build();
    if reducers == 0 {
        job = JobSpec::builder("cli")
            .map_time(
                SimDuration::from_secs_f64(map_secs),
                SimDuration::from_secs_f64(map_secs / 20.0),
            )
            .map_only()
            .build();
    } else {
        job.shuffle_ratio = shuffle;
    }

    // A multi-job arrival process replaces the single `--map-secs`-style
    // job: either replayed from a recorded trace or freshly generated.
    let arrivals = match (args.get("arrivals"), args.get("poisson")) {
        (Some(_), Some(_)) => {
            return Err("--arrivals and --poisson are mutually exclusive".into());
        }
        (Some(path), None) => {
            let text = std::fs::read_to_string(path)?;
            Some(ArrivalTrace::parse_jsonl(&text)?)
        }
        (None, Some(raw)) => {
            let (mean_secs, count) = parse_poisson(raw)?;
            let seed: u64 = args.get_or("poisson-seed", 1u64)?;
            Some(ArrivalTrace::poisson(seed, count, mean_secs)?)
        }
        (None, None) => None,
    };
    if let Some(path) = args.get("emit-arrivals") {
        let trace = arrivals
            .as_ref()
            .ok_or("--emit-arrivals needs --poisson or --arrivals")?;
        std::fs::write(path, trace.to_jsonl())?;
        println!("arrival trace ({} jobs) written to {path}", trace.len());
    }

    let mut exp = Experiment {
        topo: Topology::homogeneous(
            args.get_or("racks", 4usize)?,
            args.get_or("nodes-per-rack", 10usize)?,
            args.get_or("map-slots", 4u32)?,
            1,
        ),
        code: CodeParams::new(n, k).map_err(|e| e.to_string())?,
        num_blocks: args.get_or("blocks", 1440usize)?,
        placement: PlacementKind::RackAware,
        failure,
        timeline,
        config: EngineConfig {
            block_bytes: args.get_or("block-mb", 128u64)? * 1024 * 1024,
            net: NetConfig {
                node_bps: 1_000_000_000,
                rack_bps: args.get_or("bandwidth-mbps", 1000u64)? * 1_000_000,
            },
            fetch_policy,
            node_speeds,
            ..EngineConfig::default()
        },
        jobs: vec![job],
    };
    if let Some(trace) = &arrivals {
        exp = exp.arrivals(trace);
    }
    let exp = exp;

    let sweeps = sweep_seeds_vec(seeds, |seed| {
        let normal = exp.run_normal_mode(seed).ok()?;
        let run = exp.run(policy, seed).ok()?;
        Some(vec![
            run.jobs[0].runtime().as_secs_f64(),
            run.jobs[0].runtime().as_secs_f64() / normal.jobs[0].runtime().as_secs_f64(),
            run.map_count(MapLocality::Degraded) as f64,
            {
                let reads = run.degraded_read_secs();
                reads.iter().sum::<f64>() / reads.len().max(1) as f64
            },
        ])
    });
    let mut table = Table::new(&["metric", "mean", "min", "max"]);
    for (i, name) in [
        "runtime (s)",
        "normalized runtime",
        "degraded tasks",
        "mean degraded read (s)",
    ]
    .iter()
    .enumerate()
    {
        let s = sweeps[i].summary()?;
        table.row(&[
            name.to_string(),
            format!("{:.3}", s.mean),
            format!("{:.3}", s.min),
            format!("{:.3}", s.max),
        ]);
    }
    table.print(&format!(
        "{} over {} seeds, {}x{} nodes, ({n},{k})",
        policy.name(),
        sweeps[0].samples.len(),
        exp.topo.num_racks(),
        exp.topo.num_nodes() / exp.topo.num_racks(),
    ));

    if let Some(path) = args.get("trace") {
        let trace_seed: u64 = args.get_or("trace-seed", 1u64)?;
        let format = args.get("trace-format").unwrap_or("jsonl");
        let min_delta: f64 = args.get_or("flow-rate-min-delta", 0.0f64)?;
        let min_interval: f64 = args.get_or("flow-rate-min-interval", 0.0f64)?;
        if min_delta < 0.0 || min_interval < 0.0 || !min_delta.is_finite() {
            return Err("flow-rate filter thresholds must be non-negative".into());
        }
        // Both thresholds zero means no filtering at all, so the default
        // trace stays byte-identical to pre-filter builds.
        let filter = (min_delta > 0.0 || min_interval > 0.0).then(|| FlowRateFilterConfig {
            min_delta_bps: min_delta,
            min_interval: SimDuration::from_secs_f64(min_interval),
        });
        let segment_bytes: u64 = args.get_or("spill-segment-bytes", 64 * 1024 * 1024u64)?;
        write_trace(
            &exp,
            policy,
            trace_seed,
            path,
            format,
            filter,
            segment_bytes,
        )?;
    }
    Ok(())
}

/// Parses `--poisson 120,10` (mean inter-arrival seconds, job count).
fn parse_poisson(raw: &str) -> Result<(f64, usize), String> {
    let bad = || format!("bad --poisson {raw:?} (want mean_secs,count e.g. 120,10)");
    let (mean, count) = raw.split_once(',').ok_or_else(bad)?;
    let mean_secs: f64 = mean.trim().parse().map_err(|_| bad())?;
    let count: usize = count.trim().parse().map_err(|_| bad())?;
    Ok((mean_secs, count))
}

/// Re-runs one seed of `exp` with tracing enabled, writing the event
/// stream to `path` in the requested format, optionally thinned through
/// a [`FlowRateFilter`]. The `spill` format treats `path` as a directory
/// of size-bounded segments plus a manifest.
fn write_trace(
    exp: &Experiment,
    policy: Policy,
    seed: u64,
    path: &str,
    format: &str,
    filter: Option<FlowRateFilterConfig>,
    segment_bytes: u64,
) -> CliResult {
    let suppressed = match format {
        "jsonl" => {
            let mut sink = JsonlSink::new(BufWriter::new(File::create(path)?));
            let suppressed = trace_into(exp, policy, seed, &mut sink, filter)?;
            sink.finish()?;
            suppressed
        }
        "chrome" => {
            let file = BufWriter::new(File::create(path)?);
            let mut sink = ChromeTraceSink::new(file, exp.chrome_config());
            let suppressed = trace_into(exp, policy, seed, &mut sink, filter)?;
            sink.finish()?;
            suppressed
        }
        "spill" => {
            let mut sink = SpillSink::create(SpillConfig {
                dir: path.into(),
                max_segment_bytes: segment_bytes,
            })?;
            let suppressed = trace_into(exp, policy, seed, &mut sink, filter)?;
            let manifest = sink.finish()?;
            println!(
                "spilled {} events ({} bytes) across {} segments",
                manifest.total_events,
                manifest.total_bytes,
                manifest.segments.len()
            );
            suppressed
        }
        other => return Err(format!("unknown trace format {other:?} (jsonl|chrome|spill)").into()),
    };
    println!("{format} trace of seed {seed} written to {path}");
    if let Some(dropped) = suppressed {
        println!("flow-rate filter suppressed {dropped} flow_rate events");
    }
    Ok(())
}

/// Runs `exp` traced into `sink`, threading the stream through a
/// [`FlowRateFilter`] when one is configured. Returns the suppressed
/// event count (None when unfiltered).
fn trace_into(
    exp: &Experiment,
    policy: Policy,
    seed: u64,
    sink: &mut dyn EventSink,
    filter: Option<FlowRateFilterConfig>,
) -> Result<Option<u64>, Box<dyn Error>> {
    match filter {
        Some(cfg) => {
            let mut filter = FlowRateFilter::new(sink, cfg);
            exp.run_traced(policy, seed, &mut filter)?;
            Ok(Some(filter.suppressed()))
        }
        None => {
            exp.run_traced(policy, seed, sink)?;
            Ok(None)
        }
    }
}

/// `dfs-cli obs-report`: derived metrics from a JSONL trace file.
pub fn obs_report(args: &Args) -> CliResult {
    args.ensure_known(&[
        "trace",
        "bucket-secs",
        "map-slots",
        "trace-window",
        "trace-max-windows",
    ])?;
    let path = args
        .get("trace")
        .ok_or("obs-report needs --trace <file.jsonl>")?;
    let text = std::fs::read_to_string(path)?;
    let mode = match args.get("trace-window") {
        Some(w) => {
            let window_secs: u64 = w
                .parse()
                .map_err(|_| format!("bad --trace-window `{w}` (want seconds)"))?;
            if window_secs == 0 {
                return Err("--trace-window must be positive".into());
            }
            let max_windows: usize = args.get_or("trace-max-windows", 1024usize)?;
            if max_windows == 0 {
                return Err("--trace-max-windows must be positive".into());
            }
            AggregatorMode::Windowed {
                window_secs,
                max_windows,
            }
        }
        None => AggregatorMode::Exact,
    };
    let mut agg = Aggregator::new(AggregatorConfig {
        bucket: SimDuration::from_secs_f64(args.get_or("bucket-secs", 10.0f64)?),
        total_map_slots: args.get_or("map-slots", 0u64)?,
        link_capacities_bps: Vec::new(),
        mode,
    });
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (at, event) = parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        agg.record(at, &event);
    }
    let r = agg.report();
    let opt = |x: Option<f64>| x.map_or_else(|| "-".to_string(), |v| format!("{v:.2}"));
    let mut table = Table::new(&["metric", "value"]);
    table.row(&["makespan (s)".into(), format!("{:.1}", r.makespan_secs)]);
    table.row(&[
        "jobs finished / submitted".into(),
        format!("{} / {}", r.jobs_finished, r.jobs_submitted),
    ]);
    table.row(&[
        "maps local/rack/remote/degraded".into(),
        format!(
            "{}/{}/{}/{}",
            r.maps_node_local, r.maps_rack_local, r.maps_remote, r.maps_degraded
        ),
    ]);
    table.row(&["reduces".into(), r.reduces.to_string()]);
    table.row(&[
        "speculative / cancelled".into(),
        format!("{} / {}", r.speculative_launches, r.cancelled_attempts),
    ]);
    table.row(&[
        "nodes failed / recovered".into(),
        format!("{} / {}", r.nodes_failed, r.nodes_recovered),
    ]);
    table.row(&[
        "maps relaunched (churn)".into(),
        r.maps_relaunched.to_string(),
    ]);
    table.row(&["mean normal map (s)".into(), opt(r.mean_normal_map_secs)]);
    table.row(&[
        "mean degraded map (s)".into(),
        opt(r.mean_degraded_map_secs),
    ]);
    table.row(&["mean reduce (s)".into(), opt(r.mean_reduce_secs)]);
    table.row(&[
        "degraded reads (p50/p95/p99 s)".into(),
        format!(
            "{} ({}/{}/{})",
            r.degraded_read_secs.len(),
            opt(r.degraded_read_p50),
            opt(r.degraded_read_p95),
            opt(r.degraded_read_p99)
        ),
    ]);
    table.row(&[
        "job completion latency (p50/p95/p99 s)".into(),
        format!(
            "{} ({}/{}/{})",
            r.job_latency_secs.len(),
            opt(r.job_latency_p50),
            opt(r.job_latency_p95),
            opt(r.job_latency_p99)
        ),
    ]);
    table.row(&[
        "job queueing delay (p50/p95/p99 s)".into(),
        format!(
            "{} ({}/{}/{})",
            r.job_queue_delay_secs.len(),
            opt(r.job_queue_delay_p50),
            opt(r.job_queue_delay_p95),
            opt(r.job_queue_delay_p99)
        ),
    ]);
    table.row(&[
        "peak jobs in flight".into(),
        r.peak_jobs_in_flight.to_string(),
    ]);
    // Redundant-fetch accounting only appears when the trace ran with
    // `--fetch-policy redundant:R`, so exact-policy reports keep their
    // pre-PR9 bytes.
    if r.redundant_fetches_issued > 0 || r.fetch_cancel_wins > 0 {
        table.row(&[
            "redundant fetches (reads / extra flows)".into(),
            format!(
                "{} / {}",
                r.redundant_fetches_issued, r.redundant_extra_flows
            ),
        ]);
        table.row(&[
            "fetch cancel wins / cancelled MB".into(),
            format!(
                "{} / {:.1}",
                r.fetch_cancel_wins,
                r.redundant_cancelled_bytes as f64 / (1024.0 * 1024.0)
            ),
        ]);
    }
    table.row(&[
        "fetch/map overlap (s)".into(),
        format!(
            "{:.1} of {:.1} ({})",
            r.overlap_secs,
            r.degraded_fetch_active_secs,
            opt(r.overlap_fraction())
        ),
    ]);
    if !r.slot_utilization.is_empty() {
        let peak = r.slot_utilization.iter().fold(0.0f64, |a, &b| a.max(b));
        table.row(&[
            format!("peak slot utilization ({:.0}s buckets)", r.bucket_secs),
            format!("{peak:.2}"),
        ]);
    }
    if let Some(top) = r
        .link_utilization
        .iter()
        .max_by(|a, b| a.mean_bps.total_cmp(&b.mean_bps))
    {
        table.row(&[
            "busiest link (mean / peak Mb/s)".into(),
            format!(
                "link {} ({:.1} / {:.1})",
                top.link,
                top.mean_bps / 1e6,
                top.peak_bps / 1e6
            ),
        ]);
    }
    table.print(&format!("trace summary of {path}"));
    Ok(())
}

/// `dfs-cli trace-validate`: check a JSONL trace against the schema.
/// With `--spill`, `--trace` names a spill directory: the manifest is
/// cross-checked against the segments and every segment is then
/// schema-validated.
pub fn trace_validate(args: &Args) -> CliResult {
    args.ensure_known(&["trace", "spill"])?;
    let path = args
        .get("trace")
        .ok_or("trace-validate needs --trace <file.jsonl | spill-dir>")?;
    let schema = TraceSchema::parse(TRACE_SCHEMA_V1)?;
    if args.flag("spill") {
        let dir = std::path::Path::new(path);
        let manifest = validate_spill(dir)?;
        let mut count = 0;
        for seg in &manifest.segments {
            let text = std::fs::read_to_string(dir.join(&seg.file))?;
            count += validate_jsonl(&schema, &text).map_err(|e| format!("{}: {e}", seg.file))?;
        }
        println!(
            "{path}: manifest consistent, {count} events across {} segments valid \
             against trace schema v1",
            manifest.segments.len()
        );
        return Ok(());
    }
    let text = std::fs::read_to_string(path)?;
    let count = validate_jsonl(&schema, &text)?;
    println!("{path}: {count} events valid against trace schema v1");
    Ok(())
}

/// `dfs-cli trace-diff`: lane-by-lane comparison of two JSONL traces,
/// attributing the makespan delta to concrete tasks and flows.
pub fn trace_diff(args: &Args) -> CliResult {
    args.ensure_known(&["a", "b", "top"])?;
    let path_a = args.get("a").ok_or("trace-diff needs --a <a.jsonl>")?;
    let path_b = args.get("b").ok_or("trace-diff needs --b <b.jsonl>")?;
    let top: usize = args.get_or("top", 10usize)?;
    let text_a = std::fs::read_to_string(path_a)?;
    let text_b = std::fs::read_to_string(path_b)?;
    let diff = dfs::obs::diff::diff_jsonl(&text_a, &text_b, top)?;
    print!("{}", dfs::obs::diff::render(&diff));
    Ok(())
}

/// `dfs-cli sweep`: the sharded deterministic parameter-sweep engine.
///
/// Expands a (policy × code × failure × workload × seed) grid, runs
/// every shard on a thread pool, and prints a merged comparison report
/// that is byte-identical for any thread count.
pub fn sweep_grid(args: &Args) -> CliResult {
    args.ensure_known(&[
        "spec",
        "policies",
        "codes",
        "failures",
        "workloads",
        "fetch-policies",
        "speeds",
        "seeds",
        "seed-list",
        "threads",
        "base",
        "racks",
        "nodes-per-rack",
        "map-slots",
        "reduce-slots",
        "blocks",
        "block-mb",
        "node-mbps",
        "rack-mbps",
        "out",
        "json",
        "diff",
        "diff-top",
    ])?;
    let spec = if let Some(path) = args.get("spec") {
        let text = std::fs::read_to_string(path)?;
        parse_spec_jsonl(&text)?
    } else {
        let mut base = match args.get("base").unwrap_or("fig7-small") {
            "fig7-small" => SweepBase::fig7_small(),
            "paper" => SweepBase::paper_default(),
            "scale-10k" => SweepBase::scale_10k(),
            other => {
                return Err(format!("unknown base {other:?} (fig7-small|paper|scale-10k)").into())
            }
        };
        base.racks = args.get_or("racks", base.racks)?;
        base.nodes_per_rack = args.get_or("nodes-per-rack", base.nodes_per_rack)?;
        base.map_slots = args.get_or("map-slots", base.map_slots)?;
        base.reduce_slots = args.get_or("reduce-slots", base.reduce_slots)?;
        base.num_blocks = args.get_or("blocks", base.num_blocks)?;
        base.block_bytes = args.get_or("block-mb", base.block_bytes / (1024 * 1024))? * 1024 * 1024;
        base.node_mbps = args.get_or("node-mbps", base.node_mbps)?;
        base.rack_mbps = args.get_or("rack-mbps", base.rack_mbps)?;

        let mut policies = Vec::new();
        for token in args.get("policies").unwrap_or("lf,edf").split(',') {
            policies.push(parse_sweep_policy(token.trim())?);
        }
        let mut codes = Vec::new();
        for token in args.get("codes").unwrap_or("8,6;9,6").split(';') {
            codes.push(parse_sweep_code(token.trim())?);
        }
        let mut failures = Vec::new();
        for token in args.get("failures").unwrap_or("node,rack").split(',') {
            failures.push(SweepFailureAxis::parse(token.trim())?);
        }
        let mut workloads = Vec::new();
        for token in args.get("workloads").unwrap_or("maponly:10").split(',') {
            workloads.push(SweepWorkloadAxis::parse(token.trim())?);
        }
        let mut fetch_policies = Vec::new();
        for token in args.get("fetch-policies").unwrap_or("exact").split(',') {
            fetch_policies.push(FetchPolicy::parse(token.trim())?);
        }
        // Speed profiles embed commas (`stragglers:3,0.25`), so the
        // axis separator is `;` like `--codes`.
        let mut speeds = Vec::new();
        for token in args.get("speeds").unwrap_or("homogeneous").split(';') {
            speeds.push(SpeedProfile::parse(token.trim())?);
        }
        let seeds: Vec<u64> = match args.get("seed-list") {
            Some(raw) => {
                let mut seeds = Vec::new();
                for token in raw.split(',') {
                    seeds.push(
                        token
                            .trim()
                            .parse::<u64>()
                            .map_err(|e| format!("bad seed {token:?}: {e}"))?,
                    );
                }
                seeds
            }
            None => (1..=args.get_or("seeds", 3u64)?).collect(),
        };
        SweepSpec {
            base,
            policies,
            codes,
            failures,
            workloads,
            fetch_policies,
            speeds,
            seeds,
        }
    };
    let threads = args.get_or(
        "threads",
        std::thread::available_parallelism().map_or(4, |n| n.get()),
    )?;
    let report = run_grid_sweep(&spec, threads)?;
    if let Some(path) = args.get("out") {
        std::fs::write(path, report.to_json())?;
        eprintln!(
            "sweep report ({} shards, {} ok) written to {path}",
            report.shards.len(),
            report.shards_ok()
        );
    }
    if args.flag("json") {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.human());
    }
    // `--diff lf,edf`: re-run the grid's first scenario under the two
    // named policies with tracing and attribute the makespan delta.
    if let Some(pair) = args.get("diff") {
        let (a, b) = pair
            .split_once(',')
            .ok_or_else(|| format!("bad --diff {pair:?} (want two policies, e.g. lf,edf)"))?;
        let policy_a = parse_sweep_policy(a.trim())?;
        let policy_b = parse_sweep_policy(b.trim())?;
        let top: usize = args.get_or("diff-top", 10usize)?;
        println!(
            "\ntrace diff of first scenario: {} vs {}",
            policy_a.name(),
            policy_b.name()
        );
        print!("{}", trace_diff_scenario(&spec, policy_a, policy_b, top)?);
    }
    Ok(())
}

/// `dfs-cli testbed`: the Section VI configuration.
pub fn testbed(args: &Args) -> CliResult {
    args.ensure_known(&["workload", "runs"])?;
    let runs: u64 = args.get_or("runs", 5u64)?;
    let workloads: Vec<TestbedWorkload> = match args.get("workload").unwrap_or("all") {
        "wordcount" => vec![TestbedWorkload::WordCount],
        "grep" => vec![TestbedWorkload::Grep],
        "linecount" => vec![TestbedWorkload::LineCount],
        "all" => TestbedWorkload::ALL.to_vec(),
        other => return Err(format!("unknown workload {other:?}").into()),
    };
    let mut table = Table::new(&["job", "LF mean (s)", "EDF mean (s)", "reduction"]);
    for w in workloads {
        let exp = dfs::presets::testbed(&[w]);
        let sweeps = sweep_seeds_vec(runs, |seed| {
            let lf = exp.run(Policy::LocalityFirst, seed).ok()?;
            let edf = exp.run(Policy::EnhancedDegradedFirst, seed).ok()?;
            Some(vec![
                lf.jobs[0].runtime().as_secs_f64(),
                edf.jobs[0].runtime().as_secs_f64(),
            ])
        });
        table.row(&[
            w.name().to_string(),
            format!("{:.1}", sweeps[0].mean()),
            format!("{:.1}", sweeps[1].mean()),
            format!("{:.1}%", sweeps[1].mean_reduction_vs(&sweeps[0]) * 100.0),
        ]);
    }
    table.print("testbed mode (12 slaves / 3 racks, (12,10), 240 x 64 MB blocks)");
    Ok(())
}

/// `dfs-cli repair`: plan and simulate one failed node's repair.
pub fn repair(args: &Args) -> CliResult {
    args.ensure_known(&["parallelism", "seed"])?;
    let parallelism: usize = args.get_or("parallelism", 4usize)?;
    let seed: u64 = args.get_or("seed", 1u64)?;
    let exp = dfs::presets::simulation_default();
    let scenario = exp.failure_for_seed(seed);
    let mut rng = SimRng::seed_from_u64(seed);
    let mut placement_rng = rng.fork(PLACEMENT_STREAM);
    let layout =
        dfs::ecstore::StripeLayout::new(exp.code, exp.num_blocks).map_err(|e| e.to_string())?;
    let store = dfs::ecstore::BlockStore::place(
        &exp.topo,
        layout,
        &dfs::ecstore::RackAwarePlacement,
        &mut placement_rng,
    )
    .map_err(|e| e.to_string())?;
    let state = dfs::cluster::ClusterState::from_scenario(&exp.topo, &scenario);
    let plan = dfs::repair::RepairPlan::plan(&store, &exp.topo, &state, &mut rng)?;
    let report = dfs::repair::simulate(
        &plan,
        &exp.topo,
        exp.config.net,
        exp.config.block_bytes,
        parallelism,
    );
    let mut table = Table::new(&["quantity", "value"]);
    table.row(&["failure".into(), scenario.to_string()]);
    table.row(&["lost blocks".into(), plan.tasks.len().to_string()]);
    table.row(&[
        "network transfers".into(),
        plan.network_block_count().to_string(),
    ]);
    table.row(&[
        "cross-rack transfers".into(),
        plan.cross_rack_block_count(&exp.topo).to_string(),
    ]);
    table.row(&[
        "bytes moved".into(),
        format!("{:.1} GB", report.bytes_transferred as f64 / 1e9),
    ]);
    table.row(&[
        "repair makespan".into(),
        format!(
            "{:.1} s at parallelism {parallelism}",
            report.makespan.as_secs_f64()
        ),
    ]);
    table.print("full-node repair");
    Ok(())
}

/// `dfs-cli wordcount`: the real-bytes demo over the erasure-coded grid.
pub fn wordcount(args: &Args) -> CliResult {
    args.ensure_known(&["lines", "fail-node", "needle", "seed"])?;
    let lines: usize = args.get_or("lines", 20_000usize)?;
    let seed: u64 = args.get_or("seed", 7u64)?;
    let text = CorpusBuilder::new(seed).lines(lines).build();
    let topo = Topology::homogeneous(3, 4, 4, 1);
    let params = CodeParams::new(12, 10).map_err(|e| e.to_string())?;
    let mut grid = MiniGrid::new(topo, params, 16 * 1024, &text, seed)?;
    if let Some(raw) = args.get("fail-node") {
        let idx: u32 = raw
            .parse()
            .map_err(|_| format!("bad --fail-node {raw:?}"))?;
        grid.fail_node(NodeId(idx));
    }
    let wc = run_job(&mut grid, &WordCount)?;
    let lc = run_job(&mut grid, &LineCount)?;
    let needle = args.get("needle").unwrap_or("whale").to_string();
    let grep = run_job(&mut grid, &Grep::new(&needle))?;
    let mut table = Table::new(&["job", "keys", "total", "degraded reads"]);
    table.row(&[
        "WordCount".into(),
        wc.results.len().to_string(),
        wc.total().to_string(),
        wc.stats.degraded_reads.to_string(),
    ]);
    table.row(&[
        "LineCount".into(),
        lc.results.len().to_string(),
        lc.total().to_string(),
        lc.stats.degraded_reads.to_string(),
    ]);
    table.row(&[
        format!("Grep({needle})"),
        grep.results.len().to_string(),
        grep.total().to_string(),
        grep.stats.degraded_reads.to_string(),
    ]);
    table.print(&format!(
        "real map/reduce over {} bytes erasure-coded across 12 nodes",
        grid.file_len()
    ));
    Ok(())
}
