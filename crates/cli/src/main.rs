//! `dfs-cli` — run the degraded-first scheduling reproduction from the
//! command line.
//!
//! ```text
//! dfs-cli analyze  [--nodes 40 --racks 4 --slots 4 --map-secs 20
//!                   --block-mb 128 --bandwidth-mbps 1000 --blocks 1440
//!                   --code 16,12]
//! dfs-cli simulate [--policy lf|bdf|edf|delay --seeds 5 --code 20,15
//!                   --racks 4 --nodes-per-rack 10 --map-slots 4
//!                   --blocks 1440 --bandwidth-mbps 1000 --block-mb 128
//!                   --failure node|double|rack|none --map-secs 20
//!                   --reducers 30 --shuffle 0.01
//!                   --poisson 120,10 --poisson-seed 1
//!                   --emit-arrivals out.jsonl --arrivals trace.jsonl]
//! dfs-cli testbed  [--workload wordcount|grep|linecount|all --runs 5]
//! dfs-cli repair   [--parallelism 4 --seed 1]
//! dfs-cli wordcount [--lines 20000 --fail-node 0 --needle whale]
//! dfs-cli obs-report --trace out.jsonl [--bucket-secs 10 --map-slots 160]
//! dfs-cli trace-validate --trace out.jsonl [--spill]
//! dfs-cli trace-diff --a a.jsonl --b b.jsonl [--top 10]
//! dfs-cli sweep    [--policies lf,edf --codes "8,6;9,6" --failures node,rack
//!                   --workloads maponly:10 --seeds 3 --threads 4
//!                   --base fig7-small|paper|scale-10k --spec grid.jsonl
//!                   --out report.json --json]
//! ```

mod args;
mod commands;

use args::Args;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(argv) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    if args.flag("help") || args.command().is_none() {
        println!("{}", commands::USAGE);
        return;
    }
    let result = match args.command() {
        Some("analyze") => commands::analyze(&args),
        Some("simulate") => commands::simulate(&args),
        Some("testbed") => commands::testbed(&args),
        Some("repair") => commands::repair(&args),
        Some("wordcount") => commands::wordcount(&args),
        Some("obs-report") => commands::obs_report(&args),
        Some("trace-validate") => commands::trace_validate(&args),
        Some("trace-diff") => commands::trace_diff(&args),
        Some("sweep") => commands::sweep_grid(&args),
        Some(other) => {
            eprintln!("error: unknown command {other:?}");
            eprintln!("{}", commands::USAGE);
            std::process::exit(2);
        }
        None => unreachable!("handled above"),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
