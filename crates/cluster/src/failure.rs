//! Failure scenarios and live cluster state.
//!
//! The paper's evaluation exercises three failure patterns (Figure 7(d)):
//! a single-node failure (the common case the schedulers are designed
//! for), a double-node failure, and a full-rack failure. A scenario is
//! applied at simulation start — the paper's model is a cluster already
//! *in failure mode* while a MapReduce job runs.

use crate::topology::{NodeId, RackId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A failure description that does not fit the topology it is applied
/// to (out-of-range node or rack ids).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureError {
    /// A node id beyond the topology's node count.
    UnknownNode {
        /// The offending node.
        node: NodeId,
        /// Nodes in the topology.
        num_nodes: usize,
    },
    /// A rack id beyond the topology's rack count.
    UnknownRack {
        /// The offending rack.
        rack: RackId,
        /// Racks in the topology.
        num_racks: usize,
    },
}

impl fmt::Display for FailureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureError::UnknownNode { node, num_nodes } => {
                write!(f, "{node} out of range (topology has {num_nodes} nodes)")
            }
            FailureError::UnknownRack { rack, num_racks } => {
                write!(f, "{rack} out of range (topology has {num_racks} racks)")
            }
        }
    }
}

impl std::error::Error for FailureError {}

/// A set of failed nodes and/or racks, applied before a run.
#[derive(Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FailureScenario {
    nodes: BTreeSet<NodeId>,
    racks: BTreeSet<RackId>,
}

impl FailureScenario {
    /// No failures — "normal mode" in the paper's terminology.
    pub fn none() -> FailureScenario {
        FailureScenario::default()
    }

    /// Fails an explicit set of nodes.
    pub fn nodes(nodes: impl IntoIterator<Item = NodeId>) -> FailureScenario {
        FailureScenario {
            nodes: nodes.into_iter().collect(),
            racks: BTreeSet::new(),
        }
    }

    /// Fails every node of one rack.
    pub fn rack(rack: RackId) -> FailureScenario {
        FailureScenario {
            nodes: BTreeSet::new(),
            racks: [rack].into_iter().collect(),
        }
    }

    /// True if nothing fails.
    pub fn is_normal_mode(&self) -> bool {
        self.nodes.is_empty() && self.racks.is_empty()
    }

    /// Checks every referenced node and rack id against `topo`.
    ///
    /// Scenarios are plain id sets (they deserialize from configuration
    /// and parse from CLI flags), so out-of-range ids are only
    /// detectable once a topology is in hand. Call this at that meeting
    /// point to surface a proper error instead of a later panic deep in
    /// [`ClusterState::fail_node`].
    pub fn validate(&self, topo: &Topology) -> Result<(), FailureError> {
        for &node in &self.nodes {
            if node.index() >= topo.num_nodes() {
                return Err(FailureError::UnknownNode {
                    node,
                    num_nodes: topo.num_nodes(),
                });
            }
        }
        for &rack in &self.racks {
            if rack.index() >= topo.num_racks() {
                return Err(FailureError::UnknownRack {
                    rack,
                    num_racks: topo.num_racks(),
                });
            }
        }
        Ok(())
    }

    /// The failed nodes this scenario implies on `topo` (explicit nodes
    /// plus all members of failed racks).
    pub fn failed_nodes(&self, topo: &Topology) -> BTreeSet<NodeId> {
        let mut out = self.nodes.clone();
        for &rack in &self.racks {
            out.extend(topo.nodes_in_rack(rack).iter().copied());
        }
        out
    }
}

impl fmt::Display for FailureScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_normal_mode() {
            return write!(f, "normal mode");
        }
        let nodes: Vec<String> = self.nodes.iter().map(|n| n.to_string()).collect();
        let racks: Vec<String> = self.racks.iter().map(|r| r.to_string()).collect();
        write!(
            f,
            "failed[{}]",
            nodes.into_iter().chain(racks).collect::<Vec<_>>().join(",")
        )
    }
}

/// The live/failed status of every node during a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterState {
    alive: Vec<bool>,
}

impl ClusterState {
    /// All nodes alive.
    pub fn all_alive(topo: &Topology) -> ClusterState {
        ClusterState {
            alive: vec![true; topo.num_nodes()],
        }
    }

    /// Builds the state implied by a scenario.
    pub fn from_scenario(topo: &Topology, scenario: &FailureScenario) -> ClusterState {
        let mut state = ClusterState::all_alive(topo);
        state.apply(topo, scenario);
        state
    }

    /// Marks the nodes of a scenario as failed, expanding rack failures
    /// to their member nodes via `topo`.
    pub fn apply(&mut self, topo: &Topology, scenario: &FailureScenario) {
        for node in scenario.failed_nodes(topo) {
            self.fail_node(node);
        }
    }

    /// Marks one node failed.
    ///
    /// # Panics
    ///
    /// Panics on an unknown node.
    pub fn fail_node(&mut self, node: NodeId) {
        assert!(node.index() < self.alive.len(), "unknown {node}");
        self.alive[node.index()] = false;
    }

    /// Marks one node alive again (mid-run recovery).
    ///
    /// # Panics
    ///
    /// Panics on an unknown node.
    pub fn recover_node(&mut self, node: NodeId) {
        assert!(node.index() < self.alive.len(), "unknown {node}");
        self.alive[node.index()] = true;
    }

    /// True if the node has not failed.
    ///
    /// # Panics
    ///
    /// Panics on an unknown node.
    pub fn is_alive(&self, node: NodeId) -> bool {
        assert!(node.index() < self.alive.len(), "unknown {node}");
        self.alive[node.index()]
    }

    /// All live node ids, in index order.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// All failed node ids, in index order.
    pub fn failed_nodes(&self) -> Vec<NodeId> {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| !a)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Number of live nodes.
    pub fn num_alive(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::homogeneous(2, 3, 2, 1)
    }

    #[test]
    fn normal_mode() {
        let s = FailureScenario::none();
        assert!(s.is_normal_mode());
        assert_eq!(s.to_string(), "normal mode");
        let state = ClusterState::from_scenario(&topo(), &s);
        assert_eq!(state.num_alive(), 6);
        assert!(state.failed_nodes().is_empty());
    }

    #[test]
    fn single_node_failure() {
        let t = topo();
        let s = FailureScenario::nodes([NodeId(1)]);
        let state = ClusterState::from_scenario(&t, &s);
        assert!(!state.is_alive(NodeId(1)));
        assert!(state.is_alive(NodeId(0)));
        assert_eq!(state.num_alive(), 5);
        assert_eq!(state.failed_nodes(), vec![NodeId(1)]);
        assert_eq!(s.failed_nodes(&t).len(), 1);
    }

    #[test]
    fn double_node_failure() {
        let t = topo();
        let s = FailureScenario::nodes([NodeId(0), NodeId(4)]);
        let state = ClusterState::from_scenario(&t, &s);
        assert_eq!(state.num_alive(), 4);
        assert_eq!(
            state.alive_nodes(),
            vec![NodeId(1), NodeId(2), NodeId(3), NodeId(5)]
        );
    }

    #[test]
    fn rack_failure_expands_to_members() {
        let t = topo();
        let s = FailureScenario::rack(RackId(1));
        assert!(!s.is_normal_mode());
        let failed = s.failed_nodes(&t);
        assert_eq!(failed.len(), 3);
        assert!(failed.contains(&NodeId(3)));
        assert!(failed.contains(&NodeId(5)));
        let state = ClusterState::from_scenario(&t, &s);
        assert_eq!(state.num_alive(), 3);
    }

    #[test]
    fn apply_node_scenario() {
        let t = topo();
        let mut state = ClusterState::all_alive(&t);
        state.apply(&t, &FailureScenario::nodes([NodeId(2)]));
        assert!(!state.is_alive(NodeId(2)));
    }

    #[test]
    fn apply_expands_rack_scenarios() {
        let t = topo();
        let mut state = ClusterState::all_alive(&t);
        state.apply(&t, &FailureScenario::rack(RackId(0)));
        assert_eq!(state.num_alive(), 3);
        for &node in t.nodes_in_rack(RackId(0)) {
            assert!(!state.is_alive(node));
        }
    }

    #[test]
    fn recover_node_restores_liveness() {
        let t = topo();
        let mut state = ClusterState::from_scenario(&t, &FailureScenario::nodes([NodeId(4)]));
        assert!(!state.is_alive(NodeId(4)));
        state.recover_node(NodeId(4));
        assert!(state.is_alive(NodeId(4)));
        assert_eq!(state, ClusterState::all_alive(&t));
    }

    #[test]
    fn validate_checks_ranges() {
        let t = topo();
        assert_eq!(FailureScenario::none().validate(&t), Ok(()));
        assert_eq!(FailureScenario::nodes([NodeId(5)]).validate(&t), Ok(()));
        assert_eq!(
            FailureScenario::nodes([NodeId(6)]).validate(&t),
            Err(FailureError::UnknownNode {
                node: NodeId(6),
                num_nodes: 6
            })
        );
        assert_eq!(
            FailureScenario::rack(RackId(2)).validate(&t),
            Err(FailureError::UnknownRack {
                rack: RackId(2),
                num_racks: 2
            })
        );
        assert!(FailureScenario::nodes([NodeId(9)])
            .validate(&t)
            .unwrap_err()
            .to_string()
            .contains("node9"));
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn unknown_node_panics() {
        let mut state = ClusterState::all_alive(&topo());
        state.fail_node(NodeId(99));
    }

    #[test]
    fn display_lists_failures() {
        let s = FailureScenario::nodes([NodeId(2)]);
        assert_eq!(s.to_string(), "failed[node2]");
        let s = FailureScenario::rack(RackId(0));
        assert!(s.to_string().contains("rack0"));
    }
}
