//! `cluster` — the cluster model for the degraded-first scheduling
//! reproduction: nodes grouped into racks, per-node map/reduce slots and
//! processing speed, and the failure scenarios of the paper's evaluation
//! (single-node, double-node, and full-rack failures).
//!
//! # Example
//!
//! ```
//! use cluster::{Topology, FailureScenario, ClusterState};
//!
//! // The paper's default simulation cluster: 40 nodes in 4 racks,
//! // 4 map slots and 1 reduce slot per node.
//! let topo = Topology::homogeneous(4, 10, 4, 1);
//! assert_eq!(topo.num_nodes(), 40);
//!
//! let mut state = ClusterState::all_alive(&topo);
//! state.apply(&topo, &FailureScenario::nodes([topo.node(3)]));
//! assert_eq!(state.failed_nodes().len(), 1);
//! ```
//!
//! Mid-run churn — nodes failing and recovering *while* a job runs —
//! is described by a [`FailureTimeline`]; see the [`timeline`] module.

pub mod failure;
pub mod speeds;
pub mod timeline;
pub mod topology;

pub use failure::{ClusterState, FailureError, FailureScenario};
pub use speeds::{NodeSpeeds, SpeedProfile};
pub use timeline::{ChurnError, FailureEventKind, FailureTimeline, TimelineEvent, WeibullChurn};
pub use topology::{NodeId, RackId, Topology};
