//! Heterogeneous service-time profiles: per-node speed multipliers for
//! CPU (task processing) and disk (block serving), sampled once per run
//! on a forked [`SimRng`] stream.
//!
//! The erasure-coded latency-optimization literature (Aggarwal/Lan)
//! models exactly these cluster shapes: a fraction of slow disks, a few
//! persistent stragglers, or hot nodes overloaded by foreground serving
//! traffic. Redundant degraded reads (MDS-Queue) only pay off when some
//! holders are slower than others — a homogeneous cluster makes the
//! extra fetches pure overhead.

use simkit::SimRng;

/// Which nodes are slow, and by how much. `Homogeneous` is the default
/// and samples nothing, so runs without a profile stay byte-identical
/// to builds that predate it.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum SpeedProfile {
    /// Every node serves and computes at full speed.
    #[default]
    Homogeneous,
    /// Each node independently has a slow disk with probability
    /// `fraction`; affected nodes serve blocks at `factor` of full
    /// speed. CPU is unaffected.
    SlowDisk {
        /// Probability a node's disk is slow, in `[0, 1]`.
        fraction: f64,
        /// Disk speed multiplier for affected nodes, in `(0, 1]`.
        factor: f64,
    },
    /// Exactly `count` persistent stragglers: both their CPU and their
    /// disk run at `factor` of full speed.
    Stragglers {
        /// How many straggler nodes to sample.
        count: usize,
        /// Speed multiplier for stragglers, in `(0, 1]`.
        factor: f64,
    },
    /// Exactly `count` hot nodes: overloaded by external serving
    /// traffic, their disks answer block reads at `factor` of full
    /// speed. CPU is unaffected (the contention is on I/O).
    HotNodes {
        /// How many hot nodes to sample.
        count: usize,
        /// Disk speed multiplier for hot nodes, in `(0, 1]`.
        factor: f64,
    },
}

/// Per-node speed multipliers sampled from a [`SpeedProfile`]. A value
/// of 1.0 is full speed; 0.5 doubles the service time.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeSpeeds {
    /// Task-processing multiplier per node (composes with the
    /// topology's static `speed_factor`).
    pub cpu: Vec<f64>,
    /// Block-serving multiplier per node (scales fetch-flow service).
    pub disk: Vec<f64>,
}

impl NodeSpeeds {
    /// All nodes at full speed.
    pub fn homogeneous(num_nodes: usize) -> NodeSpeeds {
        NodeSpeeds {
            cpu: vec![1.0; num_nodes],
            disk: vec![1.0; num_nodes],
        }
    }

    /// True when no node deviates from full speed.
    pub fn is_uniform(&self) -> bool {
        self.cpu.iter().chain(&self.disk).all(|&s| s == 1.0)
    }
}

impl SpeedProfile {
    /// Rejects out-of-range parameters: a zero/negative/non-finite
    /// factor would stall or reverse time, a fraction outside `[0, 1]`
    /// is not a probability, and a zero count is `homogeneous` in
    /// disguise.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        let check_factor = |factor: f64| {
            if !factor.is_finite() || factor <= 0.0 || factor > 1.0 {
                Err(format!("speed factor must be in (0, 1], got {factor}"))
            } else {
                Ok(())
            }
        };
        match *self {
            SpeedProfile::Homogeneous => Ok(()),
            SpeedProfile::SlowDisk { fraction, factor } => {
                if !fraction.is_finite() || !(0.0..=1.0).contains(&fraction) {
                    return Err(format!(
                        "slowdisk fraction must be in [0, 1], got {fraction}"
                    ));
                }
                check_factor(factor)
            }
            SpeedProfile::Stragglers { count, factor }
            | SpeedProfile::HotNodes { count, factor } => {
                if count == 0 {
                    return Err("node count must be at least 1 (use homogeneous)".to_string());
                }
                check_factor(factor)
            }
        }
    }

    /// Samples per-node multipliers for a cluster of `num_nodes`.
    /// Deterministic given the rng state; `Homogeneous` draws nothing.
    /// `Stragglers`/`HotNodes` counts larger than the cluster saturate
    /// at every node being slow.
    pub fn sample(&self, num_nodes: usize, rng: &mut SimRng) -> NodeSpeeds {
        let mut speeds = NodeSpeeds::homogeneous(num_nodes);
        match *self {
            SpeedProfile::Homogeneous => {}
            SpeedProfile::SlowDisk { fraction, factor } => {
                for disk in speeds.disk.iter_mut() {
                    if rng.uniform_f64() < fraction {
                        *disk = factor;
                    }
                }
            }
            SpeedProfile::Stragglers { count, factor } => {
                let nodes: Vec<usize> = (0..num_nodes).collect();
                for node in rng.choose_k(&nodes, count.min(num_nodes)) {
                    speeds.cpu[node] = factor;
                    speeds.disk[node] = factor;
                }
            }
            SpeedProfile::HotNodes { count, factor } => {
                let nodes: Vec<usize> = (0..num_nodes).collect();
                for node in rng.choose_k(&nodes, count.min(num_nodes)) {
                    speeds.disk[node] = factor;
                }
            }
        }
        speeds
    }

    /// The CLI/sweep token; inverse of [`SpeedProfile::parse`].
    pub fn label(&self) -> String {
        match *self {
            SpeedProfile::Homogeneous => "homogeneous".to_string(),
            SpeedProfile::SlowDisk { fraction, factor } => format!("slowdisk:{fraction},{factor}"),
            SpeedProfile::Stragglers { count, factor } => format!("stragglers:{count},{factor}"),
            SpeedProfile::HotNodes { count, factor } => format!("hot:{count},{factor}"),
        }
    }

    /// Parses a [`SpeedProfile::label`] token: `homogeneous`,
    /// `slowdisk:FRACTION,FACTOR`, `stragglers:COUNT,FACTOR`, or
    /// `hot:COUNT,FACTOR`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted forms for unknown tokens,
    /// and the validation error for out-of-range parameters.
    pub fn parse(s: &str) -> Result<SpeedProfile, String> {
        fn split2(args: &str, what: &str) -> Result<(String, String), String> {
            match args.split_once(',') {
                Some((a, b)) => Ok((a.to_string(), b.to_string())),
                None => Err(format!(
                    "{what} expects two comma-separated values, got {args:?}"
                )),
            }
        }
        fn num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
            s.parse().map_err(|_| format!("bad {what} {s:?}"))
        }
        let profile = if s == "homogeneous" || s == "none" {
            SpeedProfile::Homogeneous
        } else if let Some(args) = s.strip_prefix("slowdisk:") {
            let (fraction, factor) = split2(args, "slowdisk")?;
            SpeedProfile::SlowDisk {
                fraction: num(&fraction, "slowdisk fraction")?,
                factor: num(&factor, "slowdisk factor")?,
            }
        } else if let Some(args) = s.strip_prefix("stragglers:") {
            let (count, factor) = split2(args, "stragglers")?;
            SpeedProfile::Stragglers {
                count: num(&count, "straggler count")?,
                factor: num(&factor, "straggler factor")?,
            }
        } else if let Some(args) = s.strip_prefix("hot:") {
            let (count, factor) = split2(args, "hot")?;
            SpeedProfile::HotNodes {
                count: num(&count, "hot-node count")?,
                factor: num(&factor, "hot-node factor")?,
            }
        } else {
            return Err(format!(
                "unknown speed profile {s:?} (expected homogeneous, \
                 slowdisk:FRACTION,FACTOR, stragglers:COUNT,FACTOR, or hot:COUNT,FACTOR)"
            ));
        };
        profile.validate()?;
        Ok(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_samples_nothing() {
        let mut rng = SimRng::seed_from_u64(1);
        let before = rng.next_u64();
        let mut rng = SimRng::seed_from_u64(1);
        let speeds = SpeedProfile::Homogeneous.sample(8, &mut rng);
        assert!(speeds.is_uniform());
        assert_eq!(rng.next_u64(), before, "homogeneous must not draw");
    }

    #[test]
    fn stragglers_slow_cpu_and_disk() {
        let mut rng = SimRng::seed_from_u64(2);
        let profile = SpeedProfile::Stragglers {
            count: 3,
            factor: 0.25,
        };
        let speeds = profile.sample(10, &mut rng);
        let slow: Vec<usize> = (0..10).filter(|&i| speeds.cpu[i] == 0.25).collect();
        assert_eq!(slow.len(), 3);
        for &i in &slow {
            assert_eq!(speeds.disk[i], 0.25);
        }
        assert!(!speeds.is_uniform());
        // Counts saturate at the cluster size.
        let mut rng = SimRng::seed_from_u64(2);
        let all = SpeedProfile::Stragglers {
            count: 99,
            factor: 0.5,
        }
        .sample(4, &mut rng);
        assert!(all.cpu.iter().all(|&s| s == 0.5));
    }

    #[test]
    fn hot_nodes_and_slow_disks_spare_cpu() {
        let mut rng = SimRng::seed_from_u64(3);
        let hot = SpeedProfile::HotNodes {
            count: 2,
            factor: 0.5,
        }
        .sample(8, &mut rng);
        assert!(hot.cpu.iter().all(|&s| s == 1.0));
        assert_eq!(hot.disk.iter().filter(|&&s| s == 0.5).count(), 2);

        let mut rng = SimRng::seed_from_u64(3);
        let slow = SpeedProfile::SlowDisk {
            fraction: 1.0,
            factor: 0.5,
        }
        .sample(8, &mut rng);
        assert!(slow.cpu.iter().all(|&s| s == 1.0));
        assert!(slow.disk.iter().all(|&s| s == 0.5));
    }

    #[test]
    fn sampling_is_deterministic_per_stream() {
        let profile = SpeedProfile::SlowDisk {
            fraction: 0.3,
            factor: 0.5,
        };
        let a = profile.sample(40, &mut SimRng::seed_from_u64(7));
        let b = profile.sample(40, &mut SimRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = profile.sample(40, &mut SimRng::seed_from_u64(8));
        assert_ne!(a, c, "different streams should (usually) differ");
    }

    #[test]
    fn labels_round_trip_and_bad_tokens_are_rejected() {
        for profile in [
            SpeedProfile::Homogeneous,
            SpeedProfile::SlowDisk {
                fraction: 0.25,
                factor: 0.5,
            },
            SpeedProfile::Stragglers {
                count: 2,
                factor: 0.1,
            },
            SpeedProfile::HotNodes {
                count: 4,
                factor: 0.75,
            },
        ] {
            assert_eq!(SpeedProfile::parse(&profile.label()), Ok(profile));
        }
        for bad in [
            "fast",
            "slowdisk:0.5",
            "slowdisk:2.0,0.5",
            "stragglers:0,0.5",
            "stragglers:2,0.0",
            "hot:2,1.5",
            "hot:2,nan",
        ] {
            assert!(
                SpeedProfile::parse(bad).is_err(),
                "{bad} should be rejected"
            );
        }
    }
}
