//! Mid-run failure timelines.
//!
//! The paper's model applies a [`FailureScenario`](crate::FailureScenario)
//! at t=0 — the cluster is already in failure mode when the job starts.
//! Real clusters are not so tidy: per Ford et al. (OSDI'10), which the
//! paper cites as motivation, more than 90% of failures are *transient*
//! — nodes drop out mid-run and come back. A [`FailureTimeline`] is a
//! schedule of such events: node `n` fails at time `t`, recovers at
//! time `t'`. The MapReduce engine delivers each entry through its
//! event calendar and reacts live (killing tasks, re-queueing work,
//! pausing the node's heartbeats).
//!
//! Timelines compose with a t=0 scenario: the scenario describes the
//! state the run *starts* in, the timeline describes what *changes*
//! while it runs. Entries at `t == 0` are folded into the initial
//! cluster state, so a timeline that only fails nodes at time zero is
//! exactly equivalent to the corresponding scenario.
//!
//! Same-instant entries apply in the order they were added to the
//! timeline (a fail followed by a recover of the same node at the same
//! instant leaves the node alive).

use crate::failure::FailureError;
use crate::topology::{NodeId, Topology};
use simkit::time::SimTime;
use simkit::SimRng;
use std::fmt;

/// Parameters of a seeded Weibull-lifetime churn process (see
/// [`FailureTimeline::weibull`]). Lifetimes (time between a recovery
/// and the next failure) and repair times (failure → recovery) are
/// drawn per node from independent Weibull distributions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeibullChurn {
    /// Shape of the node-lifetime distribution (`< 1` infant
    /// mortality, `> 1` wear-out, `1` exponential).
    pub lifetime_shape: f64,
    /// Scale of the node-lifetime distribution, seconds.
    pub lifetime_scale_secs: f64,
    /// Shape of the repair-time distribution.
    pub repair_shape: f64,
    /// Scale of the repair-time distribution, seconds.
    pub repair_scale_secs: f64,
    /// Events past this simulated time are not generated.
    pub horizon_secs: f64,
}

impl WeibullChurn {
    /// A mild default: mean lifetime well beyond a typical run so only
    /// a few nodes fail inside the horizon, with quick repairs.
    pub fn default_for_horizon(horizon_secs: f64) -> WeibullChurn {
        WeibullChurn {
            lifetime_shape: 1.2,
            lifetime_scale_secs: horizon_secs * 8.0,
            repair_shape: 1.0,
            repair_scale_secs: horizon_secs / 8.0,
            horizon_secs,
        }
    }
}

/// Errors from churn generation.
#[derive(Clone, Debug, PartialEq)]
pub enum ChurnError {
    /// A shape/scale/horizon parameter is not positive and finite.
    BadParameter {
        /// The offending field name.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The parameters would generate an absurd number of events
    /// (scale far smaller than the horizon).
    TooManyEvents {
        /// The generation cap that was hit.
        cap: usize,
    },
}

impl fmt::Display for ChurnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChurnError::BadParameter { field, value } => {
                write!(
                    f,
                    "churn parameter {field} = {value} must be positive and finite"
                )
            }
            ChurnError::TooManyEvents { cap } => {
                write!(f, "churn parameters generate more than {cap} events; raise the scales or shrink the horizon")
            }
        }
    }
}

impl std::error::Error for ChurnError {}

/// What happens to a node at a timeline instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureEventKind {
    /// The node fails: running tasks are lost, its blocks become
    /// unavailable, and it stops heartbeating.
    Fail,
    /// The node recovers with its data intact (the background repair
    /// process has re-protected its blocks by the time it rejoins).
    Recover,
}

/// One scheduled failure or recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimelineEvent {
    /// When the event fires.
    pub at: SimTime,
    /// The node concerned.
    pub node: NodeId,
    /// Failure or recovery.
    pub kind: FailureEventKind,
}

/// A schedule of mid-run node failures and recoveries.
///
/// # Example
///
/// ```
/// use cluster::{FailureTimeline, NodeId, Topology};
/// use simkit::time::SimTime;
///
/// let topo = Topology::homogeneous(2, 4, 4, 1);
/// let timeline = FailureTimeline::new()
///     .fail_node_at(NodeId(3), SimTime::from_secs_f64(120.0))
///     .recover_node_at(NodeId(3), SimTime::from_secs_f64(300.0));
/// assert_eq!(timeline.events().len(), 2);
/// assert!(timeline.validate(&topo).is_ok());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct FailureTimeline {
    events: Vec<TimelineEvent>,
}

impl FailureTimeline {
    /// An empty timeline (no mid-run churn).
    pub fn new() -> FailureTimeline {
        FailureTimeline::default()
    }

    /// Schedules `node` to fail at `at`.
    pub fn fail_node_at(mut self, node: NodeId, at: SimTime) -> FailureTimeline {
        self.events.push(TimelineEvent {
            at,
            node,
            kind: FailureEventKind::Fail,
        });
        self
    }

    /// Schedules `node` to recover at `at`.
    pub fn recover_node_at(mut self, node: NodeId, at: SimTime) -> FailureTimeline {
        self.events.push(TimelineEvent {
            at,
            node,
            kind: FailureEventKind::Recover,
        });
        self
    }

    /// Generates a seeded Weibull-lifetime churn timeline over `topo`.
    ///
    /// Each node gets an independent [`SimRng`] stream forked by its
    /// node index, so a node's fail/recover schedule depends only on
    /// `(seed, node)` — not on how many other nodes the topology has
    /// drawn before it. Within a node the process alternates: a
    /// lifetime draw schedules the next failure, a repair draw the
    /// recovery after it, until the horizon. Events are merged in
    /// ascending time order (ties in ascending node order), so the
    /// same arguments reproduce the timeline bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`ChurnError::BadParameter`] for non-positive or
    /// non-finite parameters, and [`ChurnError::TooManyEvents`] when
    /// the scales are so small relative to the horizon that the
    /// schedule explodes.
    pub fn weibull(
        topo: &Topology,
        churn: &WeibullChurn,
        seed: u64,
    ) -> Result<FailureTimeline, ChurnError> {
        let check = |field: &'static str, value: f64| {
            if value > 0.0 && value.is_finite() {
                Ok(())
            } else {
                Err(ChurnError::BadParameter { field, value })
            }
        };
        check("lifetime_shape", churn.lifetime_shape)?;
        check("lifetime_scale_secs", churn.lifetime_scale_secs)?;
        check("repair_shape", churn.repair_shape)?;
        check("repair_scale_secs", churn.repair_scale_secs)?;
        check("horizon_secs", churn.horizon_secs)?;

        const MAX_EVENTS: usize = 100_000;
        let mut root = SimRng::seed_from_u64(seed ^ 0xc402_c402_c402_c402);
        let mut events = Vec::new();
        for node in topo.node_ids() {
            // detlint::allow(R1, reason = "per-node lifetime streams: the label is the node index by construction, one stream per node")
            let mut rng = root.fork(node.index() as u64);
            let mut t = 0.0f64;
            loop {
                t += rng.weibull(churn.lifetime_shape, churn.lifetime_scale_secs);
                if t >= churn.horizon_secs {
                    break;
                }
                events.push(TimelineEvent {
                    at: SimTime::from_secs_f64(t),
                    node,
                    kind: FailureEventKind::Fail,
                });
                t += rng.weibull(churn.repair_shape, churn.repair_scale_secs);
                if t >= churn.horizon_secs {
                    break;
                }
                events.push(TimelineEvent {
                    at: SimTime::from_secs_f64(t),
                    node,
                    kind: FailureEventKind::Recover,
                });
                if events.len() > MAX_EVENTS {
                    return Err(ChurnError::TooManyEvents { cap: MAX_EVENTS });
                }
            }
        }
        // Stable by-time sort: same-instant events keep per-node
        // generation order (fail always precedes its recover), and
        // cross-node ties stay in ascending node order.
        events.sort_by_key(|e| e.at);
        Ok(FailureTimeline { events })
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// True if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks every referenced node id against `topo`.
    pub fn validate(&self, topo: &Topology) -> Result<(), FailureError> {
        for ev in &self.events {
            if ev.node.index() >= topo.num_nodes() {
                return Err(FailureError::UnknownNode {
                    node: ev.node,
                    num_nodes: topo.num_nodes(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for FailureTimeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            return write!(f, "no churn");
        }
        let parts: Vec<String> = self
            .events
            .iter()
            .map(|ev| {
                let verb = match ev.kind {
                    FailureEventKind::Fail => "fail",
                    FailureEventKind::Recover => "recover",
                };
                format!("{verb} {}@{:.0}s", ev.node, ev.at.as_secs_f64())
            })
            .collect();
        write!(f, "{}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_timeline() {
        let t = FailureTimeline::new();
        assert!(t.is_empty());
        assert_eq!(t.events(), &[]);
        assert_eq!(t.to_string(), "no churn");
    }

    #[test]
    fn builder_keeps_insertion_order() {
        let t = FailureTimeline::new()
            .recover_node_at(NodeId(1), SimTime::from_secs_f64(50.0))
            .fail_node_at(NodeId(1), SimTime::from_secs_f64(50.0));
        assert_eq!(t.events()[0].kind, FailureEventKind::Recover);
        assert_eq!(t.events()[1].kind, FailureEventKind::Fail);
        assert!(t.to_string().starts_with("recover node1@50s"));
    }

    #[test]
    fn weibull_replays_bit_identically() {
        let topo = Topology::homogeneous(4, 10, 4, 1);
        let churn = WeibullChurn::default_for_horizon(600.0);
        let a = FailureTimeline::weibull(&topo, &churn, 7).unwrap();
        let b = FailureTimeline::weibull(&topo, &churn, 7).unwrap();
        assert_eq!(a, b);
        assert!(a.validate(&topo).is_ok());
        let c = FailureTimeline::weibull(&topo, &churn, 8).unwrap();
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn weibull_events_are_time_ordered_and_alternating_per_node() {
        let topo = Topology::homogeneous(2, 8, 2, 1);
        let churn = WeibullChurn {
            lifetime_shape: 1.0,
            lifetime_scale_secs: 200.0,
            repair_shape: 1.0,
            repair_scale_secs: 50.0,
            horizon_secs: 1_000.0,
        };
        let t = FailureTimeline::weibull(&topo, &churn, 3).unwrap();
        assert!(!t.is_empty(), "these scales should churn within 1000 s");
        assert!(
            t.events().windows(2).all(|w| w[0].at <= w[1].at),
            "not time-sorted"
        );
        for node in topo.node_ids() {
            let mut expect = FailureEventKind::Fail;
            for ev in t.events().iter().filter(|e| e.node == node) {
                assert_eq!(
                    ev.kind, expect,
                    "node {node} breaks fail/recover alternation"
                );
                assert!(ev.at.as_secs_f64() < churn.horizon_secs);
                expect = match expect {
                    FailureEventKind::Fail => FailureEventKind::Recover,
                    FailureEventKind::Recover => FailureEventKind::Fail,
                };
            }
        }
    }

    #[test]
    fn weibull_rejects_bad_parameters() {
        let topo = Topology::homogeneous(1, 2, 1, 1);
        let mut churn = WeibullChurn::default_for_horizon(100.0);
        churn.lifetime_shape = -1.0;
        assert!(matches!(
            FailureTimeline::weibull(&topo, &churn, 1),
            Err(ChurnError::BadParameter {
                field: "lifetime_shape",
                ..
            })
        ));
        let mut churn = WeibullChurn::default_for_horizon(100.0);
        churn.horizon_secs = f64::INFINITY;
        assert!(FailureTimeline::weibull(&topo, &churn, 1).is_err());
    }

    #[test]
    fn weibull_caps_event_explosion() {
        let topo = Topology::homogeneous(10, 100, 1, 1);
        let churn = WeibullChurn {
            lifetime_shape: 1.0,
            lifetime_scale_secs: 0.001,
            repair_shape: 1.0,
            repair_scale_secs: 0.001,
            horizon_secs: 10_000.0,
        };
        assert!(matches!(
            FailureTimeline::weibull(&topo, &churn, 1),
            Err(ChurnError::TooManyEvents { .. })
        ));
        // Error type renders.
        for e in [
            ChurnError::BadParameter {
                field: "x",
                value: -1.0,
            },
            ChurnError::TooManyEvents { cap: 10 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn validate_checks_node_range() {
        let topo = Topology::homogeneous(2, 3, 2, 1);
        let ok = FailureTimeline::new().fail_node_at(NodeId(5), SimTime::ZERO);
        assert_eq!(ok.validate(&topo), Ok(()));
        let bad = FailureTimeline::new().recover_node_at(NodeId(6), SimTime::ZERO);
        assert_eq!(
            bad.validate(&topo),
            Err(FailureError::UnknownNode {
                node: NodeId(6),
                num_nodes: 6
            })
        );
    }
}
