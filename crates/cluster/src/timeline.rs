//! Mid-run failure timelines.
//!
//! The paper's model applies a [`FailureScenario`](crate::FailureScenario)
//! at t=0 — the cluster is already in failure mode when the job starts.
//! Real clusters are not so tidy: per Ford et al. (OSDI'10), which the
//! paper cites as motivation, more than 90% of failures are *transient*
//! — nodes drop out mid-run and come back. A [`FailureTimeline`] is a
//! schedule of such events: node `n` fails at time `t`, recovers at
//! time `t'`. The MapReduce engine delivers each entry through its
//! event calendar and reacts live (killing tasks, re-queueing work,
//! pausing the node's heartbeats).
//!
//! Timelines compose with a t=0 scenario: the scenario describes the
//! state the run *starts* in, the timeline describes what *changes*
//! while it runs. Entries at `t == 0` are folded into the initial
//! cluster state, so a timeline that only fails nodes at time zero is
//! exactly equivalent to the corresponding scenario.
//!
//! Same-instant entries apply in the order they were added to the
//! timeline (a fail followed by a recover of the same node at the same
//! instant leaves the node alive).

use crate::failure::FailureError;
use crate::topology::{NodeId, Topology};
use simkit::time::SimTime;
use std::fmt;

/// What happens to a node at a timeline instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureEventKind {
    /// The node fails: running tasks are lost, its blocks become
    /// unavailable, and it stops heartbeating.
    Fail,
    /// The node recovers with its data intact (the background repair
    /// process has re-protected its blocks by the time it rejoins).
    Recover,
}

/// One scheduled failure or recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimelineEvent {
    /// When the event fires.
    pub at: SimTime,
    /// The node concerned.
    pub node: NodeId,
    /// Failure or recovery.
    pub kind: FailureEventKind,
}

/// A schedule of mid-run node failures and recoveries.
///
/// # Example
///
/// ```
/// use cluster::{FailureTimeline, NodeId, Topology};
/// use simkit::time::SimTime;
///
/// let topo = Topology::homogeneous(2, 4, 4, 1);
/// let timeline = FailureTimeline::new()
///     .fail_node_at(NodeId(3), SimTime::from_secs_f64(120.0))
///     .recover_node_at(NodeId(3), SimTime::from_secs_f64(300.0));
/// assert_eq!(timeline.events().len(), 2);
/// assert!(timeline.validate(&topo).is_ok());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct FailureTimeline {
    events: Vec<TimelineEvent>,
}

impl FailureTimeline {
    /// An empty timeline (no mid-run churn).
    pub fn new() -> FailureTimeline {
        FailureTimeline::default()
    }

    /// Schedules `node` to fail at `at`.
    pub fn fail_node_at(mut self, node: NodeId, at: SimTime) -> FailureTimeline {
        self.events.push(TimelineEvent {
            at,
            node,
            kind: FailureEventKind::Fail,
        });
        self
    }

    /// Schedules `node` to recover at `at`.
    pub fn recover_node_at(mut self, node: NodeId, at: SimTime) -> FailureTimeline {
        self.events.push(TimelineEvent {
            at,
            node,
            kind: FailureEventKind::Recover,
        });
        self
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// True if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks every referenced node id against `topo`.
    pub fn validate(&self, topo: &Topology) -> Result<(), FailureError> {
        for ev in &self.events {
            if ev.node.index() >= topo.num_nodes() {
                return Err(FailureError::UnknownNode {
                    node: ev.node,
                    num_nodes: topo.num_nodes(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for FailureTimeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            return write!(f, "no churn");
        }
        let parts: Vec<String> = self
            .events
            .iter()
            .map(|ev| {
                let verb = match ev.kind {
                    FailureEventKind::Fail => "fail",
                    FailureEventKind::Recover => "recover",
                };
                format!("{verb} {}@{:.0}s", ev.node, ev.at.as_secs_f64())
            })
            .collect();
        write!(f, "{}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_timeline() {
        let t = FailureTimeline::new();
        assert!(t.is_empty());
        assert_eq!(t.events(), &[]);
        assert_eq!(t.to_string(), "no churn");
    }

    #[test]
    fn builder_keeps_insertion_order() {
        let t = FailureTimeline::new()
            .recover_node_at(NodeId(1), SimTime::from_secs_f64(50.0))
            .fail_node_at(NodeId(1), SimTime::from_secs_f64(50.0));
        assert_eq!(t.events()[0].kind, FailureEventKind::Recover);
        assert_eq!(t.events()[1].kind, FailureEventKind::Fail);
        assert!(t.to_string().starts_with("recover node1@50s"));
    }

    #[test]
    fn validate_checks_node_range() {
        let topo = Topology::homogeneous(2, 3, 2, 1);
        let ok = FailureTimeline::new().fail_node_at(NodeId(5), SimTime::ZERO);
        assert_eq!(ok.validate(&topo), Ok(()));
        let bad = FailureTimeline::new().recover_node_at(NodeId(6), SimTime::ZERO);
        assert_eq!(
            bad.validate(&topo),
            Err(FailureError::UnknownNode {
                node: NodeId(6),
                num_nodes: 6
            })
        );
    }
}
