//! Cluster topology: racks of nodes with per-node slot counts and
//! processing speed factors.
//!
//! The paper assumes the simplified two-level network of its Figure 1:
//! nodes connect to a top-of-rack switch, racks connect through a core
//! switch. Rack membership is the only topology information the
//! schedulers need; link capacities live in the `netsim` crate.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a node (server). Dense indices `0..num_nodes`.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

/// Identifies a rack. Dense indices `0..num_racks`.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RackId(pub u32);

impl NodeId {
    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RackId {
    /// The dense index of this rack.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rack{}", self.0)
    }
}

/// Static per-node configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// The rack this node belongs to.
    pub rack: RackId,
    /// Concurrent map tasks this node can run (the paper's `L`).
    pub map_slots: u32,
    /// Concurrent reduce tasks this node can run.
    pub reduce_slots: u32,
    /// Relative processing speed: task durations are divided by this.
    /// 1.0 is a regular node; the paper's heterogeneous cluster uses 0.5
    /// for the slow half and its extreme case 0.1 for the 5 "bad" nodes.
    pub speed_factor: f64,
}

/// An immutable cluster topology: nodes grouped into racks.
///
/// Construct with [`Topology::homogeneous`] for equal racks (the
/// analysis/simulation default) or [`Topology::with_rack_sizes`] for
/// uneven racks (the motivating example's 3+2 cluster, the testbed's
/// 3×4 layout).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<NodeSpec>,
    rack_members: Vec<Vec<NodeId>>,
}

impl Topology {
    /// Builds a cluster of `num_racks` racks with `nodes_per_rack` nodes
    /// each, every node with the given slot counts and speed 1.0.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    pub fn homogeneous(
        num_racks: usize,
        nodes_per_rack: usize,
        map_slots: u32,
        reduce_slots: u32,
    ) -> Topology {
        Topology::with_rack_sizes(&vec![nodes_per_rack; num_racks], map_slots, reduce_slots)
    }

    /// Builds a cluster with explicitly sized racks.
    ///
    /// # Panics
    ///
    /// Panics if there are no racks, any rack is empty, or `map_slots`
    /// is zero.
    pub fn with_rack_sizes(rack_sizes: &[usize], map_slots: u32, reduce_slots: u32) -> Topology {
        assert!(!rack_sizes.is_empty(), "topology needs at least one rack");
        assert!(rack_sizes.iter().all(|&s| s > 0), "empty rack");
        assert!(map_slots > 0, "nodes need at least one map slot");
        let mut nodes = Vec::new();
        let mut rack_members = Vec::new();
        for (r, &size) in rack_sizes.iter().enumerate() {
            let mut members = Vec::with_capacity(size);
            for _ in 0..size {
                let id = NodeId(nodes.len() as u32);
                nodes.push(NodeSpec {
                    rack: RackId(r as u32),
                    map_slots,
                    reduce_slots,
                    speed_factor: 1.0,
                });
                members.push(id);
            }
            rack_members.push(members);
        }
        Topology {
            nodes,
            rack_members,
        }
    }

    /// Sets one node's relative processing speed (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if the node is unknown or the factor is not positive.
    pub fn with_speed_factor(mut self, node: NodeId, factor: f64) -> Topology {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "bad speed factor {factor}"
        );
        self.nodes[node.index()].speed_factor = factor;
        self
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of racks.
    pub fn num_racks(&self) -> usize {
        self.rack_members.len()
    }

    /// The node id at dense index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_nodes()`.
    pub fn node(&self, i: usize) -> NodeId {
        assert!(i < self.nodes.len(), "node index {i} out of range");
        NodeId(i as u32)
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates over all rack ids.
    pub fn rack_ids(&self) -> impl Iterator<Item = RackId> + '_ {
        (0..self.rack_members.len() as u32).map(RackId)
    }

    /// The static spec of a node.
    ///
    /// # Panics
    ///
    /// Panics on an unknown node.
    pub fn spec(&self, node: NodeId) -> &NodeSpec {
        &self.nodes[node.index()]
    }

    /// The rack a node belongs to.
    ///
    /// # Panics
    ///
    /// Panics on an unknown node.
    pub fn rack_of(&self, node: NodeId) -> RackId {
        self.nodes[node.index()].rack
    }

    /// The nodes in a rack.
    ///
    /// # Panics
    ///
    /// Panics on an unknown rack.
    pub fn nodes_in_rack(&self, rack: RackId) -> &[NodeId] {
        &self.rack_members[rack.index()]
    }

    /// True if the two nodes share a rack.
    pub fn same_rack(&self, a: NodeId, b: NodeId) -> bool {
        self.rack_of(a) == self.rack_of(b)
    }

    /// Total map slots across the cluster.
    pub fn total_map_slots(&self) -> u32 {
        self.nodes.iter().map(|n| n.map_slots).sum()
    }

    /// Total reduce slots across the cluster.
    pub fn total_reduce_slots(&self) -> u32 {
        self.nodes.iter().map(|n| n.reduce_slots).sum()
    }

    /// The sizes of all racks, in rack order.
    pub fn rack_sizes(&self) -> Vec<usize> {
        self.rack_members.iter().map(|m| m.len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_layout() {
        let t = Topology::homogeneous(4, 10, 4, 1);
        assert_eq!(t.num_nodes(), 40);
        assert_eq!(t.num_racks(), 4);
        assert_eq!(t.total_map_slots(), 160);
        assert_eq!(t.total_reduce_slots(), 40);
        assert_eq!(t.rack_of(NodeId(0)), RackId(0));
        assert_eq!(t.rack_of(NodeId(39)), RackId(3));
        assert_eq!(t.nodes_in_rack(RackId(1)).len(), 10);
        assert!(t.same_rack(NodeId(10), NodeId(19)));
        assert!(!t.same_rack(NodeId(9), NodeId(10)));
    }

    #[test]
    fn motivating_example_layout() {
        // Figure 2: rack 0 holds nodes {1,2,3}, rack 1 holds {4,5}
        // (zero-indexed here).
        let t = Topology::with_rack_sizes(&[3, 2], 2, 1);
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.rack_sizes(), vec![3, 2]);
        assert_eq!(t.rack_of(NodeId(2)), RackId(0));
        assert_eq!(t.rack_of(NodeId(3)), RackId(1));
    }

    #[test]
    fn speed_factors() {
        let t = Topology::homogeneous(1, 4, 2, 1)
            .with_speed_factor(NodeId(2), 0.5)
            .with_speed_factor(NodeId(3), 0.1);
        assert_eq!(t.spec(NodeId(0)).speed_factor, 1.0);
        assert_eq!(t.spec(NodeId(2)).speed_factor, 0.5);
        assert_eq!(t.spec(NodeId(3)).speed_factor, 0.1);
    }

    #[test]
    fn iterators_cover_everything() {
        let t = Topology::homogeneous(3, 2, 1, 1);
        assert_eq!(t.node_ids().count(), 6);
        assert_eq!(t.rack_ids().count(), 3);
        let all: Vec<NodeId> = t
            .rack_ids()
            .flat_map(|r| t.nodes_in_rack(r).to_vec())
            .collect();
        assert_eq!(all.len(), 6);
    }

    #[test]
    #[should_panic(expected = "empty rack")]
    fn rejects_empty_rack() {
        let _ = Topology::with_rack_sizes(&[3, 0], 1, 1);
    }

    #[test]
    #[should_panic(expected = "at least one map slot")]
    fn rejects_zero_map_slots() {
        let _ = Topology::homogeneous(1, 1, 0, 1);
    }

    #[test]
    #[should_panic(expected = "bad speed factor")]
    fn rejects_nonpositive_speed() {
        let _ = Topology::homogeneous(1, 1, 1, 1).with_speed_factor(NodeId(0), 0.0);
    }

    #[test]
    fn display_and_serde() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(RackId(1).to_string(), "rack1");
        let t = Topology::homogeneous(2, 2, 4, 1);
        // Round-trip through serde's data model (via Debug equality).
        let t2 = t.clone();
        assert_eq!(t, t2);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn rack_membership_is_a_partition(
            sizes in proptest::collection::vec(1usize..6, 1..6),
            slots in 1u32..4,
        ) {
            let topo = Topology::with_rack_sizes(&sizes, slots, 1);
            prop_assert_eq!(topo.num_nodes(), sizes.iter().sum::<usize>());
            prop_assert_eq!(topo.num_racks(), sizes.len());
            // Every node is in exactly the rack that lists it.
            for node in topo.node_ids() {
                let rack = topo.rack_of(node);
                prop_assert!(topo.nodes_in_rack(rack).contains(&node));
                let appearances: usize = topo
                    .rack_ids()
                    .map(|r| topo.nodes_in_rack(r).iter().filter(|&&m| m == node).count())
                    .sum();
                prop_assert_eq!(appearances, 1);
            }
            prop_assert_eq!(
                topo.total_map_slots(),
                (topo.num_nodes() as u32) * slots
            );
            prop_assert_eq!(topo.rack_sizes(), sizes);
        }

        #[test]
        fn same_rack_is_an_equivalence(sizes in proptest::collection::vec(1usize..5, 1..5)) {
            let topo = Topology::with_rack_sizes(&sizes, 1, 1);
            let nodes: Vec<NodeId> = topo.node_ids().collect();
            for &a in &nodes {
                prop_assert!(topo.same_rack(a, a));
                for &b in &nodes {
                    prop_assert_eq!(topo.same_rack(a, b), topo.same_rack(b, a));
                }
            }
        }
    }
}
