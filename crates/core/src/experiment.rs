//! The experiment harness: one description, many runs.
//!
//! An [`Experiment`] captures everything the paper varies — topology,
//! code, block count, placement, failure pattern, engine tunables and
//! the job mix. [`Experiment::run`] executes it under a chosen
//! [`Policy`] and seed; [`Experiment::normalized_runtime`] additionally
//! runs the same seed in normal mode and reports the ratio, which is the
//! y-axis of Figures 5 and 7.

use cluster::{ClusterState, FailureScenario, FailureTimeline, NodeId, RackId, Topology};
use ecstore::placement::{RackAwarePlacement, RoundRobinPlacement};
use erasure::CodeParams;
use mapreduce::engine::{BuildError, Engine, EngineConfig, RunError};
use mapreduce::job::JobSpec;
use mapreduce::sched::MapScheduler;
use mapreduce::RunResult;
use obs::aggregate::AggregatorConfig;
use obs::chrome::ChromeConfig;
use obs::sink::EventSink;
use scheduler::{DegradedFirst, DelayScheduling, LocalityFirst};
use simkit::time::SimDuration;
use simkit::SimRng;

/// Which scheduling policy to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Hadoop's default (Algorithm 1).
    LocalityFirst,
    /// Basic degraded-first (Algorithm 2).
    BasicDegradedFirst,
    /// Enhanced degraded-first (Algorithm 3).
    EnhancedDegradedFirst,
    /// Degraded-first with explicit heuristic toggles (ablations).
    DegradedFirstWith {
        /// Enable `ASSIGNTOSLAVE` locality preservation.
        locality_preservation: bool,
        /// Enable `ASSIGNTORACK` rack awareness.
        rack_awareness: bool,
    },
    /// Locality-first with delay scheduling (Zaharia et al. \[35\]): wait
    /// up to `max_wait` per job for a node-local slot before stealing.
    DelayScheduling {
        /// Maximum per-job locality wait.
        max_wait: simkit::time::SimDuration,
    },
}

impl Policy {
    /// Instantiates the scheduler.
    pub fn scheduler(&self) -> Box<dyn MapScheduler> {
        match *self {
            Policy::LocalityFirst => Box::new(LocalityFirst::new()),
            Policy::BasicDegradedFirst => Box::new(DegradedFirst::basic()),
            Policy::EnhancedDegradedFirst => Box::new(DegradedFirst::enhanced()),
            Policy::DegradedFirstWith {
                locality_preservation,
                rack_awareness,
            } => Box::new(DegradedFirst::with_heuristics(
                locality_preservation,
                rack_awareness,
            )),
            Policy::DelayScheduling { max_wait } => Box::new(DelayScheduling::new(max_wait)),
        }
    }

    /// The policy's short name ("LF", "BDF", "EDF", ...).
    pub fn name(&self) -> &'static str {
        match *self {
            Policy::LocalityFirst => "LF",
            Policy::BasicDegradedFirst => "BDF",
            Policy::EnhancedDegradedFirst => "EDF",
            Policy::DegradedFirstWith {
                locality_preservation: true,
                rack_awareness: false,
            } => "BDF+locality",
            Policy::DegradedFirstWith {
                locality_preservation: false,
                rack_awareness: true,
            } => "BDF+rack",
            Policy::DegradedFirstWith {
                locality_preservation: true,
                rack_awareness: true,
            } => "EDF",
            Policy::DegradedFirstWith {
                locality_preservation: false,
                rack_awareness: false,
            } => "BDF",
            Policy::DelayScheduling { .. } => "LF+delay",
        }
    }
}

/// A failure pattern, resolved per seed (the paper randomly picks the
/// victim in each of its 30 configurations).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureSpec {
    /// Normal mode.
    None,
    /// One uniformly random node.
    RandomSingleNode,
    /// Two distinct uniformly random nodes.
    RandomDoubleNode,
    /// One uniformly random rack.
    RandomRack,
    /// A uniformly random node drawn from the given candidates (the
    /// extreme case fails "one of the normal nodes").
    RandomNodeAmong(Vec<NodeId>),
    /// Explicit nodes.
    Nodes(Vec<NodeId>),
    /// An explicit rack.
    Rack(RackId),
}

impl FailureSpec {
    /// Resolves the spec into a concrete scenario for one run.
    pub fn resolve(&self, topo: &Topology, rng: &mut SimRng) -> FailureScenario {
        match self {
            FailureSpec::None => FailureScenario::none(),
            FailureSpec::RandomSingleNode => {
                FailureScenario::nodes([topo.node(rng.below(topo.num_nodes()))])
            }
            FailureSpec::RandomDoubleNode => {
                let all: Vec<NodeId> = topo.node_ids().collect();
                FailureScenario::nodes(rng.choose_k(&all, 2))
            }
            FailureSpec::RandomRack => {
                FailureScenario::rack(RackId(rng.below(topo.num_racks()) as u32))
            }
            FailureSpec::RandomNodeAmong(candidates) => {
                assert!(!candidates.is_empty(), "no failure candidates");
                FailureScenario::nodes([candidates[rng.below(candidates.len())]])
            }
            FailureSpec::Nodes(nodes) => FailureScenario::nodes(nodes.iter().copied()),
            FailureSpec::Rack(rack) => FailureScenario::rack(*rack),
        }
    }

    /// True if this spec is normal mode.
    pub fn is_none(&self) -> bool {
        matches!(self, FailureSpec::None)
    }
}

/// Which placement policy an experiment uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PlacementKind {
    /// Randomized placement under the Section III constraints
    /// (simulation experiments).
    RackAware,
    /// Deterministic rotation (testbed experiments).
    RoundRobin,
}

/// Errors from running an experiment.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentError {
    /// Engine construction failed.
    Build(BuildError),
    /// The simulation did not complete.
    Run(RunError),
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Build(e) => write!(f, "build: {e}"),
            ExperimentError::Run(e) => write!(f, "run: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

/// A complete experiment description. Fields are public on purpose: the
/// bench harness tweaks one dimension at a time, exactly like the
/// paper's sweeps.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Cluster shape, slots and speed factors.
    pub topo: Topology,
    /// `(n, k)` code.
    pub code: CodeParams,
    /// Native blocks `F`.
    pub num_blocks: usize,
    /// Placement policy.
    pub placement: PlacementKind,
    /// Failure pattern, resolved per seed.
    pub failure: FailureSpec,
    /// Mid-run churn applied on top of the t=0 failure (empty = the
    /// paper's static model). Excluded from the normal-mode baseline.
    pub timeline: FailureTimeline,
    /// Engine tunables (block size, bandwidth, heartbeat, ...).
    pub config: EngineConfig,
    /// FIFO job mix.
    pub jobs: Vec<JobSpec>,
}

impl Experiment {
    fn build_engine(
        &self,
        failure: FailureScenario,
        timeline: FailureTimeline,
        seed: u64,
    ) -> Result<Engine, ExperimentError> {
        let builder = Engine::builder(self.topo.clone())
            .code(self.code, self.num_blocks)
            .failure(failure)
            .timeline(timeline)
            .config(self.config)
            .seed(seed)
            .jobs(self.jobs.iter().cloned());
        let engine = match self.placement {
            PlacementKind::RackAware => builder.placement(&RackAwarePlacement).build(),
            PlacementKind::RoundRobin => builder.placement(&RoundRobinPlacement).build(),
        };
        engine.map_err(ExperimentError::Build)
    }

    /// Resolves this experiment's failure scenario for a given seed (the
    /// same scenario every policy sees for that seed).
    pub fn failure_for_seed(&self, seed: u64) -> FailureScenario {
        let mut rng = SimRng::seed_from_u64(seed ^ 0xfa11_fa11_fa11_fa11);
        self.failure.resolve(&self.topo, &mut rng)
    }

    /// Runs the experiment in failure mode under `policy`.
    ///
    /// # Errors
    ///
    /// Propagates engine build/run failures. A seed whose random
    /// scenario destroys a stripe yields [`BuildError::DataLoss`]; use
    /// [`Experiment::normalized_runtime`]'s retry or pick another seed.
    pub fn run(&self, policy: Policy, seed: u64) -> Result<RunResult, ExperimentError> {
        let failure = self.failure_for_seed(seed);
        self.build_engine(failure, self.timeline.clone(), seed)?
            .run(policy.scheduler())
            .map_err(ExperimentError::Run)
    }

    /// Runs the same seed in normal mode (no failure, no churn) — the
    /// normalization baseline. Policy is irrelevant in normal mode
    /// (degraded-first degenerates to locality-first), so LF is used.
    ///
    /// # Errors
    ///
    /// Propagates engine build/run failures.
    pub fn run_normal_mode(&self, seed: u64) -> Result<RunResult, ExperimentError> {
        self.build_engine(FailureScenario::none(), FailureTimeline::new(), seed)?
            .run(Policy::LocalityFirst.scheduler())
            .map_err(ExperimentError::Run)
    }

    /// The normalized runtime of the **first** job: failure-mode runtime
    /// under `policy` divided by normal-mode runtime, same seed.
    ///
    /// # Errors
    ///
    /// Propagates engine build/run failures.
    pub fn normalized_runtime(&self, policy: Policy, seed: u64) -> Result<f64, ExperimentError> {
        Ok(self.normalized_runtimes(policy, seed)?[0])
    }

    /// Per-job normalized runtimes (Figure 7(f) plots these for each of
    /// its ten jobs).
    ///
    /// # Errors
    ///
    /// Propagates engine build/run failures.
    pub fn normalized_runtimes(
        &self,
        policy: Policy,
        seed: u64,
    ) -> Result<Vec<f64>, ExperimentError> {
        let failed = self.run(policy, seed)?;
        let normal = self.run_normal_mode(seed)?;
        Ok(failed
            .jobs
            .iter()
            .zip(&normal.jobs)
            .map(|(f, n)| f.runtime().as_secs_f64() / n.runtime().as_secs_f64())
            .collect())
    }

    /// The cluster state a seed's failure implies (for inspecting lost
    /// blocks etc.).
    pub fn cluster_state_for_seed(&self, seed: u64) -> ClusterState {
        ClusterState::from_scenario(&self.topo, &self.failure_for_seed(seed))
    }

    /// Replaces the job mix with the records of an arrival trace. The
    /// trace constructors already validated every record, and the engine
    /// re-validates at build time, so replaying a trace written by
    /// [`workloads::ArrivalTrace::to_jsonl`] reproduces the generating
    /// run bit-for-bit under the same seed.
    pub fn arrivals(mut self, trace: &workloads::ArrivalTrace) -> Experiment {
        self.jobs = trace.jobs().to_vec();
        self
    }

    /// Like [`Experiment::run`] but recording every simulation event
    /// into `sink`. The simulated execution — schedule, timings, result
    /// — is bit-identical to the untraced run of the same arguments.
    ///
    /// # Errors
    ///
    /// Propagates engine build/run failures.
    pub fn run_traced(
        &self,
        policy: Policy,
        seed: u64,
        sink: &mut dyn EventSink,
    ) -> Result<RunResult, ExperimentError> {
        let failure = self.failure_for_seed(seed);
        self.build_engine(failure, self.timeline.clone(), seed)?
            .run_traced(policy.scheduler(), sink)
            .map_err(ExperimentError::Run)
    }

    /// The Chrome-exporter lane configuration this cluster implies. Slot
    /// counts use the cluster-wide maximum; the exporter grows extra
    /// lanes on demand for heterogeneous nodes.
    pub fn chrome_config(&self) -> ChromeConfig {
        let max = |f: fn(&cluster::topology::NodeSpec) -> u32| {
            self.topo
                .node_ids()
                .map(|n| f(self.topo.spec(n)))
                .max()
                .unwrap_or(1)
        };
        ChromeConfig {
            num_nodes: self.topo.num_nodes() as u32,
            num_racks: self.topo.num_racks() as u32,
            map_slots: max(|s| s.map_slots),
            reduce_slots: max(|s| s.reduce_slots),
        }
    }

    /// An aggregator configuration matching this cluster under the given
    /// seed's failure: map slots summed over surviving nodes, and the
    /// `netsim` link layout's per-link capacities (`2·nodes` node links
    /// followed by `2·racks` rack links, up/down interleaved).
    pub fn aggregator_config(&self, seed: u64) -> AggregatorConfig {
        let state = self.cluster_state_for_seed(seed);
        let total_map_slots: u32 = self
            .topo
            .node_ids()
            .filter(|&n| state.is_alive(n))
            .map(|n| self.topo.spec(n).map_slots)
            .sum();
        let mut link_capacities_bps =
            vec![self.config.net.node_bps as f64; 2 * self.topo.num_nodes()];
        link_capacities_bps.extend(vec![
            self.config.net.rack_bps as f64;
            2 * self.topo.num_racks()
        ]);
        AggregatorConfig {
            bucket: SimDuration::from_secs(10),
            total_map_slots: u64::from(total_map_slots),
            link_capacities_bps,
            ..AggregatorConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn policy_names_and_schedulers() {
        assert_eq!(Policy::LocalityFirst.name(), "LF");
        assert_eq!(Policy::BasicDegradedFirst.name(), "BDF");
        assert_eq!(Policy::EnhancedDegradedFirst.name(), "EDF");
        let ablation = Policy::DegradedFirstWith {
            locality_preservation: true,
            rack_awareness: false,
        };
        assert_eq!(ablation.name(), "BDF+locality");
        assert_eq!(ablation.scheduler().name(), "BDF+locality");
        assert_eq!(
            Policy::DegradedFirstWith {
                locality_preservation: false,
                rack_awareness: true
            }
            .name(),
            "BDF+rack"
        );
        assert_eq!(
            Policy::DegradedFirstWith {
                locality_preservation: false,
                rack_awareness: false
            }
            .name(),
            "BDF"
        );
    }

    #[test]
    fn failure_specs_resolve() {
        let topo = Topology::homogeneous(3, 4, 2, 1);
        let mut rng = SimRng::seed_from_u64(1);
        assert!(FailureSpec::None.resolve(&topo, &mut rng).is_normal_mode());
        let single = FailureSpec::RandomSingleNode.resolve(&topo, &mut rng);
        assert_eq!(single.failed_nodes(&topo).len(), 1);
        let double = FailureSpec::RandomDoubleNode.resolve(&topo, &mut rng);
        assert_eq!(double.failed_nodes(&topo).len(), 2);
        let rack = FailureSpec::RandomRack.resolve(&topo, &mut rng);
        assert_eq!(rack.failed_nodes(&topo).len(), 4);
        let among = FailureSpec::RandomNodeAmong(vec![NodeId(7)]).resolve(&topo, &mut rng);
        assert_eq!(
            among.failed_nodes(&topo).into_iter().next(),
            Some(NodeId(7))
        );
        let explicit = FailureSpec::Nodes(vec![NodeId(1), NodeId(2)]).resolve(&topo, &mut rng);
        assert_eq!(explicit.failed_nodes(&topo).len(), 2);
    }

    #[test]
    fn same_seed_same_scenario_across_policies() {
        let exp = presets::small_default();
        let a = exp.failure_for_seed(5);
        let b = exp.failure_for_seed(5);
        assert_eq!(a, b);
    }

    #[test]
    fn normalized_runtime_exceeds_one_in_failure_mode() {
        let exp = presets::small_default();
        let norm = exp.normalized_runtime(Policy::LocalityFirst, 2).unwrap();
        assert!(norm > 1.0, "failure mode should be slower: {norm}");
    }

    #[test]
    fn edf_not_worse_than_lf() {
        let exp = presets::small_default();
        for seed in [1, 2] {
            let lf = exp.normalized_runtime(Policy::LocalityFirst, seed).unwrap();
            let edf = exp
                .normalized_runtime(Policy::EnhancedDegradedFirst, seed)
                .unwrap();
            assert!(edf <= lf * 1.02, "seed {seed}: EDF {edf} vs LF {lf}");
        }
    }
}

#[cfg(test)]
mod delay_policy_tests {
    use super::*;
    use crate::presets;
    use simkit::time::SimDuration;

    #[test]
    fn delay_scheduling_policy_runs() {
        let exp = presets::small_default();
        let policy = Policy::DelayScheduling {
            max_wait: SimDuration::from_secs(6),
        };
        assert_eq!(policy.name(), "LF+delay");
        assert_eq!(policy.scheduler().name(), "LF+delay");
        let result = exp.run(policy, 1).expect("delay run");
        assert_eq!(result.tasks.len(), exp.num_blocks);
        // Still completes everything and is normalized-comparable.
        let norm = exp.normalized_runtime(policy, 1).expect("normalized");
        assert!(norm >= 1.0);
    }
}
