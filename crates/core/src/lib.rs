//! `dfs` — degraded-first scheduling for MapReduce in erasure-coded
//! storage clusters.
//!
//! This is the top-level crate of the reproduction of *Li, Lee, Hu —
//! "Degraded-First Scheduling for MapReduce in Erasure-Coded Storage
//! Clusters" (DSN 2014)*. It ties together:
//!
//! * [`erasure`] — the Reed–Solomon coding substrate (HDFS-RAID's role);
//! * [`cluster`] / [`ecstore`] — topology, placement, failure modes and
//!   degraded-read planning;
//! * [`netsim`] / [`simkit`] — the flow-level network and the
//!   discrete event core;
//! * [`mapreduce`] — the heartbeat-driven MapReduce engine;
//! * [`scheduler`] — the paper's policies (LF / BDF / EDF);
//! * [`obs`] — structured tracing: JSONL / Chrome-trace export and
//!   derived metrics from any run;
//! * [`workloads`] — the evaluation's job mixes;
//! * [`textlab`] — a real-bytes data path standing in for the Hadoop
//!   testbed.
//!
//! The crate's own modules add the experiment harness used by every
//! figure reproduction:
//!
//! * [`experiment`] — describe a cluster + workload + failure once, then
//!   run it under any policy and any seed, normalized against normal
//!   mode;
//! * [`presets`] — the paper's configurations (simulation default,
//!   heterogeneous, extreme case, 13-node testbed);
//! * [`sweep`] — multi-seed parallel sampling with boxplot summaries.
//!
//! # Quickstart
//!
//! ```
//! use dfs::experiment::Policy;
//! use dfs::presets;
//!
//! // A scaled-down simulation cluster (the full paper-size preset is
//! // `presets::simulation_default()`).
//! let exp = presets::small_default();
//! let lf = exp.normalized_runtime(Policy::LocalityFirst, 1).unwrap();
//! let edf = exp.normalized_runtime(Policy::EnhancedDegradedFirst, 1).unwrap();
//! assert!(edf <= lf, "EDF {edf} should not exceed LF {lf}");
//! ```

pub mod experiment;
pub mod presets;
pub mod sweep;

pub use experiment::{Experiment, ExperimentError, FailureSpec, Policy};
pub use sweep::{sweep_seeds, sweep_seeds_vec, SweepSummary};

// Re-export the full stack for downstream users and the bench harness.
pub use analysis;
pub use cluster;
pub use ecstore;
pub use erasure;
pub use mapreduce;
pub use netsim;
pub use obs;
pub use repair;
pub use scheduler;
pub use simkit;
pub use textlab;
pub use workloads;
