//! The paper's experiment configurations, ready to run.

use cluster::{FailureTimeline, SpeedProfile, Topology};
use ecstore::FetchPolicy;
use erasure::CodeParams;
use mapreduce::engine::EngineConfig;
use netsim::NetConfig;
use simkit::time::SimDuration;
use workloads::{map_only_job, simulation_default_job, ArrivalTrace, TestbedWorkload};

use crate::experiment::{Experiment, FailureSpec, PlacementKind};

/// Megabits per second to bits per second.
pub const MBPS: u64 = 1_000_000;

/// The Section V-B default simulation: 40 nodes / 4 racks, 4+1 slots,
/// (20,15), 1440 blocks of 128 MB, 1 Gbps racks, the default job
/// (map N(20,1), reduce N(30,2), 30 reducers, 1% shuffle), one random
/// node failed.
pub fn simulation_default() -> Experiment {
    Experiment {
        topo: Topology::homogeneous(4, 10, 4, 1),
        code: CodeParams::new(20, 15).expect("valid (20,15)"),
        num_blocks: 1440,
        placement: PlacementKind::RackAware,
        failure: FailureSpec::RandomSingleNode,
        timeline: FailureTimeline::new(),
        config: EngineConfig {
            net: NetConfig {
                node_bps: 1000 * MBPS,
                rack_bps: 1000 * MBPS,
            },
            ..EngineConfig::default()
        },
        jobs: vec![simulation_default_job()],
    }
}

/// The Section V-C heterogeneous cluster: as
/// [`simulation_default`], but half of the nodes process tasks at half
/// speed (map 40 s / reduce 60 s means).
pub fn heterogeneous_default() -> Experiment {
    let mut exp = simulation_default();
    let num = exp.topo.num_nodes();
    let mut topo = exp.topo.clone();
    // Slow down every other node so slow nodes spread across racks.
    for i in (1..num).step_by(2) {
        let node = topo.node(i);
        topo = topo.with_speed_factor(node, 0.5);
    }
    exp.topo = topo;
    exp
}

/// The Figure 8(d) extreme case: homogeneous cluster, but five "bad"
/// nodes run local map tasks in 30 s instead of 3 s (speed factor 0.1),
/// a map-only job over 150 blocks, and the failed node is always a
/// regular one.
pub fn extreme_case() -> Experiment {
    let mut exp = simulation_default();
    let mut topo = exp.topo.clone();
    let mut bad = Vec::new();
    for i in 0..5 {
        // One bad node in each of racks 0..3 plus a second in rack 0:
        // indices 0, 10, 20, 30, 1.
        let idx = if i < 4 { i * 10 } else { 1 };
        let node = topo.node(idx);
        bad.push(node);
        topo = topo.with_speed_factor(node, 0.1);
    }
    let good: Vec<cluster::NodeId> = topo.node_ids().filter(|n| !bad.contains(n)).collect();
    exp.topo = topo;
    exp.num_blocks = 150;
    exp.failure = FailureSpec::RandomNodeAmong(good);
    exp.jobs = vec![map_only_job(3.0)];
    exp
}

/// The Section VI testbed translated into simulator terms: 12 slaves in
/// 3 racks of 4, 1 Gbps links, 64 MB blocks, a (12,10) code over 240
/// native blocks placed round-robin, 4 map + 1 reduce slots, Table-I
/// calibrated jobs with 8 reducers each.
pub fn testbed(workloads: &[TestbedWorkload]) -> Experiment {
    let mut jobs = Vec::new();
    for (i, w) in workloads.iter().enumerate() {
        let mut job = w.job();
        // Multi-job runs submit back-to-back "in a short time".
        job.submit_at = simkit::time::SimTime::from_secs(i as u64);
        jobs.push(job);
    }
    Experiment {
        topo: Topology::homogeneous(3, 4, 4, 1),
        code: CodeParams::new(12, 10).expect("valid (12,10)"),
        num_blocks: 240,
        placement: PlacementKind::RoundRobin,
        failure: FailureSpec::RandomSingleNode,
        timeline: FailureTimeline::new(),
        config: EngineConfig {
            block_bytes: 64 * 1024 * 1024,
            net: NetConfig {
                // The testbed's NICs are 1 Gbps, but its end-to-end block
                // service rate is disk-bound (7200 RPM SATA shared with
                // running map tasks). 300 Mbps reproduces Table I's
                // uncontended degraded-read cost (~17 s for k=10 blocks);
                // see DESIGN.md's substitution table.
                node_bps: 300 * MBPS,
                rack_bps: 1000 * MBPS,
            },
            ..EngineConfig::default()
        },
        jobs,
    }
}

/// The Figure 7(f) arrival process as a replayable trace: ten jobs with
/// exponential inter-arrivals (mean 120 s), varied reducer counts and
/// shuffle volumes, deterministic per seed.
pub fn multi_job_default_trace(seed: u64) -> ArrivalTrace {
    ArrivalTrace::poisson(seed, 10, 120.0).expect("valid Figure 7(f) arrival parameters")
}

/// The Figure 7(f) multi-job experiment: [`simulation_default`] running
/// the jobs of [`multi_job_default_trace`] through one FIFO queue.
pub fn multi_job_default(seed: u64) -> Experiment {
    simulation_default().arrivals(&multi_job_default_trace(seed))
}

/// A scaled-down failure-mode experiment for unit tests, examples and
/// doc tests: 16 nodes / 4 racks, (8,6), 240 blocks, deterministic 10 s
/// map-only job, 100 Mbps racks (so degraded reads visibly contend).
pub fn small_default() -> Experiment {
    Experiment {
        topo: Topology::homogeneous(4, 4, 2, 1),
        code: CodeParams::new(8, 6).expect("valid (8,6)"),
        num_blocks: 240,
        placement: PlacementKind::RackAware,
        failure: FailureSpec::RandomSingleNode,
        timeline: FailureTimeline::new(),
        config: EngineConfig {
            net: NetConfig {
                node_bps: 1000 * MBPS,
                rack_bps: 100 * MBPS,
            },
            ..EngineConfig::default()
        },
        jobs: vec![mapreduce::job::JobSpec::builder("small")
            .map_time(SimDuration::from_secs(10), SimDuration::ZERO)
            .map_only()
            .build()],
    }
}

/// A straggler-prone degraded-read experiment: the [`small_default`]
/// cluster where four nodes (a quarter of the cluster) run at 25% speed
/// — the MDS-Queue setting where redundant degraded reads pay off. The
/// fetch policy is the caller's axis: pass [`FetchPolicy::Exact`] for
/// the baseline or `FetchPolicy::Redundant { extra }` to race extra
/// sources and cancel the stragglers at the decode quorum.
pub fn straggler_default(fetch_policy: FetchPolicy) -> Experiment {
    let mut exp = small_default();
    exp.config.fetch_policy = fetch_policy;
    exp.config.node_speeds = SpeedProfile::Stragglers {
        count: 4,
        factor: 0.25,
    };
    exp
}

/// A mid-run churn experiment: the [`small_default`] cluster starting
/// healthy, with one node failing at 25 s — mid-job, several map waves
/// in — and recovering at 60 s. Exercises live task kill/re-queue,
/// degraded re-classification, and return to service, per the transient
/// failures of Ford et al. (OSDI'10) that motivate the paper.
pub fn churn_default() -> Experiment {
    let mut exp = small_default();
    let victim = exp.topo.node(3);
    exp.failure = FailureSpec::None;
    exp.timeline = FailureTimeline::new()
        .fail_node_at(victim, simkit::time::SimTime::from_secs(25))
        .recover_node_at(victim, simkit::time::SimTime::from_secs(60));
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_default_matches_section5() {
        let e = simulation_default();
        assert_eq!(e.topo.num_nodes(), 40);
        assert_eq!(e.topo.num_racks(), 4);
        assert_eq!(e.code.n(), 20);
        assert_eq!(e.code.k(), 15);
        assert_eq!(e.num_blocks, 1440);
        assert_eq!(e.config.block_bytes, 128 * 1024 * 1024);
        assert_eq!(e.config.net.rack_bps, 1000 * MBPS);
        assert_eq!(e.jobs.len(), 1);
        assert_eq!(e.jobs[0].num_reduce_tasks, 30);
    }

    #[test]
    fn heterogeneous_has_half_slow_nodes() {
        let e = heterogeneous_default();
        let slow = e
            .topo
            .node_ids()
            .filter(|&n| e.topo.spec(n).speed_factor < 1.0)
            .count();
        assert_eq!(slow, 20);
    }

    #[test]
    fn extreme_case_shape() {
        let e = extreme_case();
        let bad: Vec<_> = e
            .topo
            .node_ids()
            .filter(|&n| (e.topo.spec(n).speed_factor - 0.1).abs() < 1e-9)
            .collect();
        assert_eq!(bad.len(), 5);
        assert_eq!(e.num_blocks, 150);
        assert!(e.jobs[0].is_map_only());
        // The failed node is never a bad node.
        match &e.failure {
            FailureSpec::RandomNodeAmong(good) => {
                assert_eq!(good.len(), 35);
                assert!(good.iter().all(|n| !bad.contains(n)));
            }
            other => panic!("unexpected failure spec {other:?}"),
        }
    }

    #[test]
    fn testbed_matches_section6() {
        let e = testbed(&TestbedWorkload::ALL);
        assert_eq!(e.topo.num_nodes(), 12);
        assert_eq!(e.topo.num_racks(), 3);
        assert_eq!(e.code.n(), 12);
        assert_eq!(e.code.k(), 10);
        assert_eq!(e.num_blocks, 240);
        assert_eq!(e.config.block_bytes, 64 * 1024 * 1024);
        assert_eq!(e.placement, PlacementKind::RoundRobin);
        assert_eq!(e.jobs.len(), 3);
        assert!(e.jobs.windows(2).all(|w| w[0].submit_at < w[1].submit_at));
    }

    #[test]
    fn multi_job_default_matches_figure7f() {
        let e = multi_job_default(3);
        assert_eq!(e.jobs.len(), 10);
        assert!(e.jobs.windows(2).all(|w| w[0].submit_at <= w[1].submit_at));
        assert!(e
            .jobs
            .iter()
            .all(|j| (20..=40).contains(&j.num_reduce_tasks)));
        assert_eq!(e.jobs, multi_job_default_trace(3).into_jobs());
    }

    #[test]
    fn small_default_runs_quickly() {
        let e = small_default();
        let result = e.run(crate::experiment::Policy::LocalityFirst, 1).unwrap();
        assert_eq!(result.tasks.len(), 240);
    }

    #[test]
    fn straggler_default_runs_under_both_fetch_policies() {
        for fetch in [FetchPolicy::Exact, FetchPolicy::Redundant { extra: 2 }] {
            let e = straggler_default(fetch);
            assert_eq!(e.config.fetch_policy, fetch);
            assert_eq!(
                e.config.node_speeds,
                SpeedProfile::Stragglers {
                    count: 4,
                    factor: 0.25
                }
            );
            let result = e.run(crate::experiment::Policy::LocalityFirst, 1).unwrap();
            assert_eq!(result.tasks.len(), 240);
            assert!(
                !result.degraded_read_secs().is_empty(),
                "straggler preset must exercise degraded reads under {fetch:?}"
            );
        }
    }

    #[test]
    fn churn_default_fails_and_recovers_mid_run() {
        let e = churn_default();
        assert!(e.failure.is_none());
        assert_eq!(e.timeline.events().len(), 2);
        let result = e.run(crate::experiment::Policy::LocalityFirst, 1).unwrap();
        assert_eq!(result.tasks.len(), 240);
        // The run outlives the recovery point, so churn really was mid-run.
        assert!(result.makespan.as_secs_f64() > 60.0);
    }
}
