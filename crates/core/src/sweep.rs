//! Multi-seed sampling: the paper reports each configuration as a
//! boxplot over 30 randomized runs; this module fans those runs out
//! across threads and summarizes them.

use simkit::stats::{percentile_sorted, Boxplot, StatsError, Summary};

/// Summary of a multi-seed sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSummary {
    /// One value per seed, in seed order.
    pub samples: Vec<f64>,
}

impl SweepSummary {
    /// Wraps raw samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn new(samples: Vec<f64>) -> SweepSummary {
        assert!(!samples.is_empty(), "empty sweep");
        SweepSummary { samples }
    }

    /// The sample mean.
    pub fn mean(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// The sample median. Total-order sorting keeps this well-defined
    /// even if a run produced a NaN sample; use [`SweepSummary::summary`]
    /// when such samples must be rejected instead.
    pub fn median(&self) -> f64 {
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        percentile_sorted(&sorted, 0.50).expect("non-empty by constructor")
    }

    /// Five-number summary.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NonFinite`] if any sample is NaN or
    /// infinite (the constructor guarantees non-emptiness).
    pub fn summary(&self) -> Result<Summary, StatsError> {
        Summary::from_samples(&self.samples)
    }

    /// Boxplot (1.5·IQR whiskers), the paper's plotted form.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SweepSummary::summary`].
    pub fn boxplot(&self) -> Result<Boxplot, StatsError> {
        Boxplot::from_samples(&self.samples)
    }

    /// Mean relative reduction versus a baseline sweep, seed by seed —
    /// how the paper quotes "EDF reduces the runtime of LF by X%".
    ///
    /// # Panics
    ///
    /// Panics if the sweeps have different lengths.
    pub fn mean_reduction_vs(&self, baseline: &SweepSummary) -> f64 {
        assert_eq!(
            self.samples.len(),
            baseline.samples.len(),
            "sweeps cover different seed sets"
        );
        let reductions: Vec<f64> = self
            .samples
            .iter()
            .zip(&baseline.samples)
            .map(|(s, b)| (b - s) / b)
            .collect();
        reductions.iter().sum::<f64>() / reductions.len() as f64
    }
}

/// Runs `f(seed)` for every seed in `0..count`, in parallel across
/// available cores, preserving seed order. Seeds whose run fails (e.g. a
/// random failure scenario that destroys a stripe) are skipped — `f`
/// returns `Option<f64>` — and the summary covers the surviving seeds;
/// the paper's 30 "random configurations" likewise only include valid
/// ones.
///
/// # Panics
///
/// Panics if every seed fails.
pub fn sweep_seeds<F>(count: u64, f: F) -> SweepSummary
where
    F: Fn(u64) -> Option<f64> + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(count as usize)
        .max(1);
    let mut results: Vec<Option<f64>> = vec![None; count as usize];
    let next = std::sync::atomic::AtomicU64::new(0);
    let slots: Vec<std::sync::Mutex<Option<f64>>> =
        (0..count).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let seed = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if seed >= count {
                    break;
                }
                *slots[seed as usize].lock().unwrap() = f(seed);
            });
        }
    });
    for (i, slot) in slots.into_iter().enumerate() {
        results[i] = slot.into_inner().unwrap();
    }
    let samples: Vec<f64> = results.into_iter().flatten().collect();
    assert!(!samples.is_empty(), "every seed failed");
    SweepSummary::new(samples)
}

/// Like [`sweep_seeds`] but each seed yields a *vector* of values (e.g.
/// one per policy, sharing a single normal-mode baseline run). Returns
/// one [`SweepSummary`] per vector position. Seeds returning `None` are
/// skipped for every position.
///
/// # Panics
///
/// Panics if every seed fails, or if seeds return vectors of differing
/// lengths.
pub fn sweep_seeds_vec<F>(count: u64, f: F) -> Vec<SweepSummary>
where
    F: Fn(u64) -> Option<Vec<f64>> + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(count as usize)
        .max(1);
    let next = std::sync::atomic::AtomicU64::new(0);
    let slots: Vec<std::sync::Mutex<Option<Vec<f64>>>> =
        (0..count).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let seed = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if seed >= count {
                    break;
                }
                *slots[seed as usize].lock().unwrap() = f(seed);
            });
        }
    });
    let rows: Vec<Vec<f64>> = slots
        .into_iter()
        .filter_map(|slot| slot.into_inner().unwrap())
        .collect();
    assert!(!rows.is_empty(), "every seed failed");
    let width = rows[0].len();
    assert!(
        rows.iter().all(|r| r.len() == width),
        "seeds returned vectors of different lengths"
    );
    (0..width)
        .map(|i| SweepSummary::new(rows.iter().map(|r| r[i]).collect()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_vec_transposes() {
        let sweeps = sweep_seeds_vec(4, |seed| Some(vec![seed as f64, seed as f64 * 10.0]));
        assert_eq!(sweeps.len(), 2);
        assert_eq!(sweeps[0].samples, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(sweeps[1].samples, vec![0.0, 10.0, 20.0, 30.0]);
    }

    #[test]
    fn sweep_vec_skips_failed_seeds() {
        let sweeps = sweep_seeds_vec(4, |seed| (seed != 1).then(|| vec![seed as f64]));
        assert_eq!(sweeps[0].samples, vec![0.0, 2.0, 3.0]);
    }

    #[test]
    fn sweep_preserves_seed_order() {
        let s = sweep_seeds(16, |seed| Some(seed as f64));
        assert_eq!(s.samples, (0..16).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_skips_failures() {
        let s = sweep_seeds(10, |seed| (seed % 2 == 0).then_some(seed as f64));
        assert_eq!(s.samples, vec![0.0, 2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "every seed failed")]
    fn sweep_rejects_total_failure() {
        let _ = sweep_seeds(3, |_| None);
    }

    #[test]
    fn summary_statistics() {
        let s = SweepSummary::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.median(), 2.5);
        assert_eq!(s.summary().unwrap().count, 4);
        let b = s.boxplot().unwrap();
        assert!(b.outliers.is_empty());
    }

    #[test]
    fn reduction_vs_baseline() {
        let baseline = SweepSummary::new(vec![10.0, 20.0]);
        let improved = SweepSummary::new(vec![8.0, 15.0]);
        // (0.2 + 0.25) / 2
        assert!((improved.mean_reduction_vs(&baseline) - 0.225).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different seed sets")]
    fn reduction_requires_matching_lengths() {
        let a = SweepSummary::new(vec![1.0]);
        let b = SweepSummary::new(vec![1.0, 2.0]);
        let _ = a.mean_reduction_vs(&b);
    }
}
