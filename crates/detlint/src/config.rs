//! Rule scoping: which crates each rule applies to and which files may
//! hold `unsafe` code. The defaults encode this workspace's policy
//! (DESIGN.md §9); [`lint_source`](crate::lint_source) takes the
//! config explicitly so fixtures and future callers can narrow or
//! widen scope without editing the engine.

/// The embedded copy of the obs trace schema that S1 lints against.
/// `include_str!` keeps detlint dependency-free while guaranteeing the
/// linter and the validator read the same bytes.
const TRACE_SCHEMA_V1: &str = include_str!("../../obs/schema/trace-v1.json");

/// Per-rule crate scoping and allowlists.
#[derive(Clone, Debug)]
pub struct Config {
    /// Crates whose event ordering feeds golden digests: D1 (no
    /// unordered hash-collection use) applies here. `obs` is included
    /// because the aggregator and exporters derive report rows that
    /// goldens compare byte-for-byte.
    pub determinism_crates: Vec<String>,
    /// Crates exempt from D2 (wall-clock / ambient entropy). Only
    /// `bench` measures real time by design.
    pub d2_exempt_crates: Vec<String>,
    /// Crates whose non-test code is reachable from user input and
    /// must not panic: P1 applies here.
    pub panic_crates: Vec<String>,
    /// Repo-relative files allowed to contain `unsafe` (U1). Each
    /// entry is an explicit, reviewed exception: either an exact file
    /// path, or a directory prefix (trailing `/`) covering every file
    /// beneath it.
    pub unsafe_allow_files: Vec<String>,
    /// Event kinds declared by the obs trace schema (snake_case). S1
    /// checks every `SimEvent::Variant` mention in determinism crates
    /// against this set, and — in the event vocabulary file — that
    /// every listed kind still has a variant. Empty disables S1.
    pub trace_event_kinds: Vec<String>,
    /// The one file that must mention *every* schema kind (the
    /// reverse direction of S1): the `SimEvent` vocabulary itself.
    pub event_vocab_file: String,
    /// Crates whose forked RNG streams are label-disciplined: R1
    /// requires every `.fork(...)` label here to be a named
    /// `*_STREAM` constant, and judges the declared constants for
    /// same-crate value collisions and cross-crate name conflicts.
    /// A superset of the determinism crates — the presentation
    /// crates (`textlab`, `cli`, `bench`) and the workload
    /// generators fork streams too, and a colliding label there
    /// corrupts an experiment just as surely.
    pub rng_stream_crates: Vec<String>,
    /// Files whose `match`es involving `SimEvent` must stay
    /// wildcard-free (M1): the obs consumers that would otherwise
    /// silently drop a newly added event kind.
    pub event_match_files: Vec<String>,
}

impl Config {
    /// True when `path` may contain `unsafe` (U1). Allowlist entries
    /// are exact paths, or directory prefixes when they end in '/'.
    /// U2 then audits each such site for a `// SAFETY:` rationale.
    pub fn allows_unsafe(&self, path: &str) -> bool {
        self.unsafe_allow_files.iter().any(|allowed| {
            if allowed.ends_with('/') {
                path.starts_with(allowed.as_str())
            } else {
                allowed == path
            }
        })
    }
}

impl Default for Config {
    fn default() -> Config {
        Config {
            determinism_crates: [
                "simkit",
                "netsim",
                "mapreduce",
                "scheduler",
                "cluster",
                "repair",
                "erasure",
                "ecstore",
                "obs",
                "sweep",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            d2_exempt_crates: vec!["bench".to_string()],
            panic_crates: ["cli", "workloads", "obs", "sweep"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            // The SIMD kernel tree holds all reviewed intrinsics
            // (per-ISA modules behind runtime dispatch); the scalar
            // reference path and proptests pin their output. Nothing
            // else in the workspace — gf256.rs included, now that its
            // kernels moved under simd/ — may contain `unsafe`.
            unsafe_allow_files: vec!["crates/erasure/src/simd/".to_string()],
            trace_event_kinds: schema_event_kinds(TRACE_SCHEMA_V1),
            event_vocab_file: "crates/obs/src/event.rs".to_string(),
            rng_stream_crates: [
                "simkit",
                "netsim",
                "mapreduce",
                "scheduler",
                "cluster",
                "repair",
                "erasure",
                "ecstore",
                "obs",
                "sweep",
                "workloads",
                "textlab",
                "cli",
                "bench",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            event_match_files: [
                "crates/obs/src/aggregate.rs",
                "crates/obs/src/chrome.rs",
                "crates/obs/src/diff.rs",
                "crates/obs/src/sink.rs",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        }
    }
}

/// Extracts the keys of the `"events"` object from a trace-schema
/// document with a small depth-tracking scanner — no JSON dependency,
/// and tolerant of the schema growing extra top-level sections. An
/// unparseable document yields an empty list (S1 disabled), never a
/// panic: the obs schema tests are where malformed-schema errors
/// belong.
fn schema_event_kinds(schema: &str) -> Vec<String> {
    let bytes = schema.as_bytes();
    let mut kinds = Vec::new();
    let mut depth = 0i32;
    let mut in_events = false;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => {
                let start = i + 1;
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\\' {
                        i += 1;
                    }
                    i += 1;
                }
                let end = i.min(bytes.len());
                // A string is a key iff the next non-space byte is ':'.
                let mut j = i + 1;
                while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                    j += 1;
                }
                if bytes.get(j) == Some(&b':') {
                    let key = &schema[start..end];
                    if in_events && depth == 2 {
                        kinds.push(key.to_string());
                    } else if depth == 1 && key == "events" {
                        in_events = true;
                    }
                }
            }
            b'{' | b'[' => depth += 1,
            b'}' | b']' => {
                depth -= 1;
                if in_events && depth < 2 {
                    in_events = false;
                }
            }
            _ => {}
        }
        i += 1;
    }
    kinds
}

/// Where a file sits in the workspace, as far as rule scoping cares.
#[derive(Clone, Debug)]
pub struct FileContext {
    /// Repo-relative path (forward slashes), e.g.
    /// `crates/scheduler/src/lib.rs`.
    pub path: String,
    /// The crate the file belongs to (`scheduler`, `cli`, ...).
    pub crate_name: String,
    /// True for integration tests and benches (`crates/*/tests/`,
    /// `crates/*/benches/`): D1 and P1 do not apply there.
    pub in_tests_dir: bool,
}

impl FileContext {
    /// Builds a context from a repo-relative path, deriving the crate
    /// name from the `crates/<name>/` component.
    pub fn from_repo_path(path: &str) -> FileContext {
        let parts: Vec<&str> = path.split('/').collect();
        let crate_name = match parts.as_slice() {
            ["crates", name, ..] => (*name).to_string(),
            _ => String::new(),
        };
        let in_tests_dir = parts
            .iter()
            .any(|p| *p == "tests" || *p == "benches" || *p == "examples");
        FileContext {
            path: path.to_string(),
            crate_name,
            in_tests_dir,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedded_schema_kinds_are_extracted() {
        let kinds = Config::default().trace_event_kinds;
        assert!(kinds.len() >= 20, "schema lost event kinds: {kinds:?}");
        for expected in [
            "job_submitted",
            "map_launched",
            "flow_rate",
            "repair_finished",
        ] {
            assert!(kinds.iter().any(|k| k == expected), "missing {expected}");
        }
        // Field names of nested per-event objects must not leak in.
        assert!(!kinds.iter().any(|k| k == "job" || k == "locality"));
    }

    #[test]
    fn scanner_tracks_depth_and_strings() {
        let doc = r#"{
          "description": "events: { not real }",
          "events": { "a_b": { "x": "uint" }, "c": { "y": "bool" } },
          "enums": { "z": ["v"] }
        }"#;
        assert_eq!(schema_event_kinds(doc), vec!["a_b", "c"]);
        assert!(schema_event_kinds("not json at all").is_empty());
    }

    #[test]
    fn sweep_is_scoped_into_both_rule_sets() {
        let cfg = Config::default();
        assert!(cfg.determinism_crates.iter().any(|c| c == "sweep"));
        assert!(cfg.panic_crates.iter().any(|c| c == "sweep"));
    }
}
