//! Rule scoping: which crates each rule applies to and which files may
//! hold `unsafe` code. The defaults encode this workspace's policy
//! (DESIGN.md §9); [`lint_source`](crate::lint_source) takes the
//! config explicitly so fixtures and future callers can narrow or
//! widen scope without editing the engine.

/// Per-rule crate scoping and allowlists.
#[derive(Clone, Debug)]
pub struct Config {
    /// Crates whose event ordering feeds golden digests: D1 (no
    /// unordered hash-collection use) applies here. `obs` is included
    /// because the aggregator and exporters derive report rows that
    /// goldens compare byte-for-byte.
    pub determinism_crates: Vec<String>,
    /// Crates exempt from D2 (wall-clock / ambient entropy). Only
    /// `bench` measures real time by design.
    pub d2_exempt_crates: Vec<String>,
    /// Crates whose non-test code is reachable from user input and
    /// must not panic: P1 applies here.
    pub panic_crates: Vec<String>,
    /// Repo-relative files allowed to contain `unsafe` (U1). Each
    /// entry is an explicit, reviewed exception: either an exact file
    /// path, or a directory prefix (trailing `/`) covering every file
    /// beneath it.
    pub unsafe_allow_files: Vec<String>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            determinism_crates: [
                "simkit",
                "netsim",
                "mapreduce",
                "scheduler",
                "cluster",
                "repair",
                "erasure",
                "ecstore",
                "obs",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            d2_exempt_crates: vec!["bench".to_string()],
            panic_crates: ["cli", "workloads", "obs"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            // The SIMD kernel tree holds all reviewed intrinsics
            // (per-ISA modules behind runtime dispatch); the scalar
            // reference path and proptests pin their output. Nothing
            // else in the workspace — gf256.rs included, now that its
            // kernels moved under simd/ — may contain `unsafe`.
            unsafe_allow_files: vec!["crates/erasure/src/simd/".to_string()],
        }
    }
}

/// Where a file sits in the workspace, as far as rule scoping cares.
#[derive(Clone, Debug)]
pub struct FileContext {
    /// Repo-relative path (forward slashes), e.g.
    /// `crates/scheduler/src/lib.rs`.
    pub path: String,
    /// The crate the file belongs to (`scheduler`, `cli`, ...).
    pub crate_name: String,
    /// True for integration tests and benches (`crates/*/tests/`,
    /// `crates/*/benches/`): D1 and P1 do not apply there.
    pub in_tests_dir: bool,
}

impl FileContext {
    /// Builds a context from a repo-relative path, deriving the crate
    /// name from the `crates/<name>/` component.
    pub fn from_repo_path(path: &str) -> FileContext {
        let parts: Vec<&str> = path.split('/').collect();
        let crate_name = match parts.as_slice() {
            ["crates", name, ..] => (*name).to_string(),
            _ => String::new(),
        };
        let in_tests_dir = parts
            .iter()
            .any(|p| *p == "tests" || *p == "benches" || *p == "examples");
        FileContext {
            path: path.to_string(),
            crate_name,
            in_tests_dir,
        }
    }
}
