//! Phase 1 of the workspace-aware pass: a lightweight cross-file
//! index, built per file with the same dependency-free lexer the
//! single-file rules use. Phase 2 ([`cross_file_pass`]) then runs the
//! rule families that cannot be decided one file at a time:
//!
//! - **R1** — RNG-stream hygiene. Every `.fork(...)` label in a
//!   stream-disciplined crate must be a named `*_STREAM` constant;
//!   two constants in one crate sharing a label value are correlated
//!   streams, and one constant name with different values in two
//!   crates is a cross-crate trap. Both need the whole workspace's
//!   declarations to judge.
//! - **U2** — SAFETY audit. `unsafe` inside the U1 allowlist is no
//!   longer a free pass: each block or fn must be immediately
//!   preceded by a `// SAFETY:` comment with a non-empty rationale
//!   (attribute, doc-comment, and blank lines may sit between).
//! - **M1** — event exhaustiveness. A `match` involving `SimEvent`
//!   in the configured obs consumer files must not hide behind a `_`
//!   wildcard arm: adding an event kind has to force a decision at
//!   lint time, not silently drop a lane at run time.
//!
//! Facts are extracted independently per file and the cross-file pass
//! sorts them by path before judging, so the report is byte-identical
//! under any file-scan order (pinned by a proptest in
//! `tests/integration_detlint.rs`).

use crate::config::{Config, FileContext};
use crate::lexer::{lex, Lexed, Tok, TokKind};
use crate::rules::{parse_allows, test_regions, Finding, RuleId};

/// Everything phase 2 needs to know about one file.
#[derive(Clone, Debug, Default)]
pub struct FileFacts {
    /// Repo-relative path.
    pub path: String,
    /// Owning crate (`crates/<name>/...`).
    pub crate_name: String,
    /// True under `tests/` / `benches/` / `examples/`.
    pub in_tests_dir: bool,
    /// `const *_STREAM: u64 = <literal>;` declarations (non-test).
    pub stream_consts: Vec<StreamConst>,
    /// `.fork(...)` call sites with their argument expressions
    /// (non-test).
    pub fork_calls: Vec<ForkCall>,
    /// `unsafe` block/fn spans, one per source line.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// `_ =>` arms of `match`es involving `SimEvent` (non-test).
    pub wildcard_arms: Vec<WildcardArm>,
}

/// A named RNG stream-label constant declaration.
#[derive(Clone, Debug)]
pub struct StreamConst {
    /// The constant's identifier (ends in `_STREAM`).
    pub name: String,
    /// Its label value.
    pub value: u64,
    /// 1-based position of the name token.
    pub line: u32,
    /// 1-based byte column of the name token.
    pub col: u32,
    /// The declaration line, trimmed.
    pub snippet: String,
    /// True when a `detlint::allow(R1, ...)` covers the declaration.
    pub suppressed: bool,
}

/// One `.fork(<label>)` call site.
#[derive(Clone, Debug)]
pub struct ForkCall {
    /// 1-based line of the `fork` token.
    pub line: u32,
    /// 1-based byte column of the `fork` token.
    pub col: u32,
    /// The argument expression, re-joined from tokens.
    pub label: String,
    /// True when the label is a path ending in a `*_STREAM` ident.
    pub named: bool,
    /// The call line, trimmed.
    pub snippet: String,
    /// True when a `detlint::allow(R1, ...)` covers the call.
    pub suppressed: bool,
}

/// One `unsafe` token (block or fn), deduplicated per line.
#[derive(Clone, Debug)]
pub struct UnsafeSite {
    /// 1-based line of the `unsafe` token.
    pub line: u32,
    /// 1-based byte column of the `unsafe` token.
    pub col: u32,
    /// True when an immediately preceding comment reads
    /// `// SAFETY: <non-empty rationale>`.
    pub has_safety: bool,
    /// The `unsafe` line, trimmed.
    pub snippet: String,
    /// True when a `detlint::allow(U2, ...)` covers the site.
    pub suppressed: bool,
}

/// One wildcard `_ =>` arm inside a `match` involving `SimEvent`.
#[derive(Clone, Debug)]
pub struct WildcardArm {
    /// 1-based line of the `_` token.
    pub line: u32,
    /// 1-based byte column of the `_` token.
    pub col: u32,
    /// The arm line, trimmed.
    pub snippet: String,
    /// True when a `detlint::allow(M1, ...)` covers the arm.
    pub suppressed: bool,
}

/// Builds the per-file facts for `src`. Pure per-file work: the
/// result depends only on this file's bytes and path, which is what
/// makes the whole pass order-independent.
pub fn index_file(src: &str, ctx: &FileContext) -> FileFacts {
    let lexed = lex(src);
    let lines: Vec<&str> = src.lines().collect();
    let snippet = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };
    let regions = test_regions(&lexed.toks);
    let in_test = |line: u32| regions.iter().any(|&(a, b)| (a..=b).contains(&line));
    // The A0 findings from malformed directives are lint_source's to
    // report; here only the valid allows matter.
    let (allows, _) = parse_allows(&lexed, ctx, &snippet);
    let suppressed = |rule: RuleId, line: u32| allows.iter().any(|a| a.covers(rule, line));

    let toks = &lexed.toks;
    let mut facts = FileFacts {
        path: ctx.path.clone(),
        crate_name: ctx.crate_name.clone(),
        in_tests_dir: ctx.in_tests_dir,
        ..FileFacts::default()
    };

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        // `const NAME_STREAM: u64 = <int literal>;`
        if t.text == "const" && !in_test(t.line) {
            if let Some(c) = stream_const_at(toks, i, &snippet, &suppressed) {
                facts.stream_consts.push(c);
            }
        }
        // `.fork(<label>)` — the leading `.` excludes the `fn fork`
        // definition and `use` paths.
        if t.text == "fork"
            && !in_test(t.line)
            && i > 0
            && toks[i - 1].text == "."
            && toks.get(i + 1).is_some_and(|p| p.text == "(")
        {
            let (label, named) = fork_label(toks, i + 1);
            facts.fork_calls.push(ForkCall {
                line: t.line,
                col: t.col,
                label,
                named,
                snippet: snippet(t.line),
                suppressed: suppressed(RuleId::R1, t.line),
            });
        }
        if t.text == "unsafe" && facts.unsafe_sites.last().is_none_or(|u| u.line != t.line) {
            facts.unsafe_sites.push(UnsafeSite {
                line: t.line,
                col: t.col,
                has_safety: has_preceding_safety(&lexed, t.line),
                snippet: snippet(t.line),
                suppressed: suppressed(RuleId::U2, t.line),
            });
        }
        if t.text == "match" {
            for w in match_wildcard_arms(toks, i) {
                if in_test(w.line) {
                    continue;
                }
                facts.wildcard_arms.push(WildcardArm {
                    line: w.line,
                    col: w.col,
                    snippet: snippet(w.line),
                    suppressed: suppressed(RuleId::M1, w.line),
                });
            }
        }
    }
    facts
}

/// Phase 2: the cross-file rules, judged over every file's facts at
/// once. Facts are sorted by path first, so the findings (and the
/// anchor chosen for each duplicate/conflict) do not depend on the
/// order the caller scanned files in.
pub fn cross_file_pass(facts: &[FileFacts], cfg: &Config) -> Vec<Finding> {
    let mut ordered: Vec<&FileFacts> = facts.iter().collect();
    ordered.sort_by(|a, b| a.path.cmp(&b.path));
    let mut findings = Vec::new();

    // --- R1: fork labels must be named *_STREAM constants ------------
    let stream_scope = |f: &FileFacts| cfg.rng_stream_crates.contains(&f.crate_name);
    for f in ordered
        .iter()
        .filter(|f| stream_scope(f) && !f.in_tests_dir)
    {
        for call in f.fork_calls.iter().filter(|c| !c.named && !c.suppressed) {
            findings.push(Finding {
                path: f.path.clone(),
                line: call.line,
                col: call.col,
                rule: RuleId::R1,
                message: format!(
                    "`fork({})`: RNG stream label is not a named `*_STREAM` constant",
                    call.label
                ),
                snippet: call.snippet.clone(),
                hint: "declare `const <PURPOSE>_STREAM: u64 = ...;` at module scope and pass \
                       it to fork(); a genuinely dynamic label needs \
                       // detlint::allow(R1, reason = \"...\")"
                    .to_string(),
            });
        }
    }

    // --- R1: duplicate label values within a crate, and one name ----
    // --- with different values across crates.
    // Declarations in path order; the first one seen is the anchor a
    // later duplicate or conflict is reported against.
    let decls: Vec<(&FileFacts, &StreamConst)> = ordered
        .iter()
        .filter(|f| stream_scope(f) && !f.in_tests_dir)
        .flat_map(|f| f.stream_consts.iter().map(move |c| (*f, c)))
        .collect();
    // (crate, value) -> first declaration.
    let mut by_value: Vec<(&str, u64, &FileFacts, &StreamConst)> = Vec::new();
    // name -> first declaration.
    let mut by_name: Vec<(&str, &FileFacts, &StreamConst)> = Vec::new();
    for (f, c) in &decls {
        if let Some((_, _, f0, c0)) = by_value
            .iter()
            .find(|(cr, v, _, _)| *cr == f.crate_name && *v == c.value)
        {
            if !c.suppressed {
                findings.push(Finding {
                    path: f.path.clone(),
                    line: c.line,
                    col: c.col,
                    rule: RuleId::R1,
                    message: format!(
                        "stream constant `{}` duplicates label value {} of `{}` ({}:{}) \
                         in crate `{}`",
                        c.name, c.value, c0.name, f0.path, c0.line, f.crate_name
                    ),
                    snippet: c.snippet.clone(),
                    hint: "streams forked from one root with equal labels are identical; \
                           give every stream in a crate a distinct label value"
                        .to_string(),
                });
            }
        } else {
            by_value.push((&f.crate_name, c.value, f, c));
        }
        if let Some((_, f0, c0)) = by_name.iter().find(|(n, _, _)| *n == c.name) {
            if c0.value != c.value && !c.suppressed {
                findings.push(Finding {
                    path: f.path.clone(),
                    line: c.line,
                    col: c.col,
                    rule: RuleId::R1,
                    message: format!(
                        "stream constant `{}` = {} here but = {} in {}:{}",
                        c.name, c.value, c0.value, f0.path, c0.line
                    ),
                    snippet: c.snippet.clone(),
                    hint: "one name, one label: align the values or rename one constant so \
                           readers cannot confuse the two streams"
                        .to_string(),
                });
            }
        } else {
            by_name.push((&c.name, f, c));
        }
    }

    // --- U2: allowlisted unsafe must carry a SAFETY rationale --------
    for f in ordered.iter().filter(|f| cfg.allows_unsafe(&f.path)) {
        for site in f
            .unsafe_sites
            .iter()
            .filter(|u| !u.has_safety && !u.suppressed)
        {
            findings.push(Finding {
                path: f.path.clone(),
                line: site.line,
                col: site.col,
                rule: RuleId::U2,
                message: "allowlisted `unsafe` lacks an immediately preceding \
                          `// SAFETY:` comment"
                    .to_string(),
                snippet: site.snippet.clone(),
                hint: "state the invariants that make the site sound in a \
                       // SAFETY: comment directly above the unsafe block or fn \
                       (attribute and doc lines may sit between)"
                    .to_string(),
            });
        }
    }

    // --- M1: no wildcard arms in SimEvent matches --------------------
    for f in ordered
        .iter()
        .filter(|f| cfg.event_match_files.contains(&f.path))
    {
        for arm in f.wildcard_arms.iter().filter(|w| !w.suppressed) {
            findings.push(Finding {
                path: f.path.clone(),
                line: arm.line,
                col: arm.col,
                rule: RuleId::M1,
                message: "wildcard `_` arm in a `match` involving `SimEvent`".to_string(),
                snippet: arm.snippet.clone(),
                hint: "list the remaining variants explicitly (an or-pattern arm is fine) \
                       so a new event kind forces this consumer to decide"
                    .to_string(),
            });
        }
    }

    findings
}

/// Parses `const NAME_STREAM: u64 = <int literal>;` starting at the
/// `const` token.
fn stream_const_at(
    toks: &[Tok],
    i: usize,
    snippet: &dyn Fn(u32) -> String,
    suppressed: &dyn Fn(RuleId, u32) -> bool,
) -> Option<StreamConst> {
    let name = toks.get(i + 1)?;
    if name.kind != TokKind::Ident || !name.text.ends_with("_STREAM") {
        return None;
    }
    if toks.get(i + 2).map(|t| t.text.as_str()) != Some(":")
        || toks.get(i + 3).map(|t| t.text.as_str()) != Some("u64")
        || toks.get(i + 4).map(|t| t.text.as_str()) != Some("=")
    {
        return None;
    }
    let lit = toks.get(i + 5)?;
    if lit.kind != TokKind::Number || toks.get(i + 6).map(|t| t.text.as_str()) != Some(";") {
        return None;
    }
    Some(StreamConst {
        name: name.text.clone(),
        value: parse_u64_literal(&lit.text)?,
        line: name.line,
        col: name.col,
        snippet: snippet(name.line),
        suppressed: suppressed(RuleId::R1, name.line),
    })
}

/// `0xa441_u64` → 42049; handles `_` separators, `0x`/`0o`/`0b`
/// radices, and integer suffixes.
fn parse_u64_literal(text: &str) -> Option<u64> {
    let t = text.replace('_', "");
    let t = t
        .strip_suffix("u64")
        .or_else(|| t.strip_suffix("usize"))
        .unwrap_or(&t);
    if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(h, 16).ok()
    } else if let Some(o) = t.strip_prefix("0o") {
        u64::from_str_radix(o, 8).ok()
    } else if let Some(b) = t.strip_prefix("0b") {
        u64::from_str_radix(b, 2).ok()
    } else {
        t.parse().ok()
    }
}

/// Reads the argument of a `fork(` call whose `(` sits at `open`.
/// Returns the re-joined expression text and whether it is a plain
/// path ending in a `*_STREAM` identifier.
fn fork_label(toks: &[Tok], open: usize) -> (String, bool) {
    let mut depth = 0i32;
    let mut args: Vec<&Tok> = Vec::new();
    for t in toks.iter().skip(open).take(80) {
        match t.text.as_str() {
            "(" | "[" | "{" => {
                depth += 1;
                if depth > 1 {
                    args.push(t);
                }
            }
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
                args.push(t);
            }
            _ => args.push(t),
        }
    }
    let mut label = String::new();
    for (k, t) in args.iter().enumerate() {
        let alnum = |t: &Tok| matches!(t.kind, TokKind::Ident | TokKind::Number);
        if k > 0 && alnum(t) && (alnum(args[k - 1]) || args[k - 1].text == ")") {
            label.push(' ');
        }
        label.push_str(&t.text);
    }
    let named = match args.last() {
        Some(last) if last.kind == TokKind::Ident => {
            last.text.ends_with("_STREAM")
                && last.text.len() > "_STREAM".len()
                && args.iter().all(|t| {
                    t.kind == TokKind::Ident || t.text == ":" || t.text == "." || t.text == "&"
                })
        }
        _ => false,
    };
    (label, named)
}

/// True when the line directly above `unsafe_line` — walking upward
/// through attribute lines, doc/ordinary comments, and blank lines —
/// carries a comment whose body is `SAFETY: <non-empty rationale>`.
fn has_preceding_safety(lexed: &Lexed, unsafe_line: u32) -> bool {
    let comment_at = |line: u32| {
        lexed
            .comments
            .iter()
            .find(|c| (c.line..=c.end_line).contains(&line))
    };
    let first_tok_on = |line: u32| lexed.toks.iter().find(|t| t.line == line);
    let mut l = unsafe_line.saturating_sub(1);
    while l >= 1 {
        if let Some(c) = comment_at(l) {
            let body = c
                .text
                .trim_start_matches('/')
                .trim_start_matches(['!', '*'])
                .trim_start();
            if let Some(rationale) = body.strip_prefix("SAFETY:") {
                return !rationale.trim_start_matches(['*', '/']).trim().is_empty();
            }
            // A non-SAFETY comment (doc line, prose) is pass-through:
            // resume above its span.
            l = c.line.saturating_sub(1);
            continue;
        }
        match first_tok_on(l) {
            // Attribute lines (`#[inline]`, `#[target_feature(...)]`)
            // sit between the comment and the unsafe fn.
            Some(t) if t.text == "#" => l -= 1,
            Some(_) => return false,
            // Blank line.
            None => l -= 1,
        }
    }
    false
}

struct ArmSite {
    line: u32,
    col: u32,
}

/// For a `match` token at `i`, returns the `_ =>` arms at arm level
/// (bracket depth 1 inside the match body) — but only when the match
/// involves `SimEvent` (in the scrutinee or any arm). A nested match
/// is judged by its own `match` token, not its parent's.
fn match_wildcard_arms(toks: &[Tok], i: usize) -> Vec<ArmSite> {
    // The body opens at the first `{` outside parens/brackets.
    let mut depth = 0i32;
    let mut open = None;
    for (k, t) in toks.iter().enumerate().skip(i + 1).take(120) {
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => {
                open = Some(k);
                break;
            }
            _ => {}
        }
    }
    let Some(open) = open else {
        return Vec::new();
    };
    let mut arms = Vec::new();
    let mut involves_event = toks[i..open].iter().any(|t| t.text == "SimEvent");
    let mut candidate_arms: Vec<ArmSite> = Vec::new();
    let mut depth = 1i32;
    let mut k = open + 1;
    while k < toks.len() && depth > 0 {
        let t = &toks[k];
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "SimEvent" if depth >= 1 => involves_event = true,
            "_" if depth == 1
                && toks.get(k + 1).is_some_and(|a| a.text == "=")
                && toks.get(k + 2).is_some_and(|b| b.text == ">") =>
            {
                candidate_arms.push(ArmSite {
                    line: t.line,
                    col: t.col,
                });
            }
            _ => {}
        }
        k += 1;
    }
    if involves_event {
        arms.append(&mut candidate_arms);
    }
    arms
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(src: &str, path: &str) -> FileFacts {
        index_file(src, &FileContext::from_repo_path(path))
    }

    #[test]
    fn stream_consts_and_fork_calls_are_indexed() {
        let src = "const ARRIVAL_STREAM: u64 = 0xa4_41_u64;\n\
                   fn f(root: &mut SimRng) {\n\
                       let a = root.fork(ARRIVAL_STREAM);\n\
                       let b = root.fork(1);\n\
                       let c = root.fork(node.index() as u64);\n\
                   }\n";
        let f = facts(src, "crates/mapreduce/src/x.rs");
        assert_eq!(f.stream_consts.len(), 1);
        assert_eq!(f.stream_consts[0].name, "ARRIVAL_STREAM");
        assert_eq!(f.stream_consts[0].value, 0xa441);
        let named: Vec<bool> = f.fork_calls.iter().map(|c| c.named).collect();
        assert_eq!(named, vec![true, false, false]);
        assert_eq!(f.fork_calls[2].label, "node.index() as u64");
    }

    #[test]
    fn fork_in_test_region_is_not_indexed() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(r: &mut SimRng) { r.fork(1); }\n}\n";
        assert!(facts(src, "crates/simkit/src/rng.rs").fork_calls.is_empty());
    }

    #[test]
    fn safety_comment_is_found_through_attrs_docs_and_blanks() {
        let src = "/// Docs.\n\
                   ///\n\
                   /// # Safety\n\
                   /// Caller checks the probe.\n\
                   // SAFETY: dispatcher probes before install.\n\
                   #[inline]\n\
                   #[target_feature(enable = \"ssse3\")]\n\
                   unsafe fn good() {}\n\
                   \n\
                   #[inline]\n\
                   unsafe fn bad() {}\n";
        let f = facts(src, "crates/erasure/src/simd/x.rs");
        assert_eq!(f.unsafe_sites.len(), 2);
        assert!(f.unsafe_sites[0].has_safety);
        assert!(
            !f.unsafe_sites[1].has_safety,
            "doc-only block must not count"
        );
    }

    #[test]
    fn empty_safety_rationale_does_not_count() {
        let src = "// SAFETY:\nunsafe fn f() {}\n";
        let f = facts(src, "crates/erasure/src/simd/x.rs");
        assert!(!f.unsafe_sites[0].has_safety);
    }

    #[test]
    fn wildcard_arm_is_found_only_in_event_matches() {
        let src = "fn f(ev: &SimEvent, o: Option<u32>) -> u32 {\n\
                   let a = match ev { SimEvent::JobStarted { .. } => 1, _ => 0 };\n\
                   let b = match o { Some(v) => v, _ => 0 };\n\
                   a + b\n}\n";
        let f = facts(src, "crates/obs/src/aggregate.rs");
        assert_eq!(f.wildcard_arms.len(), 1);
        assert_eq!(f.wildcard_arms[0].line, 2);
    }

    #[test]
    fn nested_non_event_match_is_not_flagged() {
        // The wildcard lives in the inner Option match (depth 2 for the
        // outer event match; the inner match itself has no SimEvent).
        let src = "fn f(ev: &SimEvent, o: Option<u32>) -> u32 {\n\
                   match ev {\n\
                       SimEvent::JobStarted { .. } => match o { Some(v) => v, _ => 0 },\n\
                       SimEvent::JobFinished { .. } => 1,\n\
                   }\n}\n";
        let f = facts(src, "crates/obs/src/aggregate.rs");
        assert!(f.wildcard_arms.is_empty(), "{:?}", f.wildcard_arms);
    }

    #[test]
    fn literal_values_parse_across_radices() {
        assert_eq!(parse_u64_literal("42"), Some(42));
        assert_eq!(parse_u64_literal("0xa441_u64"), Some(0xa441));
        assert_eq!(parse_u64_literal("0b1010"), Some(10));
        assert_eq!(parse_u64_literal("1_000_000"), Some(1_000_000));
    }
}
