//! A comment/string/char-literal-aware lexer for Rust source.
//!
//! This is not a full Rust lexer: it only needs to be precise about
//! *what is code and what is not* so the rule engine never matches
//! pattern text inside comments, string literals (including raw and
//! byte strings), or char literals. Everything that *is* code comes
//! out as a flat token stream of identifiers, literals, lifetimes and
//! single-character punctuation, each tagged with its 1-based line and
//! byte column.
//!
//! The lexer never panics, even on malformed input (unterminated
//! strings or comments simply run to end of file), and it preserves
//! line accounting exactly: [`strip`] blanks out non-code bytes while
//! keeping every newline, so offsets and line numbers in the stripped
//! text match the original. A proptest pins both properties.

/// What a token is, as far as the rule engine cares.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (one token per literal, suffix included).
    Number,
    /// A lifetime such as `'a` (kept distinct from char literals).
    Lifetime,
    /// A string, raw string, byte string or char literal. The token
    /// text is a placeholder — the contents are deliberately dropped.
    Literal,
    /// A single punctuation byte (`.`, `(`, `{`, `;`, `!`, ...).
    Punct,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token text; for [`TokKind::Literal`] this is `"\"\""` regardless
    /// of the original contents.
    pub text: String,
    /// Kind tag.
    pub kind: TokKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column of the first byte.
    pub col: u32,
}

/// A comment (line or block) with its starting position. Directive
/// parsing (`detlint::allow(...)`) runs over these.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Comment text including the `//` / `/* */` delimiters.
    pub text: String,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based line of the last byte (block comments span lines).
    pub end_line: u32,
}

/// The result of lexing one file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Cursor<'a> {
        Cursor {
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, maintaining line/col.
    fn bump(&mut self) {
        if let Some(b) = self.peek() {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// If a string literal starts at the cursor — `"`, `r"`, `r#"`, `b"`,
/// `br#"`, `c"`, ... — returns `(prefix_len, is_raw)` where
/// `prefix_len` counts the letters before the quote/hashes. Plain
/// identifiers that merely begin with r/b/c return `None`.
fn string_start(c: &Cursor<'_>) -> Option<(usize, bool)> {
    let b0 = c.peek()?;
    if b0 == b'"' {
        return Some((0, false));
    }
    let is_prefix_letter = |b: u8| matches!(b, b'r' | b'b' | b'c');
    if !is_prefix_letter(b0) {
        return None;
    }
    let mut i = 1;
    if c.peek_at(1)
        .is_some_and(|b1| is_prefix_letter(b1) && b1 != b0)
    {
        i = 2;
    }
    let has_r = (0..i).any(|k| c.peek_at(k) == Some(b'r'));
    if has_r {
        // Raw forms allow `#`s between the prefix and the quote.
        let mut j = i;
        while c.peek_at(j) == Some(b'#') {
            j += 1;
        }
        if c.peek_at(j) == Some(b'"') {
            return Some((i, true));
        }
        return None;
    }
    if c.peek_at(i) == Some(b'"') {
        return Some((i, false));
    }
    None
}

/// Lexes `src`. Never panics; malformed literals run to end of input.
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor::new(src);
    let mut out = Lexed::default();
    while let Some(b) = c.peek() {
        let (line, col) = (c.line, c.col);
        match b {
            b'/' if c.peek_at(1) == Some(b'/') => {
                let start = c.pos;
                while let Some(b) = c.peek() {
                    if b == b'\n' {
                        break;
                    }
                    c.bump();
                }
                out.comments.push(Comment {
                    text: String::from_utf8_lossy(&c.bytes[start..c.pos]).into_owned(),
                    line,
                    end_line: line,
                });
            }
            b'/' if c.peek_at(1) == Some(b'*') => {
                let start = c.pos;
                c.bump_n(2);
                let mut depth = 1u32;
                while depth > 0 {
                    match (c.peek(), c.peek_at(1)) {
                        (None, _) => break,
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            c.bump_n(2);
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            c.bump_n(2);
                        }
                        _ => c.bump(),
                    }
                }
                out.comments.push(Comment {
                    text: String::from_utf8_lossy(&c.bytes[start..c.pos]).into_owned(),
                    line,
                    end_line: c.line,
                });
            }
            b'\'' => {
                // Char literal or lifetime. `'a` / `'static` are
                // lifetimes: an identifier after the quote that is NOT
                // closed by another quote.
                let after = c.peek_at(1);
                let is_lifetime = match after {
                    Some(a) if is_ident_start(a) && a != b'\\' => {
                        // Scan the identifier; lifetime iff no closing quote.
                        let mut k = 2;
                        while c.peek_at(k).is_some_and(is_ident_continue) {
                            k += 1;
                        }
                        c.peek_at(k) != Some(b'\'')
                    }
                    _ => false,
                };
                if is_lifetime {
                    c.bump(); // '
                    let mut text = String::from("'");
                    while let Some(b) = c.peek() {
                        if !is_ident_continue(b) {
                            break;
                        }
                        text.push(b as char);
                        c.bump();
                    }
                    out.toks.push(Tok {
                        text,
                        kind: TokKind::Lifetime,
                        line,
                        col,
                    });
                } else {
                    // Char literal: 'x', '\n', '\'', '\u{1F600}'.
                    c.bump(); // opening '
                    loop {
                        match c.peek() {
                            None => break,
                            Some(b'\\') => {
                                c.bump();
                                c.bump();
                            }
                            Some(b'\'') => {
                                c.bump();
                                break;
                            }
                            _ => c.bump(),
                        }
                    }
                    out.toks.push(Tok {
                        text: "''".to_string(),
                        kind: TokKind::Literal,
                        line,
                        col,
                    });
                }
            }
            _ if string_start(&c).is_some() => {
                // Only reached when a quote genuinely follows the
                // prefix (plain identifiers starting with r/b/c fall
                // through to the ident arm below because string_start
                // returns None for them).
                let (prefix, raw) = string_start(&c).unwrap_or((0, false));
                c.bump_n(prefix);
                let mut hashes = 0usize;
                while c.peek() == Some(b'#') {
                    hashes += 1;
                    c.bump();
                }
                c.bump(); // opening quote
                if raw {
                    // Scan for `"` followed by `hashes` hashes.
                    'outer: while let Some(b) = c.peek() {
                        if b == b'"' {
                            let mut ok = true;
                            for k in 0..hashes {
                                if c.peek_at(1 + k) != Some(b'#') {
                                    ok = false;
                                    break;
                                }
                            }
                            if ok {
                                c.bump_n(1 + hashes);
                                break 'outer;
                            }
                        }
                        c.bump();
                    }
                } else {
                    while let Some(b) = c.peek() {
                        match b {
                            b'\\' => {
                                c.bump();
                                c.bump();
                            }
                            b'"' => {
                                c.bump();
                                break;
                            }
                            _ => c.bump(),
                        }
                    }
                }
                out.toks.push(Tok {
                    text: "\"\"".to_string(),
                    kind: TokKind::Literal,
                    line,
                    col,
                });
            }
            _ if is_ident_start(b) => {
                let start = c.pos;
                while c.peek().is_some_and(is_ident_continue) {
                    c.bump();
                }
                out.toks.push(Tok {
                    text: String::from_utf8_lossy(&c.bytes[start..c.pos]).into_owned(),
                    kind: TokKind::Ident,
                    line,
                    col,
                });
            }
            _ if b.is_ascii_digit() => {
                let start = c.pos;
                c.bump();
                loop {
                    match c.peek() {
                        Some(x) if x.is_ascii_alphanumeric() || x == b'_' => c.bump(),
                        // A fraction only if a digit follows the dot,
                        // so `0..n` stays three tokens.
                        Some(b'.') if c.peek_at(1).is_some_and(|d| d.is_ascii_digit()) => {
                            c.bump();
                        }
                        _ => break,
                    }
                }
                out.toks.push(Tok {
                    text: String::from_utf8_lossy(&c.bytes[start..c.pos]).into_owned(),
                    kind: TokKind::Number,
                    line,
                    col,
                });
            }
            b' ' | b'\t' | b'\r' | b'\n' => c.bump(),
            _ => {
                c.bump();
                out.toks.push(Tok {
                    text: (b as char).to_string(),
                    kind: TokKind::Punct,
                    line,
                    col,
                });
            }
        }
    }
    out
}

/// Returns `src` with every comment byte and every literal-interior
/// byte replaced by a space, newlines preserved. The result has
/// exactly the same length in bytes and the same number of lines as
/// the input — the round-trip property the proptest pins.
pub fn strip(src: &str) -> String {
    // Re-lex and blank everything that is not a code token.
    let mut out: Vec<u8> = src
        .as_bytes()
        .iter()
        .map(|&b| if b == b'\n' { b'\n' } else { b' ' })
        .collect();
    let lexed = lex(src);
    // Paint code tokens back in by position.
    let line_starts: Vec<usize> = std::iter::once(0)
        .chain(
            src.bytes()
                .enumerate()
                .filter(|&(_, b)| b == b'\n')
                .map(|(i, _)| i + 1),
        )
        .collect();
    for t in &lexed.toks {
        if t.kind == TokKind::Literal {
            continue; // literal contents stay blanked
        }
        let Some(&ls) = line_starts.get(t.line as usize - 1) else {
            continue;
        };
        let start = ls + (t.col as usize - 1);
        let end = (start + t.text.len()).min(out.len());
        if start <= end && end <= src.len() {
            out[start..end].copy_from_slice(&src.as_bytes()[start..end]);
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn skips_comments_and_strings() {
        let src = r##"
// HashMap in a comment
/* unwrap() in /* nested */ block */
let s = "HashMap.iter() unwrap()";
let r = r#"thread_rng "quoted" inside"#;
let c = 'x';
let l: &'static str = "y";
real_ident
"##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"thread_rng".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'a str { x }").toks;
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(!toks.iter().any(|t| t.kind == TokKind::Literal));
    }

    #[test]
    fn char_literal_with_quote_escape() {
        let toks = lex(r"let q = '\''; let n = '\n'; after").toks;
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Literal).count(),
            2
        );
        assert!(toks.iter().any(|t| t.text == "after"));
    }

    #[test]
    fn comment_lines_recorded() {
        let src = "a\n// one\nb\n/* two\nlines */\nc\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 2);
        assert_eq!(lexed.comments[1].line, 4);
        assert_eq!(lexed.comments[1].end_line, 5);
    }

    #[test]
    fn strip_preserves_length_and_lines() {
        let src = "let a = \"x\\\"y\"; // c\nlet b = 1;\n";
        let s = strip(src);
        assert_eq!(s.len(), src.len());
        assert_eq!(s.lines().count(), src.lines().count());
        assert!(s.contains("let a"));
        assert!(!s.contains("// c"));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = lex("for i in 0..n { }").toks;
        let texts: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"0"));
        assert!(texts.contains(&"n"));
        assert_eq!(texts.iter().filter(|&&t| t == ".").count(), 2);
    }

    #[test]
    fn raw_ident_prefix_letters_still_lex_as_idents() {
        let ids = idents("let rate = 1; let bytes = 2; let cost = rate;");
        assert!(ids.contains(&"rate".to_string()));
        assert!(ids.contains(&"bytes".to_string()));
        assert!(ids.contains(&"cost".to_string()));
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"abc", "/* abc", "r#\"abc", "'", "b\"x"] {
            let _ = lex(src);
            let s = strip(src);
            assert_eq!(s.len(), src.len());
        }
    }
}
