//! `detlint` — workspace determinism and panic-hygiene static
//! analysis.
//!
//! Every figure and golden in this reproduction rests on bit-identical
//! replay; this crate enforces the *sources* of that determinism
//! statically instead of waiting for a golden digest to break. It is
//! dependency-free by policy (no `syn`; see the vendored-stand-in note
//! in the workspace `Cargo.toml`): a small comment/string/char-aware
//! lexer ([`lexer`]) feeds a token-pattern rule engine ([`rules`]).
//!
//! Rules (full table in DESIGN.md §9):
//!
//! - **D1** — no `HashMap`/`HashSet` in determinism-critical crates
//!   unless the site is annotated or the iteration is ordered.
//! - **D2** — no wall-clock reads or ambient entropy outside `bench`.
//! - **D3** — no float sorts through `partial_cmp` (use `total_cmp`).
//! - **P1** — no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`
//!   in non-test code of user-input-reachable crates.
//! - **U1** — no `unsafe` outside a reviewed file allowlist.
//! - **S1** — every `SimEvent::Variant` mention in determinism crates
//!   must have a matching snake_case kind in the obs trace schema, and
//!   the event vocabulary file must cover every schema kind.
//!
//! Three rule families need the whole workspace at once and run as a
//! second, cross-file phase over a lightweight index ([`index`]):
//!
//! - **R1** — every `.fork(...)` label in stream-disciplined crates
//!   must be a named `*_STREAM` constant; two constants in one crate
//!   sharing a label value, or one name with different values in two
//!   crates, are findings.
//! - **U2** — `unsafe` inside the U1 allowlist must be immediately
//!   preceded by a `// SAFETY:` comment with a non-empty rationale.
//! - **M1** — `match`es involving `SimEvent` in the configured obs
//!   consumer files must not use a wildcard `_` arm.
//!
//! Suppression is per-site and must carry a reason:
//!
//! ```text
//! // detlint::allow(D1, reason = "lookup-only index, never iterated")
//! ```
//!
//! Two frontends gate the workspace: `cargo run -p detlint -- check`
//! (CI job, non-zero exit on findings) and
//! `tests/integration_detlint.rs`, which runs [`check_workspace`]
//! in-process so plain `cargo test` catches regressions too.

pub mod config;
pub mod index;
pub mod lexer;
pub mod report;
pub mod rules;

pub use config::{Config, FileContext};
pub use index::{cross_file_pass, index_file, FileFacts};
pub use report::{render_human, render_json};
pub use rules::{lint_source, Finding, RuleId};

use std::path::{Path, PathBuf};

/// The two-phase workspace pass over in-memory sources. Phase 1 runs
/// the per-file rules and builds each file's [`FileFacts`]; phase 2
/// judges the cross-file rules (R1/U2/M1) over the whole index. The
/// report is byte-identical for any permutation of `files`: per-file
/// work is independent, the cross-file pass orders the index by path
/// internally, and the merged findings are sorted by
/// (file, line, col, rule) here.
pub fn lint_files(files: &[(FileContext, String)], cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut facts = Vec::with_capacity(files.len());
    for (ctx, src) in files {
        findings.extend(lint_source(src, ctx, cfg));
        facts.push(index_file(src, ctx));
    }
    findings.extend(cross_file_pass(&facts, cfg));
    // Stable sort: equal keys (e.g. two R1 conflicts anchored at one
    // declaration) keep the deterministic order phase 2 emitted.
    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    findings
}

/// Reads every `.rs` file under `<root>/crates/` into `(context,
/// source)` pairs, in path-sorted order. Skips `target/` and any
/// `fixtures/` directory (fixture files violate rules on purpose).
///
/// # Errors
///
/// Returns the underlying [`std::io::Error`] if the tree cannot be
/// read.
pub fn read_workspace(root: &Path) -> std::io::Result<Vec<(FileContext, String)>> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files)?;
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for file in files {
        let src = std::fs::read_to_string(&file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        out.push((FileContext::from_repo_path(&rel), src));
    }
    Ok(out)
}

/// Lints every `.rs` file under `<root>/crates/`: [`read_workspace`]
/// followed by the two-phase [`lint_files`] pass.
///
/// # Errors
///
/// Returns the underlying [`std::io::Error`] if the tree cannot be
/// read.
pub fn check_workspace(root: &Path, cfg: &Config) -> std::io::Result<Vec<Finding>> {
    Ok(lint_files(&read_workspace(root)?, cfg))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d1_flags_hash_decl_and_iteration_in_det_crate() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   fn f(s: &S) -> Vec<u32> { s.m.keys().copied().collect() }\n";
        let ctx = FileContext::from_repo_path("crates/scheduler/src/lib.rs");
        let findings = lint_source(src, &ctx, &Config::default());
        assert!(findings.iter().any(|f| f.rule == RuleId::D1 && f.line == 1));
        assert!(findings
            .iter()
            .any(|f| f.rule == RuleId::D1 && f.line == 2 && f.message.contains("keys")));
    }

    #[test]
    fn d1_ignores_non_determinism_crates_and_tests() {
        let src = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); for _ in m.keys() {} }\n";
        let cli = FileContext::from_repo_path("crates/cli/src/commands.rs");
        assert!(lint_source(src, &cli, &Config::default()).is_empty());
        let test_file = FileContext::from_repo_path("crates/scheduler/tests/proptests.rs");
        assert!(lint_source(src, &test_file, &Config::default()).is_empty());
    }

    #[test]
    fn d1_sorted_in_same_statement_is_ok() {
        let src = "fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
                   // detlint::allow(D1, reason = \"exercise the iteration escape\")\n\
                   let v: std::collections::BTreeSet<u32> = m.keys().copied().collect();\n\
                   v.into_iter().collect()\n}\n";
        let ctx = FileContext::from_repo_path("crates/scheduler/src/lib.rs");
        let findings = lint_source(src, &ctx, &Config::default());
        // Declaration on line 1 still flags; the iteration on line 3 is
        // escaped by the BTreeSet collect (the allow covers the decl
        // check on that line instead).
        assert!(findings.iter().all(|f| f.line == 1), "{findings:?}");
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "// detlint::allow(D2, reason = \"probe only, value unused\")\n\
                   fn f() { let _ = Instant::now(); }\n";
        let ctx = FileContext::from_repo_path("crates/cluster/src/lib.rs");
        assert!(lint_source(src, &ctx, &Config::default()).is_empty());
    }

    #[test]
    fn allow_without_reason_is_a_finding() {
        let src = "// detlint::allow(D2)\nfn f() { let _ = Instant::now(); }\n";
        let ctx = FileContext::from_repo_path("crates/cluster/src/lib.rs");
        let findings = lint_source(src, &ctx, &Config::default());
        assert!(findings.iter().any(|f| f.rule == RuleId::A0));
        assert!(findings.iter().any(|f| f.rule == RuleId::D2));
    }

    #[test]
    fn workspace_check_walks_sorted_and_skips_fixtures() {
        // Smoke: run on this repo's own tree. The full zero-findings
        // assertion lives in tests/integration_detlint.rs; here we only
        // check the walker terminates and output order is by path.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = check_workspace(&root, &Config::default()).expect("walk");
        let paths: Vec<&String> = findings.iter().map(|f| &f.path).collect();
        let mut sorted = paths.clone();
        sorted.sort();
        assert_eq!(paths, sorted);
        assert!(findings.iter().all(|f| !f.path.contains("fixtures/")));
    }
}
