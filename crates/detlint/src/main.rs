//! CLI frontend: `cargo run -p detlint -- check [--format human|json]
//! [--root PATH]`. Exits 0 on a clean tree, 1 when findings exist,
//! 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use detlint::{check_workspace, render_human, render_json, Config};

const USAGE: &str = "usage: detlint check [--format human|json] [--root PATH]

Runs the workspace determinism & panic-hygiene rules (per-file: D1,
D2, D3, P1, U1, S1; cross-file over the workspace index: R1 stream
hygiene, U2 SAFETY audit, M1 event exhaustiveness; see DESIGN.md §9)
over every .rs file under <root>/crates/.
Exit status: 0 clean, 1 findings, 2 usage/I-O error.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("detlint: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {}
        Some("--help") | Some("-h") | None => return Err("expected the `check` subcommand".into()),
        Some(other) => return Err(format!("unknown subcommand `{other}`")),
    }
    let mut format = "human".to_string();
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                let value = it.next().ok_or("--format needs a value")?;
                if value != "human" && value != "json" {
                    return Err(format!("--format must be human or json, got `{value}`"));
                }
                format = value.clone();
            }
            "--root" => {
                root = Some(PathBuf::from(
                    it.next().ok_or("--root needs a value")?.clone(),
                ));
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    // When run via `cargo run -p detlint`, cwd is the workspace root;
    // fall back to the crate's grandparent for direct invocations.
    let root = root.unwrap_or_else(|| {
        let cwd = PathBuf::from(".");
        if cwd.join("crates").is_dir() {
            cwd
        } else {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
        }
    });
    let findings =
        check_workspace(&root, &Config::default()).map_err(|e| format!("reading tree: {e}"))?;
    let rendered = if format == "json" {
        render_json(&findings)
    } else {
        render_human(&findings)
    };
    print!("{rendered}");
    Ok(findings.is_empty())
}
