//! Human and JSON renderers for findings. The JSON form uses a fixed
//! field order and the same hand-rolled escaping conventions as
//! `obs::jsonl`, so goldens compare byte-for-byte.

use std::collections::BTreeMap;

use crate::rules::Finding;

/// Per-rule finding counts in rule-id order (`BTreeMap` keeps the
/// report stable byte-for-byte).
fn rule_counts(findings: &[Finding]) -> BTreeMap<&'static str, usize> {
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for f in findings {
        *counts.entry(f.rule.as_str()).or_insert(0) += 1;
    }
    counts
}

/// Renders findings for terminals: `path:line:col: RULE: message`
/// with the offending snippet and a fix hint, then a summary line
/// with per-rule counts.
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}:{}: {}: {}\n",
            f.path,
            f.line,
            f.col,
            f.rule.as_str(),
            f.message
        ));
        if !f.snippet.is_empty() {
            out.push_str(&format!("    | {}\n", f.snippet));
        }
        out.push_str(&format!("    = help: {}\n", f.hint));
    }
    if findings.is_empty() {
        out.push_str("detlint: no findings\n");
    } else {
        let by_rule: Vec<String> = rule_counts(findings)
            .iter()
            .map(|(rule, n)| format!("{rule} {n}"))
            .collect();
        out.push_str(&format!(
            "detlint: {} finding{} ({})\n",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" },
            by_rule.join(", ")
        ));
    }
    out
}

/// Renders the JSON report: a summary block (total + per-rule counts
/// in rule-id order) followed by the findings. Callers pass findings
/// already sorted by (file, line, col, rule) — [`crate::lint_files`]
/// pins that order — so reports diff cleanly across runs.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"summary\": {\"total\": ");
    out.push_str(&findings.len().to_string());
    out.push_str(", \"by_rule\": {");
    for (i, (rule, n)) in rule_counts(findings).iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{}: {}", json_str(rule), n));
    }
    out.push_str("}},\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"message\":{},\"snippet\":{},\"hint\":{}}}",
            json_str(&f.path),
            f.line,
            f.col,
            json_str(f.rule.as_str()),
            json_str(&f.message),
            json_str(&f.snippet),
            json_str(&f.hint),
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, RuleId};

    fn finding() -> Finding {
        Finding {
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 7,
            rule: RuleId::D1,
            message: "HashMap in determinism-critical crate `x`".into(),
            snippet: "let m: HashMap<u32, \"q\"> = ..;".into(),
            hint: "use BTreeMap".into(),
        }
    }

    #[test]
    fn human_format_lists_and_counts() {
        let text = render_human(&[finding()]);
        assert!(text.contains("crates/x/src/lib.rs:3:7: D1:"));
        assert!(text.contains("= help: use BTreeMap"));
        assert!(text.ends_with("detlint: 1 finding (D1 1)\n"));
        assert_eq!(render_human(&[]), "detlint: no findings\n");
    }

    #[test]
    fn json_is_parseable_and_escaped() {
        let text = render_json(&[finding()]);
        assert!(text.contains("\\\"q\\\""));
        assert!(text.contains("\"rule\":\"D1\""));
        assert!(text.starts_with("{\n  \"summary\": {\"total\": 1, \"by_rule\": {\"D1\": 1}},\n"));
        assert!(text.ends_with("]\n}\n"));
        assert_eq!(
            render_json(&[]),
            "{\n  \"summary\": {\"total\": 0, \"by_rule\": {}},\n  \"findings\": []\n}\n"
        );
    }

    #[test]
    fn summary_counts_group_by_rule_in_id_order() {
        let mut a = finding();
        let mut b = finding();
        b.rule = RuleId::A0;
        a.line = 4;
        let text = render_json(&[finding(), a, b]);
        assert!(text.contains("\"by_rule\": {\"A0\": 1, \"D1\": 2}"));
    }
}
