//! Human and JSON renderers for findings. The JSON form uses a fixed
//! field order and the same hand-rolled escaping conventions as
//! `obs::jsonl`, so goldens compare byte-for-byte.

use crate::rules::Finding;

/// Renders findings for terminals: `path:line:col: RULE: message`
/// with the offending snippet and a fix hint, then a summary line.
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}:{}: {}: {}\n",
            f.path,
            f.line,
            f.col,
            f.rule.as_str(),
            f.message
        ));
        if !f.snippet.is_empty() {
            out.push_str(&format!("    | {}\n", f.snippet));
        }
        out.push_str(&format!("    = help: {}\n", f.hint));
    }
    if findings.is_empty() {
        out.push_str("detlint: no findings\n");
    } else {
        out.push_str(&format!(
            "detlint: {} finding{}\n",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        ));
    }
    out
}

/// Renders findings as a JSON array with fixed field order.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"message\":{},\"snippet\":{},\"hint\":{}}}",
            json_str(&f.path),
            f.line,
            f.col,
            json_str(f.rule.as_str()),
            json_str(&f.message),
            json_str(&f.snippet),
            json_str(&f.hint),
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, RuleId};

    fn finding() -> Finding {
        Finding {
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 7,
            rule: RuleId::D1,
            message: "HashMap in determinism-critical crate `x`".into(),
            snippet: "let m: HashMap<u32, \"q\"> = ..;".into(),
            hint: "use BTreeMap".into(),
        }
    }

    #[test]
    fn human_format_lists_and_counts() {
        let text = render_human(&[finding()]);
        assert!(text.contains("crates/x/src/lib.rs:3:7: D1:"));
        assert!(text.contains("= help: use BTreeMap"));
        assert!(text.ends_with("detlint: 1 finding\n"));
        assert_eq!(render_human(&[]), "detlint: no findings\n");
    }

    #[test]
    fn json_is_parseable_and_escaped() {
        let text = render_json(&[finding()]);
        assert!(text.contains("\\\"q\\\""));
        assert!(text.contains("\"rule\":\"D1\""));
        assert!(text.starts_with("[\n"));
        assert!(text.ends_with("]\n"));
        assert_eq!(render_json(&[]), "[]\n");
    }
}
