//! The rule engine: runs the determinism and panic-hygiene rules over
//! a lexed token stream.
//!
//! | Rule | What it rejects |
//! |------|-----------------|
//! | D1   | `HashMap`/`HashSet` use (declaration or iteration) in determinism-critical crates, unless the iteration is sorted/`BTree`-collected in the same statement |
//! | D2   | Wall-clock reads (`Instant`, `SystemTime`, `UNIX_EPOCH`) and ambient entropy (`thread_rng`, `from_entropy`, `OsRng`, `getrandom`) outside `bench` |
//! | D3   | Float comparator panics: `partial_cmp` inside `sort_by`/`max_by`/`min_by`-style calls (use `total_cmp`) |
//! | P1   | `unwrap()`/`expect()`/`panic!`/`todo!`/`unimplemented!` in non-test code of user-input-reachable crates |
//! | U1   | `unsafe` outside the reviewed allowlist |
//! | S1   | `SimEvent::Variant` mentions whose snake_case kind is absent from the obs trace schema (and, in the event vocabulary file, schema kinds with no variant) |
//! | A0   | Malformed suppressions: `detlint::allow` without a reason, or with an unknown rule id |
//!
//! Suppression is per-site: `// detlint::allow(D1, reason = "...")` on
//! the offending line (trailing) or on the line directly above the
//! offending code. The reason string is mandatory and must be
//! non-empty — an allow without one is itself a finding (A0).

use crate::config::{Config, FileContext};
use crate::lexer::{lex, Lexed, Tok, TokKind};

/// Identifies a rule in reports and `detlint::allow` directives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Unordered hash-collection use in a determinism-critical crate.
    D1,
    /// Wall-clock or ambient-entropy access.
    D2,
    /// Float sort through `partial_cmp`.
    D3,
    /// Panic in user-input-reachable non-test code.
    P1,
    /// `unsafe` outside the allowlist.
    U1,
    /// `SimEvent` variant out of sync with the trace schema.
    S1,
    /// RNG stream label that is not a named `*_STREAM` constant, or
    /// colliding/conflicting stream-constant declarations.
    R1,
    /// Allowlisted `unsafe` without an immediately preceding
    /// `// SAFETY:` comment.
    U2,
    /// Wildcard `_` arm in a `match` involving `SimEvent`.
    M1,
    /// Malformed `detlint::allow` directive.
    A0,
}

impl RuleId {
    /// The short id used in reports and allow directives.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::D3 => "D3",
            RuleId::P1 => "P1",
            RuleId::U1 => "U1",
            RuleId::S1 => "S1",
            RuleId::R1 => "R1",
            RuleId::U2 => "U2",
            RuleId::M1 => "M1",
            RuleId::A0 => "A0",
        }
    }

    fn parse(text: &str) -> Option<RuleId> {
        match text {
            "D1" => Some(RuleId::D1),
            "D2" => Some(RuleId::D2),
            "D3" => Some(RuleId::D3),
            "P1" => Some(RuleId::P1),
            "U1" => Some(RuleId::U1),
            "S1" => Some(RuleId::S1),
            "R1" => Some(RuleId::R1),
            "U2" => Some(RuleId::U2),
            "M1" => Some(RuleId::M1),
            "A0" => Some(RuleId::A0),
            _ => None,
        }
    }
}

/// One diagnostic: where, which rule, what, and how to fix it.
#[derive(Clone, Debug, PartialEq)]
pub struct Finding {
    /// Repo-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// The violated rule.
    pub rule: RuleId,
    /// What was found.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// How to fix or legitimately suppress it.
    pub hint: String,
}

/// A parsed `detlint::allow(...)` directive.
pub(crate) struct Allow {
    pub(crate) rules: Vec<RuleId>,
    /// Lines the directive covers: its own line span plus the next
    /// line that carries code.
    pub(crate) covers: Vec<u32>,
}

impl Allow {
    /// True if this directive silences `rule` on `line`.
    pub(crate) fn covers(&self, rule: RuleId, line: u32) -> bool {
        self.rules.contains(&rule) && self.covers.contains(&line)
    }
}

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

const SORT_LIKE: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "max_by",
    "min_by",
    "binary_search_by",
];

const CLOCK_IDENTS: &[&str] = &["Instant", "SystemTime", "UNIX_EPOCH"];
const ENTROPY_IDENTS: &[&str] = &["thread_rng", "from_entropy", "OsRng", "getrandom"];
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// Runs every rule over `src` and returns findings ordered by
/// position. `ctx` scopes the rules (crate name, tests dir); `cfg`
/// holds the workspace policy.
pub fn lint_source(src: &str, ctx: &FileContext, cfg: &Config) -> Vec<Finding> {
    let lexed = lex(src);
    let lines: Vec<&str> = src.lines().collect();
    let snippet = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };
    let regions = test_regions(&lexed.toks);
    let in_test = |line: u32| regions.iter().any(|&(a, b)| (a..=b).contains(&line));
    let (allows, mut findings) = parse_allows(&lexed, ctx, &snippet);
    let suppressed = |rule: RuleId, line: u32| allows.iter().any(|a| a.covers(rule, line));

    let push =
        |rule: RuleId, tok: &Tok, message: String, hint: &str, findings: &mut Vec<Finding>| {
            if !suppressed(rule, tok.line) {
                findings.push(Finding {
                    path: ctx.path.clone(),
                    line: tok.line,
                    col: tok.col,
                    rule,
                    message,
                    snippet: snippet(tok.line),
                    hint: hint.to_string(),
                });
            }
        };

    let toks = &lexed.toks;
    let det_crate = cfg.determinism_crates.contains(&ctx.crate_name);
    let panic_crate = cfg.panic_crates.contains(&ctx.crate_name);
    let d2_exempt = cfg.d2_exempt_crates.contains(&ctx.crate_name);
    let unsafe_ok = cfg.allows_unsafe(&ctx.path);

    // --- D1: hash collections in determinism-critical crates -------
    if det_crate && !ctx.in_tests_dir {
        let in_use = use_statement_mask(toks);
        let hash_idents = hash_bound_idents(toks);
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            // D1 (declaration/type use): any HashMap/HashSet mention
            // outside `use` imports.
            if (t.text == "HashMap" || t.text == "HashSet") && !in_use[i] && !in_test(t.line) {
                push(
                    RuleId::D1,
                    t,
                    format!(
                        "{} in determinism-critical crate `{}`",
                        t.text, ctx.crate_name
                    ),
                    "iteration order is unordered and seed-dependent; use BTreeMap/BTreeSet, \
                     or keep a lookup-only map with \
                     // detlint::allow(D1, reason = \"...\")",
                    &mut findings,
                );
            }
            // D1 (iteration): `<hash>.iter()` etc. without a
            // same-statement sort or BTree collect.
            if hash_idents.contains(&t.text)
                && !in_test(t.line)
                && toks.get(i + 1).is_some_and(|d| d.text == ".")
                && toks
                    .get(i + 2)
                    .is_some_and(|m| ITER_METHODS.contains(&m.text.as_str()))
                && toks.get(i + 3).is_some_and(|p| p.text == "(")
                && !statement_orders_result(toks, i)
            {
                let m = &toks[i + 2];
                push(
                    RuleId::D1,
                    m,
                    format!(
                        "iteration over hash collection `{}` via `{}()` without ordering",
                        t.text, m.text
                    ),
                    "sort the collected result in the same statement, collect into a \
                     BTreeMap/BTreeSet, or switch the collection itself to an ordered type",
                    &mut findings,
                );
            }
            // D1 (iteration): `for x in <hash> {` / `for x in &<hash> {`.
            if t.text == "for" {
                if let Some((recv_i, recv)) = for_loop_receiver(toks, i) {
                    if hash_idents.contains(&recv.text)
                        && !in_test(recv.line)
                        && toks.get(recv_i + 1).is_some_and(|n| n.text == "{")
                    {
                        push(
                            RuleId::D1,
                            recv,
                            format!("`for` loop over hash collection `{}`", recv.text),
                            "iterate a sorted copy of the keys, or switch the collection \
                             to a BTreeMap/BTreeSet",
                            &mut findings,
                        );
                    }
                }
            }
        }
    }

    // --- D2: wall clock and ambient entropy -------------------------
    if !d2_exempt {
        for t in toks {
            if t.kind != TokKind::Ident {
                continue;
            }
            if CLOCK_IDENTS.contains(&t.text.as_str()) {
                push(
                    RuleId::D2,
                    t,
                    format!("wall-clock access via `{}`", t.text),
                    "simulated time must come from simkit::time; real time is only \
                     allowed in the bench crate",
                    &mut findings,
                );
            } else if ENTROPY_IDENTS.contains(&t.text.as_str()) {
                push(
                    RuleId::D2,
                    t,
                    format!("ambient entropy via `{}`", t.text),
                    "all randomness must flow through a seeded simkit::rng::SimRng stream",
                    &mut findings,
                );
            }
        }
    }

    // --- D3: float sorts through partial_cmp ------------------------
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && SORT_LIKE.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|p| p.text == "(")
            && paren_span_contains(toks, i + 1, "partial_cmp")
        {
            push(
                RuleId::D3,
                t,
                format!("`{}` comparator uses `partial_cmp`", t.text),
                "partial_cmp on floats panics or misorders on NaN; use f64::total_cmp",
                &mut findings,
            );
        }
    }

    // --- P1: panics in user-input-reachable code --------------------
    if panic_crate && !ctx.in_tests_dir {
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident || in_test(t.line) {
                continue;
            }
            if (t.text == "unwrap" || t.text == "expect")
                && i > 0
                && toks[i - 1].text == "."
                && toks.get(i + 1).is_some_and(|p| p.text == "(")
            {
                push(
                    RuleId::P1,
                    t,
                    format!("`.{}()` in user-input-reachable code", t.text),
                    "return a typed error instead (see WorkloadError / BuildError / ArgError)",
                    &mut findings,
                );
            }
            if PANIC_MACROS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|p| p.text == "!")
            {
                push(
                    RuleId::P1,
                    t,
                    format!("`{}!` in user-input-reachable code", t.text),
                    "return a typed error instead (see WorkloadError / BuildError / ArgError)",
                    &mut findings,
                );
            }
        }
    }

    // --- U1: unsafe outside the allowlist ---------------------------
    if !unsafe_ok {
        for t in toks {
            if t.kind == TokKind::Ident && t.text == "unsafe" {
                push(
                    RuleId::U1,
                    t,
                    "`unsafe` outside the reviewed allowlist".to_string(),
                    "remove the unsafe block, or add this file to \
                     Config::unsafe_allow_files with a justification",
                    &mut findings,
                );
            }
        }
    }

    // --- S1: SimEvent variants vs the trace schema ------------------
    // Forward: every `SimEvent::Variant` mention in non-test code of a
    // determinism crate must name a schema event kind (the enum's
    // `kind()` contract is CamelCase variant → snake_case kind, so an
    // emit site of an unlisted variant would produce a trace line the
    // schema validator rejects). Reverse, in the event vocabulary file
    // only: every schema kind must still be mentioned as a variant —
    // a kind the enum cannot produce is schema rot.
    if det_crate && !ctx.in_tests_dir && !cfg.trace_event_kinds.is_empty() {
        let mut mentioned: Vec<String> = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident
                || t.text != "SimEvent"
                || toks.get(i + 1).is_none_or(|c| c.text != ":")
                || toks.get(i + 2).is_none_or(|c| c.text != ":")
            {
                continue;
            }
            let Some(v) = toks.get(i + 3) else {
                continue;
            };
            // Skip associated functions/consts (`SimEvent::kind` paths
            // are lowercase); only variant mentions are schema-bound.
            if v.kind != TokKind::Ident || !v.text.starts_with(|c: char| c.is_ascii_uppercase()) {
                continue;
            }
            let kind_name = camel_to_snake(&v.text);
            if !mentioned.contains(&kind_name) {
                mentioned.push(kind_name.clone());
            }
            if !in_test(v.line) && !cfg.trace_event_kinds.contains(&kind_name) {
                push(
                    RuleId::S1,
                    v,
                    format!(
                        "`SimEvent::{}` has no event kind `{}` in the trace schema",
                        v.text, kind_name
                    ),
                    "add the kind to crates/obs/schema/trace-v1.json (and obs::schema tests), \
                     or fix the variant name",
                    &mut findings,
                );
            }
        }
        if ctx.path == cfg.event_vocab_file {
            // Anchor reverse findings at the `enum SimEvent` item.
            let anchor = toks
                .iter()
                .zip(toks.iter().skip(1))
                .find(|(a, b)| a.text == "enum" && b.text == "SimEvent")
                .map(|(_, b)| b)
                .or(toks.first());
            if let Some(anchor) = anchor {
                for kind_name in &cfg.trace_event_kinds {
                    if !mentioned.contains(kind_name) {
                        push(
                            RuleId::S1,
                            anchor,
                            format!(
                                "trace schema declares event kind `{kind_name}` \
                                 but no SimEvent variant produces it"
                            ),
                            "remove the kind from crates/obs/schema/trace-v1.json, or add \
                             the matching variant to the SimEvent enum",
                            &mut findings,
                        );
                    }
                }
            }
        }
    }

    findings.sort_by_key(|f| (f.line, f.col, f.rule));
    findings
}

/// `JobSubmitted` → `job_submitted`: the `SimEvent::kind()` naming
/// contract, applied statically.
fn camel_to_snake(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// Marks tokens inside `use ...;` statements (imports are exempt from
/// the D1 declaration check — an unused import is clippy's job).
fn use_statement_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut in_use = false;
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident && t.text == "use" {
            in_use = true;
        }
        mask[i] = in_use;
        if t.text == ";" {
            in_use = false;
        }
    }
    mask
}

/// Identifiers bound to a hash-collection type in this file, from
/// `name: HashMap<..>` / `name: &mut HashSet<..>` bindings and
/// `name = HashMap::new()`-style initialisations.
fn hash_bound_idents(toks: &[Tok]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let skippable = |t: &Tok| {
        matches!(
            t.text.as_str(),
            ":" | "&" | "mut" | "std" | "collections" | "="
        ) || t.kind == TokKind::Lifetime
    };
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let Some(next) = toks.get(i + 1) else {
            continue;
        };
        if next.text != ":" && next.text != "=" {
            continue;
        }
        // Walk forward through type/path noise; bind if we land on a
        // hash type before anything else.
        let mut j = i + 1;
        while toks.get(j).is_some_and(skippable) {
            j += 1;
        }
        if toks
            .get(j)
            .is_some_and(|h| h.text == "HashMap" || h.text == "HashSet")
            && !out.contains(&t.text)
        {
            out.push(t.text.clone());
        }
    }
    out
}

/// True when the statement containing token `i` also mentions a sort
/// or a BTree collect — the "immediately ordered" escape for D1
/// iteration findings.
fn statement_orders_result(toks: &[Tok], i: usize) -> bool {
    // Statement start: walk back to the previous `;`, `{` or `}`.
    let mut start = i;
    while start > 0 {
        let t = &toks[start - 1].text;
        if t == ";" || t == "{" || t == "}" {
            break;
        }
        start -= 1;
    }
    // Statement end: forward to the `;` at depth 0 (closure bodies and
    // nested calls are skipped via depth tracking), capped for safety.
    let mut depth = 0i32;
    let mut end = i;
    for (k, t) in toks.iter().enumerate().skip(i).take(300) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth <= 0 => {
                end = k;
                break;
            }
            _ => {}
        }
        end = k;
    }
    toks[start..=end.min(toks.len() - 1)].iter().any(|t| {
        t.kind == TokKind::Ident
            && (t.text.starts_with("sort") || t.text == "BTreeMap" || t.text == "BTreeSet")
    })
}

/// For a `for` token at `i`, finds the loop's iterated identifier:
/// the ident after `in`, skipping `&` / `mut` / `self.` prefixes.
/// Returns the token index and token.
fn for_loop_receiver(toks: &[Tok], i: usize) -> Option<(usize, &Tok)> {
    let mut j = i + 1;
    let limit = (i + 40).min(toks.len());
    while j < limit && !(toks[j].kind == TokKind::Ident && toks[j].text == "in") {
        j += 1;
    }
    if j >= limit {
        return None;
    }
    j += 1;
    while toks
        .get(j)
        .is_some_and(|t| t.text == "&" || t.text == "mut")
    {
        j += 1;
    }
    if toks.get(j).is_some_and(|t| t.text == "self")
        && toks.get(j + 1).is_some_and(|t| t.text == ".")
    {
        j += 2;
    }
    let t = toks.get(j)?;
    if t.kind == TokKind::Ident {
        Some((j, t))
    } else {
        None
    }
}

/// True if the balanced paren span opening at token `open` (which must
/// be `(`) contains the identifier `needle`.
fn paren_span_contains(toks: &[Tok], open: usize, needle: &str) -> bool {
    let mut depth = 0i32;
    for t in toks.iter().skip(open).take(300) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            _ if t.kind == TokKind::Ident && t.text == needle => return true,
            _ => {}
        }
    }
    false
}

/// Line ranges covered by `#[test]` / `#[cfg(test)]` items (the
/// braced block following the attribute). `#[cfg(not(test))]` is not
/// a test region.
pub(crate) fn test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" && toks.get(i + 1).is_some_and(|t| t.text == "[") {
            let (attr_end, is_test) = scan_attr(toks, i + 1);
            if is_test {
                // Skip any stacked attributes between this one and the item.
                let mut j = attr_end;
                while toks.get(j).is_some_and(|t| t.text == "#")
                    && toks.get(j + 1).is_some_and(|t| t.text == "[")
                {
                    let (next_end, _) = scan_attr(toks, j + 1);
                    j = next_end;
                }
                // Find the item body.
                let mut k = j;
                while k < toks.len() && toks[k].text != "{" && toks[k].text != ";" {
                    k += 1;
                }
                if k < toks.len() && toks[k].text == "{" {
                    let close = matching_brace(toks, k);
                    regions.push((toks[i].line, toks[close.min(toks.len() - 1)].line));
                    i = k + 1;
                    continue;
                }
                i = k.saturating_add(1);
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    regions
}

/// Scans an attribute starting at its `[` token. Returns the index
/// just past the matching `]` and whether the attribute marks test
/// code (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ...))]` — but
/// not `#[cfg(not(test))]`).
fn scan_attr(toks: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut end = open;
    for (k, t) in toks.iter().enumerate().skip(open).take(100) {
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    end = k + 1;
                    break;
                }
            }
            _ => {}
        }
        end = k + 1;
    }
    let span = &toks[open..end.min(toks.len())];
    let has = |name: &str| {
        span.iter()
            .any(|t| t.kind == TokKind::Ident && t.text == name)
    };
    let is_test = has("test") && !has("not");
    (end, is_test)
}

fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Parses every `detlint::allow(...)` directive in the file's
/// comments. Returns the valid allows plus A0 findings for malformed
/// ones (missing/empty reason, unknown rule id).
pub(crate) fn parse_allows(
    lexed: &Lexed,
    ctx: &FileContext,
    snippet: &dyn Fn(u32) -> String,
) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    for c in &lexed.comments {
        // A directive must *start* the comment (after the `//` / `/*`
        // markers and doc sigils) — prose that merely mentions
        // `detlint::allow` is not a directive.
        let body = c
            .text
            .trim_start_matches('/')
            .trim_start_matches(['!', '*'])
            .trim_start();
        if !body.starts_with("detlint::allow") {
            continue;
        }
        let at = match c.text.find("detlint::allow") {
            Some(at) => at,
            None => continue,
        };
        let mut bad = |message: String| {
            findings.push(Finding {
                path: ctx.path.clone(),
                line: c.line,
                col: 1,
                rule: RuleId::A0,
                message,
                snippet: snippet(c.line),
                hint: "write // detlint::allow(<RULE>, reason = \"why this site is safe\")"
                    .to_string(),
            });
        };
        let rest = &c.text[at + "detlint::allow".len()..];
        // Find the closing paren outside the quoted reason string.
        let inner = rest.strip_prefix('(').and_then(|r| {
            let mut in_str = false;
            for (k, b) in r.bytes().enumerate() {
                match b {
                    b'"' => in_str = !in_str,
                    b')' if !in_str => return Some(&r[..k]),
                    _ => {}
                }
            }
            None
        });
        let Some(inner) = inner else {
            bad("detlint::allow directive is missing its (...) argument list".to_string());
            continue;
        };
        let mut rules = Vec::new();
        let mut reason: Option<&str> = None;
        for part in split_args(inner) {
            let part = part.trim();
            if let Some(r) = part.strip_prefix("reason") {
                let r = r.trim_start();
                let quoted = r
                    .strip_prefix('=')
                    .map(str::trim)
                    .and_then(|q| q.strip_prefix('"'))
                    .and_then(|q| q.strip_suffix('"'));
                match quoted {
                    Some(q) => reason = Some(q),
                    None => {
                        bad("detlint::allow reason must be reason = \"...\"".to_string());
                        reason = None;
                        rules.clear();
                        break;
                    }
                }
            } else if let Some(rule) = RuleId::parse(part) {
                rules.push(rule);
            } else {
                bad(format!("unknown rule id `{part}` in detlint::allow"));
                rules.clear();
                break;
            }
        }
        if rules.is_empty() {
            continue;
        }
        match reason {
            Some(r) if !r.trim().is_empty() => {
                let mut covers: Vec<u32> = (c.line..=c.end_line).collect();
                if let Some(next) = lexed.toks.iter().map(|t| t.line).find(|&l| l > c.end_line) {
                    covers.push(next);
                }
                allows.push(Allow { rules, covers });
            }
            _ => bad(
                "detlint::allow requires a non-empty reason = \"...\" explaining the site"
                    .to_string(),
            ),
        }
    }
    (allows, findings)
}

/// Splits a directive argument list on commas, keeping commas inside
/// the quoted reason string intact.
fn split_args(inner: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    let bytes = inner.as_bytes();
    for (k, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b',' if !in_str => {
                parts.push(&inner[start..k]);
                start = k + 1;
            }
            _ => {}
        }
    }
    parts.push(&inner[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn camel_to_snake_matches_kind_contract() {
        assert_eq!(camel_to_snake("JobSubmitted"), "job_submitted");
        assert_eq!(camel_to_snake("TaskQueued"), "task_queued");
        assert_eq!(camel_to_snake("FlowRate"), "flow_rate");
        assert_eq!(camel_to_snake("PhaseEnd"), "phase_end");
    }

    fn tiny_schema_cfg() -> Config {
        Config {
            trace_event_kinds: vec!["node_failed".to_string(), "node_recovered".to_string()],
            event_vocab_file: "crates/obs/src/event.rs".to_string(),
            ..Config::default()
        }
    }

    #[test]
    fn s1_flags_variant_missing_from_schema() {
        let src = "fn f(s: &mut dyn Sink) { s.rec(SimEvent::NodeFailed { node: 1 });\n\
                   s.rec(SimEvent::NodeExploded { node: 1 }); }\n";
        let ctx = FileContext::from_repo_path("crates/cluster/src/lib.rs");
        let findings = lint_source(src, &ctx, &tiny_schema_cfg());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, RuleId::S1);
        assert!(findings[0].message.contains("node_exploded"));
    }

    #[test]
    fn s1_reverse_flags_schema_kind_without_variant() {
        // The vocabulary file mentions NodeFailed but not NodeRecovered:
        // the schema's `node_recovered` has gone stale.
        let src = "pub enum SimEvent { NodeFailed { node: u32 } }\n\
                   impl SimEvent { pub fn kind(&self) -> &'static str {\n\
                   match self { SimEvent::NodeFailed { .. } => \"node_failed\" } } }\n";
        let ctx = FileContext::from_repo_path("crates/obs/src/event.rs");
        let findings = lint_source(src, &ctx, &tiny_schema_cfg());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, RuleId::S1);
        assert!(findings[0].message.contains("node_recovered"));
        assert_eq!(findings[0].line, 1, "anchored at the enum item");
    }

    #[test]
    fn s1_reverse_only_runs_on_the_vocab_file() {
        // Another obs file mentioning one variant must not be asked to
        // cover the whole schema.
        let src = "fn g() { let _ = SimEvent::NodeFailed { node: 1 }; }\n";
        let ctx = FileContext::from_repo_path("crates/obs/src/jsonl.rs");
        assert!(lint_source(src, &ctx, &tiny_schema_cfg()).is_empty());
    }

    #[test]
    fn s1_ignores_lowercase_associated_paths_and_empty_kind_list() {
        let src = "fn h(e: &SimEvent) { let _ = SimEvent::kind(e); }\n";
        let ctx = FileContext::from_repo_path("crates/obs/src/jsonl.rs");
        let mut cfg = tiny_schema_cfg();
        assert!(lint_source(src, &ctx, &cfg).is_empty());
        // An empty kind list disables S1 entirely.
        let bad = "fn f() { let _ = SimEvent::Bogus { x: 1 }; }\n";
        cfg.trace_event_kinds.clear();
        assert!(lint_source(
            bad,
            &FileContext::from_repo_path("crates/obs/src/x.rs"),
            &cfg
        )
        .is_empty());
    }
}
