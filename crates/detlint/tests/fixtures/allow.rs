// Suppression fixture: detlint::allow with and without reasons. A
// directive covers its own line and the next code line. Linted as
// crates/scheduler/src/...

struct CoveredNextLine {
    // detlint::allow(D1, reason = "fixture: directive on the line above")
    m: std::collections::HashMap<u32, u32>,
}

struct CoveredTrailing {
    m: std::collections::HashMap<u32, u32>, // detlint::allow(D1, reason = "fixture: trailing comment")
}

fn multi() {
    // detlint::allow(D1, D2, reason = "fixture: multi-rule (with parens) suppression")
    let m: std::collections::HashMap<u32, u32> = new_map(std::time::Instant::now());
    let _ = m.len();
}

struct MissingReason {
    // detlint::allow(D1)
    m: std::collections::HashMap<u32, u32>,
}

struct EmptyReason {
    // detlint::allow(D1, reason = "")
    m: std::collections::HashMap<u32, u32>,
}

struct UnknownRule {
    // detlint::allow(D9, reason = "unknown rule id")
    m: std::collections::HashMap<u32, u32>,
}

struct WrongRule {
    // detlint::allow(D2, reason = "wrong rule does not suppress D1")
    m: std::collections::HashMap<u32, u32>,
}
