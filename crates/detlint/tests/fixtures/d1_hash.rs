// D1 fixture: hash-collection declarations and iteration in a
// determinism-critical crate (linted as crates/scheduler/src/...).
use std::collections::{BTreeSet, HashMap, HashSet};

struct S {
    m: HashMap<u32, u32>,
}

fn bad_keys(s: &S) -> Vec<u32> {
    s.m.keys().copied().collect()
}

fn bad_for() {
    let mut set: HashSet<u32> = HashSet::new();
    set.insert(1);
    for x in &set {
        let _ = x;
    }
}

fn ok_sorted_same_statement(s: &S) -> Vec<u32> {
    let v: BTreeSet<u32> = s.m.keys().copied().collect();
    v.into_iter().collect()
}

fn ok_sorted_chain(s: &S) -> Vec<u32> {
    let v: Vec<u32> = s.m.keys().copied().collect::<BTreeSet<u32>>().into_iter().collect();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exempt_in_tests() {
        let m: HashMap<u8, u8> = HashMap::new();
        for _ in m.keys() {}
    }
}
