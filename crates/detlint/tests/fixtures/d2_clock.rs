// D2 fixture: wall-clock and ambient entropy (linted once as a
// determinism crate, once as bench, which is exempt).
use std::time::{Instant, SystemTime, UNIX_EPOCH};

fn clocks() -> u64 {
    let a = Instant::now();
    let b = SystemTime::now().duration_since(UNIX_EPOCH);
    let _ = (a, b);
    0
}

fn entropy() {
    let mut rng = rand::thread_rng();
    let other = SimRng::from_entropy();
    let _ = (&mut rng, other);
}
