// D3 fixture: float comparators through partial_cmp.

fn sorts(xs: &mut Vec<f64>) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs.sort_by(f64::total_cmp);
    xs.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap());
    xs.sort_by_key(|x| (*x * 100.0) as i64);
}

fn extrema(xs: &[f64]) -> Option<f64> {
    let hi = xs.iter().cloned().max_by(|a, b| a.partial_cmp(b).unwrap());
    let lo = xs.iter().cloned().min_by(|a, b| a.total_cmp(b));
    hi.or(lo)
}
