//! M1 canary (pretend path is an obs consumer file): one wildcard arm
//! in a SimEvent match, one in a non-event match (clean), and one
//! suppressed.

fn lane(ev: &SimEvent) -> u32 {
    match ev {
        SimEvent::JobStarted { .. } => 1,
        _ => 0,
    }
}

fn depth(o: Option<u32>) -> u32 {
    match o {
        Some(v) => v,
        _ => 0,
    }
}

fn kind(ev: &SimEvent) -> u32 {
    match ev {
        SimEvent::JobFinished { .. } => 1,
        // detlint::allow(M1, reason = "exercise the suppression path")
        _ => 0,
    }
}
