// P1 fixture: panic sites in a user-input-reachable crate (linted as
// crates/workloads/src/...).

fn panics(input: &str) -> u64 {
    let n: u64 = input.parse().unwrap();
    let m: u64 = input.parse().expect("numeric");
    if n == 0 {
        panic!("zero");
    }
    if n == 1 {
        todo!();
    }
    if n == 2 {
        unimplemented!();
    }
    n + m
}

fn fine(input: &str) -> u64 {
    // Non-panicking forms and lookalike names are not findings.
    let n: u64 = input.parse().unwrap_or_default();
    let m = expect_byte(input);
    n + m
}

fn expect_byte(_s: &str) -> u64 {
    0
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_in_tests() {
        let n: u64 = "7".parse().unwrap();
        assert_eq!(n, 7);
    }
}
