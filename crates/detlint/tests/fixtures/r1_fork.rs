//! R1 canary: magic, computed, and dynamic fork labels, one named
//! constant, and one suppressed dynamic site.

const SHUFFLE_STREAM: u64 = 7;

fn forks(root: &mut SimRng, node: NodeId) {
    let _a = root.fork(1);
    let _b = root.fork(2 + 1);
    let _c = root.fork(SHUFFLE_STREAM);
    let _d = root.fork(node.index() as u64);
    // detlint::allow(R1, reason = "per-node stream, label is the node id")
    let _e = root.fork(node.index() as u64);
}
