//! R1 canary (cross-file, part A, pretend crate `mapreduce`): two
//! constants in one crate sharing a label value.

const PLACEMENT_STREAM: u64 = 1;
const SPEED_STREAM: u64 = 1;
