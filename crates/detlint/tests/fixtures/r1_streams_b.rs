//! R1 canary (cross-file, part B, pretend crate `textlab`): the same
//! constant name as part A resolving to a different value.

const PLACEMENT_STREAM: u64 = 2;
