// S1 fixture: SimEvent emit sites checked against the trace schema
// (linted as crates/mapreduce/src/fixture.rs). `MapTeleported` has no
// snake_case kind in schema/trace-v1.json; everything else does.

fn emit(sink: &mut dyn EventSink, now: SimTime) {
    sink.record(now, &SimEvent::JobStarted { job: 1 });
    sink.record(
        now,
        &SimEvent::MapLaunched {
            job: 1,
            task: 0,
            node: 3,
            locality: Locality::NodeLocal,
            speculative: false,
        },
    );
    sink.record(now, &SimEvent::MapTeleported { job: 1, task: 0 });
    // Lowercase paths are associated items, not variants.
    let _ = SimEvent::kind;
    // Pattern positions are checked too: a match arm naming a
    // non-schema variant is the same drift as an emit site.
    // detlint::allow(S1, reason = "exercise the suppression path")
    let _ = matches!(ev, SimEvent::NodeTeleported { .. });
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_regions_are_exempt() {
        let _ = SimEvent::GhostEvent { spooky: true };
    }
}
