// Tricky fixture: rule text inside strings, comments, raw strings and
// char literals must not be matched; only the genuine site at the
// bottom may be flagged. Linted as crates/scheduler/src/...
// HashMap unwrap() thread_rng() — line comment, not code.
/* SystemTime::now() in a block comment /* nested unsafe { } */ still comment */

fn smoke() -> String {
    let a = "HashMap.iter() unwrap() Instant::now() sort_by(partial_cmp)";
    let b = r#"raw: thread_rng() with "embedded quotes" and unsafe"#;
    let c = r##"double-hash raw: SystemTime "#quoted#" panic!("x")"##;
    let d = 'x';
    let e = '\'';
    let f = "// detlint::allow(D1, reason = \"inside a string, not a directive\")";
    let lifetime_not_char: &'static str = "ok";
    format!("{a}{b}{c}{d}{e}{f}{lifetime_not_char}")
}

fn genuine() {
    let m: HashMap<u32, u32> = HashMap::new();
    let _ = m.len();
}
