// U1 fixture: unsafe outside the allowlist (linted as
// crates/netsim/src/...).

fn read_first(xs: &[u8]) -> u8 {
    unsafe { *xs.as_ptr() }
}
