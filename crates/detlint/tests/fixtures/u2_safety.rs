//! U2 canary (pretend path inside the unsafe allowlist): one
//! documented unsafe fn, one bare, one bare-but-suppressed, and call
//! sites with and without a SAFETY comment.

/// Docs may sit between the SAFETY comment and the item.
// SAFETY: no preconditions; the probe is asserted by the dispatcher.
#[inline]
unsafe fn good() {}

#[inline]
unsafe fn bad() {}

// detlint::allow(U2, reason = "exercise the suppression path")
unsafe fn tolerated() {}

fn call() {
    // SAFETY: good() has no preconditions.
    unsafe { good() };
    unsafe { bad() };
    unsafe { tolerated() };
}
