//! Fixture tests for the lint engine: each fixture file is linted
//! under a pretend workspace path and its JSON report is compared
//! byte-for-byte against a checked-in golden.
//!
//! Regenerate goldens after an intentional rule change with
//! `UPDATE_GOLDENS=1 cargo test -p detlint --test lint_fixtures`.

use std::path::PathBuf;

use detlint::{lint_files, lint_source, render_json, Config, FileContext, RuleId};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Lints `fixture` as if it lived at `pretend_path` and compares the
/// JSON report against `golden`.
fn check(fixture: &str, pretend_path: &str, golden: &str) {
    let dir = fixtures_dir();
    let src = std::fs::read_to_string(dir.join(fixture))
        .unwrap_or_else(|e| panic!("reading fixture {fixture}: {e}"));
    let ctx = FileContext::from_repo_path(pretend_path);
    let findings = lint_source(&src, &ctx, &Config::default());
    let json = render_json(&findings);
    let golden_path = dir.join(golden);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&golden_path, &json)
            .unwrap_or_else(|e| panic!("writing golden {golden}: {e}"));
        return;
    }
    let expected = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("reading golden {golden} (run with UPDATE_GOLDENS=1?): {e}"));
    assert_eq!(
        json, expected,
        "fixture {fixture} diverged from golden {golden}"
    );
}

/// Lints a set of fixtures together — as `lint_files` would see them
/// inside one workspace scan — so the cross-file rules (R1/U2/M1) can
/// observe facts spanning more than one file, and compares the JSON
/// report against `golden`.
fn check_files(fixtures: &[(&str, &str)], golden: &str) {
    let dir = fixtures_dir();
    let files: Vec<(FileContext, String)> = fixtures
        .iter()
        .map(|(fixture, pretend_path)| {
            let src = std::fs::read_to_string(dir.join(fixture))
                .unwrap_or_else(|e| panic!("reading fixture {fixture}: {e}"));
            (FileContext::from_repo_path(pretend_path), src)
        })
        .collect();
    let findings = lint_files(&files, &Config::default());
    let json = render_json(&findings);
    let golden_path = dir.join(golden);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&golden_path, &json)
            .unwrap_or_else(|e| panic!("writing golden {golden}: {e}"));
        return;
    }
    let expected = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("reading golden {golden} (run with UPDATE_GOLDENS=1?): {e}"));
    assert_eq!(json, expected, "fixtures diverged from golden {golden}");
}

#[test]
fn d1_hash_iteration_golden() {
    check(
        "d1_hash.rs",
        "crates/scheduler/src/fixture.rs",
        "d1_hash.expected.json",
    );
}

#[test]
fn d2_wall_clock_golden() {
    check(
        "d2_clock.rs",
        "crates/cluster/src/fixture.rs",
        "d2_clock.expected.json",
    );
}

#[test]
fn d2_is_exempt_in_bench() {
    check(
        "d2_clock.rs",
        "crates/bench/src/fixture.rs",
        "d2_clock.bench.expected.json",
    );
}

#[test]
fn d3_float_sort_golden() {
    check(
        "d3_float_sort.rs",
        "crates/analysis/src/fixture.rs",
        "d3_float_sort.expected.json",
    );
}

#[test]
fn p1_panics_golden() {
    check(
        "p1_panics.rs",
        "crates/workloads/src/fixture.rs",
        "p1_panics.expected.json",
    );
}

#[test]
fn p1_not_applied_outside_panic_crates() {
    check(
        "p1_panics.rs",
        "crates/analysis/src/fixture.rs",
        "p1_panics.analysis.expected.json",
    );
}

#[test]
fn u1_unsafe_golden() {
    check(
        "u1_unsafe.rs",
        "crates/netsim/src/fixture.rs",
        "u1_unsafe.expected.json",
    );
}

#[test]
fn u1_allows_unsafe_under_simd_directory_prefix() {
    // The `crates/erasure/src/simd/` allowlist entry is a directory
    // prefix: any file beneath it may hold reviewed `unsafe`.
    check(
        "u1_unsafe.rs",
        "crates/erasure/src/simd/fixture.rs",
        "u1_unsafe.simd.expected.json",
    );
}

#[test]
fn u1_fires_outside_the_simd_directory() {
    // A sibling of the allowed directory (including gf256.rs itself,
    // which no longer carries an exemption) still triggers U1 — the
    // prefix must not leak onto `crates/erasure/src/` generally.
    check(
        "u1_unsafe.rs",
        "crates/erasure/src/fixture.rs",
        "u1_unsafe.erasure.expected.json",
    );
}

#[test]
fn s1_trace_schema_golden() {
    check(
        "s1_schema.rs",
        "crates/mapreduce/src/fixture.rs",
        "s1_schema.expected.json",
    );
}

#[test]
fn s1_not_applied_outside_determinism_crates() {
    check(
        "s1_schema.rs",
        "crates/cli/src/fixture.rs",
        "s1_schema.cli.expected.json",
    );
}

#[test]
fn tricky_strings_and_comments_golden() {
    check(
        "tricky.rs",
        "crates/scheduler/src/fixture.rs",
        "tricky.expected.json",
    );
}

#[test]
fn allow_directives_golden() {
    check(
        "allow.rs",
        "crates/scheduler/src/fixture.rs",
        "allow.expected.json",
    );
}

#[test]
fn r1_fork_labels_golden() {
    check_files(
        &[("r1_fork.rs", "crates/mapreduce/src/fixture.rs")],
        "r1_fork.expected.json",
    );
}

#[test]
fn r1_is_scoped_to_stream_disciplined_crates() {
    // `crates/analysis` is not in `rng_stream_crates`: the same
    // source produces no R1 findings there.
    check_files(
        &[("r1_fork.rs", "crates/analysis/src/fixture.rs")],
        "r1_fork.analysis.expected.json",
    );
}

#[test]
fn r1_cross_file_constant_conflicts_golden() {
    // Part A holds two constants with the same value in one crate
    // (duplicate-value finding); part B reuses a name from part A
    // with a different value (name-conflict finding).
    check_files(
        &[
            ("r1_streams_a.rs", "crates/mapreduce/src/streams_a.rs"),
            ("r1_streams_b.rs", "crates/textlab/src/streams_b.rs"),
        ],
        "r1_streams.expected.json",
    );
}

#[test]
fn u2_safety_comments_golden() {
    // Pretend path sits under the U1 allowlist's simd/ prefix, so U1
    // stays quiet and U2 audits the SAFETY comments instead.
    check_files(
        &[("u2_safety.rs", "crates/erasure/src/simd/fixture.rs")],
        "u2_safety.expected.json",
    );
}

#[test]
fn m1_wildcard_arms_golden() {
    check_files(
        &[("m1_wildcard.rs", "crates/obs/src/aggregate.rs")],
        "m1_wildcard.expected.json",
    );
}

#[test]
fn m1_is_scoped_to_configured_obs_files() {
    // The same source outside `event_match_files` produces no M1
    // findings.
    check_files(
        &[("m1_wildcard.rs", "crates/obs/src/fixture.rs")],
        "m1_wildcard.other.expected.json",
    );
}

#[test]
fn fixtures_in_tests_dirs_are_d1_p1_exempt() {
    // The same violating sources produce no D1/P1 findings when the
    // file sits under a crate's tests/ directory.
    let dir = fixtures_dir();
    for fixture in ["d1_hash.rs", "p1_panics.rs"] {
        let src = std::fs::read_to_string(dir.join(fixture)).expect("fixture");
        let ctx = FileContext::from_repo_path("crates/scheduler/tests/fixture.rs");
        let findings = lint_source(&src, &ctx, &Config::default());
        assert!(
            findings
                .iter()
                .all(|f| f.rule != RuleId::D1 && f.rule != RuleId::P1),
            "{fixture}: {findings:?}"
        );
    }
}
