//! Property tests for the lexer: arbitrary ASCII source (including
//! malformed, unterminated constructs) must lex without panicking,
//! strip to the same byte length and line count, and every emitted
//! token must point back at exactly the text it claims to be.

use proptest::prelude::*;

use detlint::lexer::{lex, strip, TokKind};

/// Characters weighted toward the constructs the lexer special-cases:
/// quotes, hashes, slashes, stars, escapes and string prefixes.
const ALPHABET: &[u8] = b"\"'#/*\\rbc xyz_09\n\t(){};:.,<>=&!iI";

fn source_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..ALPHABET.len(), 0..400)
        .prop_map(|picks| picks.iter().map(|&i| ALPHABET[i] as char).collect())
}

fn line_starts(src: &str) -> Vec<usize> {
    std::iter::once(0)
        .chain(
            src.bytes()
                .enumerate()
                .filter(|&(_, b)| b == b'\n')
                .map(|(i, _)| i + 1),
        )
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn strip_preserves_length_and_line_numbers(src in source_strategy()) {
        let stripped = strip(&src);
        prop_assert_eq!(stripped.len(), src.len(), "byte length changed");
        let src_lines = src.bytes().filter(|&b| b == b'\n').count();
        let out_lines = stripped.bytes().filter(|&b| b == b'\n').count();
        prop_assert_eq!(out_lines, src_lines, "newline count changed");
    }

    #[test]
    fn tokens_point_at_their_own_text(src in source_strategy()) {
        let lexed = lex(&src);
        let starts = line_starts(&src);
        for t in &lexed.toks {
            if t.kind == TokKind::Literal {
                continue; // literal text is a placeholder by design
            }
            let ls = starts[(t.line - 1) as usize];
            let at = ls + (t.col - 1) as usize;
            let got = &src[at..(at + t.text.len()).min(src.len())];
            prop_assert_eq!(
                got,
                t.text.as_str(),
                "token at {}:{} does not round-trip",
                t.line,
                t.col
            );
        }
    }

    #[test]
    fn reassembled_code_relexes_to_the_same_tokens(src in source_strategy()) {
        // Stripping is idempotent on the code layer: lexing the
        // stripped text yields the same non-literal token stream at
        // the same positions.
        let stripped = strip(&src);
        let a: Vec<_> = lex(&src)
            .toks
            .into_iter()
            .filter(|t| t.kind != TokKind::Literal)
            .map(|t| (t.text, t.line, t.col))
            .collect();
        let b: Vec<_> = lex(&stripped)
            .toks
            .into_iter()
            .filter(|t| t.kind != TokKind::Literal)
            .map(|t| (t.text, t.line, t.col))
            .collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn comment_lines_are_within_file(src in source_strategy()) {
        let total_lines = src.bytes().filter(|&b| b == b'\n').count() as u32 + 1;
        for c in lex(&src).comments {
            prop_assert!(c.line >= 1 && c.line <= total_lines);
            prop_assert!(c.end_line >= c.line && c.end_line <= total_lines);
        }
    }
}
