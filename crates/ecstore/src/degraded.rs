//! Degraded-read planning: which `k` surviving blocks a reconstruction
//! downloads, and from where.
//!
//! The paper models the *conventional* degraded read (its footnote 1):
//! read any `k` surviving blocks of the stripe and decode. The analysis
//! of Section IV-B assumes the reader "randomly picks k out of n−1
//! blocks" ([`SourceSelection::UniformRandom`]); the motivating example
//! instead has each reader fetch only what it does not already store
//! ([`SourceSelection::LocalFirst`]), which is what a real HDFS-RAID
//! client does.

use cluster::{ClusterState, NodeId, Topology};
use simkit::SimRng;

use crate::layout::BlockRef;
use crate::store::BlockStore;

/// How a degraded read chooses its `k` source blocks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SourceSelection {
    /// Pick `k` of the surviving blocks uniformly at random — the
    /// assumption of the paper's analysis and simulator.
    #[default]
    UniformRandom,
    /// Prefer blocks already stored on the reading node, then blocks in
    /// the reader's rack, then random remote blocks.
    LocalFirst,
}

/// The plan for one degraded read: the `k` blocks to fetch and who holds
/// them. Blocks co-located with the reader cost no network transfer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegradedReadPlan {
    /// The lost block being reconstructed.
    pub target: BlockRef,
    /// The node performing the reconstruction.
    pub reader: NodeId,
    /// `(source block, holder node)` for each of the `k` reads.
    pub sources: Vec<(BlockRef, NodeId)>,
}

impl DegradedReadPlan {
    /// Plans a degraded read of `target` performed at `reader`.
    ///
    /// # Panics
    ///
    /// Panics if the stripe has fewer than `k` surviving blocks (the
    /// caller must check [`BlockStore::is_recoverable`] under multi-node
    /// failures) or if `target` itself is still alive.
    pub fn plan(
        store: &BlockStore,
        topo: &Topology,
        state: &ClusterState,
        target: BlockRef,
        reader: NodeId,
        selection: SourceSelection,
        rng: &mut SimRng,
    ) -> DegradedReadPlan {
        let k = store.layout().params().k();
        DegradedReadPlan::plan_with_fetch_count(
            store, topo, state, target, reader, selection, rng, k,
        )
    }

    /// Like [`DegradedReadPlan::plan`] but fetching `fetch_count` blocks
    /// instead of `k` — models degraded-read-optimized constructions
    /// such as Azure's local reconstruction codes (the paper's footnote
    /// 1), where a single lost block needs only its local group.
    ///
    /// # Panics
    ///
    /// Same conditions as [`DegradedReadPlan::plan`], or if
    /// `fetch_count` is zero or exceeds the survivor count.
    #[allow(clippy::too_many_arguments)]
    pub fn plan_with_fetch_count(
        store: &BlockStore,
        topo: &Topology,
        state: &ClusterState,
        target: BlockRef,
        reader: NodeId,
        selection: SourceSelection,
        rng: &mut SimRng,
        fetch_count: usize,
    ) -> DegradedReadPlan {
        let k = fetch_count;
        assert!(k > 0, "degraded read must fetch at least one block");
        assert!(
            !state.is_alive(store.node_of(target)),
            "degraded read of a live block {target}"
        );
        let survivors: Vec<(BlockRef, NodeId)> = store
            .survivors_of(target.stripe, state)
            .into_iter()
            .map(|(pos, node)| {
                (
                    BlockRef {
                        stripe: target.stripe,
                        pos,
                    },
                    node,
                )
            })
            .collect();
        assert!(
            survivors.len() >= k,
            "stripe {} has {} survivors, needs {k}",
            target.stripe,
            survivors.len()
        );
        let sources = match selection {
            SourceSelection::UniformRandom => rng.choose_k(&survivors, k),
            SourceSelection::LocalFirst => {
                let reader_rack = topo.rack_of(reader);
                // Partition by cost class, randomize within each class,
                // then take the k cheapest.
                let mut local: Vec<(BlockRef, NodeId)> = Vec::new();
                let mut same_rack: Vec<(BlockRef, NodeId)> = Vec::new();
                let mut remote: Vec<(BlockRef, NodeId)> = Vec::new();
                for &(block, node) in &survivors {
                    if node == reader {
                        local.push((block, node));
                    } else if topo.rack_of(node) == reader_rack {
                        same_rack.push((block, node));
                    } else {
                        remote.push((block, node));
                    }
                }
                rng.shuffle(&mut same_rack);
                rng.shuffle(&mut remote);
                local
                    .into_iter()
                    .chain(same_rack)
                    .chain(remote)
                    .take(k)
                    .collect()
            }
        };
        DegradedReadPlan {
            target,
            reader,
            sources,
        }
    }

    /// The sources that require a network transfer (holder ≠ reader).
    pub fn network_sources(&self) -> impl Iterator<Item = (BlockRef, NodeId)> + '_ {
        let reader = self.reader;
        self.sources
            .iter()
            .copied()
            .filter(move |&(_, node)| node != reader)
    }

    /// How many of the `k` reads cross racks.
    pub fn cross_rack_reads(&self, topo: &Topology) -> usize {
        let rack = topo.rack_of(self.reader);
        self.network_sources()
            .filter(|&(_, node)| topo.rack_of(node) != rack)
            .count()
    }

    /// Classifies the `k` sources by distance from the reader as
    /// `(local, same_rack, cross_rack)` counts. Local sources are stored
    /// on the reader itself and cost no network transfer.
    pub fn source_breakdown(&self, topo: &Topology) -> (usize, usize, usize) {
        let rack = topo.rack_of(self.reader);
        let mut local = 0;
        let mut same_rack = 0;
        let mut cross_rack = 0;
        for &(_, node) in &self.sources {
            if node == self.reader {
                local += 1;
            } else if topo.rack_of(node) == rack {
                same_rack += 1;
            } else {
                cross_rack += 1;
            }
        }
        (local, same_rack, cross_rack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::StripeLayout;
    use crate::placement::RackAwarePlacement;
    use cluster::{FailureScenario, Topology};
    use erasure::CodeParams;

    fn setup() -> (Topology, BlockStore, ClusterState) {
        let topo = Topology::homogeneous(4, 10, 4, 1);
        let layout = StripeLayout::new(CodeParams::new(8, 6).unwrap(), 240).unwrap();
        let mut rng = SimRng::seed_from_u64(3);
        let store = BlockStore::place(&topo, layout, &RackAwarePlacement, &mut rng).unwrap();
        let state = ClusterState::from_scenario(&topo, &FailureScenario::nodes([topo.node(0)]));
        (topo, store, state)
    }

    #[test]
    fn plans_have_k_distinct_live_sources() {
        let (topo, store, state) = setup();
        let mut rng = SimRng::seed_from_u64(9);
        for target in store.lost_native_blocks(&state) {
            for selection in [SourceSelection::UniformRandom, SourceSelection::LocalFirst] {
                let reader = topo.node(5);
                let plan = DegradedReadPlan::plan(
                    &store, &topo, &state, target, reader, selection, &mut rng,
                );
                assert_eq!(plan.sources.len(), 6);
                let mut blocks: Vec<BlockRef> = plan.sources.iter().map(|&(b, _)| b).collect();
                blocks.sort();
                blocks.dedup();
                assert_eq!(blocks.len(), 6, "duplicate source blocks");
                for (block, node) in &plan.sources {
                    assert!(state.is_alive(*node));
                    assert_eq!(store.node_of(*block), *node);
                    assert_eq!(block.stripe, target.stripe);
                    assert_ne!(*block, target);
                }
            }
        }
    }

    #[test]
    fn local_first_prefers_cheap_sources() {
        let (topo, store, state) = setup();
        let mut rng = SimRng::seed_from_u64(1);
        let target = store.lost_native_blocks(&state)[0];
        // Choose a reader that itself stores a block of the stripe.
        let survivors = store.survivors_of(target.stripe, &state);
        let reader = survivors[0].1;
        let plan = DegradedReadPlan::plan(
            &store,
            &topo,
            &state,
            target,
            reader,
            SourceSelection::LocalFirst,
            &mut rng,
        );
        // The reader's own block must be used (it is free).
        assert!(plan.sources.iter().any(|&(_, node)| node == reader));
        // Network sources exclude the reader.
        assert!(plan.network_sources().all(|(_, node)| node != reader));
        // LocalFirst never does more cross-rack reads than UniformRandom
        // would in expectation; sanity-check the metric is computable.
        let _ = plan.cross_rack_reads(&topo);
    }

    #[test]
    fn uniform_random_varies_with_seed() {
        let (topo, store, state) = setup();
        let target = store.lost_native_blocks(&state)[0];
        let reader = topo.node(7);
        let a = DegradedReadPlan::plan(
            &store,
            &topo,
            &state,
            target,
            reader,
            SourceSelection::UniformRandom,
            &mut SimRng::seed_from_u64(1),
        );
        let b = DegradedReadPlan::plan(
            &store,
            &topo,
            &state,
            target,
            reader,
            SourceSelection::UniformRandom,
            &mut SimRng::seed_from_u64(2),
        );
        // Same seed reproduces, different seeds usually differ.
        let a2 = DegradedReadPlan::plan(
            &store,
            &topo,
            &state,
            target,
            reader,
            SourceSelection::UniformRandom,
            &mut SimRng::seed_from_u64(1),
        );
        assert_eq!(a, a2);
        assert_ne!(a, b, "expected different plans for different seeds");
    }

    #[test]
    #[should_panic(expected = "live block")]
    fn rejects_reading_live_blocks() {
        let (topo, store, state) = setup();
        let mut rng = SimRng::seed_from_u64(0);
        // Find a native block that is alive.
        let alive = store
            .layout()
            .native_blocks()
            .find(|&b| state.is_alive(store.node_of(b)))
            .unwrap();
        let _ = DegradedReadPlan::plan(
            &store,
            &topo,
            &state,
            alive,
            topo.node(5),
            SourceSelection::UniformRandom,
            &mut rng,
        );
    }

    #[test]
    fn cross_rack_counting() {
        let (topo, store, state) = setup();
        let mut rng = SimRng::seed_from_u64(4);
        let target = store.lost_native_blocks(&state)[0];
        let reader = topo.node(15);
        let plan = DegradedReadPlan::plan(
            &store,
            &topo,
            &state,
            target,
            reader,
            SourceSelection::UniformRandom,
            &mut rng,
        );
        let manual = plan
            .sources
            .iter()
            .filter(|&&(_, node)| node != reader && !topo.same_rack(node, reader))
            .count();
        assert_eq!(plan.cross_rack_reads(&topo), manual);
    }

    #[test]
    fn source_breakdown_partitions_all_sources() {
        let (topo, store, state) = setup();
        let mut rng = SimRng::seed_from_u64(4);
        let target = store.lost_native_blocks(&state)[0];
        let survivors = store.survivors_of(target.stripe, &state);
        let reader = survivors[0].1;
        let plan = DegradedReadPlan::plan(
            &store,
            &topo,
            &state,
            target,
            reader,
            SourceSelection::LocalFirst,
            &mut rng,
        );
        let (local, same_rack, cross_rack) = plan.source_breakdown(&topo);
        assert_eq!(local + same_rack + cross_rack, plan.sources.len());
        assert!(local >= 1, "LocalFirst reader holding a block uses it");
        assert_eq!(cross_rack, plan.cross_rack_reads(&topo));
        assert_eq!(
            local,
            plan.sources.len() - plan.network_sources().count(),
            "local sources are exactly the non-network sources"
        );
    }
}
