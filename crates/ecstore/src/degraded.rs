//! Degraded-read planning: which `k` surviving blocks a reconstruction
//! downloads, and from where.
//!
//! The paper models the *conventional* degraded read (its footnote 1):
//! read any `k` surviving blocks of the stripe and decode. The analysis
//! of Section IV-B assumes the reader "randomly picks k out of n−1
//! blocks" ([`SourceSelection::UniformRandom`]); the motivating example
//! instead has each reader fetch only what it does not already store
//! ([`SourceSelection::LocalFirst`]), which is what a real HDFS-RAID
//! client does.

use cluster::{ClusterState, NodeId, Topology};
use simkit::SimRng;

use crate::layout::BlockRef;
use crate::store::BlockStore;

/// Why a degraded read could not be planned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedReadError {
    /// A fetch count of zero was requested.
    ZeroFetch,
    /// The target block is still alive — nothing to reconstruct.
    LiveTarget {
        /// The block that was (wrongly) asked to be reconstructed.
        target: BlockRef,
    },
    /// The stripe has fewer surviving blocks than the read needs.
    NotEnoughSurvivors {
        /// The stripe being read.
        stripe: crate::layout::StripeId,
        /// How many blocks of it are still alive.
        survivors: usize,
        /// How many the read asked for.
        need: usize,
    },
}

impl std::fmt::Display for DegradedReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradedReadError::ZeroFetch => {
                write!(f, "degraded read must fetch at least one block")
            }
            DegradedReadError::LiveTarget { target } => {
                write!(f, "degraded read of a live block {target}")
            }
            DegradedReadError::NotEnoughSurvivors {
                stripe,
                survivors,
                need,
            } => {
                write!(f, "stripe {stripe} has {survivors} survivors, needs {need}")
            }
        }
    }
}

impl std::error::Error for DegradedReadError {}

/// How many survivor blocks a degraded read requests at once.
///
/// `Exact` is the paper's conventional degraded read: fetch exactly the
/// needed count and wait for the slowest of them. `Redundant` follows
/// the MDS-Queue result (Shah/Lee/Ramchandran): request `extra` blocks
/// beyond the needed count and decode as soon as any needed-count
/// subset completes, cancelling the stragglers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum FetchPolicy {
    /// Fetch exactly the needed block count.
    #[default]
    Exact,
    /// Fetch `extra` redundant survivors beyond the needed count.
    Redundant {
        /// Redundant requests beyond the needed count (`r` in `k + r`).
        extra: usize,
    },
}

impl FetchPolicy {
    /// Redundant requests beyond the needed count (0 for `Exact`).
    pub fn extra(&self) -> usize {
        match self {
            FetchPolicy::Exact => 0,
            FetchPolicy::Redundant { extra } => *extra,
        }
    }

    /// The CLI/sweep token: `exact` or `redundant:R`.
    pub fn label(&self) -> String {
        match self {
            FetchPolicy::Exact => "exact".to_string(),
            FetchPolicy::Redundant { extra } => format!("redundant:{extra}"),
        }
    }

    /// Parses a [`FetchPolicy::label`] token.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted forms when the token is
    /// neither `exact` nor `redundant:R` with `R >= 1`.
    pub fn parse(s: &str) -> Result<FetchPolicy, String> {
        if s == "exact" {
            return Ok(FetchPolicy::Exact);
        }
        if let Some(extra) = s.strip_prefix("redundant:") {
            let extra: usize = extra
                .parse()
                .map_err(|_| format!("bad redundant fetch count {extra:?}"))?;
            if extra == 0 {
                return Err("redundant:0 is just `exact`; use that".to_string());
            }
            return Ok(FetchPolicy::Redundant { extra });
        }
        Err(format!(
            "unknown fetch policy {s:?} (expected exact or redundant:R)"
        ))
    }
}

/// How a degraded read chooses its `k` source blocks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SourceSelection {
    /// Pick `k` of the surviving blocks uniformly at random — the
    /// assumption of the paper's analysis and simulator.
    #[default]
    UniformRandom,
    /// Prefer blocks already stored on the reading node, then blocks in
    /// the reader's rack, then random remote blocks.
    LocalFirst,
}

/// The plan for one degraded read: the `k` blocks to fetch and who holds
/// them. Blocks co-located with the reader cost no network transfer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegradedReadPlan {
    /// The lost block being reconstructed.
    pub target: BlockRef,
    /// The node performing the reconstruction.
    pub reader: NodeId,
    /// `(source block, holder node)` for each of the `k` reads.
    pub sources: Vec<(BlockRef, NodeId)>,
}

impl DegradedReadPlan {
    /// Plans a degraded read of `target` performed at `reader`.
    ///
    /// # Errors
    ///
    /// [`DegradedReadError::NotEnoughSurvivors`] if the stripe has fewer
    /// than `k` surviving blocks (the caller should check
    /// [`BlockStore::is_recoverable`] under multi-node failures), or
    /// [`DegradedReadError::LiveTarget`] if `target` is still alive.
    pub fn plan(
        store: &BlockStore,
        topo: &Topology,
        state: &ClusterState,
        target: BlockRef,
        reader: NodeId,
        selection: SourceSelection,
        rng: &mut SimRng,
    ) -> Result<DegradedReadPlan, DegradedReadError> {
        let k = store.layout().params().k();
        DegradedReadPlan::plan_with_fetch_count(
            store, topo, state, target, reader, selection, rng, k,
        )
    }

    /// Like [`DegradedReadPlan::plan`] but fetching `fetch_count` blocks
    /// instead of `k` — models degraded-read-optimized constructions
    /// such as Azure's local reconstruction codes (the paper's footnote
    /// 1), where a single lost block needs only its local group.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DegradedReadPlan::plan`], plus
    /// [`DegradedReadError::ZeroFetch`] if `fetch_count` is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn plan_with_fetch_count(
        store: &BlockStore,
        topo: &Topology,
        state: &ClusterState,
        target: BlockRef,
        reader: NodeId,
        selection: SourceSelection,
        rng: &mut SimRng,
        fetch_count: usize,
    ) -> Result<DegradedReadPlan, DegradedReadError> {
        let k = fetch_count;
        let survivors = Self::checked_survivors(store, state, target, k)?;
        let sources = match selection {
            SourceSelection::UniformRandom => rng.choose_k(&survivors, k),
            SourceSelection::LocalFirst => {
                let (local, mut same_rack, mut remote) =
                    Self::partition_by_distance(topo, reader, &survivors);
                rng.shuffle(&mut same_rack);
                rng.shuffle(&mut remote);
                local
                    .into_iter()
                    .chain(same_rack)
                    .chain(remote)
                    .take(k)
                    .collect()
            }
        };
        Ok(DegradedReadPlan {
            target,
            reader,
            sources,
        })
    }

    /// Plans a redundant degraded read: `need + extra` sources, capped
    /// at the survivor count, so the reader can decode as soon as any
    /// `need` of them arrive (MDS-Queue). Quorum-aware under
    /// [`SourceSelection::LocalFirst`]: within each distance class the
    /// fastest holders (per `speed`, a per-node service multiplier) are
    /// preferred, with random tie-breaking so equal-speed holders spread
    /// load. Under [`SourceSelection::UniformRandom`] all `need + extra`
    /// sources are drawn uniformly, matching the paper's analysis model.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DegradedReadPlan::plan_with_fetch_count`]
    /// with a fetch count of `need` — the redundant `extra` is
    /// best-effort and never causes an error.
    #[allow(clippy::too_many_arguments)]
    pub fn plan_redundant(
        store: &BlockStore,
        topo: &Topology,
        state: &ClusterState,
        target: BlockRef,
        reader: NodeId,
        selection: SourceSelection,
        rng: &mut SimRng,
        need: usize,
        extra: usize,
        speed: &[f64],
    ) -> Result<DegradedReadPlan, DegradedReadError> {
        let survivors = Self::checked_survivors(store, state, target, need)?;
        let fetch = (need + extra).min(survivors.len());
        let sources = match selection {
            SourceSelection::UniformRandom => rng.choose_k(&survivors, fetch),
            SourceSelection::LocalFirst => {
                let (local, mut same_rack, mut remote) =
                    Self::partition_by_distance(topo, reader, &survivors);
                // Shuffle first so equal-speed holders tie-break
                // randomly, then stable-sort fastest-first.
                let by_speed = |class: &mut Vec<(BlockRef, NodeId)>, rng: &mut SimRng| {
                    rng.shuffle(class);
                    class.sort_by(|&(_, a), &(_, b)| {
                        let (sa, sb) = (speed[a.index()], speed[b.index()]);
                        sb.total_cmp(&sa)
                    });
                };
                by_speed(&mut same_rack, rng);
                by_speed(&mut remote, rng);
                local
                    .into_iter()
                    .chain(same_rack)
                    .chain(remote)
                    .take(fetch)
                    .collect()
            }
        };
        Ok(DegradedReadPlan {
            target,
            reader,
            sources,
        })
    }

    /// Validates the read and returns the stripe's surviving blocks.
    fn checked_survivors(
        store: &BlockStore,
        state: &ClusterState,
        target: BlockRef,
        need: usize,
    ) -> Result<Vec<(BlockRef, NodeId)>, DegradedReadError> {
        if need == 0 {
            return Err(DegradedReadError::ZeroFetch);
        }
        if state.is_alive(store.node_of(target)) {
            return Err(DegradedReadError::LiveTarget { target });
        }
        let survivors: Vec<(BlockRef, NodeId)> = store
            .survivors_of(target.stripe, state)
            .into_iter()
            .map(|(pos, node)| {
                (
                    BlockRef {
                        stripe: target.stripe,
                        pos,
                    },
                    node,
                )
            })
            .collect();
        if survivors.len() < need {
            return Err(DegradedReadError::NotEnoughSurvivors {
                stripe: target.stripe,
                survivors: survivors.len(),
                need,
            });
        }
        Ok(survivors)
    }

    /// Splits survivors into (reader-local, same-rack, remote) classes.
    #[allow(clippy::type_complexity)]
    fn partition_by_distance(
        topo: &Topology,
        reader: NodeId,
        survivors: &[(BlockRef, NodeId)],
    ) -> (
        Vec<(BlockRef, NodeId)>,
        Vec<(BlockRef, NodeId)>,
        Vec<(BlockRef, NodeId)>,
    ) {
        let reader_rack = topo.rack_of(reader);
        let mut local = Vec::new();
        let mut same_rack = Vec::new();
        let mut remote = Vec::new();
        for &(block, node) in survivors {
            if node == reader {
                local.push((block, node));
            } else if topo.rack_of(node) == reader_rack {
                same_rack.push((block, node));
            } else {
                remote.push((block, node));
            }
        }
        (local, same_rack, remote)
    }

    /// The sources that require a network transfer (holder ≠ reader).
    pub fn network_sources(&self) -> impl Iterator<Item = (BlockRef, NodeId)> + '_ {
        let reader = self.reader;
        self.sources
            .iter()
            .copied()
            .filter(move |&(_, node)| node != reader)
    }

    /// How many of the `k` reads cross racks.
    pub fn cross_rack_reads(&self, topo: &Topology) -> usize {
        let rack = topo.rack_of(self.reader);
        self.network_sources()
            .filter(|&(_, node)| topo.rack_of(node) != rack)
            .count()
    }

    /// Classifies the `k` sources by distance from the reader as
    /// `(local, same_rack, cross_rack)` counts. Local sources are stored
    /// on the reader itself and cost no network transfer.
    pub fn source_breakdown(&self, topo: &Topology) -> (usize, usize, usize) {
        let rack = topo.rack_of(self.reader);
        let mut local = 0;
        let mut same_rack = 0;
        let mut cross_rack = 0;
        for &(_, node) in &self.sources {
            if node == self.reader {
                local += 1;
            } else if topo.rack_of(node) == rack {
                same_rack += 1;
            } else {
                cross_rack += 1;
            }
        }
        (local, same_rack, cross_rack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::StripeLayout;
    use crate::placement::RackAwarePlacement;
    use cluster::{FailureScenario, Topology};
    use erasure::CodeParams;

    fn setup() -> (Topology, BlockStore, ClusterState) {
        let topo = Topology::homogeneous(4, 10, 4, 1);
        let layout = StripeLayout::new(CodeParams::new(8, 6).unwrap(), 240).unwrap();
        let mut rng = SimRng::seed_from_u64(3);
        let store = BlockStore::place(&topo, layout, &RackAwarePlacement, &mut rng).unwrap();
        let state = ClusterState::from_scenario(&topo, &FailureScenario::nodes([topo.node(0)]));
        (topo, store, state)
    }

    #[test]
    fn plans_have_k_distinct_live_sources() {
        let (topo, store, state) = setup();
        let mut rng = SimRng::seed_from_u64(9);
        for target in store.lost_native_blocks(&state) {
            for selection in [SourceSelection::UniformRandom, SourceSelection::LocalFirst] {
                let reader = topo.node(5);
                let plan = DegradedReadPlan::plan(
                    &store, &topo, &state, target, reader, selection, &mut rng,
                )
                .unwrap();
                assert_eq!(plan.sources.len(), 6);
                let mut blocks: Vec<BlockRef> = plan.sources.iter().map(|&(b, _)| b).collect();
                blocks.sort();
                blocks.dedup();
                assert_eq!(blocks.len(), 6, "duplicate source blocks");
                for (block, node) in &plan.sources {
                    assert!(state.is_alive(*node));
                    assert_eq!(store.node_of(*block), *node);
                    assert_eq!(block.stripe, target.stripe);
                    assert_ne!(*block, target);
                }
            }
        }
    }

    #[test]
    fn local_first_prefers_cheap_sources() {
        let (topo, store, state) = setup();
        let mut rng = SimRng::seed_from_u64(1);
        let target = store.lost_native_blocks(&state)[0];
        // Choose a reader that itself stores a block of the stripe.
        let survivors = store.survivors_of(target.stripe, &state);
        let reader = survivors[0].1;
        let plan = DegradedReadPlan::plan(
            &store,
            &topo,
            &state,
            target,
            reader,
            SourceSelection::LocalFirst,
            &mut rng,
        )
        .unwrap();
        // The reader's own block must be used (it is free).
        assert!(plan.sources.iter().any(|&(_, node)| node == reader));
        // Network sources exclude the reader.
        assert!(plan.network_sources().all(|(_, node)| node != reader));
        // LocalFirst never does more cross-rack reads than UniformRandom
        // would in expectation; sanity-check the metric is computable.
        let _ = plan.cross_rack_reads(&topo);
    }

    #[test]
    fn uniform_random_varies_with_seed() {
        let (topo, store, state) = setup();
        let target = store.lost_native_blocks(&state)[0];
        let reader = topo.node(7);
        let a = DegradedReadPlan::plan(
            &store,
            &topo,
            &state,
            target,
            reader,
            SourceSelection::UniformRandom,
            &mut SimRng::seed_from_u64(1),
        )
        .unwrap();
        let b = DegradedReadPlan::plan(
            &store,
            &topo,
            &state,
            target,
            reader,
            SourceSelection::UniformRandom,
            &mut SimRng::seed_from_u64(2),
        )
        .unwrap();
        // Same seed reproduces, different seeds usually differ.
        let a2 = DegradedReadPlan::plan(
            &store,
            &topo,
            &state,
            target,
            reader,
            SourceSelection::UniformRandom,
            &mut SimRng::seed_from_u64(1),
        )
        .unwrap();
        assert_eq!(a, a2);
        assert_ne!(a, b, "expected different plans for different seeds");
    }

    #[test]
    fn rejects_reading_live_blocks() {
        let (topo, store, state) = setup();
        let mut rng = SimRng::seed_from_u64(0);
        // Find a native block that is alive.
        let alive = store
            .layout()
            .native_blocks()
            .find(|&b| state.is_alive(store.node_of(b)))
            .unwrap();
        let err = DegradedReadPlan::plan(
            &store,
            &topo,
            &state,
            alive,
            topo.node(5),
            SourceSelection::UniformRandom,
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(err, DegradedReadError::LiveTarget { target: alive });
    }

    #[test]
    fn rejects_zero_and_oversized_fetch_counts() {
        let (topo, store, state) = setup();
        let mut rng = SimRng::seed_from_u64(0);
        let target = store.lost_native_blocks(&state)[0];
        let err = DegradedReadPlan::plan_with_fetch_count(
            &store,
            &topo,
            &state,
            target,
            topo.node(5),
            SourceSelection::UniformRandom,
            &mut rng,
            0,
        )
        .unwrap_err();
        assert_eq!(err, DegradedReadError::ZeroFetch);
        // One node down: a stripe it held a block of keeps n - 1 = 13
        // survivors at most; asking for more is a typed error, not a
        // panic.
        let err = DegradedReadPlan::plan_with_fetch_count(
            &store,
            &topo,
            &state,
            target,
            topo.node(5),
            SourceSelection::UniformRandom,
            &mut rng,
            14,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            DegradedReadError::NotEnoughSurvivors { need: 14, .. }
        ));
        assert!(err.to_string().contains("survivors"));
    }

    #[test]
    fn fetch_policy_tokens_round_trip() {
        for policy in [
            FetchPolicy::Exact,
            FetchPolicy::Redundant { extra: 1 },
            FetchPolicy::Redundant { extra: 7 },
        ] {
            assert_eq!(FetchPolicy::parse(&policy.label()), Ok(policy));
        }
        assert_eq!(FetchPolicy::Exact.extra(), 0);
        assert_eq!(FetchPolicy::Redundant { extra: 3 }.extra(), 3);
        assert!(FetchPolicy::parse("redundant:0").is_err());
        assert!(FetchPolicy::parse("redundant:x").is_err());
        assert!(FetchPolicy::parse("eager").is_err());
    }

    #[test]
    fn redundant_plans_add_extra_sources_capped_at_survivors() {
        let (topo, store, state) = setup();
        let speed = vec![1.0; topo.num_nodes()];
        let target = store.lost_native_blocks(&state)[0];
        let reader = topo.node(5);
        for selection in [SourceSelection::UniformRandom, SourceSelection::LocalFirst] {
            let mut rng = SimRng::seed_from_u64(11);
            let plan = DegradedReadPlan::plan_redundant(
                &store, &topo, &state, target, reader, selection, &mut rng, 6, 2, &speed,
            )
            .unwrap();
            // The (8, 6) stripe lost one block, so 7 survivors remain:
            // need 6 + extra 2 caps at 7 sources.
            assert_eq!(plan.sources.len(), 7);
            let mut blocks: Vec<BlockRef> = plan.sources.iter().map(|&(b, _)| b).collect();
            blocks.sort();
            blocks.dedup();
            assert_eq!(blocks.len(), 7, "duplicate source blocks");
            for (block, node) in &plan.sources {
                assert!(state.is_alive(*node));
                assert_eq!(store.node_of(*block), *node);
            }
            // An absurd extra is capped at the survivor count, not an
            // error: redundancy is best-effort.
            let mut rng = SimRng::seed_from_u64(11);
            let plan = DegradedReadPlan::plan_redundant(
                &store, &topo, &state, target, reader, selection, &mut rng, 6, 100, &speed,
            )
            .unwrap();
            assert_eq!(
                plan.sources.len(),
                store.survivors_of(target.stripe, &state).len()
            );
        }
    }

    #[test]
    fn redundant_local_first_prefers_fast_holders() {
        let (topo, store, state) = setup();
        let target = store.lost_native_blocks(&state)[0];
        let reader = topo.node(5);
        // Mark every even node slow; the plan should order each distance
        // class fast-first.
        let speed: Vec<f64> = (0..topo.num_nodes())
            .map(|n| if n % 2 == 0 { 0.25 } else { 1.0 })
            .collect();
        let mut rng = SimRng::seed_from_u64(3);
        let plan = DegradedReadPlan::plan_redundant(
            &store,
            &topo,
            &state,
            target,
            reader,
            SourceSelection::LocalFirst,
            &mut rng,
            6,
            2,
            &speed,
        )
        .unwrap();
        let rack = topo.rack_of(reader);
        let same_rack: Vec<f64> = plan
            .sources
            .iter()
            .filter(|&&(_, n)| n != reader && topo.rack_of(n) == rack)
            .map(|&(_, n)| speed[n.index()])
            .collect();
        let remote: Vec<f64> = plan
            .sources
            .iter()
            .filter(|&&(_, n)| n != reader && topo.rack_of(n) != rack)
            .map(|&(_, n)| speed[n.index()])
            .collect();
        for class in [same_rack, remote] {
            for pair in class.windows(2) {
                assert!(pair[0] >= pair[1], "class not sorted fastest-first");
            }
        }
    }

    #[test]
    fn cross_rack_counting() {
        let (topo, store, state) = setup();
        let mut rng = SimRng::seed_from_u64(4);
        let target = store.lost_native_blocks(&state)[0];
        let reader = topo.node(15);
        let plan = DegradedReadPlan::plan(
            &store,
            &topo,
            &state,
            target,
            reader,
            SourceSelection::UniformRandom,
            &mut rng,
        )
        .unwrap();
        let manual = plan
            .sources
            .iter()
            .filter(|&&(_, node)| node != reader && !topo.same_rack(node, reader))
            .count();
        assert_eq!(plan.cross_rack_reads(&topo), manual);
    }

    #[test]
    fn source_breakdown_partitions_all_sources() {
        let (topo, store, state) = setup();
        let mut rng = SimRng::seed_from_u64(4);
        let target = store.lost_native_blocks(&state)[0];
        let survivors = store.survivors_of(target.stripe, &state);
        let reader = survivors[0].1;
        let plan = DegradedReadPlan::plan(
            &store,
            &topo,
            &state,
            target,
            reader,
            SourceSelection::LocalFirst,
            &mut rng,
        )
        .unwrap();
        let (local, same_rack, cross_rack) = plan.source_breakdown(&topo);
        assert_eq!(local + same_rack + cross_rack, plan.sources.len());
        assert!(local >= 1, "LocalFirst reader holding a block uses it");
        assert_eq!(cross_rack, plan.cross_rack_reads(&topo));
        assert_eq!(
            local,
            plan.sources.len() - plan.network_sources().count(),
            "local sources are exactly the non-network sources"
        );
    }
}
