//! Stripe layout: how a file's native blocks map onto `(n, k)` stripes.
//!
//! Stripe `s` holds native blocks `B_{s,0} .. B_{s,k-1}` at positions
//! `0..k` and parity blocks `P_{s,0} .. P_{s,n-k-1}` at positions `k..n`,
//! mirroring the paper's Figure 2 notation.

use erasure::CodeParams;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a stripe within one file layout.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct StripeId(pub u32);

impl StripeId {
    /// Dense index of this stripe.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StripeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stripe{}", self.0)
    }
}

/// Addresses one block: a stripe and a position within it
/// (`0..k` native, `k..n` parity).
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct BlockRef {
    /// The stripe this block belongs to.
    pub stripe: StripeId,
    /// Position within the stripe.
    pub pos: usize,
}

impl fmt::Display for BlockRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.stripe, self.pos)
    }
}

/// The static shape of an erasure-coded file: `(n, k)` parameters and the
/// native block count `F`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripeLayout {
    params: CodeParams,
    num_native: usize,
}

/// Errors building a layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// `F` must be a positive multiple of `k` (the paper always processes
    /// whole stripes: 1440 = 96·15, 240 = 24·10, 12 = 6·2).
    NativeCountNotMultipleOfK {
        /// Requested native block count.
        num_native: usize,
        /// The stripe data width `k`.
        k: usize,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::NativeCountNotMultipleOfK { num_native, k } => {
                write!(
                    f,
                    "native block count {num_native} is not a positive multiple of k={k}"
                )
            }
        }
    }
}

impl std::error::Error for LayoutError {}

impl StripeLayout {
    /// Creates a layout for `num_native` native blocks.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::NativeCountNotMultipleOfK`] when
    /// `num_native` is zero or not a multiple of `k`.
    pub fn new(params: CodeParams, num_native: usize) -> Result<StripeLayout, LayoutError> {
        if num_native == 0 || !num_native.is_multiple_of(params.k()) {
            return Err(LayoutError::NativeCountNotMultipleOfK {
                num_native,
                k: params.k(),
            });
        }
        Ok(StripeLayout { params, num_native })
    }

    /// The `(n, k)` code parameters.
    pub fn params(&self) -> CodeParams {
        self.params
    }

    /// Total native blocks `F`.
    pub fn num_native(&self) -> usize {
        self.num_native
    }

    /// Number of stripes.
    pub fn num_stripes(&self) -> usize {
        self.num_native / self.params.k()
    }

    /// Total blocks including parity.
    pub fn num_blocks(&self) -> usize {
        self.num_stripes() * self.params.n()
    }

    /// True if the position within a stripe is a native (data) position.
    pub fn is_native_pos(&self, pos: usize) -> bool {
        pos < self.params.k()
    }

    /// The dense global index of a block (stripe-major), used to key
    /// side tables.
    ///
    /// # Panics
    ///
    /// Panics if the reference is outside the layout.
    pub fn global_index(&self, block: BlockRef) -> usize {
        assert!(block.stripe.index() < self.num_stripes(), "unknown {block}");
        assert!(block.pos < self.params.n(), "unknown {block}");
        block.stripe.index() * self.params.n() + block.pos
    }

    /// The inverse of [`StripeLayout::global_index`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn block_at(&self, index: usize) -> BlockRef {
        assert!(
            index < self.num_blocks(),
            "block index {index} out of range"
        );
        BlockRef {
            stripe: StripeId((index / self.params.n()) as u32),
            pos: index % self.params.n(),
        }
    }

    /// The dense index of a native block among natives only
    /// (`0..num_native`), e.g. to map map-tasks 1:1 onto native blocks.
    ///
    /// # Panics
    ///
    /// Panics if the reference is not a native block of this layout.
    pub fn native_index(&self, block: BlockRef) -> usize {
        assert!(self.is_native_pos(block.pos), "{block} is parity");
        assert!(block.stripe.index() < self.num_stripes(), "unknown {block}");
        block.stripe.index() * self.params.k() + block.pos
    }

    /// The native block with dense native index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_native()`.
    pub fn native_at(&self, i: usize) -> BlockRef {
        assert!(i < self.num_native, "native index {i} out of range");
        BlockRef {
            stripe: StripeId((i / self.params.k()) as u32),
            pos: i % self.params.k(),
        }
    }

    /// Iterates over all blocks, stripe-major.
    pub fn blocks(&self) -> impl Iterator<Item = BlockRef> + '_ {
        let n = self.params.n();
        (0..self.num_stripes()).flat_map(move |s| {
            (0..n).map(move |pos| BlockRef {
                stripe: StripeId(s as u32),
                pos,
            })
        })
    }

    /// Iterates over all native blocks, stripe-major.
    pub fn native_blocks(&self) -> impl Iterator<Item = BlockRef> + '_ {
        (0..self.num_native).map(|i| self.native_at(i))
    }

    /// Iterates over the blocks of one stripe.
    ///
    /// # Panics
    ///
    /// Panics on an unknown stripe.
    pub fn stripe_blocks(&self, stripe: StripeId) -> impl Iterator<Item = BlockRef> + '_ {
        assert!(stripe.index() < self.num_stripes(), "unknown {stripe}");
        (0..self.params.n()).map(move |pos| BlockRef { stripe, pos })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> StripeLayout {
        StripeLayout::new(CodeParams::new(4, 2).unwrap(), 12).unwrap()
    }

    #[test]
    fn figure2_shape() {
        // The motivating example: 12 native blocks, (4,2) => 6 stripes,
        // 24 blocks total.
        let l = layout();
        assert_eq!(l.num_stripes(), 6);
        assert_eq!(l.num_blocks(), 24);
        assert_eq!(l.num_native(), 12);
    }

    #[test]
    fn rejects_partial_stripes() {
        let params = CodeParams::new(4, 2).unwrap();
        assert!(StripeLayout::new(params, 0).is_err());
        let err = StripeLayout::new(params, 13).unwrap_err();
        assert_eq!(
            err,
            LayoutError::NativeCountNotMultipleOfK {
                num_native: 13,
                k: 2
            }
        );
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn index_round_trips() {
        let l = layout();
        for i in 0..l.num_blocks() {
            let b = l.block_at(i);
            assert_eq!(l.global_index(b), i);
        }
        for i in 0..l.num_native() {
            let b = l.native_at(i);
            assert!(l.is_native_pos(b.pos));
            assert_eq!(l.native_index(b), i);
        }
    }

    #[test]
    fn native_vs_parity_positions() {
        let l = layout();
        assert!(l.is_native_pos(0));
        assert!(l.is_native_pos(1));
        assert!(!l.is_native_pos(2));
        assert!(!l.is_native_pos(3));
    }

    #[test]
    fn iterators_sizes() {
        let l = layout();
        assert_eq!(l.blocks().count(), 24);
        assert_eq!(l.native_blocks().count(), 12);
        assert_eq!(l.stripe_blocks(StripeId(3)).count(), 4);
        assert!(l.native_blocks().all(|b| l.is_native_pos(b.pos)));
    }

    #[test]
    #[should_panic(expected = "is parity")]
    fn native_index_rejects_parity() {
        let l = layout();
        let _ = l.native_index(BlockRef {
            stripe: StripeId(0),
            pos: 3,
        });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn block_at_bounds() {
        let _ = layout().block_at(24);
    }

    #[test]
    fn display() {
        let b = BlockRef {
            stripe: StripeId(2),
            pos: 1,
        };
        assert_eq!(b.to_string(), "stripe2[1]");
    }
}
