//! `ecstore` — the erasure-coded block store model (the paper's
//! HDFS-RAID layer, minus the bytes; real-byte storage lives in
//! `textlab`).
//!
//! A file of `F` fixed-size native blocks is cut into stripes of `k`
//! natives, each extended with `n − k` parity blocks ([`StripeLayout`]).
//! A [placement policy](placement) maps every block of every stripe to a
//! node, subject to the paper's Section III constraints. Given a
//! [`cluster::ClusterState`] in failure mode, the store computes which
//! native blocks are *lost* (their map tasks become degraded tasks) and
//! plans [degraded reads](degraded): the `k` surviving blocks a
//! reconstruction downloads.
//!
//! # Example
//!
//! ```
//! use cluster::{ClusterState, FailureScenario, Topology};
//! use ecstore::{BlockStore, StripeLayout, placement::RackAwarePlacement};
//! use erasure::CodeParams;
//! use simkit::SimRng;
//!
//! let topo = Topology::homogeneous(2, 2, 2, 1);
//! let layout = StripeLayout::new(CodeParams::new(4, 2).unwrap(), 12).unwrap();
//! let mut rng = SimRng::seed_from_u64(1);
//! let store = BlockStore::place(&topo, layout, &RackAwarePlacement, &mut rng).unwrap();
//!
//! let state = ClusterState::from_scenario(&topo, &FailureScenario::nodes([topo.node(0)]));
//! let lost = store.lost_native_blocks(&state);
//! assert!(!lost.is_empty());
//! ```

pub mod degraded;
pub mod layout;
pub mod placement;
pub mod store;

pub use degraded::{DegradedReadError, DegradedReadPlan, FetchPolicy, SourceSelection};
pub use layout::{BlockRef, StripeId, StripeLayout};
pub use placement::{
    ExplicitPlacement, PlacementError, PlacementPolicy, RackAwarePlacement, RoundRobinPlacement,
};
pub use store::BlockStore;
