//! Block placement policies.
//!
//! Section III derives two placement requirements for HDFS-RAID from
//! HDFS's replica-placement rule: the code must have `n − k ≥ 2`, and at
//! most `n − k` blocks of any stripe may land in one rack (so a rack
//! failure never destroys a stripe). [`RackAwarePlacement`] enforces both
//! while balancing per-node load, matching the simulator setup ("randomly
//! place them in the nodes based on the requirements in Section III",
//! Section V-B). [`RoundRobinPlacement`] reproduces the testbed setup
//! ("placed in the slaves in a round-robin manner for load balancing",
//! Section VI), which does not enforce the rack constraint.

use std::fmt;

use cluster::{NodeId, Topology};
use simkit::SimRng;

use crate::layout::StripeLayout;

/// Errors from placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// A stripe has more blocks than nodes, so blocks cannot sit on
    /// distinct nodes.
    TooFewNodes {
        /// Stripe width `n`.
        n: usize,
        /// Cluster size.
        nodes: usize,
    },
    /// The rack constraint `ceil(n / R) ≤ n − k` cannot be met.
    RackConstraintUnsatisfiable {
        /// Stripe width `n`.
        n: usize,
        /// Parity count `n − k`.
        parity: usize,
        /// Number of racks.
        racks: usize,
    },
    /// The code's fault tolerance is below the paper's requirement
    /// `n − k ≥ 2`.
    InsufficientParity {
        /// Parity count `n − k`.
        parity: usize,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::TooFewNodes { n, nodes } => {
                write!(f, "stripe width {n} exceeds cluster size {nodes}")
            }
            PlacementError::RackConstraintUnsatisfiable { n, parity, racks } => write!(
                f,
                "cannot place {n} blocks across {racks} racks with at most {parity} per rack"
            ),
            PlacementError::InsufficientParity { parity } => {
                write!(f, "placement requires n-k >= 2, got {parity}")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// A placement policy maps every block of every stripe to a node.
///
/// Returned vector is indexed by [`StripeLayout::global_index`].
pub trait PlacementPolicy {
    /// Produces the block→node map.
    ///
    /// # Errors
    ///
    /// Implementations return [`PlacementError`] when the topology cannot
    /// satisfy their constraints.
    fn place(
        &self,
        topo: &Topology,
        layout: &StripeLayout,
        rng: &mut SimRng,
    ) -> Result<Vec<NodeId>, PlacementError>;
}

/// Randomized placement honouring the Section III constraints:
/// blocks of a stripe on distinct nodes, at most `n − k` per rack,
/// `n − k ≥ 2`, with global load balancing (each stripe picks the
/// least-loaded nodes of each rack, ties broken randomly).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RackAwarePlacement;

impl PlacementPolicy for RackAwarePlacement {
    fn place(
        &self,
        topo: &Topology,
        layout: &StripeLayout,
        rng: &mut SimRng,
    ) -> Result<Vec<NodeId>, PlacementError> {
        let n = layout.params().n();
        let parity = layout.params().parity();
        let racks = topo.num_racks();
        if parity < 2 {
            return Err(PlacementError::InsufficientParity { parity });
        }
        if n > topo.num_nodes() {
            return Err(PlacementError::TooFewNodes {
                n,
                nodes: topo.num_nodes(),
            });
        }
        if n > racks * parity {
            return Err(PlacementError::RackConstraintUnsatisfiable { n, parity, racks });
        }
        // Per-rack quota must also respect rack sizes.
        let rack_sizes = topo.rack_sizes();
        let mut load = vec![0usize; topo.num_nodes()];
        // Native blocks are balanced separately: the analysis and the
        // simulation both assume each node stores F/N natives.
        let mut native_load = vec![0usize; topo.num_nodes()];
        let k = layout.params().k();
        let mut map = Vec::with_capacity(layout.num_blocks());
        for _stripe in 0..layout.num_stripes() {
            // Distribute n slots across racks: start with an even spread,
            // then push the remainder to randomly-ordered racks, never
            // exceeding min(parity, rack size).
            let mut quota = vec![0usize; racks];
            let mut remaining = n;
            let mut rack_order: Vec<usize> = (0..racks).collect();
            rng.shuffle(&mut rack_order);
            // Round-robin fill in random rack order.
            'fill: loop {
                for &r in &rack_order {
                    if remaining == 0 {
                        break 'fill;
                    }
                    if quota[r] < parity.min(rack_sizes[r]) {
                        quota[r] += 1;
                        remaining -= 1;
                    }
                }
                // If a full pass made no progress the constraint is
                // unsatisfiable for these rack sizes.
                if remaining > 0
                    && rack_order
                        .iter()
                        .all(|&r| quota[r] >= parity.min(rack_sizes[r]))
                {
                    return Err(PlacementError::RackConstraintUnsatisfiable { n, parity, racks });
                }
            }
            // Pick the least-loaded nodes in each rack (random tie-break),
            // then shuffle which stripe position goes to which node.
            let mut chosen: Vec<NodeId> = Vec::with_capacity(n);
            for (r, &rack_quota) in quota.iter().enumerate() {
                if rack_quota == 0 {
                    continue;
                }
                let mut members: Vec<NodeId> =
                    topo.nodes_in_rack(cluster::RackId(r as u32)).to_vec();
                rng.shuffle(&mut members);
                members.sort_by_key(|m| load[m.index()]);
                for &m in members.iter().take(rack_quota) {
                    chosen.push(m);
                    load[m.index()] += 1;
                }
            }
            debug_assert_eq!(chosen.len(), n);
            // Give the k native positions to the nodes with the fewest
            // natives so far (random tie-break), parity to the rest.
            rng.shuffle(&mut chosen);
            chosen.sort_by_key(|m| native_load[m.index()]);
            let mut natives = chosen[..k].to_vec();
            let mut parities = chosen[k..].to_vec();
            for m in &natives {
                native_load[m.index()] += 1;
            }
            rng.shuffle(&mut natives);
            rng.shuffle(&mut parities);
            natives.extend(parities);
            map.extend(natives);
        }
        Ok(map)
    }
}

/// Deterministic round-robin placement: block `pos` of stripe `s` goes to
/// node `(s·k + pos) mod N`, so native blocks rotate evenly across all
/// nodes (the testbed's 20-natives-per-slave layout) and each stripe's
/// `n` blocks land on `n` consecutive nodes. Does **not** enforce the
/// rack constraint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRobinPlacement;

impl PlacementPolicy for RoundRobinPlacement {
    fn place(
        &self,
        topo: &Topology,
        layout: &StripeLayout,
        _rng: &mut SimRng,
    ) -> Result<Vec<NodeId>, PlacementError> {
        let n = layout.params().n();
        let k = layout.params().k();
        if n > topo.num_nodes() {
            return Err(PlacementError::TooFewNodes {
                n,
                nodes: topo.num_nodes(),
            });
        }
        let nodes = topo.num_nodes();
        let mut map = Vec::with_capacity(layout.num_blocks());
        for s in 0..layout.num_stripes() {
            for pos in 0..n {
                map.push(topo.node((s * k + pos) % nodes));
            }
        }
        Ok(map)
    }
}

/// A hand-specified placement (e.g. the paper's Figure 2), given as one
/// node per block in [`StripeLayout::global_index`] order. Validated for
/// length and per-stripe node distinctness, but intentionally not for the
/// rack constraint, so pathological layouts can be studied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplicitPlacement {
    map: Vec<NodeId>,
}

impl ExplicitPlacement {
    /// Wraps an explicit block→node map.
    pub fn new(map: Vec<NodeId>) -> ExplicitPlacement {
        ExplicitPlacement { map }
    }
}

impl PlacementPolicy for ExplicitPlacement {
    fn place(
        &self,
        topo: &Topology,
        layout: &StripeLayout,
        _rng: &mut SimRng,
    ) -> Result<Vec<NodeId>, PlacementError> {
        assert_eq!(
            self.map.len(),
            layout.num_blocks(),
            "explicit placement covers {} blocks, layout has {}",
            self.map.len(),
            layout.num_blocks()
        );
        let n = layout.params().n();
        assert!(
            self.map.iter().all(|m| m.index() < topo.num_nodes()),
            "explicit placement references unknown node"
        );
        for s in 0..layout.num_stripes() {
            let mut nodes: Vec<NodeId> = self.map[s * n..(s + 1) * n].to_vec();
            nodes.sort();
            nodes.dedup();
            assert_eq!(nodes.len(), n, "stripe {s} reuses a node");
        }
        Ok(self.map.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erasure::CodeParams;

    fn check_constraints(topo: &Topology, layout: &StripeLayout, map: &[NodeId]) {
        let n = layout.params().n();
        let parity = layout.params().parity();
        for s in 0..layout.num_stripes() {
            let nodes: Vec<NodeId> = (0..n).map(|p| map[s * n + p]).collect();
            // Distinct nodes per stripe.
            let mut uniq = nodes.clone();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), n, "stripe {s} reuses a node");
            // Rack constraint.
            for rack in topo.rack_ids() {
                let in_rack = nodes.iter().filter(|&&m| topo.rack_of(m) == rack).count();
                assert!(
                    in_rack <= parity,
                    "stripe {s} puts {in_rack} blocks in {rack}"
                );
            }
        }
    }

    #[test]
    fn rack_aware_satisfies_section3() {
        // The paper's default: 40 nodes / 4 racks, (20,15), 1440 natives.
        let topo = Topology::homogeneous(4, 10, 4, 1);
        let layout = StripeLayout::new(CodeParams::new(20, 15).unwrap(), 1440).unwrap();
        let mut rng = SimRng::seed_from_u64(11);
        let map = RackAwarePlacement.place(&topo, &layout, &mut rng).unwrap();
        assert_eq!(map.len(), layout.num_blocks());
        check_constraints(&topo, &layout, &map);
    }

    #[test]
    fn rack_aware_balances_load() {
        let topo = Topology::homogeneous(4, 10, 4, 1);
        let layout = StripeLayout::new(CodeParams::new(16, 12).unwrap(), 1440).unwrap();
        let mut rng = SimRng::seed_from_u64(5);
        let map = RackAwarePlacement.place(&topo, &layout, &mut rng).unwrap();
        let mut per_node = vec![0usize; topo.num_nodes()];
        for node in &map {
            per_node[node.index()] += 1;
        }
        let min = per_node.iter().min().unwrap();
        let max = per_node.iter().max().unwrap();
        // 1920 blocks over 40 nodes = 48 each; allow ±1 from quota rounding.
        assert!(max - min <= 2, "load spread {min}..{max}");
    }

    #[test]
    fn rack_aware_on_motivating_example() {
        // 5 nodes in racks of 3+2, (4,2): at most 2 blocks per rack.
        let topo = Topology::with_rack_sizes(&[3, 2], 2, 1);
        let layout = StripeLayout::new(CodeParams::new(4, 2).unwrap(), 12).unwrap();
        let mut rng = SimRng::seed_from_u64(2);
        let map = RackAwarePlacement.place(&topo, &layout, &mut rng).unwrap();
        check_constraints(&topo, &layout, &map);
    }

    #[test]
    fn rack_aware_rejects_impossible() {
        // (6,5): parity 1 < 2.
        let topo = Topology::homogeneous(3, 4, 1, 1);
        let layout = StripeLayout::new(CodeParams::new(6, 5).unwrap(), 10).unwrap();
        let mut rng = SimRng::seed_from_u64(0);
        assert_eq!(
            RackAwarePlacement
                .place(&topo, &layout, &mut rng)
                .unwrap_err(),
            PlacementError::InsufficientParity { parity: 1 }
        );
        // 2 racks * parity 2 = 4 < n = 6.
        let layout = StripeLayout::new(CodeParams::new(6, 4).unwrap(), 8).unwrap();
        let topo = Topology::homogeneous(2, 6, 1, 1);
        assert_eq!(
            RackAwarePlacement
                .place(&topo, &layout, &mut rng)
                .unwrap_err(),
            PlacementError::RackConstraintUnsatisfiable {
                n: 6,
                parity: 2,
                racks: 2
            }
        );
        // Cluster smaller than a stripe.
        let topo = Topology::homogeneous(2, 2, 1, 1);
        let layout = StripeLayout::new(CodeParams::new(6, 4).unwrap(), 8).unwrap();
        assert_eq!(
            RackAwarePlacement
                .place(&topo, &layout, &mut rng)
                .unwrap_err(),
            PlacementError::TooFewNodes { n: 6, nodes: 4 }
        );
    }

    #[test]
    fn round_robin_matches_testbed() {
        // Testbed: 240 natives, (12,10), 12 slaves => 20 natives per slave.
        let topo = Topology::homogeneous(3, 4, 4, 1);
        let layout = StripeLayout::new(CodeParams::new(12, 10).unwrap(), 240).unwrap();
        let mut rng = SimRng::seed_from_u64(0);
        let map = RoundRobinPlacement.place(&topo, &layout, &mut rng).unwrap();
        let mut natives_per_node = vec![0usize; 12];
        for b in layout.native_blocks() {
            natives_per_node[map[layout.global_index(b)].index()] += 1;
        }
        assert!(
            natives_per_node.iter().all(|&c| c == 20),
            "{natives_per_node:?}"
        );
    }

    #[test]
    fn round_robin_deterministic() {
        let topo = Topology::homogeneous(2, 3, 1, 1);
        let layout = StripeLayout::new(CodeParams::new(4, 2).unwrap(), 8).unwrap();
        let mut r1 = SimRng::seed_from_u64(1);
        let mut r2 = SimRng::seed_from_u64(999);
        assert_eq!(
            RoundRobinPlacement.place(&topo, &layout, &mut r1).unwrap(),
            RoundRobinPlacement.place(&topo, &layout, &mut r2).unwrap()
        );
    }

    #[test]
    fn rack_aware_deterministic_per_seed() {
        let topo = Topology::homogeneous(4, 10, 4, 1);
        let layout = StripeLayout::new(CodeParams::new(8, 6).unwrap(), 240).unwrap();
        let a = RackAwarePlacement
            .place(&topo, &layout, &mut SimRng::seed_from_u64(7))
            .unwrap();
        let b = RackAwarePlacement
            .place(&topo, &layout, &mut SimRng::seed_from_u64(7))
            .unwrap();
        let c = RackAwarePlacement
            .place(&topo, &layout, &mut SimRng::seed_from_u64(8))
            .unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn error_display() {
        for e in [
            PlacementError::TooFewNodes { n: 6, nodes: 4 },
            PlacementError::RackConstraintUnsatisfiable {
                n: 6,
                parity: 2,
                racks: 2,
            },
            PlacementError::InsufficientParity { parity: 1 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}

#[cfg(test)]
mod explicit_tests {
    use super::*;
    use erasure::CodeParams;

    #[test]
    fn explicit_placement_round_trips() {
        let topo = Topology::with_rack_sizes(&[3, 2], 2, 1);
        let layout = StripeLayout::new(CodeParams::new(4, 2).unwrap(), 4).unwrap();
        let map: Vec<NodeId> = vec![
            NodeId(0),
            NodeId(1),
            NodeId(3),
            NodeId(4),
            NodeId(2),
            NodeId(3),
            NodeId(0),
            NodeId(4),
        ];
        let mut rng = SimRng::seed_from_u64(0);
        let placed = ExplicitPlacement::new(map.clone())
            .place(&topo, &layout, &mut rng)
            .unwrap();
        assert_eq!(placed, map);
    }

    #[test]
    #[should_panic(expected = "reuses a node")]
    fn explicit_placement_rejects_duplicates_within_stripe() {
        let topo = Topology::with_rack_sizes(&[3, 2], 2, 1);
        let layout = StripeLayout::new(CodeParams::new(4, 2).unwrap(), 2).unwrap();
        let map = vec![NodeId(0), NodeId(0), NodeId(1), NodeId(2)];
        let mut rng = SimRng::seed_from_u64(0);
        let _ = ExplicitPlacement::new(map).place(&topo, &layout, &mut rng);
    }

    #[test]
    #[should_panic(expected = "covers")]
    fn explicit_placement_rejects_wrong_length() {
        let topo = Topology::with_rack_sizes(&[3, 2], 2, 1);
        let layout = StripeLayout::new(CodeParams::new(4, 2).unwrap(), 4).unwrap();
        let mut rng = SimRng::seed_from_u64(0);
        let _ = ExplicitPlacement::new(vec![NodeId(0)]).place(&topo, &layout, &mut rng);
    }
}
