//! The placed block store: block→node map plus failure-mode queries.

use std::collections::BTreeMap;

use cluster::{ClusterState, NodeId, Topology};
use simkit::SimRng;

use crate::layout::{BlockRef, StripeId, StripeLayout};
use crate::placement::{PlacementError, PlacementPolicy};

/// An erasure-coded file placed on a cluster.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Clone, Debug)]
pub struct BlockStore {
    layout: StripeLayout,
    /// Block → node, indexed by [`StripeLayout::global_index`].
    node_of: Vec<NodeId>,
    /// Node → native blocks stored there (dense per node index).
    natives_on: Vec<Vec<BlockRef>>,
}

impl BlockStore {
    /// Places `layout` on `topo` with the given policy.
    ///
    /// # Errors
    ///
    /// Propagates the policy's [`PlacementError`].
    pub fn place(
        topo: &Topology,
        layout: StripeLayout,
        policy: &dyn PlacementPolicy,
        rng: &mut SimRng,
    ) -> Result<BlockStore, PlacementError> {
        let node_of = policy.place(topo, &layout, rng)?;
        debug_assert_eq!(node_of.len(), layout.num_blocks());
        let mut natives_on = vec![Vec::new(); topo.num_nodes()];
        for block in layout.native_blocks() {
            let node = node_of[layout.global_index(block)];
            natives_on[node.index()].push(block);
        }
        Ok(BlockStore {
            layout,
            node_of,
            natives_on,
        })
    }

    /// The file layout.
    pub fn layout(&self) -> &StripeLayout {
        &self.layout
    }

    /// The node holding a block.
    ///
    /// # Panics
    ///
    /// Panics on an unknown block.
    pub fn node_of(&self, block: BlockRef) -> NodeId {
        self.node_of[self.layout.global_index(block)]
    }

    /// The native blocks stored on a node.
    ///
    /// # Panics
    ///
    /// Panics on an unknown node.
    pub fn natives_on(&self, node: NodeId) -> &[BlockRef] {
        &self.natives_on[node.index()]
    }

    /// Native blocks whose holders have failed — exactly the inputs of
    /// the job's *degraded tasks*.
    pub fn lost_native_blocks(&self, state: &ClusterState) -> Vec<BlockRef> {
        self.layout
            .native_blocks()
            .filter(|&b| !state.is_alive(self.node_of(b)))
            .collect()
    }

    /// The surviving `(position, node)` pairs of a stripe.
    pub fn survivors_of(&self, stripe: StripeId, state: &ClusterState) -> Vec<(usize, NodeId)> {
        self.layout
            .stripe_blocks(stripe)
            .filter_map(|b| {
                let node = self.node_of(b);
                state.is_alive(node).then_some((b.pos, node))
            })
            .collect()
    }

    /// True if the stripe still has at least `k` surviving blocks.
    pub fn is_recoverable(&self, stripe: StripeId, state: &ClusterState) -> bool {
        self.survivors_of(stripe, state).len() >= self.layout.params().k()
    }

    /// Per-node count of stored native blocks (diagnostics / balance
    /// assertions in tests and benches).
    pub fn native_load(&self) -> BTreeMap<NodeId, usize> {
        self.natives_on
            .iter()
            .enumerate()
            .map(|(i, blocks)| (NodeId(i as u32), blocks.len()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{RackAwarePlacement, RoundRobinPlacement};
    use cluster::FailureScenario;
    use erasure::CodeParams;

    fn example() -> (Topology, BlockStore) {
        let topo = Topology::with_rack_sizes(&[3, 2], 2, 1);
        let layout = StripeLayout::new(CodeParams::new(4, 2).unwrap(), 12).unwrap();
        let mut rng = SimRng::seed_from_u64(42);
        let store = BlockStore::place(&topo, layout, &RackAwarePlacement, &mut rng).unwrap();
        (topo, store)
    }

    #[test]
    fn lost_blocks_track_failures() {
        let (topo, store) = example();
        let healthy = ClusterState::all_alive(&topo);
        assert!(store.lost_native_blocks(&healthy).is_empty());

        let node = topo.node(0);
        let state = ClusterState::from_scenario(&topo, &FailureScenario::nodes([node]));
        let lost = store.lost_native_blocks(&state);
        assert_eq!(lost.len(), store.natives_on(node).len());
        for b in &lost {
            assert_eq!(store.node_of(*b), node);
        }
    }

    #[test]
    fn survivors_and_recoverability_single_failure() {
        let (topo, store) = example();
        let state = ClusterState::from_scenario(&topo, &FailureScenario::nodes([topo.node(1)]));
        for s in 0..store.layout().num_stripes() {
            let stripe = StripeId(s as u32);
            let survivors = store.survivors_of(stripe, &state);
            // A single node holds at most one block per stripe.
            assert!(survivors.len() >= 3);
            assert!(store.is_recoverable(stripe, &state));
            for (_, node) in survivors {
                assert!(state.is_alive(node));
            }
        }
    }

    #[test]
    fn rack_failure_still_recoverable_with_rack_aware_placement() {
        // The Section III constraint exists precisely so a full-rack
        // failure keeps every stripe recoverable.
        let (topo, store) = example();
        for rack in topo.rack_ids() {
            let state = ClusterState::from_scenario(&topo, &FailureScenario::rack(rack));
            for s in 0..store.layout().num_stripes() {
                assert!(
                    store.is_recoverable(StripeId(s as u32), &state),
                    "stripe {s} unrecoverable after {rack} failure"
                );
            }
        }
    }

    #[test]
    fn round_robin_native_load_is_even() {
        let topo = Topology::homogeneous(3, 4, 4, 1);
        let layout = StripeLayout::new(CodeParams::new(12, 10).unwrap(), 240).unwrap();
        let mut rng = SimRng::seed_from_u64(0);
        let store = BlockStore::place(&topo, layout, &RoundRobinPlacement, &mut rng).unwrap();
        for (_, count) in store.native_load() {
            assert_eq!(count, 20);
        }
    }

    #[test]
    fn natives_on_partitions_all_natives() {
        let (topo, store) = example();
        let total: usize = topo.node_ids().map(|n| store.natives_on(n).len()).sum();
        assert_eq!(total, store.layout().num_native());
    }
}
