//! Property-based tests for placement and degraded-read planning over
//! randomized topologies and coding schemes.

use cluster::{ClusterState, FailureScenario, Topology};
use ecstore::placement::{PlacementPolicy, RackAwarePlacement, RoundRobinPlacement};
use ecstore::{BlockStore, DegradedReadPlan, SourceSelection, StripeLayout};
use erasure::CodeParams;
use proptest::prelude::*;
use simkit::SimRng;

#[derive(Debug, Clone)]
struct Setup {
    racks: usize,
    nodes_per_rack: usize,
    n: usize,
    k: usize,
    stripes: usize,
    seed: u64,
}

fn setup() -> impl Strategy<Value = Setup> {
    // Feasible combinations: parity >= 2, n <= racks*parity, n <= nodes.
    (
        2usize..=5,
        2usize..=5,
        2usize..=6,
        2usize..=4,
        1usize..=12,
        any::<u64>(),
    )
        .prop_filter_map(
            "feasible placement",
            |(racks, nodes_per_rack, k, parity, stripes, seed)| {
                let n = k + parity;
                let nodes = racks * nodes_per_rack;
                (n <= nodes && n <= racks * parity && n <= 255).then_some(Setup {
                    racks,
                    nodes_per_rack,
                    n,
                    k,
                    stripes,
                    seed,
                })
            },
        )
}

fn place(s: &Setup, policy: &dyn PlacementPolicy) -> (Topology, BlockStore) {
    let topo = Topology::homogeneous(s.racks, s.nodes_per_rack, 2, 1);
    let layout = StripeLayout::new(
        CodeParams::new(s.n, s.k).expect("valid code"),
        s.stripes * s.k,
    )
    .expect("layout");
    let mut rng = SimRng::seed_from_u64(s.seed);
    let store = BlockStore::place(&topo, layout, policy, &mut rng).expect("placement");
    (topo, store)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rack_aware_placement_invariants(s in setup()) {
        let (topo, store) = place(&s, &RackAwarePlacement);
        let layout = store.layout();
        for stripe in 0..layout.num_stripes() {
            let stripe = ecstore::StripeId(stripe as u32);
            let nodes: Vec<_> = layout
                .stripe_blocks(stripe)
                .map(|b| store.node_of(b))
                .collect();
            // Distinct nodes.
            let mut uniq = nodes.clone();
            uniq.sort();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), s.n, "stripe reuses a node");
            // Rack constraint: at most n-k blocks per rack.
            for rack in topo.rack_ids() {
                let count = nodes.iter().filter(|&&m| topo.rack_of(m) == rack).count();
                prop_assert!(count <= s.n - s.k, "rack constraint violated");
            }
        }
        // Native balance: max-min spread stays within quota rounding.
        let loads: Vec<usize> = store.native_load().values().copied().collect();
        let (min, max) = (
            loads.iter().min().copied().unwrap_or(0),
            loads.iter().max().copied().unwrap_or(0),
        );
        prop_assert!(
            max - min <= s.stripes.min(2) + 1,
            "native load spread {min}..{max} too wide"
        );
    }

    #[test]
    fn any_single_failure_keeps_all_stripes_recoverable(s in setup()) {
        let (topo, store) = place(&s, &RackAwarePlacement);
        for victim in topo.node_ids() {
            let state =
                ClusterState::from_scenario(&topo, &FailureScenario::nodes([victim]));
            for stripe in 0..store.layout().num_stripes() {
                prop_assert!(store.is_recoverable(ecstore::StripeId(stripe as u32), &state));
            }
        }
    }

    #[test]
    fn any_rack_failure_keeps_all_stripes_recoverable(s in setup()) {
        let (topo, store) = place(&s, &RackAwarePlacement);
        for rack in topo.rack_ids() {
            let state = ClusterState::from_scenario(&topo, &FailureScenario::rack(rack));
            for stripe in 0..store.layout().num_stripes() {
                prop_assert!(
                    store.is_recoverable(ecstore::StripeId(stripe as u32), &state),
                    "rack {rack} failure destroyed stripe {stripe}"
                );
            }
        }
    }

    #[test]
    fn lost_blocks_partition_by_holder(s in setup()) {
        let (topo, store) = place(&s, &RackAwarePlacement);
        let victim = topo.node((s.seed % topo.num_nodes() as u64) as usize);
        let state = ClusterState::from_scenario(&topo, &FailureScenario::nodes([victim]));
        let lost = store.lost_native_blocks(&state);
        prop_assert_eq!(lost.len(), store.natives_on(victim).len());
        for b in &lost {
            prop_assert_eq!(store.node_of(*b), victim);
        }
    }

    #[test]
    fn degraded_plans_are_valid_for_both_strategies(s in setup()) {
        let (topo, store) = place(&s, &RackAwarePlacement);
        let victim = topo.node(0);
        let state = ClusterState::from_scenario(&topo, &FailureScenario::nodes([victim]));
        let mut rng = SimRng::seed_from_u64(s.seed ^ 0xdead);
        let readers: Vec<_> = state.alive_nodes();
        for target in store.lost_native_blocks(&state).into_iter().take(4) {
            for strategy in [SourceSelection::UniformRandom, SourceSelection::LocalFirst] {
                let reader = readers[(s.seed as usize) % readers.len()];
                let plan = DegradedReadPlan::plan(
                    &store, &topo, &state, target, reader, strategy, &mut rng,
                )
                .unwrap();
                prop_assert_eq!(plan.sources.len(), s.k);
                let mut blocks: Vec<_> = plan.sources.iter().map(|&(b, _)| b).collect();
                blocks.sort();
                blocks.dedup();
                prop_assert_eq!(blocks.len(), s.k, "duplicate sources");
                for (block, holder) in &plan.sources {
                    prop_assert!(state.is_alive(*holder));
                    prop_assert_eq!(store.node_of(*block), *holder);
                    prop_assert_eq!(block.stripe, target.stripe);
                }
                prop_assert!(plan.cross_rack_reads(&topo) <= s.k);
            }
        }
    }

    #[test]
    fn round_robin_spreads_natives_evenly(s in setup()) {
        let (_topo, store) = place(&s, &RoundRobinPlacement);
        let loads: Vec<usize> = store.native_load().values().copied().collect();
        let total: usize = loads.iter().sum();
        prop_assert_eq!(total, s.stripes * s.k);
        let (min, max) = (
            loads.iter().min().copied().unwrap_or(0),
            loads.iter().max().copied().unwrap_or(0),
        );
        // Rotation keeps per-node native counts within 1 of each other
        // when the block count divides evenly; otherwise within the
        // number of stripes.
        prop_assert!(max - min <= s.stripes.max(1), "{min}..{max}");
    }
}
