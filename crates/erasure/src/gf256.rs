//! Arithmetic in GF(2^8) with the AES polynomial `x^8 + x^4 + x^3 + x + 1`
//! (0x11B), implemented with log/antilog tables built at first use.
//!
//! All Reed–Solomon coding in this workspace reduces to [`Gf256`]
//! multiply-accumulate over block buffers.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Sub};
use std::sync::OnceLock;

/// The reduction polynomial (without the x^8 term bit it is 0x1B; full
/// value 0x11B).
const POLY: u16 = 0x11B;
/// A generator of the multiplicative group for 0x11B (3 is primitive).
const GENERATOR: u8 = 0x03;

struct Tables {
    /// log[x] for x in 1..=255; log[0] is unused.
    log: [u8; 256],
    /// exp[i] = generator^i, doubled to avoid a modular reduction on lookup.
    exp: [u8; 512],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut log = [0u8; 256];
        let mut exp = [0u8; 512];
        let mut x: u16 = 1;
        for i in 0..255u16 {
            exp[i as usize] = x as u8;
            log[x as usize] = i as u8;
            // Multiply x by the generator (3 = x + 1): x*3 = (x << 1) ^ x.
            x = (x << 1) ^ x;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        debug_assert_eq!(exp[0], 1);
        Tables { log, exp }
    })
}

/// An element of GF(2^8).
///
/// Addition is XOR; multiplication is via log/antilog tables. The type is
/// `Copy` and zero-cost over `u8`.
///
/// # Example
///
/// ```
/// use erasure::gf256::Gf256;
/// let a = Gf256::new(0x57);
/// let b = Gf256::new(0x83);
/// // A known AES multiplication test vector: 0x57 * 0x83 = 0xC1.
/// assert_eq!((a * b).value(), 0xC1);
/// assert_eq!(a + a, Gf256::ZERO); // characteristic 2
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Gf256(u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);

    /// Wraps a raw byte.
    pub const fn new(value: u8) -> Gf256 {
        Gf256(value)
    }

    /// The raw byte value.
    pub const fn value(self) -> u8 {
        self.0
    }

    /// The primitive element used to build the tables.
    pub const fn generator() -> Gf256 {
        Gf256(GENERATOR)
    }

    /// `self` raised to the `e`-th power (`0^0 == 1` by convention).
    pub fn pow(self, e: usize) -> Gf256 {
        if e == 0 {
            return Gf256::ONE;
        }
        if self.0 == 0 {
            return Gf256::ZERO;
        }
        let t = tables();
        let log = t.log[self.0 as usize] as usize;
        let exp_index = (log * e) % 255;
        Gf256(t.exp[exp_index])
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics on zero.
    pub fn inverse(self) -> Gf256 {
        assert!(self.0 != 0, "inverse of zero in GF(256)");
        let t = tables();
        Gf256(t.exp[255 - t.log[self.0 as usize] as usize])
    }

    /// True for the additive identity.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Gf256 {
    type Output = Gf256;
    // GF(2^8) addition is carryless: XOR, not integer +.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf256 {
    #[allow(clippy::suspicious_op_assign_impl)]
    fn add_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf256 {
    type Output = Gf256;
    // Subtraction equals addition in characteristic 2.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn sub(self, rhs: Gf256) -> Gf256 {
        self + rhs
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    fn mul(self, rhs: Gf256) -> Gf256 {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf256::ZERO;
        }
        let t = tables();
        let idx = t.log[self.0 as usize] as usize + t.log[rhs.0 as usize] as usize;
        Gf256(t.exp[idx])
    }
}

impl MulAssign for Gf256 {
    fn mul_assign(&mut self, rhs: Gf256) {
        *self = *self * rhs;
    }
}

impl Div for Gf256 {
    type Output = Gf256;
    /// # Panics
    ///
    /// Panics on division by zero.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Gf256) -> Gf256 {
        self * rhs.inverse()
    }
}

impl From<u8> for Gf256 {
    fn from(value: u8) -> Gf256 {
        Gf256(value)
    }
}

impl From<Gf256> for u8 {
    fn from(value: Gf256) -> u8 {
        value.0
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf256(0x{:02x})", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:02x}", self.0)
    }
}

impl fmt::LowerHex for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

/// The full 256×256 product table (64 KiB), built lazily from the
/// log/antilog tables. Row `c` maps every byte `s` to `c * s`, letting
/// the slice kernels run one branch-free lookup per byte instead of a
/// zero test plus two table reads and an add.
fn mul_table() -> &'static [[u8; 256]; 256] {
    static MUL: OnceLock<Box<[[u8; 256]; 256]>> = OnceLock::new();
    MUL.get_or_init(|| {
        let t = tables();
        let mut m = vec![[0u8; 256]; 256].into_boxed_slice();
        for (c, row) in m.iter_mut().enumerate().skip(1) {
            let log_c = t.log[c] as usize;
            for (s, product) in row.iter_mut().enumerate().skip(1) {
                *product = t.exp[log_c + t.log[s] as usize];
            }
        }
        // SAFETY-free conversion: the boxed slice has exactly 256 rows.
        m.try_into().expect("256 rows")
    })
}

/// The premultiplied row for one coefficient: `row[s] == coeff * s`.
///
/// Exposed so batch callers (the RS codec) can hoist the row lookup out
/// of per-shard loops.
pub fn mul_row(coeff: Gf256) -> &'static [u8; 256] {
    &mul_table()[coeff.value() as usize]
}

/// Per-coefficient nibble tables for the SIMD kernels: entry `c` holds
/// `[c * 0x0, .., c * 0xF, c * 0x00, c * 0x10, .., c * 0xF0]` — the
/// products of the low and high nibbles. `c * s` is then
/// `lo[s & 0xF] ^ hi[s >> 4]` by linearity of GF(2^8) multiplication,
/// which `pshufb` evaluates for 16/32 lanes at once. 8 KiB total.
fn nibble_tables() -> &'static [[u8; 32]; 256] {
    static NIB: OnceLock<Box<[[u8; 32]; 256]>> = OnceLock::new();
    NIB.get_or_init(|| {
        let mul = mul_table();
        let mut n = vec![[0u8; 32]; 256].into_boxed_slice();
        for c in 0..256usize {
            let row = &mul[c];
            for i in 0..16usize {
                n[c][i] = row[i];
                n[c][16 + i] = row[i << 4];
            }
        }
        n.try_into().expect("256 rows")
    })
}

/// The nibble-table pair for one coefficient, consumed by the SIMD
/// shuffle kernels in [`crate::simd`].
pub(crate) fn nibble_row(coeff: Gf256) -> &'static [u8; 32] {
    &nibble_tables()[coeff.value() as usize]
}

/// Computes `dst[i] ^= coeff * src[i]` over whole buffers — the inner loop
/// of both encoding and decoding. Dispatches to the fastest kernel tier
/// the host supports (see [`crate::simd`]).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_acc_slice(dst: &mut [u8], src: &[u8], coeff: Gf256) {
    crate::simd::active().mul_acc_slice(dst, src, coeff);
}

/// Computes `dst[i] = coeff * src[i]` over whole buffers.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_slice(dst: &mut [u8], src: &[u8], coeff: Gf256) {
    crate::simd::active().mul_slice(dst, src, coeff);
}

/// Computes `data[i] = coeff * data[i]` in place — lets callers start an
/// accumulation from a copied shard without a zeroed scratch buffer.
pub fn mul_slice_in_place(data: &mut [u8], coeff: Gf256) {
    crate::simd::active().mul_slice_in_place(data, coeff);
}

/// Fused multi-source accumulate over whole buffers:
/// `dst[i] ^= Σⱼ termsⱼ.0 * termsⱼ.1[i]`, applying every source per
/// cache-blocked pass over `dst` instead of one full sweep per
/// coefficient — the inner loop of stripe encode/decode (see
/// [`crate::simd::Kernels::mul_acc_multi`]).
///
/// # Panics
///
/// Panics if any source length differs from `dst`.
pub fn mul_acc_multi(dst: &mut [u8], terms: &[crate::simd::Term<'_>]) {
    crate::simd::active().mul_acc_multi(dst, terms);
}

/// Reference implementation of [`mul_acc_slice`] via log/antilog lookups
/// with a per-byte zero test — the kernel this module shipped before the
/// full product table. Retained as the oracle for property tests and the
/// speedup baseline for `bench_snapshot`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_acc_slice_ref(dst: &mut [u8], src: &[u8], coeff: Gf256) {
    assert_eq!(dst.len(), src.len(), "buffer length mismatch");
    if coeff.is_zero() {
        return;
    }
    if coeff == Gf256::ONE {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
        return;
    }
    let t = tables();
    let log_c = t.log[coeff.value() as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src) {
        if *s != 0 {
            *d ^= t.exp[log_c + t.log[*s as usize] as usize];
        }
    }
}

/// Reference implementation of [`mul_slice`]; see [`mul_acc_slice_ref`].
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_slice_ref(dst: &mut [u8], src: &[u8], coeff: Gf256) {
    assert_eq!(dst.len(), src.len(), "buffer length mismatch");
    dst.fill(0);
    mul_acc_slice_ref(dst, src, coeff);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slow_mul(a: u8, b: u8) -> u8 {
        // Russian-peasant multiplication as an independent oracle.
        let (mut a, mut b, mut acc) = (a as u16, b as u16, 0u16);
        while b != 0 {
            if b & 1 != 0 {
                acc ^= a;
            }
            a <<= 1;
            if a & 0x100 != 0 {
                a ^= POLY;
            }
            b >>= 1;
        }
        acc as u8
    }

    #[test]
    fn table_mul_matches_peasant_mul() {
        for a in 0..=255u8 {
            for b in (0..=255u8).step_by(7) {
                assert_eq!(
                    (Gf256::new(a) * Gf256::new(b)).value(),
                    slow_mul(a, b),
                    "a={a} b={b}"
                );
            }
        }
    }

    #[test]
    fn aes_known_vector() {
        assert_eq!((Gf256::new(0x57) * Gf256::new(0x83)).value(), 0xC1);
        assert_eq!((Gf256::new(0x57) * Gf256::new(0x13)).value(), 0xFE);
    }

    #[test]
    fn addition_is_xor_and_self_inverse() {
        let a = Gf256::new(0xAB);
        let b = Gf256::new(0xCD);
        assert_eq!((a + b).value(), 0xAB ^ 0xCD);
        assert_eq!(a + a, Gf256::ZERO);
        assert_eq!(a - b, a + b);
    }

    #[test]
    fn inverse_and_division() {
        for x in 1..=255u8 {
            let g = Gf256::new(x);
            assert_eq!(g * g.inverse(), Gf256::ONE, "x={x}");
            assert_eq!(g / g, Gf256::ONE);
        }
    }

    #[test]
    #[should_panic(expected = "inverse of zero")]
    fn zero_has_no_inverse() {
        let _ = Gf256::ZERO.inverse();
    }

    #[test]
    fn pow_properties() {
        let g = Gf256::generator();
        assert_eq!(g.pow(0), Gf256::ONE);
        assert_eq!(g.pow(255), Gf256::ONE, "group order is 255");
        assert_eq!(g.pow(1), g);
        assert_eq!(Gf256::ZERO.pow(5), Gf256::ZERO);
        assert_eq!(Gf256::ZERO.pow(0), Gf256::ONE);
        // g^(a+b) == g^a * g^b
        assert_eq!(g.pow(100) * g.pow(200), g.pow(300));
    }

    #[test]
    fn generator_is_primitive() {
        // The powers of the generator must enumerate all 255 nonzero elements.
        let mut seen = [false; 256];
        let g = Gf256::generator();
        for e in 0..255 {
            seen[g.pow(e).value() as usize] = true;
        }
        assert!(!seen[0]);
        assert!(seen[1..].iter().all(|&s| s));
    }

    #[test]
    fn mul_is_associative_and_distributive() {
        let samples = [0u8, 1, 2, 3, 0x53, 0xCA, 0xFF];
        for &a in &samples {
            for &b in &samples {
                for &c in &samples {
                    let (a, b, c) = (Gf256::new(a), Gf256::new(b), Gf256::new(c));
                    assert_eq!((a * b) * c, a * (b * c));
                    assert_eq!(a * (b + c), a * b + a * c);
                }
            }
        }
    }

    #[test]
    fn slice_ops() {
        let src = [1u8, 2, 3, 0, 255];
        let mut dst = [9u8, 9, 9, 9, 9];
        let c = Gf256::new(0x1D);
        mul_acc_slice(&mut dst, &src, c);
        for i in 0..src.len() {
            assert_eq!(dst[i], 9 ^ (Gf256::new(src[i]) * c).value());
        }
        let mut out = [0u8; 5];
        mul_slice(&mut out, &src, Gf256::ONE);
        assert_eq!(out, src);
        let mut zero_out = [7u8; 5];
        mul_acc_slice(&mut zero_out, &src, Gf256::ZERO);
        assert_eq!(zero_out, [7u8; 5], "zero coeff must be a no-op");
    }

    #[test]
    fn mul_row_is_the_multiplication_table() {
        for c in 0..=255u8 {
            let row = mul_row(Gf256::new(c));
            for s in 0..=255u8 {
                assert_eq!(row[s as usize], slow_mul(c, s), "c={c} s={s}");
            }
        }
    }

    #[test]
    fn table_kernels_match_reference() {
        // Odd length exercises the unrolled body and the remainder tail.
        let mut src = vec![0u8; 1031];
        let mut x = 0x1234_5678_9abc_def0u64;
        for b in src.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *b = x as u8; // includes zeros
        }
        for coeff in [0u8, 1, 2, 3, 0x1D, 0x53, 0xCA, 0xFF] {
            let c = Gf256::new(coeff);
            let mut acc_opt = vec![0xA5u8; src.len()];
            let mut acc_ref = acc_opt.clone();
            mul_acc_slice(&mut acc_opt, &src, c);
            mul_acc_slice_ref(&mut acc_ref, &src, c);
            assert_eq!(acc_opt, acc_ref, "mul_acc coeff={coeff}");

            let mut out_opt = vec![0u8; src.len()];
            let mut out_ref = vec![0u8; src.len()];
            mul_slice(&mut out_opt, &src, c);
            mul_slice_ref(&mut out_ref, &src, c);
            assert_eq!(out_opt, out_ref, "mul coeff={coeff}");
        }
    }

    #[test]
    fn conversions_and_formatting() {
        let g: Gf256 = 0xABu8.into();
        let b: u8 = g.into();
        assert_eq!(b, 0xAB);
        assert_eq!(g.to_string(), "0xab");
        assert_eq!(format!("{g:x}"), "ab");
        assert_eq!(format!("{g:X}"), "AB");
        assert_eq!(format!("{g:?}"), "Gf256(0xab)");
    }
}
