//! `erasure` — Reed–Solomon erasure coding over GF(2^8).
//!
//! This crate is the storage-coding substrate of the degraded-first
//! scheduling reproduction. HDFS-RAID (the middleware the paper runs on)
//! encodes each group of `k` native blocks into a *stripe* of `n` blocks
//! (`k` native + `n−k` parity) such that **any** `k` of the `n` blocks
//! recover the originals. The same codec is used here:
//!
//! * by the flow-level simulator, which only needs the `(n, k)` arithmetic
//!   (how many blocks a degraded read must download), and
//! * by the `textlab` crate, which stores real bytes and performs real
//!   degraded reads through [`StripeCodec::reconstruct`].
//!
//! Two systematic code constructions are provided, matching the paper's
//! background section (Reed–Solomon \[28\] and Cauchy Reed–Solomon \[3\]):
//! [`CodeConstruction::Vandermonde`] and [`CodeConstruction::Cauchy`].
//!
//! # Example
//!
//! ```
//! use erasure::{CodeParams, StripeCodec};
//!
//! # fn main() -> Result<(), erasure::CodeError> {
//! let params = CodeParams::new(4, 2)?; // the paper's motivating (4,2) code
//! let codec = StripeCodec::new(params)?;
//! let natives = vec![vec![1u8, 2, 3], vec![4, 5, 6]];
//! let stripe = codec.encode(&natives)?;
//! assert_eq!(stripe.len(), 4);
//!
//! // Lose the first native block; recover from blocks {1, 3}.
//! let recovered = codec.reconstruct(&[(1, stripe[1].clone()), (3, stripe[3].clone())], 0)?;
//! assert_eq!(recovered, natives[0]);
//! # Ok(())
//! # }
//! ```

pub mod gf256;
pub mod lrc;
pub mod matrix;
pub mod rs;
pub mod simd;
pub mod stripe;

pub use gf256::Gf256;
pub use lrc::{LrcCodec, LrcParams};
pub use matrix::Matrix;
pub use rs::{CodeConstruction, ReedSolomon};
pub use stripe::StripeCodec;

use std::error::Error;
use std::fmt;

/// Erasure code parameters `(n, k)`: `k` native blocks are encoded into a
/// stripe of `n` total blocks (`n − k` of them parity).
///
/// The paper requires `n − k ≥ 2` (to match 3-way replication's
/// double-fault tolerance); [`CodeParams::new`] enforces `n > k ≥ 1` and
/// `n ≤ 255` (the GF(2^8) field bound), while the stricter placement rule
/// lives in `ecstore`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CodeParams {
    n: usize,
    k: usize,
}

impl CodeParams {
    /// Creates `(n, k)` parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] unless `1 ≤ k < n ≤ 255`.
    pub fn new(n: usize, k: usize) -> Result<CodeParams, CodeError> {
        if k == 0 || k >= n || n > 255 {
            return Err(CodeError::InvalidParams { n, k });
        }
        Ok(CodeParams { n, k })
    }

    /// Total number of blocks per stripe.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of native (data) blocks per stripe.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of parity blocks per stripe.
    pub fn parity(&self) -> usize {
        self.n - self.k
    }

    /// Storage redundancy overhead, e.g. 0.333 for (16,12) — the paper's
    /// "reduce the 200% overhead of 3-way replication to 33%".
    pub fn overhead(&self) -> f64 {
        (self.n - self.k) as f64 / self.k as f64
    }
}

impl fmt::Display for CodeParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.n, self.k)
    }
}

/// Errors returned by the erasure-coding APIs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeError {
    /// `(n, k)` outside `1 ≤ k < n ≤ 255`.
    InvalidParams {
        /// Offending total block count.
        n: usize,
        /// Offending native block count.
        k: usize,
    },
    /// The number of data shards handed to `encode` differs from `k`.
    WrongShardCount {
        /// Expected shard count (`k`).
        expected: usize,
        /// Actual shard count.
        actual: usize,
    },
    /// Shards of unequal length were supplied.
    UnequalShardLengths,
    /// Fewer than `k` distinct surviving shards were supplied to a decode.
    NotEnoughShards {
        /// Shards required (`k`).
        needed: usize,
        /// Distinct shards supplied.
        have: usize,
    },
    /// A shard index outside `0..n`, or a duplicate index.
    BadShardIndex {
        /// The offending index.
        index: usize,
    },
    /// The decode matrix was singular (cannot happen for the provided
    /// constructions; reported rather than panicking for robustness).
    SingularMatrix,
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::InvalidParams { n, k } => {
                write!(
                    f,
                    "invalid code parameters (n={n}, k={k}); need 1 <= k < n <= 255"
                )
            }
            CodeError::WrongShardCount { expected, actual } => {
                write!(f, "expected {expected} data shards, got {actual}")
            }
            CodeError::UnequalShardLengths => write!(f, "shards have unequal lengths"),
            CodeError::NotEnoughShards { needed, have } => {
                write!(f, "need {needed} distinct shards to decode, have {have}")
            }
            CodeError::BadShardIndex { index } => {
                write!(f, "shard index {index} out of range or duplicated")
            }
            CodeError::SingularMatrix => write!(f, "decode matrix is singular"),
        }
    }
}

impl Error for CodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_validation() {
        assert!(CodeParams::new(4, 2).is_ok());
        assert!(CodeParams::new(255, 254).is_ok());
        assert_eq!(
            CodeParams::new(4, 4).unwrap_err(),
            CodeError::InvalidParams { n: 4, k: 4 }
        );
        assert!(CodeParams::new(4, 0).is_err());
        assert!(CodeParams::new(256, 10).is_err());
        assert!(CodeParams::new(2, 3).is_err());
    }

    #[test]
    fn params_accessors() {
        let p = CodeParams::new(16, 12).unwrap();
        assert_eq!(p.n(), 16);
        assert_eq!(p.k(), 12);
        assert_eq!(p.parity(), 4);
        assert!((p.overhead() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.to_string(), "(16,12)");
    }

    #[test]
    fn error_display() {
        for e in [
            CodeError::InvalidParams { n: 1, k: 1 },
            CodeError::WrongShardCount {
                expected: 2,
                actual: 3,
            },
            CodeError::UnequalShardLengths,
            CodeError::NotEnoughShards { needed: 4, have: 2 },
            CodeError::BadShardIndex { index: 9 },
            CodeError::SingularMatrix,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
