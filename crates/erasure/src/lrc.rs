//! Local Reconstruction Codes (LRC), as deployed in Windows Azure
//! Storage (the paper's reference \[20\]).
//!
//! An `LRC(k, l, r)` code splits `k` data blocks into `l` equal local
//! groups, adds one **local parity** per group (the XOR of its members)
//! and `r` **global parities** (Reed–Solomon rows over all `k` data
//! blocks). Total stripe width `n = k + l + r`.
//!
//! The draw is the degraded read: a single lost data block is rebuilt
//! from its local group alone — `k/l` reads instead of the `k` a
//! conventional RS degraded read needs. The paper's footnote 1 notes
//! that degraded-first scheduling "also applies to such erasure code
//! constructions"; the `lrc_study` bench quantifies how the LF/EDF gap
//! shrinks as degraded reads get cheaper.
//!
//! # Example
//!
//! ```
//! use erasure::lrc::LrcParams;
//!
//! # fn main() -> Result<(), erasure::CodeError> {
//! // Azure's production code: 12 data, 2 local, 2 global parities.
//! let lrc = LrcParams::new(12, 2, 2)?.codec()?;
//! let data: Vec<Vec<u8>> = (0..12).map(|i| vec![i as u8; 16]).collect();
//! let stripe = lrc.encode(&data)?;
//! assert_eq!(stripe.len(), 16);
//!
//! // A lost data block needs only its local group: 6 reads, not 12.
//! let sources = lrc.local_repair_group(3);
//! assert_eq!(sources.len(), 6);
//! let survivors: Vec<(usize, Vec<u8>)> =
//!     sources.iter().map(|&i| (i, stripe[i].clone())).collect();
//! assert_eq!(lrc.reconstruct_local(&survivors, 3)?, data[3]);
//! # Ok(())
//! # }
//! ```

use crate::gf256::{mul_acc_slice, Gf256};
use crate::matrix::Matrix;
use crate::{CodeError, CodeParams};

/// Parameters of an `LRC(k, l, r)` code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LrcParams {
    k: usize,
    l: usize,
    r: usize,
}

impl LrcParams {
    /// Creates `LRC(k, l, r)` parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] unless `l ≥ 1` divides `k`,
    /// `r ≥ 1`, and the stripe fits GF(2^8) (`k + l + r ≤ 255`).
    pub fn new(k: usize, l: usize, r: usize) -> Result<LrcParams, CodeError> {
        let n = k + l + r;
        if k == 0 || l == 0 || r == 0 || !k.is_multiple_of(l) || n > 255 {
            return Err(CodeError::InvalidParams { n, k });
        }
        Ok(LrcParams { k, l, r })
    }

    /// Data blocks per stripe.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of local groups (and local parities).
    pub fn l(&self) -> usize {
        self.l
    }

    /// Number of global parities.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Total stripe width `n = k + l + r`.
    pub fn n(&self) -> usize {
        self.k + self.l + self.r
    }

    /// Data blocks per local group.
    pub fn group_size(&self) -> usize {
        self.k / self.l
    }

    /// The equivalent `(n, k)` view (for storage-overhead comparisons).
    ///
    /// # Errors
    ///
    /// Propagates [`CodeError::InvalidParams`] (cannot happen for valid
    /// LRC parameters).
    pub fn as_code_params(&self) -> Result<CodeParams, CodeError> {
        CodeParams::new(self.n(), self.k)
    }

    /// Builds the codec.
    ///
    /// # Errors
    ///
    /// Propagates matrix construction failures.
    pub fn codec(&self) -> Result<LrcCodec, CodeError> {
        LrcCodec::new(*self)
    }
}

impl std::fmt::Display for LrcParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LRC({},{},{})", self.k, self.l, self.r)
    }
}

/// Encoder/decoder for one LRC. Stripe layout: positions `0..k` data,
/// `k..k+l` local parities (group order), `k+l..n` global parities.
#[derive(Clone, Debug)]
pub struct LrcCodec {
    params: LrcParams,
    /// `r × k` Reed–Solomon rows for the global parities, chosen so any
    /// `r` data erasures are recoverable together with the local rows.
    global_rows: Matrix,
}

impl LrcCodec {
    /// Builds the codec.
    ///
    /// # Errors
    ///
    /// Propagates matrix construction failures.
    pub fn new(params: LrcParams) -> Result<LrcCodec, CodeError> {
        // Vandermonde rows over distinct nonzero points, re-based like
        // the RS construction so they are independent of the XOR rows:
        // row_i[j] = alpha_j^(i+1) with alpha_j distinct. Using exponents
        // >= 1 keeps them linearly independent of the all-ones local
        // parity rows.
        let k = params.k;
        let global_rows = Matrix::from_fn(params.r, k, |i, j| Gf256::new((j + 1) as u8).pow(i + 1));
        Ok(LrcCodec {
            params,
            global_rows,
        })
    }

    /// The code parameters.
    pub fn params(&self) -> LrcParams {
        self.params
    }

    /// The stripe position of group `g`'s local parity.
    ///
    /// # Panics
    ///
    /// Panics if `g >= l`.
    pub fn local_parity_pos(&self, g: usize) -> usize {
        assert!(g < self.params.l, "group {g} out of range");
        self.params.k + g
    }

    /// The local group index of data position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= k`.
    pub fn group_of(&self, i: usize) -> usize {
        assert!(i < self.params.k, "data index {i} out of range");
        i / self.params.group_size()
    }

    /// The stripe positions a *local* repair of data position `i`
    /// reads: the other members of its group plus the group's local
    /// parity — `k/l` positions in total.
    ///
    /// # Panics
    ///
    /// Panics if `i >= k`.
    pub fn local_repair_group(&self, i: usize) -> Vec<usize> {
        let g = self.group_of(i);
        let size = self.params.group_size();
        let mut out: Vec<usize> = (g * size..(g + 1) * size).filter(|&j| j != i).collect();
        out.push(self.local_parity_pos(g));
        out
    }

    /// Encodes `k` data blocks into the full `n`-block stripe.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::WrongShardCount`] or
    /// [`CodeError::UnequalShardLengths`] on malformed input.
    pub fn encode(&self, data: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, CodeError> {
        let p = self.params;
        if data.len() != p.k {
            return Err(CodeError::WrongShardCount {
                expected: p.k,
                actual: data.len(),
            });
        }
        let len = data[0].len();
        if data.iter().any(|d| d.len() != len) {
            return Err(CodeError::UnequalShardLengths);
        }
        let mut stripe = data.to_vec();
        // Local parities: XOR of each group.
        let size = p.group_size();
        for g in 0..p.l {
            let mut parity = vec![0u8; len];
            for member in &data[g * size..(g + 1) * size] {
                mul_acc_slice(&mut parity, member, Gf256::ONE);
            }
            stripe.push(parity);
        }
        // Global parities: RS rows over all data blocks.
        for i in 0..p.r {
            let mut parity = vec![0u8; len];
            for (j, block) in data.iter().enumerate() {
                mul_acc_slice(&mut parity, block, self.global_rows[(i, j)]);
            }
            stripe.push(parity);
        }
        Ok(stripe)
    }

    /// Rebuilds the single lost block at data position `target` from its
    /// local group — the LRC fast path (`k/l` reads).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::BadShardIndex`] if `target` is not a data
    /// position, or [`CodeError::NotEnoughShards`] if `survivors` does
    /// not contain the full local group.
    pub fn reconstruct_local(
        &self,
        survivors: &[(usize, Vec<u8>)],
        target: usize,
    ) -> Result<Vec<u8>, CodeError> {
        if target >= self.params.k {
            return Err(CodeError::BadShardIndex { index: target });
        }
        let needed = self.local_repair_group(target);
        let mut len = None;
        let mut blocks = Vec::with_capacity(needed.len());
        for pos in &needed {
            let Some((_, bytes)) = survivors.iter().find(|(i, _)| i == pos) else {
                return Err(CodeError::NotEnoughShards {
                    needed: needed.len(),
                    have: blocks.len(),
                });
            };
            if *len.get_or_insert(bytes.len()) != bytes.len() {
                return Err(CodeError::UnequalShardLengths);
            }
            blocks.push(bytes);
        }
        // XOR of the group (minus the target) and the local parity
        // recovers the target.
        let mut out = vec![0u8; len.unwrap_or(0)];
        for block in blocks {
            mul_acc_slice(&mut out, block, Gf256::ONE);
        }
        Ok(out)
    }

    /// Verifies a full stripe (data, local parities, global parities all
    /// consistent).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::WrongShardCount`] or
    /// [`CodeError::UnequalShardLengths`] on malformed input.
    pub fn verify(&self, stripe: &[Vec<u8>]) -> Result<bool, CodeError> {
        let p = self.params;
        if stripe.len() != p.n() {
            return Err(CodeError::WrongShardCount {
                expected: p.n(),
                actual: stripe.len(),
            });
        }
        let reencoded = self.encode(&stripe[..p.k])?;
        Ok(reencoded[p.k..] == stripe[p.k..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 37 + j * 11 + 3) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn azure_shape() {
        let p = LrcParams::new(12, 2, 2).unwrap();
        assert_eq!(p.n(), 16);
        assert_eq!(p.group_size(), 6);
        assert_eq!(p.to_string(), "LRC(12,2,2)");
        // Same storage overhead as RS(16,12).
        assert_eq!(p.as_code_params().unwrap().overhead(), 1.0 / 3.0);
    }

    #[test]
    fn parameter_validation() {
        assert!(LrcParams::new(12, 5, 2).is_err(), "l must divide k");
        assert!(LrcParams::new(0, 1, 1).is_err());
        assert!(LrcParams::new(12, 0, 2).is_err());
        assert!(LrcParams::new(12, 2, 0).is_err());
        assert!(LrcParams::new(250, 5, 10).is_err(), "stripe too wide");
        assert!(LrcParams::new(6, 2, 2).is_ok());
    }

    #[test]
    fn encode_shapes_and_verify() {
        let lrc = LrcParams::new(6, 2, 2).unwrap().codec().unwrap();
        let data = sample(6, 32);
        let stripe = lrc.encode(&data).unwrap();
        assert_eq!(stripe.len(), 10);
        assert!(lrc.verify(&stripe).unwrap());
        let mut bad = stripe.clone();
        bad[7][0] ^= 1;
        assert!(!lrc.verify(&bad).unwrap());
    }

    #[test]
    fn local_parity_is_group_xor() {
        let lrc = LrcParams::new(4, 2, 1).unwrap().codec().unwrap();
        let data = sample(4, 8);
        let stripe = lrc.encode(&data).unwrap();
        for g in 0..2 {
            let pos = lrc.local_parity_pos(g);
            for byte in 0..8 {
                let expect = data[g * 2][byte] ^ data[g * 2 + 1][byte];
                assert_eq!(stripe[pos][byte], expect, "group {g} byte {byte}");
            }
        }
    }

    #[test]
    fn local_reconstruction_of_every_data_block() {
        let lrc = LrcParams::new(12, 2, 2).unwrap().codec().unwrap();
        let data = sample(12, 64);
        let stripe = lrc.encode(&data).unwrap();
        for (target, expect) in data.iter().enumerate() {
            let group = lrc.local_repair_group(target);
            assert_eq!(group.len(), 6, "k/l reads");
            let survivors: Vec<(usize, Vec<u8>)> =
                group.iter().map(|&i| (i, stripe[i].clone())).collect();
            assert_eq!(
                &lrc.reconstruct_local(&survivors, target).unwrap(),
                expect,
                "target {target}"
            );
        }
    }

    #[test]
    fn local_reconstruction_needs_the_whole_group() {
        let lrc = LrcParams::new(6, 2, 1).unwrap().codec().unwrap();
        let data = sample(6, 8);
        let stripe = lrc.encode(&data).unwrap();
        let mut survivors: Vec<(usize, Vec<u8>)> = lrc
            .local_repair_group(0)
            .into_iter()
            .map(|i| (i, stripe[i].clone()))
            .collect();
        survivors.pop();
        assert!(matches!(
            lrc.reconstruct_local(&survivors, 0).unwrap_err(),
            CodeError::NotEnoughShards { .. }
        ));
        assert!(matches!(
            lrc.reconstruct_local(&survivors, 9).unwrap_err(),
            CodeError::BadShardIndex { index: 9 }
        ));
    }

    #[test]
    fn group_membership() {
        let lrc = LrcParams::new(12, 3, 2).unwrap().codec().unwrap();
        assert_eq!(lrc.group_of(0), 0);
        assert_eq!(lrc.group_of(3), 0);
        assert_eq!(lrc.group_of(4), 1);
        assert_eq!(lrc.group_of(11), 2);
        assert_eq!(lrc.local_parity_pos(2), 14);
        // A block's repair group never contains itself.
        for i in 0..12 {
            assert!(!lrc.local_repair_group(i).contains(&i));
        }
    }

    #[test]
    fn encode_error_cases() {
        let lrc = LrcParams::new(4, 2, 1).unwrap().codec().unwrap();
        assert!(matches!(
            lrc.encode(&sample(3, 8)).unwrap_err(),
            CodeError::WrongShardCount {
                expected: 4,
                actual: 3
            }
        ));
        let mut uneven = sample(4, 8);
        uneven[1].pop();
        assert!(matches!(
            lrc.encode(&uneven).unwrap_err(),
            CodeError::UnequalShardLengths
        ));
        assert!(matches!(
            lrc.verify(&sample(4, 8)).unwrap_err(),
            CodeError::WrongShardCount { .. }
        ));
    }
}
