//! Dense matrices over GF(2^8) with Gauss–Jordan inversion — the linear
//! algebra behind systematic Reed–Solomon construction and decoding.

use crate::gf256::Gf256;
use crate::CodeError;
use std::fmt;

/// A row-major dense matrix over GF(2^8).
///
/// # Example
///
/// ```
/// use erasure::matrix::Matrix;
/// let m = Matrix::identity(3);
/// let inv = m.inverted().unwrap();
/// assert_eq!(m, inv);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Gf256>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zero(rows: usize, cols: usize) -> Matrix {
        assert!(rows > 0 && cols > 0, "empty matrix");
        Matrix {
            rows,
            cols,
            data: vec![Gf256::ZERO; rows * cols],
        }
    }

    /// Creates the identity matrix of the given size.
    pub fn identity(size: usize) -> Matrix {
        let mut m = Matrix::zero(size, size);
        for i in 0..size {
            m[(i, i)] = Gf256::ONE;
        }
        m
    }

    /// Creates a matrix from a row-major function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Gf256) -> Matrix {
        let mut m = Matrix::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// A view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[Gf256] {
        assert!(r < self.rows, "row {r} out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Builds a new matrix from a subset of this one's rows (used to keep
    /// only the rows of surviving blocks during a degraded read).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or `indices` is empty.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        assert!(!indices.is_empty(), "no rows selected");
        Matrix::from_fn(indices.len(), self.cols, |r, c| {
            assert!(indices[r] < self.rows, "row {} out of range", indices[r]);
            self[(indices[r], c)]
        })
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn multiply(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in multiply");
        Matrix::from_fn(self.rows, rhs.cols, |r, c| {
            let mut acc = Gf256::ZERO;
            for i in 0..self.cols {
                acc += self[(r, i)] * rhs[(i, c)];
            }
            acc
        })
    }

    /// The inverse of a square matrix via Gauss–Jordan elimination with
    /// partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::SingularMatrix`] if no inverse exists.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverted(&self) -> Result<Matrix, CodeError> {
        assert_eq!(self.rows, self.cols, "inverse of non-square matrix");
        let n = self.rows;
        let mut work = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Find a pivot row.
            let pivot = (col..n)
                .find(|&r| !work[(r, col)].is_zero())
                .ok_or(CodeError::SingularMatrix)?;
            if pivot != col {
                work.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Scale the pivot row to make the pivot 1.
            let scale = work[(col, col)].inverse();
            work.scale_row(col, scale);
            inv.scale_row(col, scale);
            // Eliminate the column from every other row.
            for r in 0..n {
                if r != col && !work[(r, col)].is_zero() {
                    let factor = work[(r, col)];
                    work.add_scaled_row(r, col, factor);
                    inv.add_scaled_row(r, col, factor);
                }
            }
        }
        Ok(inv)
    }

    /// Gaussian elimination rank (used by tests to check MDS properties).
    pub fn rank(&self) -> usize {
        let mut work = self.clone();
        let mut rank = 0;
        for col in 0..work.cols {
            if rank == work.rows {
                break;
            }
            let Some(pivot) = (rank..work.rows).find(|&r| !work[(r, col)].is_zero()) else {
                continue;
            };
            work.swap_rows(pivot, rank);
            let scale = work[(rank, col)].inverse();
            work.scale_row(rank, scale);
            for r in 0..work.rows {
                if r != rank && !work[(r, col)].is_zero() {
                    let factor = work[(r, col)];
                    work.add_scaled_row(r, rank, factor);
                }
            }
            rank += 1;
        }
        rank
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }

    fn scale_row(&mut self, r: usize, factor: Gf256) {
        for c in 0..self.cols {
            self[(r, c)] *= factor;
        }
    }

    /// `row[dst] -= factor * row[src]` (same as += in GF(2^8)).
    fn add_scaled_row(&mut self, dst: usize, src: usize, factor: Gf256) {
        for c in 0..self.cols {
            let v = self[(src, c)] * factor;
            self[(dst, c)] += v;
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = Gf256;
    fn index(&self, (r, c): (usize, usize)) -> &Gf256 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Gf256 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:02x} ", self[(r, c)].value())?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_invertible() -> Matrix {
        // A Vandermonde matrix over distinct points is invertible.
        Matrix::from_fn(4, 4, |r, c| Gf256::new((r + 1) as u8).pow(c))
    }

    #[test]
    fn identity_multiplication() {
        let m = sample_invertible();
        let i = Matrix::identity(4);
        assert_eq!(m.multiply(&i), m);
        assert_eq!(i.multiply(&m), m);
    }

    #[test]
    fn inverse_round_trip() {
        let m = sample_invertible();
        let inv = m.inverted().unwrap();
        assert_eq!(m.multiply(&inv), Matrix::identity(4));
        assert_eq!(inv.multiply(&m), Matrix::identity(4));
    }

    #[test]
    fn singular_detection() {
        let mut m = Matrix::zero(3, 3);
        // Two identical rows.
        for c in 0..3 {
            m[(0, c)] = Gf256::new(c as u8 + 1);
            m[(1, c)] = Gf256::new(c as u8 + 1);
            m[(2, c)] = Gf256::new(7);
        }
        assert_eq!(m.inverted().unwrap_err(), CodeError::SingularMatrix);
        assert!(m.rank() < 3);
    }

    #[test]
    fn rank_of_identity_and_zero() {
        assert_eq!(Matrix::identity(5).rank(), 5);
        assert_eq!(Matrix::zero(3, 4).rank(), 0);
    }

    #[test]
    fn select_rows_subsets() {
        let m = Matrix::from_fn(4, 2, |r, c| Gf256::new((10 * r + c) as u8));
        let s = m.select_rows(&[3, 1]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s[(0, 0)].value(), 30);
        assert_eq!(s[(1, 1)].value(), 11);
    }

    #[test]
    fn row_view() {
        let m = Matrix::from_fn(2, 3, |r, c| Gf256::new((r * 3 + c) as u8));
        assert_eq!(
            m.row(1).iter().map(|g| g.value()).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn multiply_rejects_bad_dims() {
        let a = Matrix::zero(2, 3);
        let b = Matrix::zero(2, 3);
        let _ = a.multiply(&b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_bounds_checked() {
        let m = Matrix::zero(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // First pivot position is zero; inversion must row-swap.
        let mut m = Matrix::identity(3);
        m.swap_rows(0, 2);
        let inv = m.inverted().unwrap();
        assert_eq!(m.multiply(&inv), Matrix::identity(3));
    }

    #[test]
    fn debug_renders() {
        let m = Matrix::identity(2);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 2x2"));
    }
}
