//! Systematic Reed–Solomon codes over GF(2^8).
//!
//! An `(n, k)` code is described by an `n × k` encoding matrix whose top
//! `k × k` block is the identity (so the first `k` output shards are the
//! data itself — *systematic*), and whose remaining `n − k` rows generate
//! the parity shards. The code is MDS: any `k` of the `n` shards suffice
//! to recover the data, which is exactly the degraded-read contract the
//! paper relies on ("reads the blocks from any k surviving nodes of the
//! same stripe", Section II-B).

use crate::gf256::{mul_acc_multi, mul_slice_in_place, Gf256};
use crate::simd::Term;

/// Builds `Σ row[j] · shard_j` without a zeroed scratch buffer: the
/// first nonzero term seeds the output as a copy (scaled in place unless
/// its coefficient is one — the common case for systematic decode rows),
/// and the remaining nonzero terms are applied by the fused
/// [`mul_acc_multi`] kernel in one cache-blocked pass over the output
/// instead of one full sweep per coefficient. Zeroing a fresh 256 KiB
/// buffer costs as much as the multiplies themselves, so skipping it
/// roughly halves full-stripe decode time; the fusion then keeps each
/// output block L1-resident while every source streams past it.
fn combine_reusing(out: &mut Vec<u8>, row: &[Gf256], shards: &[&[u8]], len: usize) {
    out.clear();
    let Some(j0) = row.iter().position(|c| !c.is_zero()) else {
        out.resize(len, 0);
        return;
    };
    out.extend_from_slice(shards[j0]);
    mul_slice_in_place(out, row[j0]);
    let terms: Vec<Term<'_>> = row
        .iter()
        .zip(shards)
        .skip(j0 + 1)
        .filter(|(c, _)| !c.is_zero())
        .map(|(&c, &s)| (c, s))
        .collect();
    mul_acc_multi(out, &terms);
}
use crate::matrix::Matrix;
use crate::{CodeError, CodeParams};

/// The matrix construction used to build a systematic MDS code.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CodeConstruction {
    /// Vandermonde rows re-based so the top block is the identity
    /// (classic Reed–Solomon \[28\]).
    #[default]
    Vandermonde,
    /// Identity over a Cauchy matrix (Cauchy Reed–Solomon \[3\]).
    Cauchy,
}

/// A systematic Reed–Solomon encoder/decoder for fixed `(n, k)`.
///
/// # Example
///
/// ```
/// use erasure::{CodeParams, CodeConstruction, ReedSolomon};
/// # fn main() -> Result<(), erasure::CodeError> {
/// let rs = ReedSolomon::new(CodeParams::new(6, 4)?, CodeConstruction::Cauchy)?;
/// let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 8]).collect();
/// let parity = rs.encode_parity(&data)?;
/// assert_eq!(parity.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ReedSolomon {
    params: CodeParams,
    construction: CodeConstruction,
    /// The full n×k encoding matrix (top k×k block is the identity).
    encode_matrix: Matrix,
}

impl ReedSolomon {
    /// Builds the encoding matrix for the given parameters.
    ///
    /// # Errors
    ///
    /// Propagates [`CodeError::SingularMatrix`] if the Vandermonde base
    /// could not be re-based (impossible for valid parameters, but
    /// surfaced rather than unwrapped).
    pub fn new(
        params: CodeParams,
        construction: CodeConstruction,
    ) -> Result<ReedSolomon, CodeError> {
        let (n, k) = (params.n(), params.k());
        let encode_matrix = match construction {
            CodeConstruction::Vandermonde => {
                // V[i][j] = i^j over n distinct evaluation points, then
                // E = V * inv(V_top) so the top block becomes identity.
                // Any k rows of V are invertible (distinct points), and
                // right-multiplying by a fixed invertible matrix preserves
                // that, so E stays MDS.
                let v = Matrix::from_fn(n, k, |r, c| Gf256::new(r as u8).pow(c));
                let top = v.select_rows(&(0..k).collect::<Vec<_>>());
                let top_inv = top.inverted()?;
                v.multiply(&top_inv)
            }
            CodeConstruction::Cauchy => {
                // Identity over C where C[i][j] = 1 / (x_i + y_j) with
                // x_i = k + i and y_j = j, all distinct since n <= 255.
                Matrix::from_fn(n, k, |r, c| {
                    if r < k {
                        if r == c {
                            Gf256::ONE
                        } else {
                            Gf256::ZERO
                        }
                    } else {
                        let x = Gf256::new((k + (r - k)) as u8);
                        let y = Gf256::new(c as u8);
                        (x + y).inverse()
                    }
                })
            }
        };
        Ok(ReedSolomon {
            params,
            construction,
            encode_matrix,
        })
    }

    /// The code parameters.
    pub fn params(&self) -> CodeParams {
        self.params
    }

    /// The construction in use.
    pub fn construction(&self) -> CodeConstruction {
        self.construction
    }

    /// The full `n × k` encoding matrix.
    pub fn encode_matrix(&self) -> &Matrix {
        &self.encode_matrix
    }

    fn check_shards<S: AsRef<[u8]>>(
        &self,
        shards: &[S],
        expected: usize,
    ) -> Result<usize, CodeError> {
        if shards.len() != expected {
            return Err(CodeError::WrongShardCount {
                expected,
                actual: shards.len(),
            });
        }
        let len = shards[0].as_ref().len();
        if shards.iter().any(|s| s.as_ref().len() != len) {
            return Err(CodeError::UnequalShardLengths);
        }
        Ok(len)
    }

    /// Computes the `n − k` parity shards for `k` data shards.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::WrongShardCount`] or
    /// [`CodeError::UnequalShardLengths`] on malformed input.
    pub fn encode_parity<S: AsRef<[u8]>>(&self, data: &[S]) -> Result<Vec<Vec<u8>>, CodeError> {
        let mut out = Vec::new();
        self.encode_parity_into(data, &mut out)?;
        Ok(out)
    }

    /// Like [`ReedSolomon::encode_parity`], but writes the parity shards
    /// into `out`, reusing its buffers (cf.
    /// [`ReedSolomon::decode_data_into`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReedSolomon::encode_parity`]; on error `out`
    /// is left in an unspecified (but valid) state.
    pub fn encode_parity_into<S: AsRef<[u8]>>(
        &self,
        data: &[S],
        out: &mut Vec<Vec<u8>>,
    ) -> Result<(), CodeError> {
        let k = self.params.k();
        let len = self.check_shards(data, k)?;
        let refs: Vec<&[u8]> = data.iter().map(AsRef::as_ref).collect();
        out.resize_with(self.params.parity(), Vec::new);
        for (p, o) in out.iter_mut().enumerate() {
            combine_reusing(o, self.encode_matrix.row(k + p), &refs, len);
        }
        Ok(())
    }

    /// Recovers **all** `k` data shards from any `k` distinct shards of
    /// the stripe, given as `(shard_index, bytes)` pairs. Shard bytes may
    /// be owned (`Vec<u8>`) or borrowed (`&[u8]`) — borrowing lets
    /// callers decode straight out of their stores without cloning.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::NotEnoughShards`], [`CodeError::BadShardIndex`]
    /// (out of range or duplicate), or [`CodeError::UnequalShardLengths`].
    pub fn decode_data<S: AsRef<[u8]>>(
        &self,
        shards: &[(usize, S)],
    ) -> Result<Vec<Vec<u8>>, CodeError> {
        let mut out = Vec::new();
        self.decode_data_into(shards, &mut out)?;
        Ok(out)
    }

    /// Like [`ReedSolomon::decode_data`], but writes the recovered
    /// shards into `out`, reusing its buffers. In steady state a decode
    /// then allocates nothing, which roughly doubles throughput over the
    /// allocating form (fresh 256 KiB buffers cost as much in page
    /// faults as the field arithmetic itself).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReedSolomon::decode_data`]; on error `out`
    /// is left in an unspecified (but valid) state.
    pub fn decode_data_into<S: AsRef<[u8]>>(
        &self,
        shards: &[(usize, S)],
        out: &mut Vec<Vec<u8>>,
    ) -> Result<(), CodeError> {
        let k = self.params.k();
        let (indices, refs, len) = self.validate_survivors(shards)?;
        let sub = self.encode_matrix.select_rows(&indices);
        let inv = sub.inverted()?;
        out.resize_with(k, Vec::new);
        let mut row = vec![Gf256::ZERO; k];
        for (t, o) in out.iter_mut().enumerate() {
            for (j, c) in row.iter_mut().enumerate() {
                *c = inv[(t, j)];
            }
            combine_reusing(o, &row, &refs, len);
        }
        Ok(())
    }

    /// Validates the first `k` survivor shards (distinct in-range
    /// indices, equal lengths) and splits them into the pieces every
    /// decode path needs.
    #[allow(clippy::type_complexity)]
    fn validate_survivors<'a, S: AsRef<[u8]>>(
        &self,
        shards: &'a [(usize, S)],
    ) -> Result<(Vec<usize>, Vec<&'a [u8]>, usize), CodeError> {
        let k = self.params.k();
        if shards.len() < k {
            return Err(CodeError::NotEnoughShards {
                needed: k,
                have: shards.len(),
            });
        }
        let used = &shards[..k];
        let mut seen = vec![false; self.params.n()];
        for &(idx, _) in used {
            if idx >= self.params.n() || seen[idx] {
                return Err(CodeError::BadShardIndex { index: idx });
            }
            seen[idx] = true;
        }
        let len = used[0].1.as_ref().len();
        if used.iter().any(|(_, s)| s.as_ref().len() != len) {
            return Err(CodeError::UnequalShardLengths);
        }
        let indices: Vec<usize> = used.iter().map(|&(i, _)| i).collect();
        let refs: Vec<&[u8]> = used.iter().map(|(_, s)| s.as_ref()).collect();
        Ok((indices, refs, len))
    }

    /// Recovers the single shard with index `target` (data or parity)
    /// from any `k` distinct shards. This is the degraded-read primitive:
    /// download `k` surviving blocks, rebuild the lost one.
    ///
    /// Only the one requested shard is computed: the target's
    /// combination row over the survivors is derived from the inverted
    /// decode matrix (composed with the target's encoding row for parity
    /// targets), so reconstruction costs a single `k`-source combine
    /// instead of the full `k`-shard decode — a factor-`k` saving on
    /// every degraded read.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReedSolomon::decode_data`], plus
    /// [`CodeError::BadShardIndex`] if `target >= n`.
    pub fn reconstruct_shard<S: AsRef<[u8]>>(
        &self,
        shards: &[(usize, S)],
        target: usize,
    ) -> Result<Vec<u8>, CodeError> {
        let mut out = Vec::new();
        self.reconstruct_shard_into(shards, target, &mut out)?;
        Ok(out)
    }

    /// Like [`ReedSolomon::reconstruct_shard`], but writes the rebuilt
    /// shard into `out`, reusing its capacity — the alloc-free form the
    /// storage layer's degraded-read path uses.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReedSolomon::reconstruct_shard`]; on error
    /// `out` is left in an unspecified (but valid) state.
    pub fn reconstruct_shard_into<S: AsRef<[u8]>>(
        &self,
        shards: &[(usize, S)],
        target: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), CodeError> {
        let (n, k) = (self.params.n(), self.params.k());
        if target >= n {
            return Err(CodeError::BadShardIndex { index: target });
        }
        // Fast path: the target is among the supplied shards.
        if let Some((_, s)) = shards.iter().find(|&(i, _)| *i == target) {
            out.clear();
            out.extend_from_slice(s.as_ref());
            return Ok(());
        }
        let (indices, refs, len) = self.validate_survivors(shards)?;
        let sub = self.encode_matrix.select_rows(&indices);
        let inv = sub.inverted()?;
        // The row combining the survivors directly into the target:
        // data[t] = Σⱼ inv[t][j] · survivor_j, and a parity target is
        // G[target] applied on top of that, i.e. (G[target] × inv).
        let mut row = vec![Gf256::ZERO; k];
        if target < k {
            row.copy_from_slice(inv.row(target));
        } else {
            let g = self.encode_matrix.row(target);
            for (j, c) in row.iter_mut().enumerate() {
                let mut acc = Gf256::ZERO;
                for (t, &gt) in g.iter().enumerate() {
                    acc += gt * inv[(t, j)];
                }
                *c = acc;
            }
        }
        combine_reusing(out, &row, &refs, len);
        Ok(())
    }

    /// Applies a data-shard overwrite to the parity shards **in place**
    /// without re-encoding the whole stripe: for each parity `p`,
    /// `p += G[p][j] · (new − old)` where `G` is the encoding matrix and
    /// `j` the updated data shard. This is the delta-update used by
    /// parity-logging storage systems (cf. the paper's reference \[5\]).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::BadShardIndex`] if `data_index >= k`,
    /// [`CodeError::WrongShardCount`] if `parity` does not hold `n − k`
    /// shards, or [`CodeError::UnequalShardLengths`] on length mismatch.
    pub fn update_parity(
        &self,
        parity: &mut [Vec<u8>],
        data_index: usize,
        old: &[u8],
        new: &[u8],
    ) -> Result<(), CodeError> {
        let k = self.params.k();
        if data_index >= k {
            return Err(CodeError::BadShardIndex { index: data_index });
        }
        if parity.len() != self.params.parity() {
            return Err(CodeError::WrongShardCount {
                expected: self.params.parity(),
                actual: parity.len(),
            });
        }
        if old.len() != new.len() || parity.iter().any(|p| p.len() != old.len()) {
            return Err(CodeError::UnequalShardLengths);
        }
        // By linearity c·(old ⊕ new) = c·old ⊕ c·new, so the delta never
        // needs materializing: the fused kernel applies both terms in
        // one cache-blocked pass, allocation-free.
        for (p, shard) in parity.iter_mut().enumerate() {
            let coeff = self.encode_matrix.row(k + p)[data_index];
            if coeff.is_zero() {
                continue;
            }
            mul_acc_multi(shard, &[(coeff, old), (coeff, new)]);
        }
        Ok(())
    }

    /// Checks that a full stripe (`n` shards in index order) is
    /// consistent: the parity shards match a re-encoding of the data
    /// shards.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::WrongShardCount`] or
    /// [`CodeError::UnequalShardLengths`] on malformed input.
    pub fn verify<S: AsRef<[u8]>>(&self, stripe: &[S]) -> Result<bool, CodeError> {
        let n = self.params.n();
        let k = self.params.k();
        self.check_shards(stripe, n)?;
        let parity = self.encode_parity(&stripe[..k])?;
        Ok(parity
            .iter()
            .zip(&stripe[k..])
            .all(|(computed, stored)| computed.as_slice() == stored.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(n: usize, k: usize, c: CodeConstruction) -> ReedSolomon {
        ReedSolomon::new(CodeParams::new(n, k).unwrap(), c).unwrap()
    }

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 131 + j * 17 + 5) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn systematic_top_block_is_identity() {
        for c in [CodeConstruction::Vandermonde, CodeConstruction::Cauchy] {
            let rs = make(9, 6, c);
            let m = rs.encode_matrix();
            for r in 0..6 {
                for j in 0..6 {
                    let expect = if r == j { Gf256::ONE } else { Gf256::ZERO };
                    assert_eq!(m[(r, j)], expect, "{c:?} ({r},{j})");
                }
            }
        }
    }

    #[test]
    fn any_k_rows_invertible_small_codes() {
        // Exhaustively verify the MDS property for the paper's (4,2) code
        // and a (6,4) code under both constructions.
        for c in [CodeConstruction::Vandermonde, CodeConstruction::Cauchy] {
            for (n, k) in [(4usize, 2usize), (6, 4)] {
                let rs = make(n, k, c);
                let idx: Vec<usize> = (0..n).collect();
                // All k-subsets.
                let mut chosen = vec![0usize; k];
                fn rec(
                    m: &Matrix,
                    idx: &[usize],
                    chosen: &mut Vec<usize>,
                    depth: usize,
                    start: usize,
                    k: usize,
                ) {
                    if depth == k {
                        let sub = m.select_rows(chosen);
                        assert!(sub.inverted().is_ok(), "rows {chosen:?} singular");
                        return;
                    }
                    for i in start..idx.len() {
                        chosen[depth] = idx[i];
                        rec(m, idx, chosen, depth + 1, i + 1, k);
                    }
                }
                rec(rs.encode_matrix(), &idx, &mut chosen, 0, 0, k);
            }
        }
    }

    #[test]
    fn encode_decode_round_trip_paper_codes() {
        // All coding schemes used in the paper's evaluation.
        for (n, k) in [(4, 2), (8, 6), (12, 9), (16, 12), (20, 15), (12, 10)] {
            for c in [CodeConstruction::Vandermonde, CodeConstruction::Cauchy] {
                let rs = make(n, k, c);
                let data = sample_data(k, 64);
                let parity = rs.encode_parity(&data).unwrap();
                assert_eq!(parity.len(), n - k);
                // Decode from the *last* k shards (all parity + tail of data).
                let mut stripe: Vec<Vec<u8>> = data.clone();
                stripe.extend(parity);
                let survivors: Vec<(usize, Vec<u8>)> =
                    (n - k..n).map(|i| (i, stripe[i].clone())).collect();
                let decoded = rs.decode_data(&survivors).unwrap();
                assert_eq!(decoded, data, "({n},{k}) {c:?}");
            }
        }
    }

    #[test]
    fn decode_into_reuses_buffers_and_matches_allocating_form() {
        let rs = make(12, 9, CodeConstruction::Cauchy);
        let data = sample_data(9, 97);
        let parity = rs.encode_parity(&data).unwrap();
        let mut stripe = data.clone();
        stripe.extend(parity);
        let survivors: Vec<(usize, Vec<u8>)> = (3..12).map(|i| (i, stripe[i].clone())).collect();
        // Start from dirty, wrongly-sized buffers; repeat to exercise reuse.
        let mut out = vec![vec![0xEEu8; 5]; 14];
        for _ in 0..3 {
            rs.decode_data_into(&survivors, &mut out).unwrap();
            assert_eq!(out, data);
        }
        assert_eq!(rs.decode_data(&survivors).unwrap(), data);
    }

    #[test]
    fn reconstruct_single_data_and_parity_shard() {
        let rs = make(6, 4, CodeConstruction::Vandermonde);
        let data = sample_data(4, 32);
        let parity = rs.encode_parity(&data).unwrap();
        let mut stripe = data.clone();
        stripe.extend(parity.clone());
        // Lose shard 2 (data) — rebuild from shards {0,1,3,5}.
        let survivors: Vec<(usize, Vec<u8>)> = [0, 1, 3, 5]
            .iter()
            .map(|&i| (i, stripe[i].clone()))
            .collect();
        assert_eq!(rs.reconstruct_shard(&survivors, 2).unwrap(), data[2]);
        // Rebuild parity shard 4 too.
        assert_eq!(rs.reconstruct_shard(&survivors, 4).unwrap(), parity[0]);
        // Fast path: target among survivors.
        assert_eq!(rs.reconstruct_shard(&survivors, 3).unwrap(), data[3]);
    }

    #[test]
    fn verify_detects_corruption() {
        let rs = make(6, 4, CodeConstruction::Cauchy);
        let data = sample_data(4, 16);
        let parity = rs.encode_parity(&data).unwrap();
        let mut stripe = data;
        stripe.extend(parity);
        assert!(rs.verify(&stripe).unwrap());
        stripe[5][3] ^= 0xFF;
        assert!(!rs.verify(&stripe).unwrap());
    }

    #[test]
    fn error_cases() {
        let rs = make(6, 4, CodeConstruction::Vandermonde);
        let data = sample_data(3, 8); // wrong count
        assert_eq!(
            rs.encode_parity(&data).unwrap_err(),
            CodeError::WrongShardCount {
                expected: 4,
                actual: 3
            }
        );
        let mut uneven = sample_data(4, 8);
        uneven[2].pop();
        assert_eq!(
            rs.encode_parity(&uneven).unwrap_err(),
            CodeError::UnequalShardLengths
        );

        let shards: Vec<(usize, Vec<u8>)> = vec![(0, vec![0; 8]); 2];
        assert_eq!(
            rs.decode_data(&shards).unwrap_err(),
            CodeError::NotEnoughShards { needed: 4, have: 2 }
        );
        let dup: Vec<(usize, Vec<u8>)> = vec![
            (0, vec![0; 8]),
            (0, vec![0; 8]),
            (1, vec![0; 8]),
            (2, vec![0; 8]),
        ];
        assert_eq!(
            rs.decode_data(&dup).unwrap_err(),
            CodeError::BadShardIndex { index: 0 }
        );
        let oob: Vec<(usize, Vec<u8>)> = (0..4).map(|i| (i + 3, vec![0; 8])).collect();
        assert_eq!(
            rs.decode_data(&oob).unwrap_err(),
            CodeError::BadShardIndex { index: 6 }
        );
        assert_eq!(
            rs.reconstruct_shard::<Vec<u8>>(&[], 9).unwrap_err(),
            CodeError::BadShardIndex { index: 9 }
        );
    }

    #[test]
    fn empty_shards_round_trip() {
        // Zero-length shards are legal (empty file tail).
        let rs = make(4, 2, CodeConstruction::Cauchy);
        let data = vec![Vec::<u8>::new(), Vec::new()];
        let parity = rs.encode_parity(&data).unwrap();
        assert!(parity.iter().all(|p| p.is_empty()));
    }

    #[test]
    fn constructions_differ_but_both_work() {
        let a = make(8, 6, CodeConstruction::Vandermonde);
        let b = make(8, 6, CodeConstruction::Cauchy);
        assert_ne!(a.encode_matrix(), b.encode_matrix());
        assert_eq!(a.construction(), CodeConstruction::Vandermonde);
        assert_eq!(b.params().n(), 8);
    }
}

#[cfg(test)]
mod update_tests {
    use super::*;

    fn make(n: usize, k: usize, c: CodeConstruction) -> ReedSolomon {
        ReedSolomon::new(CodeParams::new(n, k).unwrap(), c).unwrap()
    }

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 131 + j * 17 + 5) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn delta_update_matches_full_reencode() {
        for c in [CodeConstruction::Vandermonde, CodeConstruction::Cauchy] {
            let rs = make(6, 4, c);
            let mut data = sample_data(4, 32);
            let mut parity = rs.encode_parity(&data).unwrap();
            // Overwrite shard 2.
            let old = data[2].clone();
            let new: Vec<u8> = old.iter().map(|b| b.wrapping_add(77)).collect();
            rs.update_parity(&mut parity, 2, &old, &new).unwrap();
            data[2] = new;
            assert_eq!(parity, rs.encode_parity(&data).unwrap(), "{c:?}");
        }
    }

    #[test]
    fn repeated_updates_stay_consistent() {
        let rs = make(8, 6, CodeConstruction::Cauchy);
        let mut data = sample_data(6, 16);
        let mut parity = rs.encode_parity(&data).unwrap();
        for round in 0..10 {
            let idx = round % 6;
            let old = data[idx].clone();
            let new: Vec<u8> = old.iter().map(|b| b ^ (round as u8 + 1)).collect();
            rs.update_parity(&mut parity, idx, &old, &new).unwrap();
            data[idx] = new;
        }
        assert_eq!(parity, rs.encode_parity(&data).unwrap());
        // And the stripe still decodes from parity + tail of data.
        let mut stripe = data.clone();
        stripe.extend(parity);
        let survivors: Vec<(usize, Vec<u8>)> = (2..8).map(|i| (i, stripe[i].clone())).collect();
        assert_eq!(rs.decode_data(&survivors).unwrap(), data);
    }

    #[test]
    fn identity_update_is_noop() {
        let rs = make(4, 2, CodeConstruction::Vandermonde);
        let data = sample_data(2, 8);
        let mut parity = rs.encode_parity(&data).unwrap();
        let before = parity.clone();
        rs.update_parity(&mut parity, 0, &data[0], &data[0].clone())
            .unwrap();
        assert_eq!(parity, before);
    }

    #[test]
    fn update_error_cases() {
        let rs = make(4, 2, CodeConstruction::Vandermonde);
        let data = sample_data(2, 8);
        let mut parity = rs.encode_parity(&data).unwrap();
        assert_eq!(
            rs.update_parity(&mut parity, 2, &data[0], &data[1])
                .unwrap_err(),
            CodeError::BadShardIndex { index: 2 }
        );
        let mut short_parity = parity[..1].to_vec();
        assert_eq!(
            rs.update_parity(&mut short_parity, 0, &data[0], &data[1])
                .unwrap_err(),
            CodeError::WrongShardCount {
                expected: 2,
                actual: 1
            }
        );
        let short = vec![0u8; 4];
        assert_eq!(
            rs.update_parity(&mut parity, 0, &short, &data[1])
                .unwrap_err(),
            CodeError::UnequalShardLengths
        );
    }
}
