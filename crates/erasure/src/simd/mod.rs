//! Runtime-dispatched GF(2^8) slice kernels.
//!
//! Every Reed–Solomon stripe operation in this crate reduces to four
//! bulk primitives over byte buffers — `dst = c·src`, `dst ^= c·src`,
//! `data = c·data`, and the fused multi-source `dst ^= Σ cⱼ·srcⱼ`. This
//! module owns their implementations and picks the fastest one the host
//! supports **once**, at first use:
//!
//! | Tier          | ISA requirement                | Technique |
//! |---------------|--------------------------------|-----------|
//! | `gfni-avx512` | x86-64 GFNI + AVX-512F/BW      | `vgf2p8mulb` multiplies 64 bytes directly in GF(2^8) mod 0x11B (the crate's polynomial); the multi-source kernel keeps the destination vector in registers across sources |
//! | `avx2`        | x86-64 AVX2                    | split-nibble `vpshufb`: `c·s = lo[s & 0xF] ⊕ hi[s >> 4]`, 32 bytes per lookup pair |
//! | `ssse3`       | x86-64 SSSE3                   | the same split-nibble lookups on 128-bit vectors |
//! | `neon`        | AArch64 NEON                   | split-nibble `vqtbl1q_u8`, 16 bytes per lookup pair |
//! | `scalar`      | none                           | 64 KiB product-table rows, 8-way unrolled (the PR 1 table-driven kernel, retained as the universal fallback) |
//!
//! Selection is overridable for testing and triage: set
//! `ERASURE_FORCE_SCALAR=1` to pin the table-driven fallback, or
//! `ERASURE_KERNEL=<tier name>` to cap dispatch at a tier (anything the
//! host lacks falls through to the next supported tier). The choice
//! only ever changes speed — every tier computes bit-identical bytes,
//! pinned against the `gf256::*_ref` oracles by unit tests, proptests,
//! and `tests/simd_kernels.rs`.
//!
//! # Safety
//!
//! All `unsafe` in this crate lives in the per-ISA submodules
//! (`detlint` U1 enforces this via its `crates/erasure/src/simd/`
//! allowlist entry). The blanket argument: each `#[target_feature]`
//! function is reachable only through a [`Kernels`] table that
//! [`choose`] constructs *after* the matching
//! `is_x86_feature_detected!` / `is_aarch64_feature_detected!` probe
//! (or through tests that probe first), and every raw pointer stays
//! inside the bounds of the argument slices — offsets are always
//! `< len` rounded down to whole vectors, with heads/tails delegated to
//! safe scalar code.

use crate::gf256::Gf256;

mod scalar;

#[cfg(target_arch = "aarch64")]
mod neon;
#[cfg(target_arch = "x86_64")]
mod x86;

/// One source operand of the fused multi-source kernel: the coefficient
/// and the source slice it scales.
pub type Term<'a> = (Gf256, &'a [u8]);

/// Destination block size of the cache-blocked multi-source loop: big
/// enough to amortize per-block setup, small enough that the
/// destination block stays resident in L1 while every source streams
/// past it.
pub(crate) const BLOCK: usize = 4096;

/// A dispatch table of GF(2^8) slice kernels for one ISA tier.
///
/// The raw entries assume equal-length slices and are total over all
/// coefficients (0 and 1 included); the public methods add the length
/// checks and the branch-free fast paths shared by every tier.
#[derive(Clone, Copy)]
pub struct Kernels {
    name: &'static str,
    mul_slice: fn(&mut [u8], &[u8], Gf256),
    mul_acc: fn(&mut [u8], &[u8], Gf256),
    mul_in_place: fn(&mut [u8], Gf256),
    mul_acc_multi: fn(&mut [u8], &[Term<'_>]),
}

impl std::fmt::Debug for Kernels {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernels").field("name", &self.name).finish()
    }
}

impl Kernels {
    /// The tier name (`"scalar"`, `"avx2"`, ...).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// `dst[i] = coeff * src[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn mul_slice(&self, dst: &mut [u8], src: &[u8], coeff: Gf256) {
        assert_eq!(dst.len(), src.len(), "buffer length mismatch");
        if coeff.is_zero() {
            dst.fill(0);
        } else if coeff == Gf256::ONE {
            dst.copy_from_slice(src);
        } else {
            (self.mul_slice)(dst, src, coeff);
        }
    }

    /// `dst[i] ^= coeff * src[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn mul_acc_slice(&self, dst: &mut [u8], src: &[u8], coeff: Gf256) {
        assert_eq!(dst.len(), src.len(), "buffer length mismatch");
        if coeff.is_zero() {
            return;
        }
        if coeff == Gf256::ONE {
            scalar::xor_slice(dst, src);
        } else {
            (self.mul_acc)(dst, src, coeff);
        }
    }

    /// `data[i] = coeff * data[i]`.
    pub fn mul_slice_in_place(&self, data: &mut [u8], coeff: Gf256) {
        if coeff.is_zero() {
            data.fill(0);
        } else if coeff != Gf256::ONE {
            (self.mul_in_place)(data, coeff);
        }
    }

    /// Fused multi-source accumulate: `dst[i] ^= Σⱼ termsⱼ.0 * termsⱼ.1[i]`,
    /// walking `dst` in L1-sized blocks so several source shards are
    /// applied per pass over the destination instead of one full sweep
    /// per coefficient. Zero-coefficient terms are skipped.
    ///
    /// # Panics
    ///
    /// Panics if any source length differs from `dst`.
    pub fn mul_acc_multi(&self, dst: &mut [u8], terms: &[Term<'_>]) {
        for (_, src) in terms {
            assert_eq!(dst.len(), src.len(), "buffer length mismatch");
        }
        if terms.is_empty() {
            return;
        }
        (self.mul_acc_multi)(dst, terms);
    }
}

/// Cache-blocked multi-source loop built from a tier's two-operand
/// accumulate kernel: the shared implementation for every tier without
/// a register-fused multi-source kernel of its own. Each `BLOCK`-sized
/// destination chunk stays in L1 while all sources are applied to it.
pub(crate) fn blocked_multi(acc: fn(&mut [u8], &[u8], Gf256), dst: &mut [u8], terms: &[Term<'_>]) {
    let len = dst.len();
    let mut start = 0;
    while start < len {
        let end = (start + BLOCK).min(len);
        let d = &mut dst[start..end];
        for &(coeff, src) in terms {
            if coeff.is_zero() {
                continue;
            }
            if coeff == Gf256::ONE {
                scalar::xor_slice(d, &src[start..end]);
            } else {
                acc(d, &src[start..end], coeff);
            }
        }
        start = end;
    }
}

static SCALAR: Kernels = Kernels {
    name: "scalar",
    mul_slice: scalar::mul_slice,
    mul_acc: scalar::mul_acc,
    mul_in_place: scalar::mul_in_place,
    mul_acc_multi: scalar::mul_acc_multi,
};

/// The ISA features the running host actually supports, probed via
/// `std::arch` (results cached by std). Kept as a plain struct so tier
/// selection is a pure function that unit tests can drive without
/// touching the environment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct HostFeatures {
    pub gfni_avx512: bool,
    pub avx2: bool,
    pub ssse3: bool,
    pub neon: bool,
}

fn host_features() -> HostFeatures {
    #[cfg(target_arch = "x86_64")]
    {
        HostFeatures {
            gfni_avx512: std::arch::is_x86_feature_detected!("gfni")
                && std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512bw"),
            avx2: std::arch::is_x86_feature_detected!("avx2"),
            ssse3: std::arch::is_x86_feature_detected!("ssse3"),
            neon: false,
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        HostFeatures {
            gfni_avx512: false,
            avx2: false,
            ssse3: false,
            neon: std::arch::is_aarch64_feature_detected!("neon"),
        }
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        HostFeatures::default()
    }
}

/// The dispatch ladder, fastest first, with each tier's availability.
/// Tiers whose ISA the build target lacks are compiled out entirely.
fn ladder(have: HostFeatures) -> Vec<(&'static Kernels, bool)> {
    let mut tiers: Vec<(&'static Kernels, bool)> = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        tiers.push((&x86::GFNI_AVX512, have.gfni_avx512));
        tiers.push((&x86::AVX2, have.avx2));
        tiers.push((&x86::SSSE3, have.ssse3));
    }
    #[cfg(target_arch = "aarch64")]
    {
        tiers.push((&neon::NEON, have.neon));
    }
    let _ = have;
    tiers.push((&SCALAR, true));
    tiers
}

/// Pure tier selection: the fastest supported tier, optionally capped
/// at the tier named by `requested` (`ERASURE_KERNEL`) and overridden
/// entirely by `force_scalar` (`ERASURE_FORCE_SCALAR`). An unknown
/// `requested` name imposes no cap; a requested tier the host lacks
/// falls through to the next supported one.
pub(crate) fn choose(
    requested: Option<&str>,
    force_scalar: bool,
    have: HostFeatures,
) -> &'static Kernels {
    if force_scalar {
        return &SCALAR;
    }
    let tiers = ladder(have);
    let start = requested
        .and_then(|name| tiers.iter().position(|(k, _)| k.name == name))
        .unwrap_or(0);
    tiers[start..]
        .iter()
        .find(|(_, supported)| *supported)
        .map(|(k, _)| *k)
        .unwrap_or(&SCALAR)
}

/// The kernel tier every public `gf256` slice function dispatches to,
/// selected once per process.
pub fn active() -> &'static Kernels {
    use std::sync::OnceLock;
    static ACTIVE: OnceLock<&'static Kernels> = OnceLock::new();
    ACTIVE.get_or_init(|| {
        let force =
            std::env::var_os("ERASURE_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0");
        let requested = std::env::var("ERASURE_KERNEL").ok();
        choose(requested.as_deref(), force, host_features())
    })
}

/// The table-driven scalar fallback, always available — benchmarks use
/// it as the "what PR 1 shipped" baseline, and tests pin it against the
/// `_ref` oracles so the fallback stays covered even on SIMD hosts.
pub fn scalar() -> &'static Kernels {
    &SCALAR
}

/// Every tier the running host supports (always ends with `scalar`).
/// Test suites iterate this so each reachable SIMD path is pinned
/// bit-identical to the reference oracles in a single test run.
pub fn all_supported() -> Vec<&'static Kernels> {
    ladder(host_features())
        .into_iter()
        .filter(|(_, supported)| *supported)
        .map(|(k, _)| k)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_scalar_wins_over_everything() {
        let all = HostFeatures {
            gfni_avx512: true,
            avx2: true,
            ssse3: true,
            neon: true,
        };
        assert_eq!(choose(None, true, all).name(), "scalar");
        assert_eq!(choose(Some("avx2"), true, all).name(), "scalar");
    }

    #[test]
    fn no_features_selects_scalar() {
        assert_eq!(
            choose(None, false, HostFeatures::default()).name(),
            "scalar"
        );
        assert_eq!(
            choose(
                Some("definitely-not-a-tier"),
                false,
                HostFeatures::default()
            )
            .name(),
            "scalar"
        );
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn x86_ladder_order_and_caps() {
        let all = HostFeatures {
            gfni_avx512: true,
            avx2: true,
            ssse3: true,
            neon: false,
        };
        assert_eq!(choose(None, false, all).name(), "gfni-avx512");
        // Capping at a lower tier skips the faster ones.
        assert_eq!(choose(Some("avx2"), false, all).name(), "avx2");
        assert_eq!(choose(Some("ssse3"), false, all).name(), "ssse3");
        assert_eq!(choose(Some("scalar"), false, all).name(), "scalar");
        // A requested tier the host lacks falls through.
        let no512 = HostFeatures {
            gfni_avx512: false,
            ..all
        };
        assert_eq!(choose(Some("gfni-avx512"), false, no512).name(), "avx2");
        let only_ssse3 = HostFeatures {
            gfni_avx512: false,
            avx2: false,
            ssse3: true,
            neon: false,
        };
        assert_eq!(choose(None, false, only_ssse3).name(), "ssse3");
        // Unknown names impose no cap.
        assert_eq!(choose(Some("mystery"), false, all).name(), "gfni-avx512");
    }

    #[test]
    fn all_supported_ends_with_scalar_and_contains_active() {
        let tiers = all_supported();
        assert_eq!(tiers.last().map(|k| k.name()), Some("scalar"));
        // `active` honors the process environment, so it must always be
        // one of the supported tiers.
        assert!(tiers.iter().any(|k| k.name() == active().name()));
    }

    #[test]
    fn blocked_multi_crosses_block_boundaries() {
        // A destination longer than one block with sources that differ
        // per block would expose any block-offset bug.
        let len = BLOCK * 2 + 37;
        let a: Vec<u8> = (0..len).map(|i| (i * 7 + 1) as u8).collect();
        let b: Vec<u8> = (0..len).map(|i| (i * 13 + 5) as u8).collect();
        let c1 = Gf256::new(0x1D);
        let c2 = Gf256::new(0x02);
        let mut dst = vec![0xA5u8; len];
        let mut expect = dst.clone();
        blocked_multi(scalar::mul_acc, &mut dst, &[(c1, &a), (c2, &b)]);
        crate::gf256::mul_acc_slice_ref(&mut expect, &a, c1);
        crate::gf256::mul_acc_slice_ref(&mut expect, &b, c2);
        assert_eq!(dst, expect);
    }
}
