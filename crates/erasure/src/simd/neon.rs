//! AArch64 NEON kernel tier: split-nibble `vqtbl1q_u8` lookups, the
//! 16-lane equivalent of the x86 `pshufb` technique.
//!
//! # Safety
//!
//! Mirrors `x86.rs`: each `#[target_feature(enable = "neon")]` function
//! is invoked only from the safe wrappers below, which the dispatcher
//! installs strictly after an `is_aarch64_feature_detected!("neon")`
//! probe. Vector loops touch `len / 16 * 16` bytes and report the count
//! back; tails go to the safe scalar kernels. NEON loads/stores have no
//! alignment requirement.

use super::scalar;
use crate::gf256::{nibble_row, Gf256};
use core::arch::aarch64::*;

pub(super) static NEON: super::Kernels = super::Kernels {
    name: "neon",
    mul_slice: mul_slice_neon,
    mul_acc: mul_acc_neon,
    mul_in_place: mul_in_place_neon,
    mul_acc_multi: mul_acc_multi_neon,
};

/// 16-byte-block `dst[i] (^)= coeff * src[i]` via `vqtbl1q_u8` nibble
/// lookups; returns bytes handled (a multiple of 16, ≤ `dst.len()`).
///
/// # Safety
///
/// Caller must ensure the CPU supports NEON and `dst.len() == src.len()`.
// SAFETY: pointer walks stop at `len / 16 * 16` bytes of dst/src (the
// equal-length contract); NEON loads/stores need no alignment. Probed
// wrappers are the only callers (module safety note).
#[target_feature(enable = "neon")]
unsafe fn gf_mul_neon<const ACCUMULATE: bool>(dst: &mut [u8], src: &[u8], nib: &[u8; 32]) -> usize {
    let lo_t = vld1q_u8(nib.as_ptr());
    let hi_t = vld1q_u8(nib.as_ptr().add(16));
    let mask = vdupq_n_u8(0x0F);
    let blocks = dst.len() / 16;
    for i in 0..blocks {
        let s = vld1q_u8(src.as_ptr().add(i * 16));
        let lo = vandq_u8(s, mask);
        let hi = vshrq_n_u8::<4>(s);
        let mut p = veorq_u8(vqtbl1q_u8(lo_t, lo), vqtbl1q_u8(hi_t, hi));
        let d = dst.as_mut_ptr().add(i * 16);
        if ACCUMULATE {
            p = veorq_u8(p, vld1q_u8(d as *const u8));
        }
        vst1q_u8(d, p);
    }
    blocks * 16
}

/// In-place variant of [`gf_mul_neon`]; returns bytes handled. Aliases
/// src and dst deliberately — each lane is read before it is written.
///
/// # Safety
///
/// Caller must ensure the CPU supports NEON.
// SAFETY: touches `len / 16 * 16` bytes of `data`; each lane is read
// before it is written, so the deliberate src/dst aliasing is sound.
// Probed wrappers only (module safety note).
#[target_feature(enable = "neon")]
unsafe fn gf_mul_in_place_neon(data: &mut [u8], nib: &[u8; 32]) -> usize {
    let lo_t = vld1q_u8(nib.as_ptr());
    let hi_t = vld1q_u8(nib.as_ptr().add(16));
    let mask = vdupq_n_u8(0x0F);
    let blocks = data.len() / 16;
    for i in 0..blocks {
        let p = data.as_mut_ptr().add(i * 16);
        let s = vld1q_u8(p as *const u8);
        let lo = vandq_u8(s, mask);
        let hi = vshrq_n_u8::<4>(s);
        vst1q_u8(p, veorq_u8(vqtbl1q_u8(lo_t, lo), vqtbl1q_u8(hi_t, hi)));
    }
    blocks * 16
}

fn mul_slice_neon(dst: &mut [u8], src: &[u8], coeff: Gf256) {
    debug_assert!(std::arch::is_aarch64_feature_detected!("neon"));
    // SAFETY: reachable only after a NEON probe (module safety note);
    // lengths are equal per the `Kernels` wrapper contract.
    let done = unsafe { gf_mul_neon::<false>(dst, src, nibble_row(coeff)) };
    scalar::mul_slice(&mut dst[done..], &src[done..], coeff);
}

fn mul_acc_neon(dst: &mut [u8], src: &[u8], coeff: Gf256) {
    debug_assert!(std::arch::is_aarch64_feature_detected!("neon"));
    // SAFETY: as in `mul_slice_neon`.
    let done = unsafe { gf_mul_neon::<true>(dst, src, nibble_row(coeff)) };
    scalar::mul_acc(&mut dst[done..], &src[done..], coeff);
}

fn mul_in_place_neon(data: &mut [u8], coeff: Gf256) {
    debug_assert!(std::arch::is_aarch64_feature_detected!("neon"));
    // SAFETY: reachable only after a NEON probe (module safety note).
    let done = unsafe { gf_mul_in_place_neon(data, nibble_row(coeff)) };
    scalar::mul_in_place(&mut data[done..], coeff);
}

fn mul_acc_multi_neon(dst: &mut [u8], terms: &[super::Term<'_>]) {
    super::blocked_multi(mul_acc_neon, dst, terms);
}
