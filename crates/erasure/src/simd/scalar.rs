//! Table-driven scalar kernels — the universal fallback tier.
//!
//! These are the PR 1 kernels verbatim: one branch-free lookup per byte
//! in the 64 KiB product table, 8-way unrolled. They run on any target,
//! serve as the tail handler for every SIMD tier, and remain the
//! baseline that `bench_snapshot` compares the SIMD tiers against.

use crate::gf256::{mul_row, Gf256};

/// `dst ^= src` eight bytes at a time as `u64` words — the coefficient-1
/// fast path shared by every tier.
pub(crate) fn xor_slice(dst: &mut [u8], src: &[u8]) {
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dw, sw) in (&mut d).zip(&mut s) {
        let x =
            u64::from_ne_bytes(dw.try_into().unwrap()) ^ u64::from_ne_bytes(sw.try_into().unwrap());
        dw.copy_from_slice(&x.to_ne_bytes());
    }
    for (db, sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db ^= sb;
    }
}

pub(crate) fn mul_acc(dst: &mut [u8], src: &[u8], coeff: Gf256) {
    let row = mul_row(coeff);
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dc, sc) in (&mut d).zip(&mut s) {
        dc[0] ^= row[sc[0] as usize];
        dc[1] ^= row[sc[1] as usize];
        dc[2] ^= row[sc[2] as usize];
        dc[3] ^= row[sc[3] as usize];
        dc[4] ^= row[sc[4] as usize];
        dc[5] ^= row[sc[5] as usize];
        dc[6] ^= row[sc[6] as usize];
        dc[7] ^= row[sc[7] as usize];
    }
    for (db, sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db ^= row[*sb as usize];
    }
}

pub(crate) fn mul_slice(dst: &mut [u8], src: &[u8], coeff: Gf256) {
    let row = mul_row(coeff);
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dc, sc) in (&mut d).zip(&mut s) {
        dc[0] = row[sc[0] as usize];
        dc[1] = row[sc[1] as usize];
        dc[2] = row[sc[2] as usize];
        dc[3] = row[sc[3] as usize];
        dc[4] = row[sc[4] as usize];
        dc[5] = row[sc[5] as usize];
        dc[6] = row[sc[6] as usize];
        dc[7] = row[sc[7] as usize];
    }
    for (db, sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db = row[*sb as usize];
    }
}

pub(crate) fn mul_in_place(data: &mut [u8], coeff: Gf256) {
    let row = mul_row(coeff);
    for b in data.iter_mut() {
        *b = row[*b as usize];
    }
}

pub(crate) fn mul_acc_multi(dst: &mut [u8], terms: &[super::Term<'_>]) {
    super::blocked_multi(mul_acc, dst, terms);
}
