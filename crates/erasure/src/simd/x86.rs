//! x86-64 kernel tiers: SSSE3 / AVX2 split-nibble `pshufb` lookups and
//! GFNI+AVX-512 native GF(2^8) multiplies.
//!
//! # Safety
//!
//! Every `unsafe fn` here is marked `#[target_feature]` and is invoked
//! only from the safe `pub(super)` wrappers in this file, which the
//! dispatcher in `super` installs into a [`Kernels`](super::Kernels)
//! table strictly after the matching `is_x86_feature_detected!` probes
//! (see `super::ladder` / `super::choose`; tests go through
//! `super::all_supported`, which applies the same probes). Each wrapper
//! asserts the probe again in debug builds. All pointer arithmetic is
//! bounded: vector loops touch `len / W * W` bytes for vector width `W`
//! and report that count back, and the wrapper hands the remaining tail
//! to the safe scalar kernels. Unaligned heads and tails are a
//! non-issue for correctness because only unaligned load/store
//! intrinsics (`loadu`/`storeu`/`read_unaligned`) are used.

use super::scalar;
use crate::gf256::{nibble_row, Gf256};
use core::arch::x86_64::*;

pub(super) static SSSE3: super::Kernels = super::Kernels {
    name: "ssse3",
    mul_slice: mul_slice_ssse3,
    mul_acc: mul_acc_ssse3,
    mul_in_place: mul_in_place_ssse3,
    mul_acc_multi: mul_acc_multi_ssse3,
};

pub(super) static AVX2: super::Kernels = super::Kernels {
    name: "avx2",
    mul_slice: mul_slice_avx2,
    mul_acc: mul_acc_avx2,
    mul_in_place: mul_in_place_avx2,
    mul_acc_multi: mul_acc_multi_avx2,
};

pub(super) static GFNI_AVX512: super::Kernels = super::Kernels {
    name: "gfni-avx512",
    mul_slice: mul_slice_gfni,
    mul_acc: mul_acc_gfni,
    mul_in_place: mul_in_place_gfni,
    mul_acc_multi: mul_acc_multi_gfni,
};

// ---------------------------------------------------------------- SSSE3

/// Split-nibble product of one 128-bit lane: `lo_t[s & 0xF] ^ hi_t[s >> 4]`.
///
/// # Safety
///
/// Requires SSSE3 (guaranteed by the caller's `#[target_feature]`).
// SAFETY: register-only intrinsics; inlined solely into SSSE3-marked
// callers, so the feature is active whenever this body runs.
#[inline]
#[target_feature(enable = "ssse3")]
unsafe fn nib_mul128(s: __m128i, lo_t: __m128i, hi_t: __m128i, mask: __m128i) -> __m128i {
    let lo = _mm_and_si128(s, mask);
    let hi = _mm_and_si128(_mm_srli_epi64::<4>(s), mask);
    _mm_xor_si128(_mm_shuffle_epi8(lo_t, lo), _mm_shuffle_epi8(hi_t, hi))
}

/// 16-byte-block `dst[i] (^)= coeff * src[i]` via SSSE3 `pshufb`;
/// returns bytes handled (a multiple of 16, ≤ `dst.len()`).
///
/// # Safety
///
/// Caller must ensure the CPU supports SSSE3 and `dst.len() == src.len()`.
// SAFETY: pointer walks stop at `len / 16 * 16` bytes of dst/src (the
// equal-length contract) via unaligned load/store; probed wrappers
// are the only callers (module safety note).
#[target_feature(enable = "ssse3")]
unsafe fn gf_mul_ssse3<const ACCUMULATE: bool>(
    dst: &mut [u8],
    src: &[u8],
    nib: &[u8; 32],
) -> usize {
    let lo_t = _mm_loadu_si128(nib.as_ptr() as *const __m128i);
    let hi_t = _mm_loadu_si128(nib.as_ptr().add(16) as *const __m128i);
    let mask = _mm_set1_epi8(0x0F);
    let blocks = dst.len() / 16;
    for i in 0..blocks {
        let s = _mm_loadu_si128(src.as_ptr().add(i * 16) as *const __m128i);
        let mut p = nib_mul128(s, lo_t, hi_t, mask);
        let d = dst.as_mut_ptr().add(i * 16) as *mut __m128i;
        if ACCUMULATE {
            p = _mm_xor_si128(p, _mm_loadu_si128(d as *const __m128i));
        }
        _mm_storeu_si128(d, p);
    }
    blocks * 16
}

fn mul_slice_ssse3(dst: &mut [u8], src: &[u8], coeff: Gf256) {
    debug_assert!(std::arch::is_x86_feature_detected!("ssse3"));
    // SAFETY: reachable only after an SSSE3 probe (module safety note);
    // lengths are equal per the `Kernels` wrapper contract.
    let done = unsafe { gf_mul_ssse3::<false>(dst, src, nibble_row(coeff)) };
    scalar::mul_slice(&mut dst[done..], &src[done..], coeff);
}

fn mul_acc_ssse3(dst: &mut [u8], src: &[u8], coeff: Gf256) {
    debug_assert!(std::arch::is_x86_feature_detected!("ssse3"));
    // SAFETY: as in `mul_slice_ssse3`.
    let done = unsafe { gf_mul_ssse3::<true>(dst, src, nibble_row(coeff)) };
    scalar::mul_acc(&mut dst[done..], &src[done..], coeff);
}

/// In-place variant of [`gf_mul_ssse3`]; returns bytes handled. The
/// in-place form aliases src and dst deliberately — each lane is read
/// before it is written.
///
/// # Safety
///
/// Caller must ensure the CPU supports SSSE3.
// SAFETY: touches `len / 16 * 16` bytes of `data` through unaligned
// load/store; each lane is read before it is written, so the
// deliberate src/dst aliasing is sound. Probed wrappers only.
#[target_feature(enable = "ssse3")]
unsafe fn gf_mul_in_place_ssse3(data: &mut [u8], nib: &[u8; 32]) -> usize {
    let lo_t = _mm_loadu_si128(nib.as_ptr() as *const __m128i);
    let hi_t = _mm_loadu_si128(nib.as_ptr().add(16) as *const __m128i);
    let mask = _mm_set1_epi8(0x0F);
    let blocks = data.len() / 16;
    for i in 0..blocks {
        let p = data.as_mut_ptr().add(i * 16) as *mut __m128i;
        let s = _mm_loadu_si128(p as *const __m128i);
        _mm_storeu_si128(p, nib_mul128(s, lo_t, hi_t, mask));
    }
    blocks * 16
}

fn mul_in_place_ssse3(data: &mut [u8], coeff: Gf256) {
    debug_assert!(std::arch::is_x86_feature_detected!("ssse3"));
    // SAFETY: reachable only after an SSSE3 probe (module safety note).
    let done = unsafe { gf_mul_in_place_ssse3(data, nibble_row(coeff)) };
    scalar::mul_in_place(&mut data[done..], coeff);
}

fn mul_acc_multi_ssse3(dst: &mut [u8], terms: &[super::Term<'_>]) {
    super::blocked_multi(mul_acc_ssse3, dst, terms);
}

// ----------------------------------------------------------------- AVX2

/// Split-nibble product of one 256-bit lane.
///
/// # Safety
///
/// Requires AVX2 (guaranteed by the caller's `#[target_feature]`).
// SAFETY: register-only intrinsics; inlined solely into AVX2-marked
// callers, so the feature is active whenever this body runs.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn nib_mul256(s: __m256i, lo_t: __m256i, hi_t: __m256i, mask: __m256i) -> __m256i {
    let lo = _mm256_and_si256(s, mask);
    let hi = _mm256_and_si256(_mm256_srli_epi64::<4>(s), mask);
    _mm256_xor_si256(_mm256_shuffle_epi8(lo_t, lo), _mm256_shuffle_epi8(hi_t, hi))
}

/// 32-byte-block `dst[i] (^)= coeff * src[i]` via AVX2 `vpshufb`;
/// returns bytes handled (a multiple of 32, ≤ `dst.len()`).
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX2 and `dst.len() == src.len()`.
// SAFETY: pointer walks stop at `len / 32 * 32` bytes of dst/src (the
// equal-length contract) via unaligned load/store; probed wrappers
// are the only callers (module safety note).
#[target_feature(enable = "avx2")]
unsafe fn gf_mul_avx2<const ACCUMULATE: bool>(dst: &mut [u8], src: &[u8], nib: &[u8; 32]) -> usize {
    let lo_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(nib.as_ptr() as *const __m128i));
    let hi_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(nib.as_ptr().add(16) as *const __m128i));
    let mask = _mm256_set1_epi8(0x0F);
    let blocks = dst.len() / 32;
    for i in 0..blocks {
        let s = _mm256_loadu_si256(src.as_ptr().add(i * 32) as *const __m256i);
        let mut p = nib_mul256(s, lo_t, hi_t, mask);
        let d = dst.as_mut_ptr().add(i * 32) as *mut __m256i;
        if ACCUMULATE {
            p = _mm256_xor_si256(p, _mm256_loadu_si256(d as *const __m256i));
        }
        _mm256_storeu_si256(d, p);
    }
    blocks * 32
}

fn mul_slice_avx2(dst: &mut [u8], src: &[u8], coeff: Gf256) {
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    // SAFETY: reachable only after an AVX2 probe (module safety note);
    // lengths are equal per the `Kernels` wrapper contract.
    let done = unsafe { gf_mul_avx2::<false>(dst, src, nibble_row(coeff)) };
    scalar::mul_slice(&mut dst[done..], &src[done..], coeff);
}

fn mul_acc_avx2(dst: &mut [u8], src: &[u8], coeff: Gf256) {
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    // SAFETY: as in `mul_slice_avx2`.
    let done = unsafe { gf_mul_avx2::<true>(dst, src, nibble_row(coeff)) };
    scalar::mul_acc(&mut dst[done..], &src[done..], coeff);
}

/// In-place variant of [`gf_mul_avx2`]; returns bytes handled. The
/// in-place form aliases src and dst deliberately — each lane is read
/// before it is written.
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX2.
// SAFETY: touches `len / 32 * 32` bytes of `data` through unaligned
// load/store; each lane is read before it is written, so the
// deliberate src/dst aliasing is sound. Probed wrappers only.
#[target_feature(enable = "avx2")]
unsafe fn gf_mul_in_place_avx2(data: &mut [u8], nib: &[u8; 32]) -> usize {
    let lo_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(nib.as_ptr() as *const __m128i));
    let hi_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(nib.as_ptr().add(16) as *const __m128i));
    let mask = _mm256_set1_epi8(0x0F);
    let blocks = data.len() / 32;
    for i in 0..blocks {
        let p = data.as_mut_ptr().add(i * 32) as *mut __m256i;
        let s = _mm256_loadu_si256(p as *const __m256i);
        _mm256_storeu_si256(p, nib_mul256(s, lo_t, hi_t, mask));
    }
    blocks * 32
}

fn mul_in_place_avx2(data: &mut [u8], coeff: Gf256) {
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    // SAFETY: reachable only after an AVX2 probe (module safety note).
    let done = unsafe { gf_mul_in_place_avx2(data, nibble_row(coeff)) };
    scalar::mul_in_place(&mut data[done..], coeff);
}

fn mul_acc_multi_avx2(dst: &mut [u8], terms: &[super::Term<'_>]) {
    super::blocked_multi(mul_acc_avx2, dst, terms);
}

// ---------------------------------------------------------- GFNI+AVX512

/// 64-byte-block `dst[i] (^)= coeff * src[i]` via `vgf2p8mulb`, which
/// multiplies byte lanes directly in GF(2^8) mod 0x11B — exactly this
/// crate's field. Returns bytes handled (a multiple of 64, ≤ `dst.len()`).
///
/// # Safety
///
/// Caller must ensure the CPU supports GFNI+AVX-512F/BW and
/// `dst.len() == src.len()`.
// SAFETY: pointer walks stop at `len / 64 * 64` bytes of dst/src (the
// equal-length contract) via read_unaligned/write_unaligned; probed
// wrappers are the only callers (module safety note).
#[target_feature(enable = "gfni,avx512f,avx512bw")]
unsafe fn gf_mul_gfni<const ACCUMULATE: bool>(dst: &mut [u8], src: &[u8], coeff: Gf256) -> usize {
    let cv = _mm512_set1_epi8(coeff.value() as i8);
    let blocks = dst.len() / 64;
    for i in 0..blocks {
        let s = core::ptr::read_unaligned(src.as_ptr().add(i * 64) as *const __m512i);
        let mut p = _mm512_gf2p8mul_epi8(s, cv);
        let d = dst.as_mut_ptr().add(i * 64) as *mut __m512i;
        if ACCUMULATE {
            p = _mm512_xor_si512(p, core::ptr::read_unaligned(d as *const __m512i));
        }
        core::ptr::write_unaligned(d, p);
    }
    blocks * 64
}

/// Register-fused multi-source accumulate: each 64-byte destination
/// vector is loaded once, all source terms are multiplied and XORed
/// into it in registers, and it is stored once — one destination
/// read/write per 64 bytes regardless of how many sources fuse.
/// Returns bytes handled (a multiple of 64, ≤ `dst.len()`).
///
/// # Safety
///
/// Caller must ensure the CPU supports GFNI+AVX-512F/BW and that every
/// source slice has the same length as `dst`.
// SAFETY: every source walk is bounded by `dst.len() / 64 * 64` bytes,
// within each source per the equal-length contract; unaligned reads
// and writes throughout. Probed wrappers only (module safety note).
#[target_feature(enable = "gfni,avx512f,avx512bw")]
unsafe fn gf_mul_acc_multi_gfni(dst: &mut [u8], terms: &[super::Term<'_>]) -> usize {
    let blocks = dst.len() / 64;
    for i in 0..blocks {
        let d = dst.as_mut_ptr().add(i * 64) as *mut __m512i;
        let mut acc = core::ptr::read_unaligned(d as *const __m512i);
        for &(coeff, src) in terms {
            let s = core::ptr::read_unaligned(src.as_ptr().add(i * 64) as *const __m512i);
            let cv = _mm512_set1_epi8(coeff.value() as i8);
            acc = _mm512_xor_si512(acc, _mm512_gf2p8mul_epi8(s, cv));
        }
        core::ptr::write_unaligned(d, acc);
    }
    blocks * 64
}

fn have_gfni() -> bool {
    std::arch::is_x86_feature_detected!("gfni")
        && std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512bw")
}

fn mul_slice_gfni(dst: &mut [u8], src: &[u8], coeff: Gf256) {
    debug_assert!(have_gfni());
    // SAFETY: reachable only after a GFNI+AVX-512 probe (module safety
    // note); lengths are equal per the `Kernels` wrapper contract.
    let done = unsafe { gf_mul_gfni::<false>(dst, src, coeff) };
    scalar::mul_slice(&mut dst[done..], &src[done..], coeff);
}

fn mul_acc_gfni(dst: &mut [u8], src: &[u8], coeff: Gf256) {
    debug_assert!(have_gfni());
    // SAFETY: as in `mul_slice_gfni`.
    let done = unsafe { gf_mul_gfni::<true>(dst, src, coeff) };
    scalar::mul_acc(&mut dst[done..], &src[done..], coeff);
}

/// In-place variant of [`gf_mul_gfni`]; returns bytes handled. The
/// in-place form aliases src and dst deliberately — each lane is read
/// before it is written.
///
/// # Safety
///
/// Caller must ensure the CPU supports GFNI+AVX-512F/BW.
// SAFETY: touches `len / 64 * 64` bytes of `data` through unaligned
// reads/writes; each lane is read before it is written, so the
// deliberate src/dst aliasing is sound. Probed wrappers only.
#[target_feature(enable = "gfni,avx512f,avx512bw")]
unsafe fn gf_mul_in_place_gfni(data: &mut [u8], coeff: Gf256) -> usize {
    let cv = _mm512_set1_epi8(coeff.value() as i8);
    let blocks = data.len() / 64;
    for i in 0..blocks {
        let p = data.as_mut_ptr().add(i * 64) as *mut __m512i;
        let s = core::ptr::read_unaligned(p as *const __m512i);
        core::ptr::write_unaligned(p, _mm512_gf2p8mul_epi8(s, cv));
    }
    blocks * 64
}

fn mul_in_place_gfni(data: &mut [u8], coeff: Gf256) {
    debug_assert!(have_gfni());
    // SAFETY: reachable only after a GFNI+AVX-512 probe (module safety
    // note).
    let done = unsafe { gf_mul_in_place_gfni(data, coeff) };
    scalar::mul_in_place(&mut data[done..], coeff);
}

fn mul_acc_multi_gfni(dst: &mut [u8], terms: &[super::Term<'_>]) {
    debug_assert!(have_gfni());
    // SAFETY: reachable only after a GFNI+AVX-512 probe; all term
    // lengths equal `dst.len()` per the `Kernels` wrapper contract.
    let done = unsafe { gf_mul_acc_multi_gfni(dst, terms) };
    if done < dst.len() {
        let tail: Vec<super::Term<'_>> = terms.iter().map(|&(c, s)| (c, &s[done..])).collect();
        scalar::mul_acc_multi(&mut dst[done..], &tail);
    }
}
