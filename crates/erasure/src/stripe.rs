//! Stripe-level coding: the HDFS-RAID view of erasure coding, where a
//! stream of fixed-size native blocks is cut into groups of `k` and each
//! group becomes one independently-coded *stripe* of `n` blocks.

use crate::rs::{CodeConstruction, ReedSolomon};
use crate::{CodeError, CodeParams};

/// Encodes and repairs whole stripes.
///
/// A stripe is represented as `Vec<Vec<u8>>` of length `n`: indices
/// `0..k` are the native blocks, `k..n` the parity blocks — matching the
/// paper's notation `B_{i,0..k-1}` and `P_{i,0..n-k-1}` for stripe `i`.
///
/// # Example
///
/// ```
/// use erasure::{CodeParams, StripeCodec};
/// # fn main() -> Result<(), erasure::CodeError> {
/// let codec = StripeCodec::new(CodeParams::new(12, 10)?)?; // testbed code
/// let natives: Vec<Vec<u8>> = (0..10).map(|i| vec![i as u8; 4]).collect();
/// let stripe = codec.encode(&natives)?;
/// assert!(codec.verify(&stripe)?);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct StripeCodec {
    rs: ReedSolomon,
}

impl StripeCodec {
    /// Creates a codec with the default (Vandermonde) construction.
    ///
    /// # Errors
    ///
    /// Propagates matrix-construction failures from [`ReedSolomon::new`].
    pub fn new(params: CodeParams) -> Result<StripeCodec, CodeError> {
        StripeCodec::with_construction(params, CodeConstruction::default())
    }

    /// Creates a codec with an explicit construction.
    ///
    /// # Errors
    ///
    /// Propagates matrix-construction failures from [`ReedSolomon::new`].
    pub fn with_construction(
        params: CodeParams,
        construction: CodeConstruction,
    ) -> Result<StripeCodec, CodeError> {
        Ok(StripeCodec {
            rs: ReedSolomon::new(params, construction)?,
        })
    }

    /// The code parameters.
    pub fn params(&self) -> CodeParams {
        self.rs.params()
    }

    /// The underlying Reed–Solomon codec.
    pub fn reed_solomon(&self) -> &ReedSolomon {
        &self.rs
    }

    /// Encodes `k` native blocks into a full `n`-block stripe
    /// (native blocks first, then parity).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::WrongShardCount`] or
    /// [`CodeError::UnequalShardLengths`] on malformed input.
    pub fn encode(&self, natives: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, CodeError> {
        let parity = self.rs.encode_parity(natives)?;
        let mut stripe = natives.to_vec();
        stripe.extend(parity);
        Ok(stripe)
    }

    /// Reconstructs the block at `target` (native or parity index within
    /// the stripe) from any `k` surviving `(index, bytes)` pairs — the
    /// degraded-read primitive. Survivor bytes may be owned or borrowed
    /// (`(usize, &[u8])`), so store-backed readers need not clone their
    /// shards.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReedSolomon::reconstruct_shard`].
    pub fn reconstruct<S: AsRef<[u8]>>(
        &self,
        survivors: &[(usize, S)],
        target: usize,
    ) -> Result<Vec<u8>, CodeError> {
        self.rs.reconstruct_shard(survivors, target)
    }

    /// Allocation-reusing form of [`StripeCodec::reconstruct`]; see
    /// [`ReedSolomon::reconstruct_shard_into`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReedSolomon::reconstruct_shard`].
    pub fn reconstruct_into<S: AsRef<[u8]>>(
        &self,
        survivors: &[(usize, S)],
        target: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), CodeError> {
        self.rs.reconstruct_shard_into(survivors, target, out)
    }

    /// Recovers all `k` native blocks from any `k` survivors.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReedSolomon::decode_data`].
    pub fn decode_natives<S: AsRef<[u8]>>(
        &self,
        survivors: &[(usize, S)],
    ) -> Result<Vec<Vec<u8>>, CodeError> {
        self.rs.decode_data(survivors)
    }

    /// Allocation-reusing form of [`StripeCodec::decode_natives`]; see
    /// [`ReedSolomon::decode_data_into`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReedSolomon::decode_data`].
    pub fn decode_natives_into<S: AsRef<[u8]>>(
        &self,
        survivors: &[(usize, S)],
        out: &mut Vec<Vec<u8>>,
    ) -> Result<(), CodeError> {
        self.rs.decode_data_into(survivors, out)
    }

    /// Verifies stripe consistency (parity matches data).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::WrongShardCount`] or
    /// [`CodeError::UnequalShardLengths`] on malformed input.
    pub fn verify(&self, stripe: &[Vec<u8>]) -> Result<bool, CodeError> {
        self.rs.verify(stripe)
    }

    /// Overwrites native block `index` of a full stripe **in place**,
    /// delta-updating the parity blocks instead of re-encoding (see
    /// [`ReedSolomon::update_parity`]).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::WrongShardCount`] if `stripe` is not `n`
    /// blocks, [`CodeError::BadShardIndex`] if `index >= k`, or
    /// [`CodeError::UnequalShardLengths`] on size mismatch.
    pub fn write_native(
        &self,
        stripe: &mut [Vec<u8>],
        index: usize,
        new: Vec<u8>,
    ) -> Result<(), CodeError> {
        let (n, k) = (self.params().n(), self.params().k());
        if stripe.len() != n {
            return Err(CodeError::WrongShardCount {
                expected: n,
                actual: stripe.len(),
            });
        }
        if index >= k {
            return Err(CodeError::BadShardIndex { index });
        }
        let (data, parity) = stripe.split_at_mut(k);
        self.rs.update_parity(parity, index, &data[index], &new)?;
        data[index] = new;
        Ok(())
    }
}

/// Splits a byte stream into fixed-size blocks, zero-padding the last
/// block — how HDFS-RAID groups a file into native blocks before
/// striping. An empty input produces zero blocks.
///
/// # Panics
///
/// Panics if `block_size` is zero.
pub fn split_into_blocks(data: &[u8], block_size: usize) -> Vec<Vec<u8>> {
    assert!(block_size > 0, "zero block size");
    data.chunks(block_size)
        .map(|chunk| {
            let mut block = chunk.to_vec();
            block.resize(block_size, 0);
            block
        })
        .collect()
}

/// Groups native blocks into stripes of `k`, zero-padding the final
/// partial group with empty blocks of matching size.
///
/// # Panics
///
/// Panics if `k` is zero or blocks have unequal sizes.
pub fn group_into_stripes(blocks: &[Vec<u8>], k: usize) -> Vec<Vec<Vec<u8>>> {
    assert!(k > 0, "k must be positive");
    if blocks.is_empty() {
        return Vec::new();
    }
    let len = blocks[0].len();
    assert!(blocks.iter().all(|b| b.len() == len), "unequal block sizes");
    blocks
        .chunks(k)
        .map(|group| {
            let mut g = group.to_vec();
            while g.len() < k {
                g.push(vec![0u8; len]);
            }
            g
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_verify_reconstruct() {
        let codec = StripeCodec::new(CodeParams::new(4, 2).unwrap()).unwrap();
        let natives = vec![vec![10u8; 6], vec![20u8; 6]];
        let stripe = codec.encode(&natives).unwrap();
        assert_eq!(stripe.len(), 4);
        assert!(codec.verify(&stripe).unwrap());
        // Lose native block 0; the paper's example downloads parity P_{i,0}
        // (index 2) plus the other native (index 1).
        let survivors = vec![(1, stripe[1].clone()), (2, stripe[2].clone())];
        assert_eq!(codec.reconstruct(&survivors, 0).unwrap(), natives[0]);
        assert_eq!(codec.decode_natives(&survivors).unwrap(), natives);
    }

    #[test]
    fn split_pads_last_block() {
        let data: Vec<u8> = (0..10).collect();
        let blocks = split_into_blocks(&data, 4);
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0], vec![0, 1, 2, 3]);
        assert_eq!(blocks[2], vec![8, 9, 0, 0]);
        assert!(split_into_blocks(&[], 4).is_empty());
    }

    #[test]
    fn grouping_pads_final_stripe() {
        let blocks: Vec<Vec<u8>> = (0..5).map(|i| vec![i as u8; 2]).collect();
        let stripes = group_into_stripes(&blocks, 2);
        assert_eq!(stripes.len(), 3);
        assert_eq!(stripes[2][1], vec![0u8; 2], "padding block");
        assert!(group_into_stripes(&[], 3).is_empty());
    }

    #[test]
    fn file_level_round_trip() {
        // End-to-end: file -> blocks -> stripes -> encode -> lose a block
        // per stripe -> reconstruct -> reassemble.
        let codec = StripeCodec::new(CodeParams::new(6, 4).unwrap()).unwrap();
        let file: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let blocks = split_into_blocks(&file, 64);
        let stripes = group_into_stripes(&blocks, 4);
        let mut recovered_file = Vec::new();
        for (si, natives) in stripes.iter().enumerate() {
            let stripe = codec.encode(natives).unwrap();
            let lost = si % 4; // lose a different native block per stripe
            let survivors: Vec<(usize, Vec<u8>)> = (0..6)
                .filter(|&i| i != lost)
                .take(4)
                .map(|i| (i, stripe[i].clone()))
                .collect();
            let natives_back = codec.decode_natives(&survivors).unwrap();
            assert_eq!(&natives_back, natives);
            for b in natives_back {
                recovered_file.extend(b);
            }
        }
        assert_eq!(&recovered_file[..file.len()], &file[..]);
        assert!(recovered_file[file.len()..].iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "zero block size")]
    fn split_rejects_zero_block_size() {
        let _ = split_into_blocks(&[1, 2, 3], 0);
    }

    #[test]
    #[should_panic(expected = "unequal block sizes")]
    fn group_rejects_ragged_blocks() {
        let _ = group_into_stripes(&[vec![1], vec![1, 2]], 2);
    }
}

#[cfg(test)]
mod write_tests {
    use super::*;

    #[test]
    fn write_native_keeps_stripe_valid() {
        let codec = StripeCodec::new(CodeParams::new(6, 4).unwrap()).unwrap();
        let natives: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 12]).collect();
        let mut stripe = codec.encode(&natives).unwrap();
        codec.write_native(&mut stripe, 1, vec![0xAB; 12]).unwrap();
        assert_eq!(stripe[1], vec![0xAB; 12]);
        assert!(
            codec.verify(&stripe).unwrap(),
            "parity must track the write"
        );
        // Still recoverable after a loss.
        let survivors: Vec<(usize, Vec<u8>)> = (2..6).map(|i| (i, stripe[i].clone())).collect();
        assert_eq!(codec.reconstruct(&survivors, 1).unwrap(), vec![0xAB; 12]);
    }

    #[test]
    fn write_native_error_cases() {
        let codec = StripeCodec::new(CodeParams::new(4, 2).unwrap()).unwrap();
        let natives = vec![vec![1u8; 4], vec![2u8; 4]];
        let mut stripe = codec.encode(&natives).unwrap();
        assert_eq!(
            codec.write_native(&mut stripe, 2, vec![0; 4]).unwrap_err(),
            CodeError::BadShardIndex { index: 2 }
        );
        assert_eq!(
            codec
                .write_native(&mut stripe[..3].to_vec(), 0, vec![0; 4])
                .unwrap_err(),
            CodeError::WrongShardCount {
                expected: 4,
                actual: 3
            }
        );
        assert_eq!(
            codec.write_native(&mut stripe, 0, vec![0; 3]).unwrap_err(),
            CodeError::UnequalShardLengths
        );
    }
}
