//! Property-based tests for the erasure-coding core: field axioms,
//! matrix inversion, and the any-k-of-n MDS recovery contract.

use erasure::gf256::{mul_acc_slice, mul_acc_slice_ref, mul_slice, mul_slice_ref, Gf256};
use erasure::matrix::Matrix;
use erasure::rs::{CodeConstruction, ReedSolomon};
use erasure::stripe::{group_into_stripes, split_into_blocks};
use erasure::{CodeParams, StripeCodec};
use proptest::prelude::*;

fn gf() -> impl Strategy<Value = Gf256> {
    any::<u8>().prop_map(Gf256::new)
}

fn nonzero_gf() -> impl Strategy<Value = Gf256> {
    (1u8..=255).prop_map(Gf256::new)
}

proptest! {
    #[test]
    fn field_axioms(a in gf(), b in gf(), c in gf()) {
        // Commutativity.
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        // Associativity.
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!((a * b) * c, a * (b * c));
        // Distributivity.
        prop_assert_eq!(a * (b + c), a * b + a * c);
        // Identities.
        prop_assert_eq!(a + Gf256::ZERO, a);
        prop_assert_eq!(a * Gf256::ONE, a);
        prop_assert_eq!(a * Gf256::ZERO, Gf256::ZERO);
        // Additive self-inverse (characteristic 2).
        prop_assert_eq!(a + a, Gf256::ZERO);
    }

    #[test]
    fn division_inverts_multiplication(a in gf(), b in nonzero_gf()) {
        prop_assert_eq!((a * b) / b, a);
        prop_assert_eq!(b * b.inverse(), Gf256::ONE);
    }

    #[test]
    fn pow_is_repeated_multiplication(a in gf(), e in 0usize..20) {
        let mut expect = Gf256::ONE;
        for _ in 0..e {
            expect *= a;
        }
        prop_assert_eq!(a.pow(e), expect);
    }

    #[test]
    fn table_kernels_match_reference_kernels(
        coeff in any::<u8>(),
        src in proptest::collection::vec(any::<u8>(), 0..300),
        fill in any::<u8>(),
    ) {
        // The table-driven / SIMD slice kernels must agree byte-for-byte
        // with the straightforward per-byte reference on every length
        // (covering the vector body and the scalar tail) and every
        // coefficient (including the 0 and 1 fast paths).
        let c = Gf256::new(coeff);
        let mut acc_opt = vec![fill; src.len()];
        let mut acc_ref = acc_opt.clone();
        mul_acc_slice(&mut acc_opt, &src, c);
        mul_acc_slice_ref(&mut acc_ref, &src, c);
        prop_assert_eq!(&acc_opt, &acc_ref);

        let mut dst_opt = vec![fill; src.len()];
        let mut dst_ref = dst_opt.clone();
        mul_slice(&mut dst_opt, &src, c);
        mul_slice_ref(&mut dst_ref, &src, c);
        prop_assert_eq!(&dst_opt, &dst_ref);
    }

    #[test]
    fn vandermonde_matrices_invert(size in 1usize..8) {
        // Distinct evaluation points => invertible; inverse round-trips.
        let m = Matrix::from_fn(size, size, |r, c| Gf256::new((r + 1) as u8).pow(c));
        let inv = m.inverted().unwrap();
        prop_assert_eq!(m.multiply(&inv), Matrix::identity(size));
    }

    #[test]
    fn any_k_of_n_recovers_data(
        seed in any::<u64>(),
        nk_idx in 0usize..5,
        len in 1usize..64,
        construction in prop_oneof![
            Just(CodeConstruction::Vandermonde),
            Just(CodeConstruction::Cauchy)
        ],
    ) {
        // The paper's coding schemes.
        let (n, k) = [(4, 2), (8, 6), (12, 9), (16, 12), (12, 10)][nk_idx];
        let rs = ReedSolomon::new(CodeParams::new(n, k).unwrap(), construction).unwrap();

        // Deterministic pseudo-random data from the seed.
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let data: Vec<Vec<u8>> = (0..k)
            .map(|_| (0..len).map(|_| next() as u8).collect())
            .collect();
        let parity = rs.encode_parity(&data).unwrap();
        let mut stripe = data.clone();
        stripe.extend(parity);

        // Pick a pseudo-random k-subset of shard indices.
        let mut indices: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (next() as usize) % (i + 1);
            indices.swap(i, j);
        }
        indices.truncate(k);
        let survivors: Vec<(usize, Vec<u8>)> =
            indices.iter().map(|&i| (i, stripe[i].clone())).collect();

        prop_assert_eq!(rs.decode_data(&survivors).unwrap(), data);

        // Borrowed survivors must decode identically to owned ones.
        let borrowed: Vec<(usize, &[u8])> =
            survivors.iter().map(|(i, s)| (*i, s.as_slice())).collect();
        prop_assert_eq!(rs.decode_data(&borrowed).unwrap(), data);

        // Every shard (data or parity) is reconstructible from the
        // subset, via both the allocating and buffer-reusing forms
        // (the latter exercises the single-row reconstruction path).
        let mut scratch = vec![0xEEu8; 3];
        for (target, expect) in stripe.iter().enumerate() {
            prop_assert_eq!(&rs.reconstruct_shard(&survivors, target).unwrap(), expect);
            rs.reconstruct_shard_into(&borrowed, target, &mut scratch).unwrap();
            prop_assert_eq!(&scratch, expect);
        }
    }

    #[test]
    fn file_split_group_preserves_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
        block_size in 1usize..64,
        k in 1usize..6,
    ) {
        let blocks = split_into_blocks(&bytes, block_size);
        let stripes = group_into_stripes(&blocks, k);
        let reassembled: Vec<u8> = stripes
            .iter()
            .flat_map(|s| s.iter().flatten().copied())
            .collect();
        prop_assert_eq!(&reassembled[..bytes.len()], &bytes[..]);
        prop_assert!(reassembled[bytes.len()..].iter().all(|&b| b == 0));
        if !bytes.is_empty() {
            let expected_blocks = bytes.len().div_ceil(block_size);
            prop_assert_eq!(blocks.len(), expected_blocks);
            prop_assert_eq!(stripes.len(), expected_blocks.div_ceil(k));
        }
    }

    #[test]
    fn verify_accepts_encodings_and_rejects_bit_flips(
        seed in any::<u64>(),
        flip_pos in 0usize..64,
    ) {
        let codec = StripeCodec::new(CodeParams::new(6, 4).unwrap()).unwrap();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let natives: Vec<Vec<u8>> = (0..4).map(|_| (0..16).map(|_| next() as u8).collect()).collect();
        let mut stripe = codec.encode(&natives).unwrap();
        prop_assert!(codec.verify(&stripe).unwrap());
        let shard = flip_pos % 6;
        let byte = flip_pos % 16;
        stripe[shard][byte] ^= 0x01;
        prop_assert!(!codec.verify(&stripe).unwrap());
    }
}

proptest! {
    #[test]
    fn lrc_local_repair_recovers_every_block(
        seed in any::<u64>(),
        shape_idx in 0usize..4,
        len in 1usize..64,
    ) {
        use erasure::lrc::LrcParams;
        let (k, l, r) = [(12, 2, 2), (6, 2, 2), (12, 3, 2), (8, 4, 1)][shape_idx];
        let lrc = LrcParams::new(k, l, r).unwrap().codec().unwrap();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let data: Vec<Vec<u8>> = (0..k)
            .map(|_| (0..len).map(|_| next() as u8).collect())
            .collect();
        let stripe = lrc.encode(&data).unwrap();
        prop_assert!(lrc.verify(&stripe).unwrap());
        for (target, expect) in data.iter().enumerate() {
            let group = lrc.local_repair_group(target);
            prop_assert_eq!(group.len(), k / l, "k/l reads");
            let survivors: Vec<(usize, Vec<u8>)> =
                group.iter().map(|&i| (i, stripe[i].clone())).collect();
            prop_assert_eq!(&lrc.reconstruct_local(&survivors, target).unwrap(), expect);
        }
    }

    #[test]
    fn lrc_detects_any_single_corruption(
        seed in any::<u64>(),
        shard in 0usize..10,
        byte in 0usize..16,
    ) {
        use erasure::lrc::LrcParams;
        let lrc = LrcParams::new(6, 2, 2).unwrap().codec().unwrap();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let data: Vec<Vec<u8>> = (0..6).map(|_| (0..16).map(|_| next() as u8).collect()).collect();
        let mut stripe = lrc.encode(&data).unwrap();
        stripe[shard % 10][byte] ^= 0x40;
        prop_assert!(!lrc.verify(&stripe).unwrap());
    }

    #[test]
    fn parity_delta_update_equals_reencode(
        seed in any::<u64>(),
        idx in 0usize..6,
        len in 1usize..32,
    ) {
        let rs = ReedSolomon::new(
            CodeParams::new(9, 6).unwrap(),
            CodeConstruction::Vandermonde,
        )
        .unwrap();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut data: Vec<Vec<u8>> = (0..6).map(|_| (0..len).map(|_| next() as u8).collect()).collect();
        let mut parity = rs.encode_parity(&data).unwrap();
        let old = data[idx].clone();
        let new: Vec<u8> = (0..len).map(|_| next() as u8).collect();
        rs.update_parity(&mut parity, idx, &old, &new).unwrap();
        data[idx] = new;
        prop_assert_eq!(parity, rs.encode_parity(&data).unwrap());
    }
}
