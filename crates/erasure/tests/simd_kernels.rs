//! Bit-identity pinning for every kernel tier the host supports.
//!
//! Each tier reachable through `erasure::simd::all_supported()` (GFNI,
//! AVX2, SSSE3, NEON — whatever the host has — plus the scalar
//! fallback) is compared byte-for-byte against the `gf256::*_ref`
//! log/antilog oracles across all 256 coefficients, lengths spanning
//! the vector body and odd tails, and deliberately misaligned slices.
//! A CI job re-runs this whole file (and the rest of the crate's
//! tests) under `ERASURE_FORCE_SCALAR=1`, so the dispatch override and
//! the fallback stay covered on SIMD hosts too.

use erasure::gf256::{mul_acc_slice_ref, mul_slice_ref, Gf256};
use erasure::simd::{active, all_supported, scalar, Kernels, Term};
use proptest::prelude::*;

/// Deterministic pseudo-random bytes (xorshift64*), so failures
/// reproduce without a seed file.
fn fill_bytes(buf: &mut [u8], mut state: u64) {
    state |= 1;
    for b in buf.iter_mut() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *b = state as u8;
    }
}

/// Lengths covering empty input, sub-vector tails, every vector width
/// in play (16/32/64), off-by-one straddles, and multi-block bodies.
const LENGTHS: &[usize] = &[
    0, 1, 2, 7, 8, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 127, 128, 129, 255, 256, 257, 511,
    1024, 4095, 4096, 4097,
];

fn assert_tier_matches(k: &Kernels, coeff: Gf256, src: &[u8], fill: u8) {
    let mut acc_got = vec![fill; src.len()];
    let mut acc_want = acc_got.clone();
    k.mul_acc_slice(&mut acc_got, src, coeff);
    mul_acc_slice_ref(&mut acc_want, src, coeff);
    assert_eq!(
        acc_got,
        acc_want,
        "{} mul_acc coeff={coeff} len={}",
        k.name(),
        src.len()
    );

    let mut dst_got = vec![fill; src.len()];
    let mut dst_want = vec![fill; src.len()];
    k.mul_slice(&mut dst_got, src, coeff);
    mul_slice_ref(&mut dst_want, src, coeff);
    assert_eq!(
        dst_got,
        dst_want,
        "{} mul_slice coeff={coeff} len={}",
        k.name(),
        src.len()
    );

    let mut inp_got = src.to_vec();
    k.mul_slice_in_place(&mut inp_got, coeff);
    assert_eq!(
        inp_got,
        dst_want,
        "{} mul_slice_in_place coeff={coeff} len={}",
        k.name(),
        src.len()
    );
}

#[test]
fn every_tier_matches_reference_for_all_256_coefficients() {
    // 4097 bytes: many whole vectors of every width plus an odd tail.
    let mut src = vec![0u8; 4097];
    fill_bytes(&mut src, 0x9e3779b97f4a7c15);
    for k in all_supported() {
        for c in 0..=255u8 {
            assert_tier_matches(k, Gf256::new(c), &src, 0xA5);
        }
    }
}

#[test]
fn every_tier_matches_reference_across_lengths_and_alignments() {
    let mut backing = vec![0u8; 8192];
    fill_bytes(&mut backing, 0x0123_4567_89ab_cdef);
    // Offsets 0..8 de-align the slice start from every vector width;
    // Vec allocations are at least 8/16-byte aligned, so offset 1 (for
    // example) guarantees a misaligned head for all tiers.
    let coeffs = [2u8, 3, 0x1D, 0x53, 0x8E, 0xCA, 0xFF];
    for k in all_supported() {
        for &len in LENGTHS {
            for offset in 0..8usize {
                let src = &backing[offset..offset + len];
                for c in coeffs {
                    assert_tier_matches(k, Gf256::new(c), src, 0x3C);
                }
            }
        }
    }
}

#[test]
fn every_tier_fused_multi_matches_sequential_reference() {
    let nsrc = 10; // a (12,10) decode's source count
    let mut backing = vec![0u8; nsrc * 8192];
    fill_bytes(&mut backing, 0xfeed_f00d_dead_beef);
    let sources: Vec<&[u8]> = backing.chunks_exact(8192).collect();
    // Coefficients deliberately include 0 (skipped term) and 1 (XOR
    // fast path) alongside general values.
    let coeffs = [0u8, 1, 2, 0x1D, 0x53, 0x8E, 0xCA, 0xFF, 3, 7];
    for k in all_supported() {
        for &len in &[0usize, 1, 63, 64, 65, 4095, 4096, 4097, 8000] {
            let terms: Vec<Term<'_>> = coeffs
                .iter()
                .zip(&sources)
                .map(|(&c, s)| (Gf256::new(c), &s[..len]))
                .collect();
            let mut got = vec![0x5Au8; len];
            let mut want = got.clone();
            k.mul_acc_multi(&mut got, &terms);
            for &(c, s) in &terms {
                mul_acc_slice_ref(&mut want, s, c);
            }
            assert_eq!(got, want, "{} mul_acc_multi len={len}", k.name());
        }
    }
}

#[test]
fn dispatch_honors_force_scalar_env() {
    // CI runs the whole suite once with ERASURE_FORCE_SCALAR=1; this
    // test asserts the override actually reached the dispatcher. In a
    // normal run it only asserts the active tier is a supported one.
    let forced =
        std::env::var_os("ERASURE_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0");
    if forced {
        assert_eq!(active().name(), "scalar");
    }
    assert!(
        all_supported().iter().any(|k| k.name() == active().name()),
        "active tier {} not in supported set",
        active().name()
    );
    assert_eq!(scalar().name(), "scalar");
}

#[test]
fn kernels_panic_on_length_mismatch() {
    let k = scalar();
    let src = [0u8; 4];
    let result = std::panic::catch_unwind(|| {
        let mut dst = [0u8; 3];
        k.mul_acc_slice(&mut dst, &src, Gf256::new(2));
    });
    assert!(result.is_err(), "length mismatch must panic");
}

proptest! {
    // Randomized cross-check on top of the systematic sweeps above:
    // arbitrary coefficient/length/offset/fill for every supported
    // tier, including the multi-source kernel against a sequential
    // reference accumulation.
    #[test]
    fn proptest_all_tiers_match_reference(
        coeff in any::<u8>(),
        len in 0usize..4200,
        offset in 0usize..8,
        fill in any::<u8>(),
        seed in any::<u64>(),
        c2 in any::<u8>(),
        c3 in any::<u8>(),
    ) {
        let mut backing = vec![0u8; 3 * (len + offset) + 3];
        fill_bytes(&mut backing, seed);
        let (a, rest) = backing.split_at(len + offset + 1);
        let (b, c) = rest.split_at(len + offset + 1);
        let s1 = &a[offset..offset + len];
        let s2 = &b[offset..offset + len];
        let s3 = &c[offset..offset + len];
        let coeff = Gf256::new(coeff);
        for k in all_supported() {
            let mut acc_got = vec![fill; len];
            let mut acc_want = acc_got.clone();
            k.mul_acc_slice(&mut acc_got, s1, coeff);
            mul_acc_slice_ref(&mut acc_want, s1, coeff);
            prop_assert_eq!(&acc_got, &acc_want, "{} mul_acc", k.name());

            let mut dst_got = vec![fill; len];
            let mut dst_want = vec![fill; len];
            k.mul_slice(&mut dst_got, s1, coeff);
            mul_slice_ref(&mut dst_want, s1, coeff);
            prop_assert_eq!(&dst_got, &dst_want, "{} mul_slice", k.name());

            let mut inp = s1.to_vec();
            k.mul_slice_in_place(&mut inp, coeff);
            prop_assert_eq!(&inp, &dst_want, "{} in_place", k.name());

            let terms = [
                (coeff, s1),
                (Gf256::new(c2), s2),
                (Gf256::new(c3), s3),
            ];
            let mut multi_got = vec![fill; len];
            let mut multi_want = multi_got.clone();
            k.mul_acc_multi(&mut multi_got, &terms);
            for &(tc, ts) in &terms {
                mul_acc_slice_ref(&mut multi_want, ts, tc);
            }
            prop_assert_eq!(&multi_got, &multi_want, "{} mul_acc_multi", k.name());
        }
    }
}
