//! The discrete event MapReduce engine.
//!
//! One [`Engine`] owns a placed [`BlockStore`], a failure-mode
//! [`ClusterState`], a [`netsim::Network`] and a FIFO job queue, and
//! replays the paper's simulator flow: slaves heartbeat the master every
//! 3 s; the master answers with task assignments chosen by the pluggable
//! [`MapScheduler`]; map tasks fetch their input (a network flow for
//! rack-local/remote tasks, `k` parallel flows for degraded tasks),
//! process for a sampled duration, and feed shuffle flows to reducers;
//! reducers process once every map's intermediate output has arrived.

use std::collections::BTreeMap;

use cluster::{
    ClusterState, FailureEventKind, FailureScenario, FailureTimeline, NodeId, NodeSpeeds,
    SpeedProfile, TimelineEvent, Topology,
};
use ecstore::placement::{PlacementError, PlacementPolicy};
use ecstore::{
    BlockStore, DegradedReadError, DegradedReadPlan, FetchPolicy, SourceSelection, StripeLayout,
};
use erasure::CodeParams;
use netsim::{FlowId, FlowLogEntry, FlowLogKind, NetConfig, Network};
use obs::event::{DegradedPhase, LinkSet, SimEvent};
use obs::sink::{EventSink, Recorder};
use simkit::calendar::Calendar;
use simkit::time::{SimDuration, SimTime};
use simkit::SimRng;

use crate::job::{JobId, JobSpec, MapLocality, MapTaskId};
use crate::metrics::{JobResult, RunResult, TaskDetail, TaskRecord};
use crate::sched::{Heartbeat, MapScheduler};

/// Maps the engine's locality to the observation vocabulary.
fn obs_locality(locality: MapLocality) -> obs::event::Locality {
    match locality {
        MapLocality::NodeLocal => obs::event::Locality::NodeLocal,
        MapLocality::RackLocal => obs::event::Locality::RackLocal,
        MapLocality::Remote => obs::event::Locality::Remote,
        MapLocality::Degraded => obs::event::Locality::Degraded,
    }
}

/// Converts one netsim flow-log entry into the trace vocabulary.
fn flow_log_event(entry: &FlowLogEntry) -> SimEvent {
    let flow = entry.flow.as_u64();
    match entry.kind {
        FlowLogKind::Started {
            src,
            dst,
            bytes,
            route,
        } => SimEvent::FlowStarted {
            flow,
            src: src as u32,
            dst: dst as u32,
            bytes,
            links: LinkSet::from_slice(route.as_slice()),
        },
        FlowLogKind::RateChanged { rate_bps } => SimEvent::FlowRate { flow, rate_bps },
        FlowLogKind::Finished { cancelled } => SimEvent::FlowFinished { flow, cancelled },
    }
}

/// Tunables shared by every experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineConfig {
    /// Slave heartbeat period (paper: 3 s).
    pub heartbeat_period: SimDuration,
    /// Input block size in bytes (paper default: 128 MB; testbed 64 MB).
    pub block_bytes: u64,
    /// Network link capacities.
    pub net: NetConfig,
    /// How degraded reads pick their `k` sources.
    pub source_selection: SourceSelection,
    /// Fraction of a job's maps that must finish before its reducers may
    /// launch (Hadoop's slowstart, default 0.05).
    pub reduce_slowstart: f64,
    /// Lower truncation for sampled task durations.
    pub task_time_floor: SimDuration,
    /// Safety valve: abort after this many events.
    pub max_events: u64,
    /// Send an extra out-of-band heartbeat the moment a task finishes
    /// (Hadoop's `mapreduce.tasktracker.outofband.heartbeat`), so freed
    /// slots refill without waiting for the periodic beat.
    pub oob_heartbeats: bool,
    /// Record rack-downlink utilization over time in the run result
    /// (the paper's "unused network resources" motivation).
    pub log_network_utilization: bool,
    /// Enable speculative execution (Hadoop's straggler mitigation): a
    /// slave with a free slot and no assignable task may launch a backup
    /// copy of the longest-running map; the first copy to finish wins.
    pub speculative: bool,
    /// A running map becomes a speculation candidate once its elapsed
    /// time exceeds this multiple of the job's mean completed-map
    /// runtime.
    pub speculative_threshold: f64,
    /// Blocks a degraded read downloads. `None` = the code's `k`
    /// (conventional RS). Set to a smaller count to model degraded-read
    /// optimized constructions such as Azure's LRC (paper footnote 1) —
    /// e.g. `Some(6)` for LRC(12,2,2)'s local-group repair.
    pub degraded_fetch_blocks: Option<usize>,
    /// Whether degraded reads fetch exactly their quorum or issue
    /// redundant extra fetches and cancel the stragglers once the
    /// quorum completes (the MDS-Queue redundant-request policy).
    pub fetch_policy: FetchPolicy,
    /// Heterogeneous per-node service speeds, sampled once at build on
    /// a dedicated rng stream. `Homogeneous` (the default) draws
    /// nothing, so existing seeds stay byte-identical.
    pub node_speeds: SpeedProfile,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            heartbeat_period: SimDuration::from_secs(3),
            block_bytes: 128 * 1024 * 1024,
            net: NetConfig::gigabit(),
            source_selection: SourceSelection::UniformRandom,
            reduce_slowstart: 0.05,
            task_time_floor: SimDuration::from_millis(100),
            max_events: 50_000_000,
            oob_heartbeats: false,
            log_network_utilization: false,
            speculative: false,
            speculative_threshold: 1.5,
            degraded_fetch_blocks: None,
            fetch_policy: FetchPolicy::Exact,
            node_speeds: SpeedProfile::Homogeneous,
        }
    }
}

impl EngineConfig {
    /// Rejects tunables that would silently corrupt a run: a NaN or
    /// out-of-range `reduce_slowstart` makes the slowstart comparison
    /// permanently false (reducers never launch), a zero
    /// `heartbeat_period` spins the calendar at one instant forever, a
    /// sub-1.0 `speculative_threshold` back-ups tasks that are ahead of
    /// the mean. The engine builder calls this; it is public so callers
    /// can fail fast when assembling configs from user input.
    pub fn validate(&self) -> Result<(), String> {
        if self.heartbeat_period == SimDuration::ZERO {
            return Err("heartbeat_period must be positive".into());
        }
        if self.block_bytes == 0 {
            return Err("block_bytes must be positive".into());
        }
        if !self.reduce_slowstart.is_finite() || !(0.0..=1.0).contains(&self.reduce_slowstart) {
            return Err(format!(
                "reduce_slowstart must be a finite fraction in [0, 1], got {}",
                self.reduce_slowstart
            ));
        }
        if !self.speculative_threshold.is_finite() || self.speculative_threshold < 1.0 {
            return Err(format!(
                "speculative_threshold must be finite and at least 1.0, got {}",
                self.speculative_threshold
            ));
        }
        if self.max_events == 0 {
            return Err("max_events must be positive".into());
        }
        if self.degraded_fetch_blocks == Some(0) {
            return Err("degraded_fetch_blocks must be at least 1".into());
        }
        if self.fetch_policy == (FetchPolicy::Redundant { extra: 0 }) {
            return Err("redundant fetch policy needs extra >= 1 (that is just exact)".into());
        }
        self.node_speeds.validate()?;
        Ok(())
    }
}

/// Errors constructing an [`Engine`].
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// Block placement failed.
    Placement(PlacementError),
    /// The native block count is not a multiple of `k`.
    Layout(String),
    /// A stripe lost more than `n − k` blocks; the file is unreadable.
    DataLoss {
        /// The unrecoverable stripe index.
        stripe: usize,
    },
    /// No jobs were submitted.
    NoJobs,
    /// Jobs have reduce tasks but the cluster has no live reduce slots.
    NoReduceSlots,
    /// A required builder field was not set.
    Missing(&'static str),
    /// An [`EngineConfig`] field is out of range (see
    /// [`EngineConfig::validate`]).
    Config(String),
    /// The failure scenario or timeline references nodes or racks the
    /// topology does not have.
    Failure(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Placement(e) => write!(f, "placement failed: {e}"),
            BuildError::Layout(e) => write!(f, "bad layout: {e}"),
            BuildError::DataLoss { stripe } => {
                write!(
                    f,
                    "stripe {stripe} is unrecoverable under this failure scenario"
                )
            }
            BuildError::NoJobs => write!(f, "no jobs submitted"),
            BuildError::NoReduceSlots => write!(f, "jobs need reduce slots but none are alive"),
            BuildError::Missing(what) => write!(f, "builder field not set: {what}"),
            BuildError::Config(msg) => write!(f, "invalid engine config: {msg}"),
            BuildError::Failure(msg) => write!(f, "invalid failure description: {msg}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Errors during a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The event calendar drained with unfinished jobs (a scheduling
    /// deadlock — e.g. a policy that never assigns some task).
    Stalled {
        /// Simulated time at the stall.
        at: SimTime,
    },
    /// `max_events` exceeded.
    EventBudgetExceeded,
    /// A mid-run failure destroyed a stripe that an unfinished map still
    /// needs (the live counterpart of [`BuildError::DataLoss`]).
    DataLoss {
        /// The unrecoverable stripe index.
        stripe: usize,
        /// When the fatal failure struck.
        at: SimTime,
    },
    /// A degraded read could not be planned mid-run: churn left a
    /// stripe with fewer live survivors than the configured fetch
    /// count. (Build-time validation bounds the count by `n - 1`, but
    /// additional mid-run failures can shrink the survivor set below
    /// that.)
    DegradedPlan {
        /// Why planning failed.
        error: DegradedReadError,
        /// When the failed plan was attempted.
        at: SimTime,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Stalled { at } => {
                write!(f, "simulation stalled at {at} with unfinished jobs")
            }
            RunError::EventBudgetExceeded => write!(f, "event budget exceeded"),
            RunError::DataLoss { stripe, at } => {
                write!(f, "stripe {stripe} became unrecoverable at {at}")
            }
            RunError::DegradedPlan { error, at } => {
                write!(f, "degraded read planning failed at {at}: {error}")
            }
        }
    }
}

impl std::error::Error for RunError {}

#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Event {
    Heartbeat {
        node: NodeId,
        /// Periodic beats reschedule themselves; out-of-band beats do not.
        periodic: bool,
    },
    NetCheck,
    JobArrival(JobId),
    MapDone {
        job: JobId,
        task: MapTaskId,
        speculative: bool,
    },
    ReduceDone {
        job: JobId,
        index: usize,
    },
    /// A scheduled mid-run node failure (from the [`FailureTimeline`]).
    NodeFails(NodeId),
    /// A scheduled mid-run node recovery.
    NodeRecovers(NodeId),
}

/// What a node failure means for one map attempt: untouched, killable
/// (on the dead node or short of its fetch quorum), or merely pruned
/// (a redundant fetch with enough surviving sources to decode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AttemptFate {
    Unaffected,
    Prune,
    Kill,
}

#[derive(Debug, Clone, Copy)]
enum FlowPurpose {
    MapFetch {
        job: JobId,
        task: MapTaskId,
        speculative: bool,
    },
    Shuffle {
        job: JobId,
        reduce: usize,
        /// Which map's intermediate output the flow carries — needed to
        /// invalidate in-flight copies when the output's node fails.
        map: MapTaskId,
    },
}

#[derive(Debug, Clone)]
pub(crate) struct MapRt {
    pub(crate) block: ecstore::BlockRef,
    pub(crate) holder: NodeId,
    pub(crate) degraded: bool,
    pub(crate) assigned_to: Option<NodeId>,
    pub(crate) assigned_at: SimTime,
    pub(crate) input_ready_at: SimTime,
    pub(crate) pending_flows: usize,
    pub(crate) locality: Option<MapLocality>,
    /// Network flows of the primary attempt (for loser cancellation).
    pub(crate) flows: Vec<netsim::FlowId>,
    /// Scheduled completion of the primary attempt.
    pub(crate) proc_event: Option<simkit::EventId>,
    /// The speculative backup attempt, if launched.
    pub(crate) spec: Option<SpecAttempt>,
    /// True once either attempt finished.
    pub(crate) done: bool,
}

/// State of a speculative backup copy of a map task.
#[derive(Debug, Clone)]
pub(crate) struct SpecAttempt {
    pub(crate) node: NodeId,
    pub(crate) assigned_at: SimTime,
    pub(crate) input_ready_at: SimTime,
    pub(crate) pending_flows: usize,
    pub(crate) locality: MapLocality,
    pub(crate) flows: Vec<netsim::FlowId>,
    pub(crate) proc_event: Option<simkit::EventId>,
}

#[derive(Debug, Clone)]
struct RedRt {
    assigned_to: Option<NodeId>,
    assigned_at: SimTime,
    shuffles_done: usize,
    /// Which maps' outputs have arrived (indexed by map task id); the
    /// count in `shuffles_done` is derived from it. Kept per-map so a
    /// node failure can claw back exactly the lost outputs.
    shuffled: Vec<bool>,
    input_ready_at: SimTime,
    processing: bool,
    /// Scheduled completion while processing (for churn cancellation).
    proc_event: Option<simkit::EventId>,
    done: bool,
}

#[derive(Debug)]
pub(crate) struct JobRt {
    pub(crate) id: JobId,
    pub(crate) spec: JobSpec,
    pub(crate) submitted: bool,
    pub(crate) started_at: Option<SimTime>,
    pub(crate) finished_at: Option<SimTime>,
    pub(crate) maps: Vec<MapRt>,
    /// Unassigned normal tasks whose input block lives on each node.
    pub(crate) node_local_pool: Vec<Vec<MapTaskId>>,
    /// Unassigned degraded tasks.
    pub(crate) degraded_pool: Vec<MapTaskId>,
    pub(crate) unassigned_normal: usize,
    pub(crate) launched_maps: usize,
    pub(crate) launched_degraded: usize,
    pub(crate) completed_maps: usize,
    /// Sum of completed map runtimes in seconds (speculation threshold).
    completed_map_runtime_secs: f64,
    reduces: Vec<RedRt>,
    next_reduce: usize,
    completed_reduces: usize,
    /// Reducers whose node failed mid-run, waiting for re-assignment
    /// ahead of never-launched ones (they bypass slowstart — they
    /// already passed it once).
    requeued_reduces: Vec<usize>,
    /// `(map, executing node, runtime secs)` of completed maps, for
    /// late-assigned reducers to fetch from; the runtime lets a node
    /// failure reverse the completion bookkeeping exactly.
    completed_map_outputs: Vec<(MapTaskId, NodeId, f64)>,
}

impl JobRt {
    fn is_finished(&self) -> bool {
        self.finished_at.is_some()
    }

    fn shuffle_bytes_per_reducer(&self, block_bytes: u64) -> u64 {
        if self.spec.num_reduce_tasks == 0 {
            return 0;
        }
        ((self.spec.shuffle_ratio * block_bytes as f64) / self.spec.num_reduce_tasks as f64).round()
            as u64
    }
}

/// Builds an [`Engine`]. See the [crate docs](crate) for an example.
pub struct EngineBuilder<'a> {
    topo: Topology,
    code: Option<(CodeParams, usize)>,
    placement: Option<&'a dyn PlacementPolicy>,
    failure: FailureScenario,
    timeline: FailureTimeline,
    config: EngineConfig,
    seed: u64,
    jobs: Vec<JobSpec>,
}

/// Placement stream label: block placement draws its randomness from
/// a dedicated fork of the seed root (DESIGN.md §9, R1), so placement
/// is a pure function of the seed regardless of what the engine or
/// speed sampling consumes. Values are frozen — goldens replay them.
const PLACEMENT_STREAM: u64 = 1;
/// Engine stream label: the scheduler/engine sampling sequence.
const TASK_STREAM: u64 = 2;
/// Node-speed stream label: heterogeneous speed profiles sample here,
/// so enabling a profile never perturbs placement or task sampling.
const SPEED_STREAM: u64 = 3;

impl<'a> EngineBuilder<'a> {
    /// Sets the `(n, k)` code and the native block count `F`.
    pub fn code(mut self, params: CodeParams, num_native: usize) -> Self {
        self.code = Some((params, num_native));
        self
    }

    /// Sets the placement policy.
    pub fn placement(mut self, policy: &'a dyn PlacementPolicy) -> Self {
        self.placement = Some(policy);
        self
    }

    /// Sets the failure scenario (default: normal mode).
    pub fn failure(mut self, scenario: FailureScenario) -> Self {
        self.failure = scenario;
        self
    }

    /// Sets the mid-run failure timeline (default: no churn). Composes
    /// with [`EngineBuilder::failure`]: the scenario fixes the t=0
    /// state, the timeline changes it while the run is in flight.
    /// Timeline entries at exactly t=0 are folded into the initial
    /// state, so a timeline that only fails nodes at time zero behaves
    /// bit-for-bit like the equivalent scenario.
    pub fn timeline(mut self, timeline: FailureTimeline) -> Self {
        self.timeline = timeline;
        self
    }

    /// Sets the engine configuration.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the run seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds one job to the FIFO queue.
    pub fn job(mut self, spec: JobSpec) -> Self {
        self.jobs.push(spec);
        self
    }

    /// Adds several jobs.
    pub fn jobs(mut self, specs: impl IntoIterator<Item = JobSpec>) -> Self {
        self.jobs.extend(specs);
        self
    }

    /// Builds the engine.
    ///
    /// # Errors
    ///
    /// See [`BuildError`] — notably [`BuildError::DataLoss`] when the
    /// failure scenario destroys a stripe.
    pub fn build(self) -> Result<Engine, BuildError> {
        self.config.validate().map_err(BuildError::Config)?;
        self.failure
            .validate(&self.topo)
            .map_err(|e| BuildError::Failure(e.to_string()))?;
        self.timeline
            .validate(&self.topo)
            .map_err(|e| BuildError::Failure(e.to_string()))?;
        let (params, num_native) = self.code.ok_or(BuildError::Missing("code"))?;
        // A stripe that lost its read target keeps at most n - 1 live
        // blocks, so any larger fetch count can never be satisfied.
        if let Some(fetch) = self.config.degraded_fetch_blocks {
            let ceiling = params.n() - 1;
            if fetch > ceiling {
                return Err(BuildError::Config(format!(
                    "degraded_fetch_blocks {fetch} exceeds the n - 1 = {ceiling} survivor \
                     ceiling of the ({}, {}) code",
                    params.n(),
                    params.k()
                )));
            }
        }
        let policy = self.placement.ok_or(BuildError::Missing("placement"))?;
        if self.jobs.is_empty() {
            return Err(BuildError::NoJobs);
        }
        // Specs may come from replayed (possibly hand-edited) arrival
        // traces, so field validation happens here, not in the builder.
        for (i, spec) in self.jobs.iter().enumerate() {
            spec.validate()
                .map_err(|msg| BuildError::Config(format!("job {i} ({:?}): {msg}", spec.name)))?;
        }
        let layout =
            StripeLayout::new(params, num_native).map_err(|e| BuildError::Layout(e.to_string()))?;
        let mut root = SimRng::seed_from_u64(self.seed);
        let mut placement_rng = root.fork(PLACEMENT_STREAM);
        let rng = root.fork(TASK_STREAM);
        // Speeds get their own stream so enabling a profile never
        // perturbs placement or the engine's sampling sequence;
        // `Homogeneous` draws nothing at all.
        let speeds = self
            .config
            .node_speeds
            .sample(self.topo.num_nodes(), &mut root.fork(SPEED_STREAM));
        let store = BlockStore::place(&self.topo, layout, policy, &mut placement_rng)
            .map_err(BuildError::Placement)?;
        let mut cstate = ClusterState::from_scenario(&self.topo, &self.failure);
        // Timeline entries at t=0 are initial conditions, not mid-run
        // churn: fold them into the starting state (in insertion order)
        // so they behave exactly like the scenario path.
        let mut timeline: Vec<TimelineEvent> = Vec::new();
        for ev in self.timeline.events() {
            if ev.at == SimTime::ZERO {
                match ev.kind {
                    FailureEventKind::Fail => cstate.fail_node(ev.node),
                    FailureEventKind::Recover => cstate.recover_node(ev.node),
                }
            } else {
                timeline.push(*ev);
            }
        }

        // In failure mode every stripe must still be recoverable.
        for s in 0..store.layout().num_stripes() {
            let stripe = ecstore::StripeId(s as u32);
            if !store.is_recoverable(stripe, &cstate) {
                return Err(BuildError::DataLoss { stripe: s });
            }
        }

        let live_reduce_slots: u32 = cstate
            .alive_nodes()
            .iter()
            .map(|&n| self.topo.spec(n).reduce_slots)
            .sum();
        if self.jobs.iter().any(|j| j.num_reduce_tasks > 0) && live_reduce_slots == 0 {
            return Err(BuildError::NoReduceSlots);
        }

        let num_nodes = self.topo.num_nodes();
        let jobs: Vec<JobRt> = self
            .jobs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let id = JobId(i as u32);
                let mut maps = Vec::with_capacity(store.layout().num_native());
                let mut node_local_pool = vec![Vec::new(); num_nodes];
                let mut degraded_pool = Vec::new();
                for (t, block) in store.layout().native_blocks().enumerate() {
                    let holder = store.node_of(block);
                    let degraded = !cstate.is_alive(holder);
                    if degraded {
                        degraded_pool.push(MapTaskId(t));
                    } else {
                        node_local_pool[holder.index()].push(MapTaskId(t));
                    }
                    maps.push(MapRt {
                        block,
                        holder,
                        degraded,
                        assigned_to: None,
                        assigned_at: SimTime::ZERO,
                        input_ready_at: SimTime::ZERO,
                        pending_flows: 0,
                        locality: None,
                        flows: Vec::new(),
                        proc_event: None,
                        spec: None,
                        done: false,
                    });
                }
                let unassigned_normal = maps.iter().filter(|m| !m.degraded).count();
                let num_maps = maps.len();
                JobRt {
                    id,
                    spec: spec.clone(),
                    submitted: false,
                    started_at: None,
                    finished_at: None,
                    maps,
                    node_local_pool,
                    degraded_pool,
                    unassigned_normal,
                    launched_maps: 0,
                    launched_degraded: 0,
                    completed_maps: 0,
                    completed_map_runtime_secs: 0.0,
                    reduces: vec![
                        RedRt {
                            assigned_to: None,
                            assigned_at: SimTime::ZERO,
                            shuffles_done: 0,
                            shuffled: vec![false; num_maps],
                            input_ready_at: SimTime::ZERO,
                            processing: false,
                            proc_event: None,
                            done: false,
                        };
                        spec.num_reduce_tasks
                    ],
                    next_reduce: 0,
                    completed_reduces: 0,
                    requeued_reduces: Vec::new(),
                    completed_map_outputs: Vec::new(),
                }
            })
            .collect();

        let free_map: Vec<u32> = self
            .topo
            .node_ids()
            .map(|n| {
                if cstate.is_alive(n) {
                    self.topo.spec(n).map_slots
                } else {
                    0
                }
            })
            .collect();
        let free_reduce: Vec<u32> = self
            .topo
            .node_ids()
            .map(|n| {
                if cstate.is_alive(n) {
                    self.topo.spec(n).reduce_slots
                } else {
                    0
                }
            })
            .collect();

        let mut net = Network::new(&self.topo.rack_sizes(), self.config.net);
        if self.config.log_network_utilization {
            net.enable_utilization_log();
        }
        let num_racks = self.topo.num_racks();
        let num_jobs = jobs.len();
        Ok(Engine {
            topo: self.topo,
            store,
            cstate,
            cfg: self.config,
            speeds,
            rng,
            net,
            cal: Calendar::new(),
            now: SimTime::ZERO,
            jobs,
            fifo: Vec::new(),
            free_map,
            free_reduce,
            flow_owner: BTreeMap::new(),
            last_degraded_assign: vec![None; num_racks],
            net_check: None,
            records: Vec::new(),
            events_processed: 0,
            obs_job_started: vec![false; num_jobs],
            timeline,
            hb_active: vec![false; num_nodes],
            fatal: None,
        })
    }
}

/// The discrete event MapReduce simulator. Construct with
/// [`Engine::builder`], consume with [`Engine::run`].
pub struct Engine {
    pub(crate) topo: Topology,
    pub(crate) store: BlockStore,
    pub(crate) cstate: ClusterState,
    pub(crate) cfg: EngineConfig,
    /// Per-node cpu/disk multipliers sampled from `cfg.node_speeds`.
    speeds: NodeSpeeds,
    rng: SimRng,
    net: Network,
    cal: Calendar<Event>,
    pub(crate) now: SimTime,
    pub(crate) jobs: Vec<JobRt>,
    /// Submitted, unfinished jobs in FIFO order.
    pub(crate) fifo: Vec<JobId>,
    pub(crate) free_map: Vec<u32>,
    free_reduce: Vec<u32>,
    flow_owner: BTreeMap<FlowId, FlowPurpose>,
    pub(crate) last_degraded_assign: Vec<Option<SimTime>>,
    net_check: Option<(simkit::EventId, SimTime)>,
    records: Vec<TaskRecord>,
    events_processed: u64,
    /// Jobs whose `JobStarted` trace event has been emitted (tracing only).
    obs_job_started: Vec<bool>,
    /// Mid-run churn still to schedule (t=0 entries were folded into
    /// `cstate` at build time).
    timeline: Vec<TimelineEvent>,
    /// Whether a periodic heartbeat chain is live per node. A beat that
    /// fires on a dead node ends its chain; recovery restarts it only
    /// if no stale chain survived the outage.
    hb_active: Vec<bool>,
    /// A fatal condition detected inside an event handler (mid-run data
    /// loss); the main loop aborts with it after the handler returns.
    fatal: Option<RunError>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("nodes", &self.topo.num_nodes())
            .field("jobs", &self.jobs.len())
            .field("events_processed", &self.events_processed)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Starts building an engine for the given topology.
    pub fn builder<'a>(topo: Topology) -> EngineBuilder<'a> {
        EngineBuilder {
            topo,
            code: None,
            placement: None,
            failure: FailureScenario::none(),
            timeline: FailureTimeline::new(),
            config: EngineConfig::default(),
            seed: 0,
            jobs: Vec::new(),
        }
    }

    /// The placed block store.
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The failure-mode cluster state.
    pub fn cluster_state(&self) -> &ClusterState {
        &self.cstate
    }

    /// Runs the simulation to completion under `scheduler`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Stalled`] if a policy deadlocks the run, or
    /// [`RunError::EventBudgetExceeded`] past `max_events`.
    pub fn run(self, scheduler: Box<dyn MapScheduler>) -> Result<RunResult, RunError> {
        self.run_inner(scheduler, Recorder::off())
    }

    /// Like [`Engine::run`], but streams every structured
    /// [`SimEvent`] of the run into `sink`. The returned
    /// [`RunResult`] is identical to an untraced run with the same
    /// seed and configuration.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::run`].
    pub fn run_traced(
        self,
        scheduler: Box<dyn MapScheduler>,
        sink: &mut dyn EventSink,
    ) -> Result<RunResult, RunError> {
        self.run_inner(scheduler, Recorder::on(sink))
    }

    fn run_inner(
        mut self,
        mut scheduler: Box<dyn MapScheduler>,
        mut rec: Recorder<'_>,
    ) -> Result<RunResult, RunError> {
        if rec.is_enabled() {
            self.net.enable_flow_log();
            for node in self.topo.node_ids() {
                if !self.cstate.is_alive(node) {
                    rec.emit(SimTime::ZERO, || SimEvent::NodeFailed { node: node.0 });
                }
            }
        }
        // Initial heartbeats, de-phased across the period so slaves do
        // not all report at once.
        let alive = self.cstate.alive_nodes();
        let n = alive.len().max(1) as u64;
        for (i, node) in alive.iter().enumerate() {
            let offset = SimDuration::from_micros(
                self.cfg.heartbeat_period.as_micros() * (i as u64 + 1) / n,
            );
            self.hb_active[node.index()] = true;
            self.cal.schedule(
                SimTime::ZERO + offset,
                Event::Heartbeat {
                    node: *node,
                    periodic: true,
                },
            );
        }
        for job in &self.jobs {
            self.cal
                .schedule(job.spec.submit_at, Event::JobArrival(job.id));
        }
        for ev in std::mem::take(&mut self.timeline) {
            let event = match ev.kind {
                FailureEventKind::Fail => Event::NodeFails(ev.node),
                FailureEventKind::Recover => Event::NodeRecovers(ev.node),
            };
            self.cal.schedule(ev.at, event);
        }

        while let Some((t, _, ev)) = self.cal.pop() {
            debug_assert!(t >= self.now, "event time went backwards");
            self.now = t;
            self.events_processed += 1;
            if self.events_processed > self.cfg.max_events {
                return Err(RunError::EventBudgetExceeded);
            }
            match ev {
                Event::Heartbeat { node, periodic } => {
                    self.on_heartbeat(node, periodic, scheduler.as_mut(), &mut rec)
                }
                Event::NetCheck => self.on_net_check(&mut rec),
                Event::JobArrival(job) => {
                    self.jobs[job.index()].submitted = true;
                    self.fifo.push(job);
                    if rec.is_enabled() {
                        let j = &self.jobs[job.index()];
                        let (maps, reduces) = (j.maps.len() as u32, j.spec.num_reduce_tasks as u32);
                        rec.emit(self.now, || SimEvent::JobSubmitted {
                            job: job.0,
                            maps,
                            reduces,
                        });
                        for (idx, m) in self.jobs[job.index()].maps.iter().enumerate() {
                            rec.emit(self.now, || SimEvent::TaskQueued {
                                job: job.0,
                                task: idx as u32,
                                degraded: m.degraded,
                            });
                        }
                    }
                }
                Event::MapDone {
                    job,
                    task,
                    speculative,
                } => self.on_map_done(job, task, speculative, &mut rec),
                Event::ReduceDone { job, index } => self.on_reduce_done(job, index, &mut rec),
                Event::NodeFails(node) => self.on_node_fails(node, &mut rec),
                Event::NodeRecovers(node) => self.on_node_recovers(node, &mut rec),
            }
            if rec.is_enabled() {
                for entry in self.net.take_flow_log() {
                    rec.emit(entry.at, || flow_log_event(&entry));
                }
            }
            if let Some(err) = self.fatal.take() {
                return Err(err);
            }
            if self.jobs.iter().all(|j| j.is_finished()) {
                let makespan = self.now.duration_since(SimTime::ZERO);
                let jobs = self
                    .jobs
                    .iter()
                    .map(|j| JobResult {
                        id: j.id,
                        name: j.spec.name.clone(),
                        submitted_at: j.spec.submit_at,
                        started_at: j.started_at.expect("finished job started"),
                        finished_at: j.finished_at.expect("finished job has end"),
                    })
                    .collect();
                return Ok(RunResult {
                    jobs,
                    tasks: std::mem::take(&mut self.records),
                    makespan,
                    utilization: self.net.utilization_log().to_vec(),
                });
            }
        }
        Err(RunError::Stalled { at: self.now })
    }

    // ---- event handlers ------------------------------------------------

    fn on_heartbeat(
        &mut self,
        slave: NodeId,
        periodic: bool,
        scheduler: &mut dyn MapScheduler,
        rec: &mut Recorder<'_>,
    ) {
        if !self.cstate.is_alive(slave) {
            // The node died after this beat was scheduled. The periodic
            // chain ends here; `on_node_recovers` restarts it unless a
            // still-scheduled beat survived the outage.
            if periodic {
                self.hb_active[slave.index()] = false;
            }
            return;
        }
        let assigned = {
            let mut hb = Heartbeat::new(self, slave);
            scheduler.assign_maps(&mut hb);
            hb.into_assigned()
        };
        for (job, task) in assigned {
            self.start_map_task(job, task, slave, rec);
        }
        self.assign_reduces(slave, rec);
        if self.cfg.speculative {
            self.assign_speculative(slave, rec);
        }
        // Keep the periodic chain alive while any job is unfinished;
        // out-of-band beats are one-shot.
        if periodic && self.jobs.iter().any(|j| !j.is_finished()) {
            self.cal.schedule(
                self.now + self.cfg.heartbeat_period,
                Event::Heartbeat {
                    node: slave,
                    periodic: true,
                },
            );
        }
        self.refresh_net_check();
    }

    fn on_net_check(&mut self, rec: &mut Recorder<'_>) {
        self.net_check = None;
        let finished = self.net.drain_finished(self.now);
        for (flow, _stats) in finished {
            let Some(purpose) = self.flow_owner.remove(&flow) else {
                continue;
            };
            match purpose {
                FlowPurpose::MapFetch {
                    job,
                    task,
                    speculative,
                } => {
                    let ready = {
                        let m = &mut self.jobs[job.index()].maps[task.0];
                        if speculative {
                            let a = m.spec.as_mut().expect("speculative fetch has attempt");
                            debug_assert!(a.pending_flows > 0);
                            a.pending_flows -= 1;
                            a.pending_flows == 0
                        } else {
                            debug_assert!(m.pending_flows > 0);
                            m.pending_flows -= 1;
                            m.pending_flows == 0
                        }
                    };
                    if ready {
                        // Quorum reached: any still-in-flight redundant
                        // fetches are now stragglers — cancel them so
                        // their bandwidth returns to the fair-share pool.
                        self.cancel_straggler_fetches(job, task, speculative, rec);
                        if speculative {
                            self.jobs[job.index()].maps[task.0]
                                .spec
                                .as_mut()
                                .expect("attempt")
                                .input_ready_at = self.now;
                        } else {
                            self.jobs[job.index()].maps[task.0].input_ready_at = self.now;
                        }
                        self.schedule_map_processing(job, task, speculative, rec);
                    }
                }
                FlowPurpose::Shuffle { job, reduce, map } => {
                    let ready = {
                        let j = &mut self.jobs[job.index()];
                        let r = &mut j.reduces[reduce];
                        if !r.shuffled[map.0] {
                            r.shuffled[map.0] = true;
                            r.shuffles_done += 1;
                        }
                        r.shuffles_done == j.maps.len() && !r.processing
                    };
                    if ready {
                        self.start_reduce_processing(job, reduce, rec);
                    }
                }
            }
        }
        self.refresh_net_check();
    }

    fn on_map_done(
        &mut self,
        job: JobId,
        task: MapTaskId,
        speculative: bool,
        rec: &mut Recorder<'_>,
    ) {
        // The attempt that finishes first wins; cancel the loser.
        let (node, degraded, record, loser) = {
            let j = &mut self.jobs[job.index()];
            let m = &mut j.maps[task.0];
            debug_assert!(!m.done, "stale MapDone after a winner");
            m.done = true;
            let (node, assigned_at, input_ready_at, locality) = if speculative {
                let a = m.spec.as_ref().expect("speculative winner exists");
                (a.node, a.assigned_at, a.input_ready_at, a.locality)
            } else {
                (
                    m.assigned_to.expect("completed map was assigned"),
                    m.assigned_at,
                    m.input_ready_at,
                    m.locality.expect("launched map has locality"),
                )
            };
            j.completed_maps += 1;
            let runtime = self.now.duration_since(assigned_at).as_secs_f64();
            j.completed_map_runtime_secs += runtime;
            j.completed_map_outputs.push((task, node, runtime));
            // The losing attempt's resources to release; `pending` flow
            // count tells tracing which phase the loser died in. Either
            // attempt may be absent: a mid-run node failure can kill the
            // primary while the backup survives (and vice versa).
            let loser: Option<(NodeId, usize, Vec<netsim::FlowId>, Option<simkit::EventId>)> =
                if speculative {
                    m.assigned_to.take().map(|n| {
                        (
                            n,
                            m.pending_flows,
                            std::mem::take(&mut m.flows),
                            m.proc_event.take(),
                        )
                    })
                } else {
                    m.spec
                        .take()
                        .map(|a| (a.node, a.pending_flows, a.flows, a.proc_event))
                };
            let record = TaskRecord {
                job,
                detail: TaskDetail::Map {
                    block: m.block,
                    locality,
                },
                node,
                assigned_at,
                input_ready_at,
                completed_at: self.now,
            };
            (node, m.degraded, record, loser)
        };
        if degraded {
            rec.emit(self.now, || SimEvent::PhaseEnd {
                job: job.0,
                task: task.0 as u32,
                node: node.0,
                speculative,
                phase: DegradedPhase::Process,
            });
        }
        let locality = record.map_locality().expect("map record has locality");
        rec.emit(self.now, || SimEvent::MapDone {
            job: job.0,
            task: task.0 as u32,
            node: node.0,
            locality: obs_locality(locality),
            speculative,
        });
        self.records.push(record);
        self.free_map[node.index()] += 1;
        if let Some((loser_node, pending, flows, proc_event)) = loser {
            for flow in flows {
                if self.flow_owner.remove(&flow).is_some() {
                    let _ = self.net.cancel_flow(self.now, flow);
                }
            }
            if let Some(ev) = proc_event {
                self.cal.cancel(ev);
            }
            self.free_map[loser_node.index()] += 1;
            if degraded {
                // The loser's open phase: still fetching if flows were
                // pending, otherwise it had begun processing.
                let phase = if pending > 0 {
                    DegradedPhase::FetchK
                } else {
                    DegradedPhase::Process
                };
                rec.emit(self.now, || SimEvent::PhaseEnd {
                    job: job.0,
                    task: task.0 as u32,
                    node: loser_node.0,
                    speculative: !speculative,
                    phase,
                });
            }
            rec.emit(self.now, || SimEvent::MapCancelled {
                job: job.0,
                task: task.0 as u32,
                node: loser_node.0,
                speculative: !speculative,
            });
        }
        if self.cfg.oob_heartbeats {
            self.cal.schedule(
                self.now,
                Event::Heartbeat {
                    node,
                    periodic: false,
                },
            );
        }

        // Feed assigned reducers with this map's output (batched: one
        // rate reallocation for the whole fan-out). Reducers that are
        // already processing or done — possible only when churn re-ran
        // this map — no longer need it, nor do ones that received a
        // previous copy.
        let bytes = self.jobs[job.index()].shuffle_bytes_per_reducer(self.cfg.block_bytes);
        let reducers: Vec<(usize, NodeId)> = self.jobs[job.index()]
            .reduces
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.done && !r.processing && !r.shuffled[task.0])
            .filter_map(|(i, r)| r.assigned_to.map(|n| (i, n)))
            .collect();
        let specs: Vec<(usize, usize, u64)> = reducers
            .iter()
            .map(|&(_, rnode)| (node.index(), rnode.index(), bytes))
            .collect();
        for (flow, &(reduce, _)) in self
            .net
            .start_flows(self.now, &specs)
            .into_iter()
            .zip(&reducers)
        {
            self.flow_owner.insert(
                flow,
                FlowPurpose::Shuffle {
                    job,
                    reduce,
                    map: task,
                },
            );
        }

        // Map-only jobs finish with their last map.
        let j = &mut self.jobs[job.index()];
        if j.spec.is_map_only() && j.completed_maps == j.maps.len() {
            j.finished_at = Some(self.now);
            self.fifo.retain(|&id| id != job);
            rec.emit(self.now, || SimEvent::JobFinished { job: job.0 });
        }
        self.refresh_net_check();
    }

    fn on_reduce_done(&mut self, job: JobId, index: usize, rec: &mut Recorder<'_>) {
        let record = {
            let j = &mut self.jobs[job.index()];
            let r = &mut j.reduces[index];
            r.done = true;
            r.proc_event = None;
            j.completed_reduces += 1;
            let r = &j.reduces[index];
            TaskRecord {
                job,
                detail: TaskDetail::Reduce { index },
                node: r.assigned_to.expect("completed reduce was assigned"),
                assigned_at: r.assigned_at,
                input_ready_at: r.input_ready_at,
                completed_at: self.now,
            }
        };
        let node = record.node;
        rec.emit(self.now, || SimEvent::ReduceDone {
            job: job.0,
            index: index as u32,
            node: node.0,
        });
        self.records.push(record);
        self.free_reduce[node.index()] += 1;
        if self.cfg.oob_heartbeats {
            self.cal.schedule(
                self.now,
                Event::Heartbeat {
                    node,
                    periodic: false,
                },
            );
        }
        let j = &mut self.jobs[job.index()];
        if j.completed_reduces == j.reduces.len() {
            j.finished_at = Some(self.now);
            self.fifo.retain(|&id| id != job);
            rec.emit(self.now, || SimEvent::JobFinished { job: job.0 });
        }
    }

    // ---- mid-run churn ---------------------------------------------------

    /// A node drops out mid-run: its slots vanish, every attempt running
    /// on it (or fetching from it) dies, its unassigned node-local tasks
    /// become degraded, reducers on it re-queue, and completed map
    /// outputs stored on it are invalidated (re-running those maps if a
    /// reducer still needs them).
    fn on_node_fails(&mut self, node: NodeId, rec: &mut Recorder<'_>) {
        if !self.cstate.is_alive(node) {
            return; // duplicate timeline entry; already down
        }
        self.cstate.fail_node(node);
        rec.emit(self.now, || SimEvent::NodeFailed { node: node.0 });
        self.free_map[node.index()] = 0;
        self.free_reduce[node.index()] = 0;
        let unfinished: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|j| !j.is_finished())
            .map(|j| j.id)
            .collect();
        for job in unfinished {
            self.fail_unassigned_maps(job, node, rec);
            self.kill_map_attempts(job, node, rec);
            self.kill_reduces(job, node);
            self.invalidate_map_outputs(job, node, rec);
        }
        // An input block that can no longer be reconstructed is fatal:
        // the run cannot finish. (Checked after invalidation, which may
        // have turned completed maps back into pending ones.)
        for j in &self.jobs {
            if j.is_finished() {
                continue;
            }
            for m in &j.maps {
                if !m.done && !self.store.is_recoverable(m.block.stripe, &self.cstate) {
                    self.fatal = Some(RunError::DataLoss {
                        stripe: m.block.stripe.0 as usize,
                        at: self.now,
                    });
                    return;
                }
            }
        }
        self.refresh_net_check();
    }

    /// A node rejoins with its data intact (background repair
    /// re-protected its blocks while it was away): slots come back,
    /// degraded tasks whose input block it holds become node-local
    /// again, and its heartbeat chain restarts.
    fn on_node_recovers(&mut self, node: NodeId, rec: &mut Recorder<'_>) {
        if self.cstate.is_alive(node) {
            return; // duplicate timeline entry; already up
        }
        self.cstate.recover_node(node);
        rec.emit(self.now, || SimEvent::NodeRecovered { node: node.0 });
        self.free_map[node.index()] = self.topo.spec(node).map_slots;
        self.free_reduce[node.index()] = self.topo.spec(node).reduce_slots;
        let now = self.now;
        for i in 0..self.jobs.len() {
            if self.jobs[i].is_finished() {
                continue;
            }
            let (restored, submitted) = {
                let j = &mut self.jobs[i];
                let mut restored = Vec::new();
                let mut keep = Vec::new();
                for task in std::mem::take(&mut j.degraded_pool) {
                    if j.maps[task.0].holder == node {
                        restored.push(task);
                    } else {
                        keep.push(task);
                    }
                }
                j.degraded_pool = keep;
                for &task in &restored {
                    j.maps[task.0].degraded = false;
                    j.node_local_pool[node.index()].push(task);
                    j.unassigned_normal += 1;
                }
                (restored, j.submitted)
            };
            if submitted {
                let job = self.jobs[i].id;
                for task in restored {
                    rec.emit(now, || SimEvent::TaskQueued {
                        job: job.0,
                        task: task.0 as u32,
                        degraded: false,
                    });
                }
            }
        }
        if !self.hb_active[node.index()] && self.jobs.iter().any(|j| !j.is_finished()) {
            self.hb_active[node.index()] = true;
            self.cal.schedule(
                self.now,
                Event::Heartbeat {
                    node,
                    periodic: true,
                },
            );
        }
    }

    /// Unassigned tasks whose input block lived on the failed node can
    /// no longer run node-local: move them to the degraded pool.
    fn fail_unassigned_maps(&mut self, job: JobId, node: NodeId, rec: &mut Recorder<'_>) {
        let now = self.now;
        let (moved, submitted) = {
            let j = &mut self.jobs[job.index()];
            let moved = std::mem::take(&mut j.node_local_pool[node.index()]);
            if moved.is_empty() {
                return;
            }
            j.unassigned_normal -= moved.len();
            for &task in &moved {
                j.maps[task.0].degraded = true;
                j.degraded_pool.push(task);
            }
            (moved, j.submitted)
        };
        if submitted {
            for task in moved {
                rec.emit(now, || SimEvent::TaskQueued {
                    job: job.0,
                    task: task.0 as u32,
                    degraded: true,
                });
            }
        }
    }

    /// Kills every map attempt that ran on the failed node or was
    /// fetching input from it, then re-queues tasks left with no live
    /// attempt.
    fn kill_map_attempts(&mut self, job: JobId, node: NodeId, rec: &mut Recorder<'_>) {
        let num_maps = self.jobs[job.index()].maps.len();
        for t in 0..num_maps {
            let task = MapTaskId(t);
            let (primary_act, spec_act) = {
                let m = &self.jobs[job.index()].maps[t];
                if m.done {
                    (AttemptFate::Unaffected, AttemptFate::Unaffected)
                } else {
                    // An attempt on a live node is doomed if its input
                    // flows from the dead node leave it short of the
                    // completion quorum. A redundant degraded fetch may
                    // still hold enough live sources to decode — prune
                    // the dead flows and let it proceed rather than
                    // cancelling AND requeueing the same task.
                    let classify = |on_dead: bool, flows: &[FlowId], pending: usize| {
                        if on_dead {
                            return AttemptFate::Kill;
                        }
                        let mut dead_inflight = false;
                        let mut live_inflight = 0usize;
                        for &f in flows {
                            match self.net.flow_endpoints(f) {
                                Some((src, _)) if src == node.index() => dead_inflight = true,
                                Some(_) => live_inflight += 1,
                                None => {}
                            }
                        }
                        if !dead_inflight {
                            AttemptFate::Unaffected
                        } else if pending > 0 && live_inflight >= pending {
                            AttemptFate::Prune
                        } else {
                            AttemptFate::Kill
                        }
                    };
                    let primary = if m.assigned_to.is_some() {
                        classify(m.assigned_to == Some(node), &m.flows, m.pending_flows)
                    } else {
                        AttemptFate::Unaffected
                    };
                    let spec = match m.spec.as_ref() {
                        Some(a) => classify(a.node == node, &a.flows, a.pending_flows),
                        None => AttemptFate::Unaffected,
                    };
                    (primary, spec)
                }
            };
            match primary_act {
                AttemptFate::Kill => self.kill_primary(job, task, node, rec),
                AttemptFate::Prune => self.prune_dead_fetches(job, task, false, node),
                AttemptFate::Unaffected => {}
            }
            match spec_act {
                AttemptFate::Kill => self.kill_spec(job, task, node, rec),
                AttemptFate::Prune => self.prune_dead_fetches(job, task, true, node),
                AttemptFate::Unaffected => {}
            }
            if primary_act == AttemptFate::Kill || spec_act == AttemptFate::Kill {
                let m = &self.jobs[job.index()].maps[t];
                if m.assigned_to.is_none() && m.spec.is_none() && !m.done {
                    self.requeue_map(job, task, rec);
                }
            }
        }
    }

    /// Drops an attempt's fetch flows that originate at a dead node
    /// without touching the completion quorum: only call this when
    /// enough live in-flight sources remain to satisfy `pending_flows`
    /// (a redundant over-fetch absorbing the failure). The doomed flows
    /// are cancelled in FlowId order and removed from the attempt's
    /// bookkeeping so a later straggler sweep does not see them again.
    fn prune_dead_fetches(&mut self, job: JobId, task: MapTaskId, speculative: bool, dead: NodeId) {
        let mut doomed: Vec<FlowId> = {
            let m = &self.jobs[job.index()].maps[task.0];
            let flows = if speculative {
                &m.spec.as_ref().expect("speculative attempt exists").flows
            } else {
                &m.flows
            };
            flows
                .iter()
                .copied()
                .filter(|&f| {
                    self.net
                        .flow_endpoints(f)
                        .is_some_and(|(src, _)| src == dead.index())
                })
                .collect()
        };
        doomed.sort_unstable();
        for &flow in &doomed {
            if self.flow_owner.remove(&flow).is_some() {
                let _ = self.net.cancel_flow(self.now, flow);
            }
        }
        let m = &mut self.jobs[job.index()].maps[task.0];
        let flows = if speculative {
            &mut m.spec.as_mut().expect("speculative attempt exists").flows
        } else {
            &mut m.flows
        };
        flows.retain(|f| !doomed.contains(f));
    }

    fn kill_primary(&mut self, job: JobId, task: MapTaskId, dead: NodeId, rec: &mut Recorder<'_>) {
        let now = self.now;
        let (attempt_node, pending, flows, proc_event, degraded) = {
            let m = &mut self.jobs[job.index()].maps[task.0];
            let n = m.assigned_to.take().expect("killing an assigned attempt");
            m.locality = None;
            let pending = std::mem::replace(&mut m.pending_flows, 0);
            (
                n,
                pending,
                std::mem::take(&mut m.flows),
                m.proc_event.take(),
                m.degraded,
            )
        };
        self.cancel_attempt_flows(flows);
        if let Some(ev) = proc_event {
            self.cal.cancel(ev);
        }
        if attempt_node != dead {
            self.free_map[attempt_node.index()] += 1;
        }
        if degraded {
            let phase = if pending > 0 {
                DegradedPhase::FetchK
            } else {
                DegradedPhase::Process
            };
            rec.emit(now, || SimEvent::PhaseEnd {
                job: job.0,
                task: task.0 as u32,
                node: attempt_node.0,
                speculative: false,
                phase,
            });
        }
        rec.emit(now, || SimEvent::MapCancelled {
            job: job.0,
            task: task.0 as u32,
            node: attempt_node.0,
            speculative: false,
        });
    }

    fn kill_spec(&mut self, job: JobId, task: MapTaskId, dead: NodeId, rec: &mut Recorder<'_>) {
        let now = self.now;
        let (a, degraded) = {
            let m = &mut self.jobs[job.index()].maps[task.0];
            (m.spec.take().expect("killing a live backup"), m.degraded)
        };
        self.cancel_attempt_flows(a.flows);
        if let Some(ev) = a.proc_event {
            self.cal.cancel(ev);
        }
        if a.node != dead {
            self.free_map[a.node.index()] += 1;
        }
        if degraded {
            let phase = if a.pending_flows > 0 {
                DegradedPhase::FetchK
            } else {
                DegradedPhase::Process
            };
            rec.emit(now, || SimEvent::PhaseEnd {
                job: job.0,
                task: task.0 as u32,
                node: a.node.0,
                speculative: true,
                phase,
            });
        }
        rec.emit(now, || SimEvent::MapCancelled {
            job: job.0,
            task: task.0 as u32,
            node: a.node.0,
            speculative: true,
        });
    }

    fn cancel_attempt_flows(&mut self, flows: Vec<FlowId>) {
        for flow in flows {
            // Guard: a flow may have completed (and been re-used for a
            // later purpose) between bookkeeping and cancellation.
            if self.flow_owner.remove(&flow).is_some() {
                let _ = self.net.cancel_flow(self.now, flow);
            }
        }
    }

    /// Puts a previously launched (or completed-then-invalidated) map
    /// back in the scheduling pools, re-classifying it against the
    /// current cluster state.
    fn requeue_map(&mut self, job: JobId, task: MapTaskId, rec: &mut Recorder<'_>) {
        let now = self.now;
        let holder = self.jobs[job.index()].maps[task.0].holder;
        let degraded = !self.cstate.is_alive(holder);
        let submitted = {
            let j = &mut self.jobs[job.index()];
            let was_degraded = j.maps[task.0].degraded;
            j.launched_maps -= 1;
            if was_degraded {
                j.launched_degraded -= 1;
            }
            let m = &mut j.maps[task.0];
            m.degraded = degraded;
            m.pending_flows = 0;
            if degraded {
                j.degraded_pool.push(task);
            } else {
                j.node_local_pool[holder.index()].push(task);
                j.unassigned_normal += 1;
            }
            j.submitted
        };
        if submitted {
            rec.emit(now, || SimEvent::TaskQueued {
                job: job.0,
                task: task.0 as u32,
                degraded,
            });
        }
    }

    /// Reducers on the failed node lose everything they shuffled; they
    /// re-queue ahead of never-launched reducers.
    fn kill_reduces(&mut self, job: JobId, node: NodeId) {
        let num_reduces = self.jobs[job.index()].reduces.len();
        for idx in 0..num_reduces {
            {
                let r = &self.jobs[job.index()].reduces[idx];
                if r.done || r.assigned_to != Some(node) {
                    continue;
                }
            }
            // Cancellation order must be deterministic; BTreeMap
            // iteration is already FlowId-sorted.
            let flows: Vec<FlowId> = self
                .flow_owner
                .iter()
                .filter(|(_, p)| {
                    matches!(p, FlowPurpose::Shuffle { job: fj, reduce, .. }
                        if *fj == job && *reduce == idx)
                })
                .map(|(&f, _)| f)
                .collect();
            self.cancel_attempt_flows(flows);
            let j = &mut self.jobs[job.index()];
            let r = &mut j.reduces[idx];
            r.assigned_to = None;
            r.shuffles_done = 0;
            r.shuffled.fill(false);
            r.processing = false;
            if let Some(ev) = r.proc_event.take() {
                self.cal.cancel(ev);
            }
            j.requeued_reduces.push(idx);
        }
    }

    /// Completed map outputs stored on the failed node are gone. If any
    /// reducer still needs them, the maps must run again; reducers that
    /// are already processing (or done) hold their own copy and are
    /// unaffected.
    fn invalidate_map_outputs(&mut self, job: JobId, node: NodeId, rec: &mut Recorder<'_>) {
        let needed = {
            let j = &self.jobs[job.index()];
            j.spec.num_reduce_tasks > 0 && j.reduces.iter().any(|r| !r.done && !r.processing)
        };
        if !needed {
            return;
        }
        let lost: Vec<(MapTaskId, f64)> = {
            let j = &mut self.jobs[job.index()];
            let lost = j
                .completed_map_outputs
                .iter()
                .filter(|&&(_, out, _)| out == node)
                .map(|&(t, _, rt)| (t, rt))
                .collect();
            j.completed_map_outputs.retain(|&(_, out, _)| out != node);
            lost
        };
        for (task, runtime) in lost {
            // In-flight copies of this output can never finish.
            // Cancellation order must be deterministic; BTreeMap
            // iteration is already FlowId-sorted.
            let flows: Vec<FlowId> = self
                .flow_owner
                .iter()
                .filter(|(_, p)| {
                    matches!(p, FlowPurpose::Shuffle { job: fj, map, .. }
                        if *fj == job && *map == task)
                })
                .map(|(&f, _)| f)
                .collect();
            self.cancel_attempt_flows(flows);
            {
                let j = &mut self.jobs[job.index()];
                for r in j.reduces.iter_mut() {
                    if !r.done && !r.processing && r.shuffled[task.0] {
                        r.shuffled[task.0] = false;
                        r.shuffles_done -= 1;
                    }
                }
                // Reverse the completion bookkeeping exactly (the stored
                // runtime keeps the speculation threshold consistent).
                j.completed_maps -= 1;
                j.completed_map_runtime_secs -= runtime;
                let m = &mut j.maps[task.0];
                m.done = false;
                m.assigned_to = None;
                m.spec = None;
                m.locality = None;
                m.pending_flows = 0;
                m.flows.clear();
                m.proc_event = None;
            }
            self.requeue_map(job, task, rec);
        }
    }

    // ---- task launch machinery ------------------------------------------

    fn start_map_task(
        &mut self,
        job: JobId,
        task: MapTaskId,
        slave: NodeId,
        rec: &mut Recorder<'_>,
    ) {
        let locality = self.jobs[job.index()].maps[task.0]
            .locality
            .expect("take_* set locality");
        if rec.is_enabled() && !self.obs_job_started[job.index()] {
            self.obs_job_started[job.index()] = true;
            rec.emit(self.now, || SimEvent::JobStarted { job: job.0 });
        }
        self.start_map_attempt(job, task, slave, locality, false, rec);
    }

    /// Starts one attempt (primary or speculative backup) of a map task:
    /// fetch the input if it is not node-local, then process.
    fn start_map_attempt(
        &mut self,
        job: JobId,
        task: MapTaskId,
        slave: NodeId,
        locality: MapLocality,
        speculative: bool,
        rec: &mut Recorder<'_>,
    ) {
        rec.emit(self.now, || SimEvent::MapLaunched {
            job: job.0,
            task: task.0 as u32,
            node: slave.0,
            locality: obs_locality(locality),
            speculative,
        });
        match locality {
            MapLocality::NodeLocal => {
                self.mark_attempt_ready(job, task, speculative);
                self.schedule_map_processing(job, task, speculative, rec);
            }
            MapLocality::RackLocal | MapLocality::Remote => {
                let holder = self.jobs[job.index()].maps[task.0].holder;
                let flow = self.net.start_flow(
                    self.now,
                    holder.index(),
                    slave.index(),
                    self.fetch_bytes(holder),
                );
                self.flow_owner.insert(
                    flow,
                    FlowPurpose::MapFetch {
                        job,
                        task,
                        speculative,
                    },
                );
                self.set_attempt_pending(job, task, speculative, vec![flow], 1);
            }
            MapLocality::Degraded => {
                let block = self.jobs[job.index()].maps[task.0].block;
                let need = self
                    .cfg
                    .degraded_fetch_blocks
                    .unwrap_or_else(|| self.store.layout().params().k());
                let plan = match self.cfg.fetch_policy {
                    FetchPolicy::Exact => DegradedReadPlan::plan_with_fetch_count(
                        &self.store,
                        &self.topo,
                        &self.cstate,
                        block,
                        slave,
                        self.cfg.source_selection,
                        &mut self.rng,
                        need,
                    ),
                    FetchPolicy::Redundant { extra } => DegradedReadPlan::plan_redundant(
                        &self.store,
                        &self.topo,
                        &self.cstate,
                        block,
                        slave,
                        self.cfg.source_selection,
                        &mut self.rng,
                        need,
                        extra,
                        &self.speeds.disk,
                    ),
                };
                let plan = match plan {
                    Ok(plan) => plan,
                    Err(error) => {
                        // Build-time validation bounds the fetch count,
                        // but mid-run churn can still shrink a stripe's
                        // survivor set below it. Abort cleanly instead
                        // of panicking.
                        self.fatal = Some(RunError::DegradedPlan {
                            error,
                            at: self.now,
                        });
                        return;
                    }
                };
                if rec.is_enabled() {
                    let (local, same_rack, cross_rack) = plan.source_breakdown(&self.topo);
                    rec.emit(self.now, || SimEvent::DegradedPlan {
                        job: job.0,
                        task: task.0 as u32,
                        node: slave.0,
                        local: local as u32,
                        same_rack: same_rack as u32,
                        cross_rack: cross_rack as u32,
                    });
                }
                rec.emit(self.now, || SimEvent::PhaseBegin {
                    job: job.0,
                    task: task.0 as u32,
                    node: slave.0,
                    speculative,
                    phase: DegradedPhase::FetchK,
                });
                let specs: Vec<(usize, usize, u64)> = plan
                    .network_sources()
                    .map(|(_, holder)| (holder.index(), slave.index(), self.fetch_bytes(holder)))
                    .collect();
                let flows = self.net.start_flows(self.now, &specs);
                for &flow in &flows {
                    self.flow_owner.insert(
                        flow,
                        FlowPurpose::MapFetch {
                            job,
                            task,
                            speculative,
                        },
                    );
                }
                // Decode needs `need` source blocks; local ones count
                // immediately, so the quorum of *network* completions is
                // the shortfall. Exact plans fetch precisely the quorum;
                // redundant plans over-fetch and cancel the stragglers
                // when the quorum completes.
                let local = plan.sources.len() - flows.len();
                let pending = need.saturating_sub(local).min(flows.len());
                let extra_issued = flows.len() - pending;
                if extra_issued > 0 {
                    rec.emit(self.now, || SimEvent::RedundantFetchIssued {
                        job: job.0,
                        task: task.0 as u32,
                        node: slave.0,
                        speculative,
                        extra: extra_issued as u32,
                    });
                }
                let none_pending = pending == 0;
                self.set_attempt_pending(job, task, speculative, flows, pending);
                if none_pending {
                    self.cancel_straggler_fetches(job, task, speculative, rec);
                    self.mark_attempt_ready(job, task, speculative);
                    self.schedule_map_processing(job, task, speculative, rec);
                }
            }
        }
        self.refresh_net_check();
    }

    /// Registers an attempt's in-flight fetch flows. `pending` is the
    /// completion quorum: how many of `flows` must finish before the
    /// input is ready. Redundant degraded fetches set `pending` below
    /// `flows.len()`; the surplus flows are stragglers cancelled once
    /// the quorum completes.
    fn set_attempt_pending(
        &mut self,
        job: JobId,
        task: MapTaskId,
        speculative: bool,
        flows: Vec<FlowId>,
        pending: usize,
    ) {
        debug_assert!(pending <= flows.len());
        let m = &mut self.jobs[job.index()].maps[task.0];
        if speculative {
            let a = m.spec.as_mut().expect("speculative attempt exists");
            a.pending_flows = pending;
            a.flows = flows;
        } else {
            m.pending_flows = pending;
            m.flows = flows;
        }
    }

    /// Cancels an attempt's surviving in-flight fetch flows after its
    /// completion quorum was reached. Exact-policy attempts have no
    /// surviving flows at that point, so this is a no-op for them; for
    /// redundant degraded fetches it is the "cancel the stragglers"
    /// half of the fetch-k-of-(k + r) bargain. Cancellation order is
    /// FlowId-sorted for determinism, and `FetchCancelled` is emitted
    /// before the flow log records the cancelled flow so downstream
    /// consumers can attribute the wasted bytes.
    fn cancel_straggler_fetches(
        &mut self,
        job: JobId,
        task: MapTaskId,
        speculative: bool,
        rec: &mut Recorder<'_>,
    ) {
        let (node, mut flows) = {
            let m = &self.jobs[job.index()].maps[task.0];
            if speculative {
                let a = m.spec.as_ref().expect("speculative attempt exists");
                (a.node, a.flows.clone())
            } else {
                (m.assigned_to.expect("attempt is assigned"), m.flows.clone())
            }
        };
        flows.sort_unstable();
        for flow in flows {
            if self.flow_owner.remove(&flow).is_none() {
                continue;
            }
            // An extra that completed at the same instant as the quorum
            // flow is still queued in the current drain batch: it already
            // delivered (and its log entry says so), so there is nothing
            // to cancel — dropping ownership is enough to make its
            // surplus completion a no-op. Only a flow the network really
            // tears down mid-transfer counts as a cancel win.
            if self.net.cancel_flow(self.now, flow).is_some() {
                rec.emit(self.now, || SimEvent::FetchCancelled {
                    job: job.0,
                    task: task.0 as u32,
                    node: node.0,
                    speculative,
                    flow: flow.as_u64(),
                });
            }
        }
        let m = &mut self.jobs[job.index()].maps[task.0];
        if speculative {
            m.spec.as_mut().expect("speculative attempt exists").flows = Vec::new();
        } else {
            m.flows = Vec::new();
        }
    }

    fn mark_attempt_ready(&mut self, job: JobId, task: MapTaskId, speculative: bool) {
        let m = &mut self.jobs[job.index()].maps[task.0];
        if speculative {
            m.spec
                .as_mut()
                .expect("speculative attempt exists")
                .input_ready_at = self.now;
        } else {
            m.input_ready_at = self.now;
        }
    }

    fn schedule_map_processing(
        &mut self,
        job: JobId,
        task: MapTaskId,
        speculative: bool,
        rec: &mut Recorder<'_>,
    ) {
        let (mean, std) = {
            let spec = &self.jobs[job.index()].spec;
            (spec.map_time_mean, spec.map_time_std)
        };
        let node = if speculative {
            self.jobs[job.index()].maps[task.0]
                .spec
                .as_ref()
                .expect("speculative attempt exists")
                .node
        } else {
            self.jobs[job.index()].maps[task.0]
                .assigned_to
                .expect("processing an assigned map")
        };
        if self.jobs[job.index()].maps[task.0].degraded {
            // Input is complete: close the fetch, decode instantaneously
            // (the simulator does not model decode CPU time), process.
            for (phase, begin) in [
                (DegradedPhase::FetchK, false),
                (DegradedPhase::Decode, true),
                (DegradedPhase::Decode, false),
                (DegradedPhase::Process, true),
            ] {
                rec.emit(self.now, || {
                    let (job, task, node) = (job.0, task.0 as u32, node.0);
                    if begin {
                        SimEvent::PhaseBegin {
                            job,
                            task,
                            node,
                            speculative,
                            phase,
                        }
                    } else {
                        SimEvent::PhaseEnd {
                            job,
                            task,
                            node,
                            speculative,
                            phase,
                        }
                    }
                });
            }
        }
        let duration = self.sample_task_time(mean, std, node);
        let ev = self.cal.schedule(
            self.now + duration,
            Event::MapDone {
                job,
                task,
                speculative,
            },
        );
        let m = &mut self.jobs[job.index()].maps[task.0];
        if speculative {
            m.spec
                .as_mut()
                .expect("speculative attempt exists")
                .proc_event = Some(ev);
        } else {
            m.proc_event = Some(ev);
        }
    }

    /// Hadoop-style speculation: when a slave has free slots and the
    /// FIFO head has nothing left to assign, launch a backup copy of the
    /// slowest running map whose elapsed time exceeds
    /// `speculative_threshold x` the job's mean completed-map runtime.
    fn assign_speculative(&mut self, slave: NodeId, rec: &mut Recorder<'_>) {
        while self.free_map[slave.index()] > 0 {
            let mut candidate: Option<(JobId, MapTaskId, f64)> = None;
            for &job in &self.fifo {
                let j = &self.jobs[job.index()];
                if !j.degraded_pool.is_empty() || j.unassigned_normal > 0 {
                    break; // assignable work exists; no speculation yet
                }
                if j.completed_maps == 0 {
                    continue; // no runtime estimate yet
                }
                let mean = j.completed_map_runtime_secs / j.completed_maps as f64;
                let threshold = self.cfg.speculative_threshold * mean;
                for (i, m) in j.maps.iter().enumerate() {
                    if m.done || m.spec.is_some() {
                        continue;
                    }
                    let Some(node) = m.assigned_to else { continue };
                    if node == slave {
                        continue; // back up on a different node
                    }
                    let elapsed = self.now.duration_since(m.assigned_at).as_secs_f64();
                    if elapsed > threshold && candidate.is_none_or(|(_, _, best)| elapsed > best) {
                        candidate = Some((job, MapTaskId(i), elapsed));
                    }
                }
                break; // only the head job speculates, as in FIFO Hadoop
            }
            let Some((job, task, _)) = candidate else {
                break;
            };
            let degraded = self.jobs[job.index()].maps[task.0].degraded;
            let locality = if degraded {
                MapLocality::Degraded
            } else {
                let holder = self.jobs[job.index()].maps[task.0].holder;
                self.classify(holder, slave)
            };
            self.free_map[slave.index()] -= 1;
            self.jobs[job.index()].maps[task.0].spec = Some(SpecAttempt {
                node: slave,
                assigned_at: self.now,
                input_ready_at: self.now,
                pending_flows: 0,
                locality,
                flows: Vec::new(),
                proc_event: None,
            });
            self.start_map_attempt(job, task, slave, locality, true, rec);
        }
    }

    fn start_reduce_processing(&mut self, job: JobId, reduce: usize, rec: &mut Recorder<'_>) {
        let (mean, std) = {
            let spec = &self.jobs[job.index()].spec;
            (spec.reduce_time_mean, spec.reduce_time_std)
        };
        let node = {
            let r = &mut self.jobs[job.index()].reduces[reduce];
            r.processing = true;
            r.input_ready_at = self.now;
            r.assigned_to.expect("processing an assigned reduce")
        };
        rec.emit(self.now, || SimEvent::ReduceShuffled {
            job: job.0,
            index: reduce as u32,
            node: node.0,
        });
        let duration = self.sample_task_time(mean, std, node);
        let ev = self.cal.schedule(
            self.now + duration,
            Event::ReduceDone { job, index: reduce },
        );
        self.jobs[job.index()].reduces[reduce].proc_event = Some(ev);
    }

    fn sample_task_time(
        &mut self,
        mean: SimDuration,
        std: SimDuration,
        node: NodeId,
    ) -> SimDuration {
        let base = self
            .rng
            .normal_duration(mean, std, self.cfg.task_time_floor);
        let speed = self.topo.spec(node).speed_factor * self.speeds.cpu[node.index()];
        SimDuration::from_secs_f64(base.as_secs_f64() / speed)
    }

    /// Bytes to request for a block fetch served by `holder`: a slow
    /// disk (multiplier below 1) stretches the transfer by inflating
    /// the effective size, which the fluid network model turns into a
    /// proportionally longer service time. Shuffle flows are not
    /// scaled — the heterogeneity models block-serving I/O contention.
    fn fetch_bytes(&self, holder: NodeId) -> u64 {
        let disk = self.speeds.disk[holder.index()];
        if disk == 1.0 {
            self.cfg.block_bytes
        } else {
            (self.cfg.block_bytes as f64 / disk).round() as u64
        }
    }

    fn assign_reduces(&mut self, slave: NodeId, rec: &mut Recorder<'_>) {
        while self.free_reduce[slave.index()] > 0 {
            // First FIFO job with a churn-orphaned reducer (these bypass
            // slowstart — they already passed it once) or an unassigned
            // reducer past slowstart.
            let candidate = self.fifo.iter().copied().find(|&id| {
                let j = &self.jobs[id.index()];
                !j.requeued_reduces.is_empty()
                    || (j.next_reduce < j.reduces.len()
                        && (j.completed_maps as f64)
                            >= self.cfg.reduce_slowstart * j.maps.len() as f64)
            });
            let Some(job) = candidate else { break };
            let (reduce, bytes, outputs) = {
                let j = &mut self.jobs[job.index()];
                let reduce = if j.requeued_reduces.is_empty() {
                    let r = j.next_reduce;
                    j.next_reduce += 1;
                    r
                } else {
                    j.requeued_reduces.remove(0)
                };
                let r = &mut j.reduces[reduce];
                r.assigned_to = Some(slave);
                r.assigned_at = self.now;
                let bytes = j.shuffle_bytes_per_reducer(self.cfg.block_bytes);
                (reduce, bytes, j.completed_map_outputs.clone())
            };
            self.free_reduce[slave.index()] -= 1;
            rec.emit(self.now, || SimEvent::ReduceLaunched {
                job: job.0,
                index: reduce as u32,
                node: slave.0,
            });
            // Fetch output of already-completed maps (batched).
            let specs: Vec<(usize, usize, u64)> = outputs
                .iter()
                .map(|&(_, from, _)| (from.index(), slave.index(), bytes))
                .collect();
            for (flow, &(map, _, _)) in self
                .net
                .start_flows(self.now, &specs)
                .into_iter()
                .zip(&outputs)
            {
                self.flow_owner
                    .insert(flow, FlowPurpose::Shuffle { job, reduce, map });
            }
            // A reducer of a job with zero maps shuffled would be ready
            // immediately; jobs always have maps, so nothing to do here.
        }
        self.refresh_net_check();
    }

    fn refresh_net_check(&mut self) {
        let next = self.net.next_completion();
        match (self.net_check, next) {
            (Some((_, at)), Some(want)) if at == want => {}
            (Some((id, _)), Some(want)) => {
                self.cal.cancel(id);
                let id = self.cal.schedule(want, Event::NetCheck);
                self.net_check = Some((id, want));
            }
            (Some((id, _)), None) => {
                self.cal.cancel(id);
                self.net_check = None;
            }
            (None, Some(want)) => {
                let id = self.cal.schedule(want, Event::NetCheck);
                self.net_check = Some((id, want));
            }
            (None, None) => {}
        }
    }

    // ---- scheduler-facing helpers (used by `sched::Heartbeat`) ---------

    pub(crate) fn mark_assigned(&mut self, job: JobId, task: MapTaskId, slave: NodeId) {
        let j = &mut self.jobs[job.index()];
        if j.started_at.is_none() {
            j.started_at = Some(self.now);
        }
        j.launched_maps += 1;
        let m = &mut j.maps[task.0];
        debug_assert!(m.assigned_to.is_none(), "double assignment of {task}");
        m.assigned_to = Some(slave);
        m.assigned_at = self.now;
        self.free_map[slave.index()] -= 1;
    }

    /// Classifies where `holder`'s block sits relative to `slave`.
    pub(crate) fn classify(&self, holder: NodeId, slave: NodeId) -> MapLocality {
        if holder == slave {
            MapLocality::NodeLocal
        } else if self.topo.same_rack(holder, slave) {
            MapLocality::RackLocal
        } else {
            MapLocality::Remote
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::Heartbeat;
    use ecstore::placement::RackAwarePlacement;

    /// Locality-first over all free slots: the engine tests need *some*
    /// policy; the real ones live in the `scheduler` crate.
    struct Greedy;

    impl MapScheduler for Greedy {
        fn assign_maps(&mut self, hb: &mut Heartbeat<'_>) {
            'outer: while hb.free_map_slots() > 0 {
                for job in hb.jobs() {
                    if hb.take_node_local(job).is_some()
                        || hb.take_rack_local(job).is_some()
                        || hb.take_remote(job).is_some()
                        || hb.take_degraded(job).is_some()
                    {
                        continue 'outer;
                    }
                }
                break;
            }
        }

        fn name(&self) -> &'static str {
            "greedy"
        }
    }

    fn base_engine(failure: FailureScenario, seed: u64, spec: JobSpec) -> Engine {
        let topo = Topology::homogeneous(2, 4, 2, 1);
        Engine::builder(topo)
            .code(CodeParams::new(4, 2).unwrap(), 32)
            .placement(&RackAwarePlacement)
            .failure(failure)
            .seed(seed)
            .job(spec)
            .build()
            .unwrap()
    }

    fn map_only_spec(secs: u64) -> JobSpec {
        JobSpec::builder("t")
            .map_time(SimDuration::from_secs(secs), SimDuration::ZERO)
            .map_only()
            .build()
    }

    #[test]
    fn normal_mode_map_only_runtime() {
        // 32 maps, 8 nodes x 2 slots = 16 slots, 10s maps:
        // two waves of processing ≈ 20s (+ heartbeat staggering).
        let engine = base_engine(FailureScenario::none(), 1, map_only_spec(10));
        let result = engine.run(Box::new(Greedy)).unwrap();
        let job = &result.jobs[0];
        let runtime = job.runtime().as_secs_f64();
        assert!((20.0..28.0).contains(&runtime), "runtime {runtime}");
        assert_eq!(result.tasks.len(), 32);
        assert_eq!(result.map_count(MapLocality::Degraded), 0);
        // Mostly node-local in normal mode under a greedy local-first
        // policy; placement balances total (native+parity) blocks, so a
        // few tasks are stolen rack-locally or remotely.
        assert!(result.map_count(MapLocality::NodeLocal) >= 24);
    }

    #[test]
    fn failure_mode_creates_degraded_tasks() {
        let topo = Topology::homogeneous(2, 4, 2, 1);
        let failed = topo.node(0);
        let engine = base_engine(FailureScenario::nodes([failed]), 2, map_only_spec(10));
        let lost = engine
            .store()
            .lost_native_blocks(engine.cluster_state())
            .len();
        assert!(lost > 0, "seeded placement must put natives on node0");
        let result = engine.run(Box::new(Greedy)).unwrap();
        assert_eq!(result.map_count(MapLocality::Degraded), lost);
        // Degraded reads took nonzero time (k=2 block downloads).
        let reads = result.degraded_read_secs();
        assert_eq!(reads.len(), lost);
        assert!(reads.iter().all(|&t| t > 0.0));
        // No task ran on the failed node.
        assert!(result.tasks.iter().all(|t| t.node != failed));
    }

    #[test]
    fn reduce_phase_completes_with_shuffle() {
        let spec = JobSpec::builder("wr")
            .map_time(SimDuration::from_secs(5), SimDuration::ZERO)
            .reduce_time(SimDuration::from_secs(8), SimDuration::ZERO)
            .reduce_tasks(4)
            .shuffle_ratio(0.01)
            .build();
        let engine = base_engine(FailureScenario::none(), 3, spec);
        let result = engine.run(Box::new(Greedy)).unwrap();
        let reduces: Vec<_> = result
            .tasks
            .iter()
            .filter(|t| matches!(t.detail, TaskDetail::Reduce { .. }))
            .collect();
        assert_eq!(reduces.len(), 4);
        // Reducers finish after every map.
        let last_map = result
            .tasks
            .iter()
            .filter(|t| t.map_locality().is_some())
            .map(|t| t.completed_at)
            .max()
            .unwrap();
        assert!(reduces.iter().all(|r| r.completed_at > last_map));
        // Reduce runtime includes shuffle wait + ~8s processing.
        assert!(reduces.iter().all(|r| r.runtime().as_secs_f64() >= 8.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            base_engine(FailureScenario::nodes([NodeId(1)]), seed, map_only_spec(10))
                .run(Box::new(Greedy))
                .unwrap()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must reproduce exactly");
        let c = run(8);
        assert!(a != c || a.makespan != c.makespan, "seeds should differ");
    }

    #[test]
    fn multi_job_fifo_order() {
        let topo = Topology::homogeneous(2, 4, 2, 1);
        let j0 = JobSpec::builder("first")
            .map_time(SimDuration::from_secs(5), SimDuration::ZERO)
            .map_only()
            .build();
        let j1 = JobSpec::builder("second")
            .map_time(SimDuration::from_secs(5), SimDuration::ZERO)
            .map_only()
            .submit_at(SimTime::from_secs(1))
            .build();
        let engine = Engine::builder(topo)
            .code(CodeParams::new(4, 2).unwrap(), 32)
            .placement(&RackAwarePlacement)
            .seed(5)
            .job(j0)
            .job(j1)
            .build()
            .unwrap();
        let result = engine.run(Box::new(Greedy)).unwrap();
        assert_eq!(result.jobs.len(), 2);
        // FIFO: job0 finishes no later than job1.
        assert!(result.jobs[0].finished_at <= result.jobs[1].finished_at);
        assert_eq!(
            result.tasks.iter().filter(|t| t.job == JobId(0)).count(),
            32
        );
        assert_eq!(
            result.tasks.iter().filter(|t| t.job == JobId(1)).count(),
            32
        );
    }

    #[test]
    fn slot_capacity_respected() {
        let engine = base_engine(FailureScenario::none(), 9, map_only_spec(10));
        let result = engine.run(Box::new(Greedy)).unwrap();
        // Reconstruct concurrent occupancy per node from records.
        for node in 0..8u32 {
            let node = NodeId(node);
            let mut events: Vec<(SimTime, i32)> = Vec::new();
            for t in result.tasks.iter().filter(|t| t.node == node) {
                events.push((t.assigned_at, 1));
                events.push((t.completed_at, -1));
            }
            events.sort();
            let mut occupancy = 0;
            for (_, delta) in events {
                occupancy += delta;
                assert!(occupancy <= 2, "node {node} exceeded its 2 map slots");
            }
        }
    }

    #[test]
    fn build_errors() {
        let topo = Topology::homogeneous(2, 4, 2, 1);
        // No jobs.
        let err = Engine::builder(topo.clone())
            .code(CodeParams::new(4, 2).unwrap(), 32)
            .placement(&RackAwarePlacement)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::NoJobs);
        // Missing code.
        let err = Engine::builder(topo.clone())
            .placement(&RackAwarePlacement)
            .job(map_only_spec(1))
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::Missing("code"));
        // Bad layout (not multiple of k).
        let err = Engine::builder(topo.clone())
            .code(CodeParams::new(4, 2).unwrap(), 31)
            .placement(&RackAwarePlacement)
            .job(map_only_spec(1))
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::Layout(_)));
        // Data loss: fail 6 of 8 nodes. Each node appears in only half
        // of the 16 stripes, so some stripe must keep fewer than k = 2
        // survivors.
        let err = Engine::builder(topo.clone())
            .code(CodeParams::new(4, 2).unwrap(), 32)
            .placement(&RackAwarePlacement)
            .failure(FailureScenario::nodes((0..6).map(|i| topo.node(i))))
            .seed(1)
            .job(map_only_spec(1))
            .build()
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, BuildError::DataLoss { .. }), "{err:?}");
    }

    #[test]
    fn double_failure_still_runs() {
        // (8,6) tolerates two failures; 4 racks satisfy the placement
        // constraint (4 racks x parity 2 >= n = 8).
        let topo = Topology::homogeneous(4, 3, 2, 1);
        let engine = Engine::builder(topo.clone())
            .code(CodeParams::new(8, 6).unwrap(), 36)
            .placement(&RackAwarePlacement)
            .failure(FailureScenario::nodes([topo.node(0), topo.node(6)]))
            .seed(4)
            .job(map_only_spec(5))
            .build()
            .unwrap();
        let result = engine.run(Box::new(Greedy)).unwrap();
        assert!(result.map_count(MapLocality::Degraded) > 0);
        assert_eq!(result.tasks.len(), 36);
    }
}

#[cfg(test)]
mod feature_tests {
    use super::*;
    use crate::sched::Heartbeat;
    use ecstore::placement::RackAwarePlacement;

    struct Greedy;

    impl MapScheduler for Greedy {
        fn assign_maps(&mut self, hb: &mut Heartbeat<'_>) {
            'outer: while hb.free_map_slots() > 0 {
                for job in hb.jobs() {
                    if hb.take_node_local(job).is_some()
                        || hb.take_rack_local(job).is_some()
                        || hb.take_remote(job).is_some()
                        || hb.take_degraded(job).is_some()
                    {
                        continue 'outer;
                    }
                }
                break;
            }
        }

        fn name(&self) -> &'static str {
            "greedy"
        }
    }

    fn engine_with(config: EngineConfig, seed: u64) -> Engine {
        let topo = Topology::homogeneous(2, 4, 2, 1);
        Engine::builder(topo.clone())
            .code(CodeParams::new(4, 2).unwrap(), 32)
            .placement(&RackAwarePlacement)
            .failure(FailureScenario::nodes([topo.node(0)]))
            .config(config)
            .seed(seed)
            .job(
                JobSpec::builder("t")
                    .map_time(SimDuration::from_secs(10), SimDuration::ZERO)
                    .map_only()
                    .build(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn oob_heartbeats_never_slow_the_job() {
        let base = EngineConfig::default();
        let oob = EngineConfig {
            oob_heartbeats: true,
            ..base
        };
        for seed in 0..3 {
            let slow = engine_with(base, seed).run(Box::new(Greedy)).unwrap();
            let fast = engine_with(oob, seed).run(Box::new(Greedy)).unwrap();
            assert!(
                fast.jobs[0].runtime() <= slow.jobs[0].runtime(),
                "seed {seed}: OOB {} > periodic {}",
                fast.jobs[0].runtime(),
                slow.jobs[0].runtime()
            );
            assert_eq!(fast.tasks.len(), slow.tasks.len());
        }
    }

    #[test]
    fn traced_run_matches_untraced_and_emits_lifecycle() {
        use obs::event::SimEvent;
        use obs::sink::VecSink;

        let plain = engine_with(EngineConfig::default(), 3)
            .run(Box::new(Greedy))
            .unwrap();
        let mut sink = VecSink::new();
        let traced = engine_with(EngineConfig::default(), 3)
            .run_traced(Box::new(Greedy), &mut sink)
            .unwrap();
        assert_eq!(plain, traced, "tracing must not perturb the run");
        assert!(!sink.events.is_empty());
        // Timestamps are globally non-decreasing.
        for pair in sink.events.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
        }
        let count =
            |pred: &dyn Fn(&SimEvent) -> bool| sink.events.iter().filter(|(_, e)| pred(e)).count();
        // One failed node in this fixture, announced at t=0.
        assert_eq!(count(&|e| matches!(e, SimEvent::NodeFailed { .. })), 1);
        assert_eq!(sink.events[0].0, SimTime::ZERO);
        // 32 maps: every launch completes (no speculation configured).
        assert_eq!(count(&|e| matches!(e, SimEvent::MapLaunched { .. })), 32);
        assert_eq!(count(&|e| matches!(e, SimEvent::MapDone { .. })), 32);
        assert_eq!(count(&|e| matches!(e, SimEvent::MapCancelled { .. })), 0);
        assert_eq!(count(&|e| matches!(e, SimEvent::JobSubmitted { .. })), 1);
        assert_eq!(count(&|e| matches!(e, SimEvent::JobStarted { .. })), 1);
        assert_eq!(count(&|e| matches!(e, SimEvent::JobFinished { .. })), 1);
        assert_eq!(count(&|e| matches!(e, SimEvent::TaskQueued { .. })), 32);
        // Degraded tasks fetch over the network and announce their plans.
        let plans = count(&|e| matches!(e, SimEvent::DegradedPlan { .. }));
        assert!(plans > 0, "failure mode must produce degraded plans");
        assert!(count(&|e| matches!(e, SimEvent::FlowStarted { .. })) > 0);
        assert_eq!(
            count(&|e| matches!(e, SimEvent::FlowStarted { .. })),
            count(&|e| matches!(e, SimEvent::FlowFinished { .. })),
        );
        // Every degraded attempt walks fetch_k -> decode -> process, and
        // begins/ends balance exactly.
        assert_eq!(
            count(&|e| matches!(e, SimEvent::PhaseBegin { .. })),
            count(&|e| matches!(e, SimEvent::PhaseEnd { .. })),
        );
        assert_eq!(
            count(&|e| matches!(
                e,
                SimEvent::PhaseBegin {
                    phase: obs::event::DegradedPhase::FetchK,
                    ..
                }
            )),
            plans
        );
    }

    #[test]
    fn utilization_log_present_only_when_enabled() {
        let off = engine_with(EngineConfig::default(), 1)
            .run(Box::new(Greedy))
            .unwrap();
        assert!(off.utilization.is_empty());

        let on = engine_with(
            EngineConfig {
                log_network_utilization: true,
                ..EngineConfig::default()
            },
            1,
        )
        .run(Box::new(Greedy))
        .unwrap();
        assert!(!on.utilization.is_empty());
        // Samples tile the run without gaps or overlap.
        for pair in on.utilization.windows(2) {
            assert!(pair[0].until <= pair[1].since);
        }
        // Some window saw degraded-read traffic cross a rack downlink.
        assert!(on.utilization.iter().any(|s| s.rack_down_bits > 0.0));
        // Runs are otherwise identical.
        assert_eq!(off.jobs, on.jobs);
        assert_eq!(off.tasks, on.tasks);
    }
}

#[cfg(test)]
mod speculation_tests {
    use super::*;
    use crate::metrics::TaskDetail;
    use crate::sched::Heartbeat;
    use ecstore::placement::RackAwarePlacement;

    struct Greedy;

    impl MapScheduler for Greedy {
        fn assign_maps(&mut self, hb: &mut Heartbeat<'_>) {
            'outer: while hb.free_map_slots() > 0 {
                for job in hb.jobs() {
                    if hb.take_node_local(job).is_some()
                        || hb.take_rack_local(job).is_some()
                        || hb.take_remote(job).is_some()
                        || hb.take_degraded(job).is_some()
                    {
                        continue 'outer;
                    }
                }
                break;
            }
        }

        fn name(&self) -> &'static str {
            "greedy"
        }
    }

    /// A heterogeneous cluster where one node is 10x slower: the classic
    /// straggler setup. Half of the blocks land on fast nodes.
    fn straggler_engine(speculative: bool, seed: u64) -> Engine {
        let topo = Topology::homogeneous(2, 4, 2, 1).with_speed_factor(NodeId(3), 0.1);
        Engine::builder(topo)
            .code(CodeParams::new(4, 2).unwrap(), 32)
            .placement(&RackAwarePlacement)
            .config(EngineConfig {
                speculative,
                ..EngineConfig::default()
            })
            .seed(seed)
            .job(
                JobSpec::builder("straggle")
                    .map_time(SimDuration::from_secs(10), SimDuration::ZERO)
                    .map_only()
                    .build(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn speculation_off_is_the_default_and_changes_nothing() {
        // A run with the flag explicitly off must equal the default.
        let a = straggler_engine(false, 1).run(Box::new(Greedy)).unwrap();
        let b = straggler_engine(false, 1).run(Box::new(Greedy)).unwrap();
        assert_eq!(a, b);
        assert!(!EngineConfig::default().speculative);
    }

    #[test]
    fn speculation_cuts_straggler_tail() {
        for seed in 0..3 {
            let plain = straggler_engine(false, seed).run(Box::new(Greedy)).unwrap();
            let spec = straggler_engine(true, seed).run(Box::new(Greedy)).unwrap();
            // Every block still processed exactly once (one record per map).
            assert_eq!(spec.tasks.len(), plain.tasks.len());
            let mut blocks: Vec<_> = spec
                .tasks
                .iter()
                .filter_map(|t| match t.detail {
                    TaskDetail::Map { block, .. } => Some(block),
                    TaskDetail::Reduce { .. } => None,
                })
                .collect();
            blocks.sort();
            blocks.dedup();
            assert_eq!(blocks.len(), 32, "seed {seed}: a map recorded twice");
            // The job ends no later (backups only help), and with a 10x
            // straggler it should end strictly earlier.
            assert!(
                spec.jobs[0].runtime() <= plain.jobs[0].runtime(),
                "seed {seed}: speculation slowed the job"
            );
        }
        // At least one seed shows a strict improvement.
        let improved = (0..3).any(|seed| {
            let plain = straggler_engine(false, seed).run(Box::new(Greedy)).unwrap();
            let spec = straggler_engine(true, seed).run(Box::new(Greedy)).unwrap();
            spec.jobs[0].runtime() < plain.jobs[0].runtime()
        });
        assert!(improved, "speculation never rescued the straggler");
    }

    #[test]
    fn speculation_respects_slot_capacity() {
        let result = straggler_engine(true, 2).run(Box::new(Greedy)).unwrap();
        // Winner records only; occupancy cannot be reconstructed from
        // records alone under speculation (loser attempts are invisible),
        // but every recorded completion must be on a live node with sane
        // ordering.
        for t in &result.tasks {
            assert!(t.assigned_at <= t.input_ready_at);
            assert!(t.input_ready_at <= t.completed_at);
        }
    }

    #[test]
    fn speculation_is_deterministic() {
        let a = straggler_engine(true, 7).run(Box::new(Greedy)).unwrap();
        let b = straggler_engine(true, 7).run(Box::new(Greedy)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn speculation_works_in_failure_mode() {
        let topo = Topology::homogeneous(2, 4, 2, 1).with_speed_factor(NodeId(3), 0.1);
        let engine = Engine::builder(topo.clone())
            .code(CodeParams::new(4, 2).unwrap(), 32)
            .placement(&RackAwarePlacement)
            .failure(FailureScenario::nodes([topo.node(0)]))
            .config(EngineConfig {
                speculative: true,
                ..EngineConfig::default()
            })
            .seed(5)
            .job(
                JobSpec::builder("sf")
                    .map_time(SimDuration::from_secs(10), SimDuration::ZERO)
                    .map_only()
                    .build(),
            )
            .build()
            .unwrap();
        let result = engine.run(Box::new(Greedy)).unwrap();
        assert_eq!(result.tasks.len(), 32);
        assert!(result.map_count(MapLocality::Degraded) > 0);
        assert!(result.tasks.iter().all(|t| t.node != topo.node(0)));
    }

    /// Straggler cluster on a 10 Mbps network: a backup's remote input
    /// fetch (128 MB ≈ 107 s) outlasts even the 10x-slow primary, so the
    /// primary wins and the loser dies mid-fetch with flows in flight.
    fn slow_net_engine(seed: u64) -> Engine {
        let topo = Topology::homogeneous(2, 4, 2, 1).with_speed_factor(NodeId(3), 0.1);
        Engine::builder(topo)
            .code(CodeParams::new(4, 2).unwrap(), 32)
            .placement(&RackAwarePlacement)
            .config(EngineConfig {
                speculative: true,
                net: netsim::NetConfig::uniform(10_000_000),
                ..EngineConfig::default()
            })
            .seed(seed)
            .job(
                JobSpec::builder("loser")
                    .map_time(SimDuration::from_secs(10), SimDuration::ZERO)
                    .map_only()
                    .build(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn losing_attempt_flows_are_cancelled() {
        use obs::event::SimEvent;
        use obs::sink::VecSink;

        let plain = slow_net_engine(11).run(Box::new(Greedy)).unwrap();
        let mut sink = VecSink::new();
        let traced = slow_net_engine(11)
            .run_traced(Box::new(Greedy), &mut sink)
            .unwrap();
        assert_eq!(plain, traced, "tracing must not perturb the run");
        let count =
            |pred: &dyn Fn(&SimEvent) -> bool| sink.events.iter().filter(|(_, e)| pred(e)).count();
        // At least one backup lost the race mid-fetch...
        let cancelled_maps = count(&|e| matches!(e, SimEvent::MapCancelled { .. }));
        assert!(cancelled_maps > 0, "fixture must produce a losing attempt");
        // ...and its in-flight netsim flows were torn down.
        let cancelled_flows = count(&|e| {
            matches!(
                e,
                SimEvent::FlowFinished {
                    cancelled: true,
                    ..
                }
            )
        });
        assert!(
            cancelled_flows > 0,
            "loser died mid-fetch; flows must cancel"
        );
        // Flow lifecycles still balance: every start has exactly one end.
        assert_eq!(
            count(&|e| matches!(e, SimEvent::FlowStarted { .. })),
            count(&|e| matches!(e, SimEvent::FlowFinished { .. })),
        );
        // Only winners are recorded: each block processed exactly once.
        let mut blocks: Vec<_> = traced
            .tasks
            .iter()
            .filter_map(|t| match t.detail {
                TaskDetail::Map { block, .. } => Some(block),
                TaskDetail::Reduce { .. } => None,
            })
            .collect();
        blocks.sort();
        blocks.dedup();
        assert_eq!(blocks.len(), 32, "a map recorded twice or dropped");
        assert_eq!(traced.tasks.len(), 32);
    }

    #[test]
    fn losing_attempt_golden() {
        // Fixed-seed golden: pins the loser-cancellation path end to end.
        // A behaviour change here is a determinism break — investigate
        // before updating the constant.
        let result = slow_net_engine(11).run(Box::new(Greedy)).unwrap();
        assert_eq!(result.makespan.as_micros(), 470_238_397);
    }
}

#[cfg(test)]
mod churn_tests {
    use super::*;
    use crate::sched::Heartbeat;
    use ecstore::placement::RackAwarePlacement;

    struct Greedy;

    impl MapScheduler for Greedy {
        fn assign_maps(&mut self, hb: &mut Heartbeat<'_>) {
            'outer: while hb.free_map_slots() > 0 {
                for job in hb.jobs() {
                    if hb.take_node_local(job).is_some()
                        || hb.take_rack_local(job).is_some()
                        || hb.take_remote(job).is_some()
                        || hb.take_degraded(job).is_some()
                    {
                        continue 'outer;
                    }
                }
                break;
            }
        }

        fn name(&self) -> &'static str {
            "greedy"
        }
    }

    fn map_only_spec(secs: u64) -> JobSpec {
        JobSpec::builder("t")
            .map_time(SimDuration::from_secs(secs), SimDuration::ZERO)
            .map_only()
            .build()
    }

    fn builder(topo: &Topology) -> EngineBuilder<'static> {
        Engine::builder(topo.clone())
            .code(CodeParams::new(4, 2).unwrap(), 32)
            .placement(&RackAwarePlacement)
    }

    #[test]
    fn timeline_at_zero_equals_scenario() {
        // The t=0 fold: a timeline that fails node0 at time zero must
        // reproduce the scenario path bit-for-bit.
        let topo = Topology::homogeneous(2, 4, 2, 1);
        let via_scenario = builder(&topo)
            .failure(FailureScenario::nodes([topo.node(0)]))
            .seed(2)
            .job(map_only_spec(10))
            .build()
            .unwrap()
            .run(Box::new(Greedy))
            .unwrap();
        let via_timeline = builder(&topo)
            .timeline(FailureTimeline::new().fail_node_at(topo.node(0), SimTime::ZERO))
            .seed(2)
            .job(map_only_spec(10))
            .build()
            .unwrap()
            .run(Box::new(Greedy))
            .unwrap();
        assert_eq!(via_scenario, via_timeline);
    }

    #[test]
    fn zero_time_fail_recover_pair_is_a_no_op() {
        let topo = Topology::homogeneous(2, 4, 2, 1);
        let plain = builder(&topo)
            .seed(3)
            .job(map_only_spec(10))
            .build()
            .unwrap()
            .run(Box::new(Greedy))
            .unwrap();
        let churned = builder(&topo)
            .timeline(
                FailureTimeline::new()
                    .fail_node_at(topo.node(2), SimTime::ZERO)
                    .recover_node_at(topo.node(2), SimTime::ZERO),
            )
            .seed(3)
            .job(map_only_spec(10))
            .build()
            .unwrap()
            .run(Box::new(Greedy))
            .unwrap();
        assert_eq!(plain, churned);
    }

    #[test]
    fn mid_run_failure_requeues_lost_work() {
        // 32 maps of 10 s on 16 slots: two waves, ~20-28 s total. Failing
        // node0 at 12 s kills its second-wave attempts; the work must
        // re-run elsewhere, degraded where node0 held the input block.
        let topo = Topology::homogeneous(2, 4, 2, 1);
        let fail_at = SimTime::from_secs(12);
        let result = builder(&topo)
            .timeline(FailureTimeline::new().fail_node_at(topo.node(0), fail_at))
            .seed(2)
            .job(map_only_spec(10))
            .build()
            .unwrap()
            .run(Box::new(Greedy))
            .unwrap();
        // Every block still processed exactly once.
        assert_eq!(result.tasks.len(), 32);
        let mut blocks: Vec<_> = result
            .tasks
            .iter()
            .filter_map(|t| match t.detail {
                TaskDetail::Map { block, .. } => Some(block),
                TaskDetail::Reduce { .. } => None,
            })
            .collect();
        blocks.sort();
        blocks.dedup();
        assert_eq!(blocks.len(), 32);
        // Survivors picked up node0's blocks as degraded reads.
        assert!(result.map_count(MapLocality::Degraded) > 0);
        // Nothing completed on node0 after it died.
        assert!(result
            .tasks
            .iter()
            .all(|t| t.node != topo.node(0) || t.completed_at <= fail_at));
        // The failure stretched the run past the normal-mode two waves.
        assert!(result.makespan.as_secs_f64() > 20.0);
    }

    #[test]
    fn mid_run_failure_is_deterministic() {
        let topo = Topology::homogeneous(2, 4, 2, 1);
        let run = || {
            builder(&topo)
                .timeline(FailureTimeline::new().fail_node_at(topo.node(0), SimTime::from_secs(12)))
                .seed(6)
                .job(map_only_spec(10))
                .build()
                .unwrap()
                .run(Box::new(Greedy))
                .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn recovery_restores_node_to_service() {
        // Fail node0 early, bring it back mid-run of a long job (30 s
        // maps: the second wave starts right around the recovery): the
        // node must rejoin the heartbeat rotation and take tasks again.
        let topo = Topology::homogeneous(2, 4, 2, 1);
        let recover_at = SimTime::from_secs(30);
        let spec = JobSpec::builder("long")
            .map_time(SimDuration::from_secs(30), SimDuration::ZERO)
            .map_only()
            .build();
        let result = builder(&topo)
            .timeline(
                FailureTimeline::new()
                    .fail_node_at(topo.node(0), SimTime::from_secs(5))
                    .recover_node_at(topo.node(0), recover_at),
            )
            .seed(2)
            .job(spec)
            .build()
            .unwrap()
            .run(Box::new(Greedy))
            .unwrap();
        assert_eq!(result.tasks.len(), 32);
        assert!(
            result
                .tasks
                .iter()
                .any(|t| t.node == topo.node(0) && t.assigned_at >= recover_at),
            "recovered node never ran a task"
        );
    }

    #[test]
    fn reduce_attempts_requeue_on_failure() {
        // Long reducers guarantee some are mid-shuffle or mid-process
        // when a node dies at 40 s; they must finish elsewhere.
        let topo = Topology::homogeneous(2, 4, 2, 1);
        let spec = JobSpec::builder("wr")
            .map_time(SimDuration::from_secs(10), SimDuration::ZERO)
            .reduce_time(SimDuration::from_secs(30), SimDuration::ZERO)
            .reduce_tasks(8)
            .shuffle_ratio(0.05)
            .build();
        let fail_at = SimTime::from_secs(40);
        let result = builder(&topo)
            .timeline(FailureTimeline::new().fail_node_at(topo.node(1), fail_at))
            .seed(4)
            .job(spec)
            .build()
            .unwrap()
            .run(Box::new(Greedy))
            .unwrap();
        let reduces: Vec<_> = result
            .tasks
            .iter()
            .filter(|t| matches!(t.detail, TaskDetail::Reduce { .. }))
            .collect();
        assert_eq!(reduces.len(), 8);
        // No reduce completed on the dead node after the failure.
        assert!(reduces
            .iter()
            .all(|t| t.node != topo.node(1) || t.completed_at <= fail_at));
    }

    #[test]
    fn mid_run_data_loss_is_fatal() {
        // (4,2) tolerates two losses per stripe; killing six of eight
        // nodes mid-run must strand some stripe below k survivors.
        let topo = Topology::homogeneous(2, 4, 2, 1);
        let mut timeline = FailureTimeline::new();
        for i in 0..6 {
            timeline = timeline.fail_node_at(topo.node(i), SimTime::from_secs(5));
        }
        let err = builder(&topo)
            .timeline(timeline)
            .seed(1)
            .job(map_only_spec(100))
            .build()
            .unwrap()
            .run(Box::new(Greedy))
            .unwrap_err();
        match err {
            RunError::DataLoss { at, .. } => assert_eq!(at, SimTime::from_secs(5)),
            other => panic!("expected DataLoss, got {other:?}"),
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let topo = Topology::homogeneous(2, 4, 2, 1);
        let cases = [
            EngineConfig {
                reduce_slowstart: f64::NAN,
                ..EngineConfig::default()
            },
            EngineConfig {
                reduce_slowstart: -0.5,
                ..EngineConfig::default()
            },
            EngineConfig {
                speculative_threshold: 0.5,
                ..EngineConfig::default()
            },
            EngineConfig {
                heartbeat_period: SimDuration::ZERO,
                ..EngineConfig::default()
            },
            EngineConfig {
                degraded_fetch_blocks: Some(0),
                ..EngineConfig::default()
            },
        ];
        for config in cases {
            let err = builder(&topo)
                .config(config)
                .job(map_only_spec(10))
                .build()
                .map(|_| ())
                .unwrap_err();
            assert!(matches!(err, BuildError::Config(_)), "{config:?}: {err:?}");
        }
    }

    #[test]
    fn invalid_job_spec_is_rejected_at_build() {
        let topo = Topology::homogeneous(2, 4, 2, 1);
        let mut spec = map_only_spec(10);
        spec.shuffle_ratio = 2.0; // out of [0, 1], and map-only
        let err = builder(&topo).job(spec).build().map(|_| ()).unwrap_err();
        assert!(matches!(err, BuildError::Config(_)), "{err:?}");
        assert_eq!(
            err.to_string(),
            "invalid engine config: job 0 (\"t\"): \
             shuffle_ratio must be a finite fraction in [0, 1], got 2"
        );
    }

    #[test]
    fn out_of_range_failures_are_rejected() {
        let topo = Topology::homogeneous(2, 4, 2, 1); // nodes 0..8
        let err = builder(&topo)
            .failure(FailureScenario::nodes([NodeId(99)]))
            .job(map_only_spec(10))
            .build()
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, BuildError::Failure(_)), "{err:?}");
        assert!(err.to_string().contains("node99"), "{err}");
        let err = builder(&topo)
            .timeline(FailureTimeline::new().fail_node_at(NodeId(8), SimTime::from_secs(1)))
            .job(map_only_spec(10))
            .build()
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, BuildError::Failure(_)), "{err:?}");
    }

    #[test]
    fn churn_trace_has_balanced_lifecycle() {
        use obs::event::SimEvent;
        use obs::sink::VecSink;

        let topo = Topology::homogeneous(2, 4, 2, 1);
        let mut sink = VecSink::new();
        // Fail at 15 s: the second wave (launched off the ~12.4 s beats)
        // is mid-flight, so node0 has running attempts to kill.
        let engine = builder(&topo)
            .timeline(
                FailureTimeline::new()
                    .fail_node_at(topo.node(0), SimTime::from_secs(15))
                    .recover_node_at(topo.node(0), SimTime::from_secs(30)),
            )
            .seed(2)
            .job(map_only_spec(10))
            .build()
            .unwrap();
        let result = engine.run_traced(Box::new(Greedy), &mut sink).unwrap();
        assert_eq!(result.tasks.len(), 32);
        for pair in sink.events.windows(2) {
            assert!(pair[0].0 <= pair[1].0, "timestamps went backwards");
        }
        let count =
            |pred: &dyn Fn(&SimEvent) -> bool| sink.events.iter().filter(|(_, e)| pred(e)).count();
        assert_eq!(count(&|e| matches!(e, SimEvent::NodeFailed { .. })), 1);
        assert_eq!(count(&|e| matches!(e, SimEvent::NodeRecovered { .. })), 1);
        // Killed attempts announce themselves and their work re-queues:
        // more TaskQueued than tasks, and every kill is visible.
        assert!(count(&|e| matches!(e, SimEvent::MapCancelled { .. })) > 0);
        assert!(count(&|e| matches!(e, SimEvent::TaskQueued { .. })) > 32);
        // Launches balance completions plus cancellations.
        assert_eq!(
            count(&|e| matches!(e, SimEvent::MapLaunched { .. })),
            count(&|e| matches!(e, SimEvent::MapDone { .. }))
                + count(&|e| matches!(e, SimEvent::MapCancelled { .. })),
        );
        // Degraded phases still balance under churn.
        assert_eq!(
            count(&|e| matches!(e, SimEvent::PhaseBegin { .. })),
            count(&|e| matches!(e, SimEvent::PhaseEnd { .. })),
        );
        // Flow lifecycles balance; the kill cancelled at least one flow
        // only if one was in flight — but every start must still end.
        assert_eq!(
            count(&|e| matches!(e, SimEvent::FlowStarted { .. })),
            count(&|e| matches!(e, SimEvent::FlowFinished { .. })),
        );
    }
}
