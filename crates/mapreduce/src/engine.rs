//! The discrete event MapReduce engine.
//!
//! One [`Engine`] owns a placed [`BlockStore`], a failure-mode
//! [`ClusterState`], a [`netsim::Network`] and a FIFO job queue, and
//! replays the paper's simulator flow: slaves heartbeat the master every
//! 3 s; the master answers with task assignments chosen by the pluggable
//! [`MapScheduler`]; map tasks fetch their input (a network flow for
//! rack-local/remote tasks, `k` parallel flows for degraded tasks),
//! process for a sampled duration, and feed shuffle flows to reducers;
//! reducers process once every map's intermediate output has arrived.

use std::collections::HashMap;

use cluster::{ClusterState, FailureScenario, NodeId, Topology};
use ecstore::placement::{PlacementError, PlacementPolicy};
use ecstore::{BlockStore, DegradedReadPlan, SourceSelection, StripeLayout};
use erasure::CodeParams;
use netsim::{FlowId, FlowLogEntry, FlowLogKind, NetConfig, Network};
use obs::event::{DegradedPhase, LinkSet, SimEvent};
use obs::sink::{EventSink, Recorder};
use simkit::calendar::Calendar;
use simkit::time::{SimDuration, SimTime};
use simkit::SimRng;

use crate::job::{JobId, JobSpec, MapLocality, MapTaskId};
use crate::metrics::{JobResult, RunResult, TaskDetail, TaskRecord};
use crate::sched::{Heartbeat, MapScheduler};

/// Maps the engine's locality to the observation vocabulary.
fn obs_locality(locality: MapLocality) -> obs::event::Locality {
    match locality {
        MapLocality::NodeLocal => obs::event::Locality::NodeLocal,
        MapLocality::RackLocal => obs::event::Locality::RackLocal,
        MapLocality::Remote => obs::event::Locality::Remote,
        MapLocality::Degraded => obs::event::Locality::Degraded,
    }
}

/// Converts one netsim flow-log entry into the trace vocabulary.
fn flow_log_event(entry: &FlowLogEntry) -> SimEvent {
    let flow = entry.flow.as_u64();
    match entry.kind {
        FlowLogKind::Started {
            src,
            dst,
            bytes,
            route,
        } => SimEvent::FlowStarted {
            flow,
            src: src as u32,
            dst: dst as u32,
            bytes,
            links: LinkSet::from_slice(route.as_slice()),
        },
        FlowLogKind::RateChanged { rate_bps } => SimEvent::FlowRate { flow, rate_bps },
        FlowLogKind::Finished { cancelled } => SimEvent::FlowFinished { flow, cancelled },
    }
}

/// Tunables shared by every experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineConfig {
    /// Slave heartbeat period (paper: 3 s).
    pub heartbeat_period: SimDuration,
    /// Input block size in bytes (paper default: 128 MB; testbed 64 MB).
    pub block_bytes: u64,
    /// Network link capacities.
    pub net: NetConfig,
    /// How degraded reads pick their `k` sources.
    pub source_selection: SourceSelection,
    /// Fraction of a job's maps that must finish before its reducers may
    /// launch (Hadoop's slowstart, default 0.05).
    pub reduce_slowstart: f64,
    /// Lower truncation for sampled task durations.
    pub task_time_floor: SimDuration,
    /// Safety valve: abort after this many events.
    pub max_events: u64,
    /// Send an extra out-of-band heartbeat the moment a task finishes
    /// (Hadoop's `mapreduce.tasktracker.outofband.heartbeat`), so freed
    /// slots refill without waiting for the periodic beat.
    pub oob_heartbeats: bool,
    /// Record rack-downlink utilization over time in the run result
    /// (the paper's "unused network resources" motivation).
    pub log_network_utilization: bool,
    /// Enable speculative execution (Hadoop's straggler mitigation): a
    /// slave with a free slot and no assignable task may launch a backup
    /// copy of the longest-running map; the first copy to finish wins.
    pub speculative: bool,
    /// A running map becomes a speculation candidate once its elapsed
    /// time exceeds this multiple of the job's mean completed-map
    /// runtime.
    pub speculative_threshold: f64,
    /// Blocks a degraded read downloads. `None` = the code's `k`
    /// (conventional RS). Set to a smaller count to model degraded-read
    /// optimized constructions such as Azure's LRC (paper footnote 1) —
    /// e.g. `Some(6)` for LRC(12,2,2)'s local-group repair.
    pub degraded_fetch_blocks: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            heartbeat_period: SimDuration::from_secs(3),
            block_bytes: 128 * 1024 * 1024,
            net: NetConfig::gigabit(),
            source_selection: SourceSelection::UniformRandom,
            reduce_slowstart: 0.05,
            task_time_floor: SimDuration::from_millis(100),
            max_events: 50_000_000,
            oob_heartbeats: false,
            log_network_utilization: false,
            speculative: false,
            speculative_threshold: 1.5,
            degraded_fetch_blocks: None,
        }
    }
}

/// Errors constructing an [`Engine`].
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// Block placement failed.
    Placement(PlacementError),
    /// The native block count is not a multiple of `k`.
    Layout(String),
    /// A stripe lost more than `n − k` blocks; the file is unreadable.
    DataLoss {
        /// The unrecoverable stripe index.
        stripe: usize,
    },
    /// No jobs were submitted.
    NoJobs,
    /// Jobs have reduce tasks but the cluster has no live reduce slots.
    NoReduceSlots,
    /// A required builder field was not set.
    Missing(&'static str),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Placement(e) => write!(f, "placement failed: {e}"),
            BuildError::Layout(e) => write!(f, "bad layout: {e}"),
            BuildError::DataLoss { stripe } => {
                write!(
                    f,
                    "stripe {stripe} is unrecoverable under this failure scenario"
                )
            }
            BuildError::NoJobs => write!(f, "no jobs submitted"),
            BuildError::NoReduceSlots => write!(f, "jobs need reduce slots but none are alive"),
            BuildError::Missing(what) => write!(f, "builder field not set: {what}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Errors during a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The event calendar drained with unfinished jobs (a scheduling
    /// deadlock — e.g. a policy that never assigns some task).
    Stalled {
        /// Simulated time at the stall.
        at: SimTime,
    },
    /// `max_events` exceeded.
    EventBudgetExceeded,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Stalled { at } => {
                write!(f, "simulation stalled at {at} with unfinished jobs")
            }
            RunError::EventBudgetExceeded => write!(f, "event budget exceeded"),
        }
    }
}

impl std::error::Error for RunError {}

#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Event {
    Heartbeat {
        node: NodeId,
        /// Periodic beats reschedule themselves; out-of-band beats do not.
        periodic: bool,
    },
    NetCheck,
    JobArrival(JobId),
    MapDone {
        job: JobId,
        task: MapTaskId,
        speculative: bool,
    },
    ReduceDone {
        job: JobId,
        index: usize,
    },
}

#[derive(Debug, Clone, Copy)]
enum FlowPurpose {
    MapFetch {
        job: JobId,
        task: MapTaskId,
        speculative: bool,
    },
    Shuffle {
        job: JobId,
        reduce: usize,
    },
}

#[derive(Debug, Clone)]
pub(crate) struct MapRt {
    pub(crate) block: ecstore::BlockRef,
    pub(crate) holder: NodeId,
    pub(crate) degraded: bool,
    pub(crate) assigned_to: Option<NodeId>,
    pub(crate) assigned_at: SimTime,
    pub(crate) input_ready_at: SimTime,
    pub(crate) pending_flows: usize,
    pub(crate) locality: Option<MapLocality>,
    /// Network flows of the primary attempt (for loser cancellation).
    pub(crate) flows: Vec<netsim::FlowId>,
    /// Scheduled completion of the primary attempt.
    pub(crate) proc_event: Option<simkit::EventId>,
    /// The speculative backup attempt, if launched.
    pub(crate) spec: Option<SpecAttempt>,
    /// True once either attempt finished.
    pub(crate) done: bool,
}

/// State of a speculative backup copy of a map task.
#[derive(Debug, Clone)]
pub(crate) struct SpecAttempt {
    pub(crate) node: NodeId,
    pub(crate) assigned_at: SimTime,
    pub(crate) input_ready_at: SimTime,
    pub(crate) pending_flows: usize,
    pub(crate) locality: MapLocality,
    pub(crate) flows: Vec<netsim::FlowId>,
    pub(crate) proc_event: Option<simkit::EventId>,
}

#[derive(Debug, Clone)]
struct RedRt {
    assigned_to: Option<NodeId>,
    assigned_at: SimTime,
    shuffles_done: usize,
    input_ready_at: SimTime,
    processing: bool,
}

#[derive(Debug)]
pub(crate) struct JobRt {
    pub(crate) id: JobId,
    pub(crate) spec: JobSpec,
    pub(crate) submitted: bool,
    pub(crate) started_at: Option<SimTime>,
    pub(crate) finished_at: Option<SimTime>,
    pub(crate) maps: Vec<MapRt>,
    /// Unassigned normal tasks whose input block lives on each node.
    pub(crate) node_local_pool: Vec<Vec<MapTaskId>>,
    /// Unassigned degraded tasks.
    pub(crate) degraded_pool: Vec<MapTaskId>,
    pub(crate) unassigned_normal: usize,
    pub(crate) launched_maps: usize,
    pub(crate) launched_degraded: usize,
    pub(crate) completed_maps: usize,
    /// Sum of completed map runtimes in seconds (speculation threshold).
    completed_map_runtime_secs: f64,
    reduces: Vec<RedRt>,
    next_reduce: usize,
    completed_reduces: usize,
    /// `(map, executing node)` of completed maps, for late-assigned
    /// reducers to fetch from.
    completed_map_outputs: Vec<(MapTaskId, NodeId)>,
}

impl JobRt {
    fn is_finished(&self) -> bool {
        self.finished_at.is_some()
    }

    fn shuffle_bytes_per_reducer(&self, block_bytes: u64) -> u64 {
        if self.spec.num_reduce_tasks == 0 {
            return 0;
        }
        ((self.spec.shuffle_ratio * block_bytes as f64) / self.spec.num_reduce_tasks as f64).round()
            as u64
    }
}

/// Builds an [`Engine`]. See the [crate docs](crate) for an example.
pub struct EngineBuilder<'a> {
    topo: Topology,
    code: Option<(CodeParams, usize)>,
    placement: Option<&'a dyn PlacementPolicy>,
    failure: FailureScenario,
    config: EngineConfig,
    seed: u64,
    jobs: Vec<JobSpec>,
}

impl<'a> EngineBuilder<'a> {
    /// Sets the `(n, k)` code and the native block count `F`.
    pub fn code(mut self, params: CodeParams, num_native: usize) -> Self {
        self.code = Some((params, num_native));
        self
    }

    /// Sets the placement policy.
    pub fn placement(mut self, policy: &'a dyn PlacementPolicy) -> Self {
        self.placement = Some(policy);
        self
    }

    /// Sets the failure scenario (default: normal mode).
    pub fn failure(mut self, scenario: FailureScenario) -> Self {
        self.failure = scenario;
        self
    }

    /// Sets the engine configuration.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the run seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds one job to the FIFO queue.
    pub fn job(mut self, spec: JobSpec) -> Self {
        self.jobs.push(spec);
        self
    }

    /// Adds several jobs.
    pub fn jobs(mut self, specs: impl IntoIterator<Item = JobSpec>) -> Self {
        self.jobs.extend(specs);
        self
    }

    /// Builds the engine.
    ///
    /// # Errors
    ///
    /// See [`BuildError`] — notably [`BuildError::DataLoss`] when the
    /// failure scenario destroys a stripe.
    pub fn build(self) -> Result<Engine, BuildError> {
        let (params, num_native) = self.code.ok_or(BuildError::Missing("code"))?;
        let policy = self.placement.ok_or(BuildError::Missing("placement"))?;
        if self.jobs.is_empty() {
            return Err(BuildError::NoJobs);
        }
        let layout =
            StripeLayout::new(params, num_native).map_err(|e| BuildError::Layout(e.to_string()))?;
        let mut root = SimRng::seed_from_u64(self.seed);
        let mut placement_rng = root.fork(1);
        let rng = root.fork(2);
        let store = BlockStore::place(&self.topo, layout, policy, &mut placement_rng)
            .map_err(BuildError::Placement)?;
        let cstate = ClusterState::from_scenario(&self.topo, &self.failure);

        // In failure mode every stripe must still be recoverable.
        for s in 0..store.layout().num_stripes() {
            let stripe = ecstore::StripeId(s as u32);
            if !store.is_recoverable(stripe, &cstate) {
                return Err(BuildError::DataLoss { stripe: s });
            }
        }

        let live_reduce_slots: u32 = cstate
            .alive_nodes()
            .iter()
            .map(|&n| self.topo.spec(n).reduce_slots)
            .sum();
        if self.jobs.iter().any(|j| j.num_reduce_tasks > 0) && live_reduce_slots == 0 {
            return Err(BuildError::NoReduceSlots);
        }

        let num_nodes = self.topo.num_nodes();
        let jobs: Vec<JobRt> = self
            .jobs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let id = JobId(i as u32);
                let mut maps = Vec::with_capacity(store.layout().num_native());
                let mut node_local_pool = vec![Vec::new(); num_nodes];
                let mut degraded_pool = Vec::new();
                for (t, block) in store.layout().native_blocks().enumerate() {
                    let holder = store.node_of(block);
                    let degraded = !cstate.is_alive(holder);
                    if degraded {
                        degraded_pool.push(MapTaskId(t));
                    } else {
                        node_local_pool[holder.index()].push(MapTaskId(t));
                    }
                    maps.push(MapRt {
                        block,
                        holder,
                        degraded,
                        assigned_to: None,
                        assigned_at: SimTime::ZERO,
                        input_ready_at: SimTime::ZERO,
                        pending_flows: 0,
                        locality: None,
                        flows: Vec::new(),
                        proc_event: None,
                        spec: None,
                        done: false,
                    });
                }
                let unassigned_normal = maps.iter().filter(|m| !m.degraded).count();
                JobRt {
                    id,
                    spec: spec.clone(),
                    submitted: false,
                    started_at: None,
                    finished_at: None,
                    maps,
                    node_local_pool,
                    degraded_pool,
                    unassigned_normal,
                    launched_maps: 0,
                    launched_degraded: 0,
                    completed_maps: 0,
                    completed_map_runtime_secs: 0.0,
                    reduces: vec![
                        RedRt {
                            assigned_to: None,
                            assigned_at: SimTime::ZERO,
                            shuffles_done: 0,
                            input_ready_at: SimTime::ZERO,
                            processing: false,
                        };
                        spec.num_reduce_tasks
                    ],
                    next_reduce: 0,
                    completed_reduces: 0,
                    completed_map_outputs: Vec::new(),
                }
            })
            .collect();

        let free_map: Vec<u32> = self
            .topo
            .node_ids()
            .map(|n| {
                if cstate.is_alive(n) {
                    self.topo.spec(n).map_slots
                } else {
                    0
                }
            })
            .collect();
        let free_reduce: Vec<u32> = self
            .topo
            .node_ids()
            .map(|n| {
                if cstate.is_alive(n) {
                    self.topo.spec(n).reduce_slots
                } else {
                    0
                }
            })
            .collect();

        let mut net = Network::new(&self.topo.rack_sizes(), self.config.net);
        if self.config.log_network_utilization {
            net.enable_utilization_log();
        }
        let num_racks = self.topo.num_racks();
        let num_jobs = jobs.len();
        Ok(Engine {
            topo: self.topo,
            store,
            cstate,
            cfg: self.config,
            rng,
            net,
            cal: Calendar::new(),
            now: SimTime::ZERO,
            jobs,
            fifo: Vec::new(),
            free_map,
            free_reduce,
            flow_owner: HashMap::new(),
            last_degraded_assign: vec![None; num_racks],
            net_check: None,
            records: Vec::new(),
            events_processed: 0,
            obs_job_started: vec![false; num_jobs],
        })
    }
}

/// The discrete event MapReduce simulator. Construct with
/// [`Engine::builder`], consume with [`Engine::run`].
pub struct Engine {
    pub(crate) topo: Topology,
    pub(crate) store: BlockStore,
    pub(crate) cstate: ClusterState,
    pub(crate) cfg: EngineConfig,
    rng: SimRng,
    net: Network,
    cal: Calendar<Event>,
    pub(crate) now: SimTime,
    pub(crate) jobs: Vec<JobRt>,
    /// Submitted, unfinished jobs in FIFO order.
    pub(crate) fifo: Vec<JobId>,
    pub(crate) free_map: Vec<u32>,
    free_reduce: Vec<u32>,
    flow_owner: HashMap<FlowId, FlowPurpose>,
    pub(crate) last_degraded_assign: Vec<Option<SimTime>>,
    net_check: Option<(simkit::EventId, SimTime)>,
    records: Vec<TaskRecord>,
    events_processed: u64,
    /// Jobs whose `JobStarted` trace event has been emitted (tracing only).
    obs_job_started: Vec<bool>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("nodes", &self.topo.num_nodes())
            .field("jobs", &self.jobs.len())
            .field("events_processed", &self.events_processed)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Starts building an engine for the given topology.
    pub fn builder<'a>(topo: Topology) -> EngineBuilder<'a> {
        EngineBuilder {
            topo,
            code: None,
            placement: None,
            failure: FailureScenario::none(),
            config: EngineConfig::default(),
            seed: 0,
            jobs: Vec::new(),
        }
    }

    /// The placed block store.
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The failure-mode cluster state.
    pub fn cluster_state(&self) -> &ClusterState {
        &self.cstate
    }

    /// Runs the simulation to completion under `scheduler`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Stalled`] if a policy deadlocks the run, or
    /// [`RunError::EventBudgetExceeded`] past `max_events`.
    pub fn run(self, scheduler: Box<dyn MapScheduler>) -> Result<RunResult, RunError> {
        self.run_inner(scheduler, Recorder::off())
    }

    /// Like [`Engine::run`], but streams every structured
    /// [`SimEvent`] of the run into `sink`. The returned
    /// [`RunResult`] is identical to an untraced run with the same
    /// seed and configuration.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::run`].
    pub fn run_traced(
        self,
        scheduler: Box<dyn MapScheduler>,
        sink: &mut dyn EventSink,
    ) -> Result<RunResult, RunError> {
        self.run_inner(scheduler, Recorder::on(sink))
    }

    fn run_inner(
        mut self,
        mut scheduler: Box<dyn MapScheduler>,
        mut rec: Recorder<'_>,
    ) -> Result<RunResult, RunError> {
        if rec.is_enabled() {
            self.net.enable_flow_log();
            for node in self.topo.node_ids() {
                if !self.cstate.is_alive(node) {
                    rec.emit(SimTime::ZERO, || SimEvent::NodeFailed { node: node.0 });
                }
            }
        }
        // Initial heartbeats, de-phased across the period so slaves do
        // not all report at once.
        let alive = self.cstate.alive_nodes();
        let n = alive.len().max(1) as u64;
        for (i, node) in alive.iter().enumerate() {
            let offset = SimDuration::from_micros(
                self.cfg.heartbeat_period.as_micros() * (i as u64 + 1) / n,
            );
            self.cal.schedule(
                SimTime::ZERO + offset,
                Event::Heartbeat {
                    node: *node,
                    periodic: true,
                },
            );
        }
        for job in &self.jobs {
            self.cal
                .schedule(job.spec.submit_at, Event::JobArrival(job.id));
        }

        while let Some((t, _, ev)) = self.cal.pop() {
            debug_assert!(t >= self.now, "event time went backwards");
            self.now = t;
            self.events_processed += 1;
            if self.events_processed > self.cfg.max_events {
                return Err(RunError::EventBudgetExceeded);
            }
            match ev {
                Event::Heartbeat { node, periodic } => {
                    self.on_heartbeat(node, periodic, scheduler.as_mut(), &mut rec)
                }
                Event::NetCheck => self.on_net_check(&mut rec),
                Event::JobArrival(job) => {
                    self.jobs[job.index()].submitted = true;
                    self.fifo.push(job);
                    if rec.is_enabled() {
                        let j = &self.jobs[job.index()];
                        let (maps, reduces) = (j.maps.len() as u32, j.spec.num_reduce_tasks as u32);
                        rec.emit(self.now, || SimEvent::JobSubmitted {
                            job: job.0,
                            maps,
                            reduces,
                        });
                        for (idx, m) in self.jobs[job.index()].maps.iter().enumerate() {
                            rec.emit(self.now, || SimEvent::TaskQueued {
                                job: job.0,
                                task: idx as u32,
                                degraded: m.degraded,
                            });
                        }
                    }
                }
                Event::MapDone {
                    job,
                    task,
                    speculative,
                } => self.on_map_done(job, task, speculative, &mut rec),
                Event::ReduceDone { job, index } => self.on_reduce_done(job, index, &mut rec),
            }
            if rec.is_enabled() {
                for entry in self.net.take_flow_log() {
                    rec.emit(entry.at, || flow_log_event(&entry));
                }
            }
            if self.jobs.iter().all(|j| j.is_finished()) {
                let makespan = self.now.duration_since(SimTime::ZERO);
                let jobs = self
                    .jobs
                    .iter()
                    .map(|j| JobResult {
                        id: j.id,
                        name: j.spec.name.clone(),
                        submitted_at: j.spec.submit_at,
                        started_at: j.started_at.expect("finished job started"),
                        finished_at: j.finished_at.expect("finished job has end"),
                    })
                    .collect();
                return Ok(RunResult {
                    jobs,
                    tasks: std::mem::take(&mut self.records),
                    makespan,
                    utilization: self.net.utilization_log().to_vec(),
                });
            }
        }
        Err(RunError::Stalled { at: self.now })
    }

    // ---- event handlers ------------------------------------------------

    fn on_heartbeat(
        &mut self,
        slave: NodeId,
        periodic: bool,
        scheduler: &mut dyn MapScheduler,
        rec: &mut Recorder<'_>,
    ) {
        debug_assert!(self.cstate.is_alive(slave), "heartbeat from dead node");
        let assigned = {
            let mut hb = Heartbeat::new(self, slave);
            scheduler.assign_maps(&mut hb);
            hb.into_assigned()
        };
        for (job, task) in assigned {
            self.start_map_task(job, task, slave, rec);
        }
        self.assign_reduces(slave, rec);
        if self.cfg.speculative {
            self.assign_speculative(slave, rec);
        }
        // Keep the periodic chain alive while any job is unfinished;
        // out-of-band beats are one-shot.
        if periodic && self.jobs.iter().any(|j| !j.is_finished()) {
            self.cal.schedule(
                self.now + self.cfg.heartbeat_period,
                Event::Heartbeat {
                    node: slave,
                    periodic: true,
                },
            );
        }
        self.refresh_net_check();
    }

    fn on_net_check(&mut self, rec: &mut Recorder<'_>) {
        self.net_check = None;
        let finished = self.net.drain_finished(self.now);
        for (flow, _stats) in finished {
            let Some(purpose) = self.flow_owner.remove(&flow) else {
                continue;
            };
            match purpose {
                FlowPurpose::MapFetch {
                    job,
                    task,
                    speculative,
                } => {
                    let ready = {
                        let m = &mut self.jobs[job.index()].maps[task.0];
                        if speculative {
                            let a = m.spec.as_mut().expect("speculative fetch has attempt");
                            debug_assert!(a.pending_flows > 0);
                            a.pending_flows -= 1;
                            a.pending_flows == 0
                        } else {
                            debug_assert!(m.pending_flows > 0);
                            m.pending_flows -= 1;
                            m.pending_flows == 0
                        }
                    };
                    if ready {
                        if speculative {
                            self.jobs[job.index()].maps[task.0]
                                .spec
                                .as_mut()
                                .expect("attempt")
                                .input_ready_at = self.now;
                        } else {
                            self.jobs[job.index()].maps[task.0].input_ready_at = self.now;
                        }
                        self.schedule_map_processing(job, task, speculative, rec);
                    }
                }
                FlowPurpose::Shuffle { job, reduce } => {
                    let ready = {
                        let j = &mut self.jobs[job.index()];
                        let r = &mut j.reduces[reduce];
                        r.shuffles_done += 1;
                        r.shuffles_done == j.maps.len() && !r.processing
                    };
                    if ready {
                        self.start_reduce_processing(job, reduce, rec);
                    }
                }
            }
        }
        self.refresh_net_check();
    }

    fn on_map_done(
        &mut self,
        job: JobId,
        task: MapTaskId,
        speculative: bool,
        rec: &mut Recorder<'_>,
    ) {
        // The attempt that finishes first wins; cancel the loser.
        let (node, degraded, record, loser) = {
            let j = &mut self.jobs[job.index()];
            let m = &mut j.maps[task.0];
            debug_assert!(!m.done, "stale MapDone after a winner");
            m.done = true;
            let (node, assigned_at, input_ready_at, locality) = if speculative {
                let a = m.spec.as_ref().expect("speculative winner exists");
                (a.node, a.assigned_at, a.input_ready_at, a.locality)
            } else {
                (
                    m.assigned_to.expect("completed map was assigned"),
                    m.assigned_at,
                    m.input_ready_at,
                    m.locality.expect("launched map has locality"),
                )
            };
            j.completed_maps += 1;
            j.completed_map_runtime_secs += self.now.duration_since(assigned_at).as_secs_f64();
            j.completed_map_outputs.push((task, node));
            // The losing attempt's resources to release; `pending` flow
            // count tells tracing which phase the loser died in.
            let loser: Option<(NodeId, usize, Vec<netsim::FlowId>, Option<simkit::EventId>)> =
                if speculative {
                    Some((
                        m.assigned_to.expect("primary exists"),
                        m.pending_flows,
                        std::mem::take(&mut m.flows),
                        m.proc_event.take(),
                    ))
                } else {
                    m.spec
                        .take()
                        .map(|a| (a.node, a.pending_flows, a.flows, a.proc_event))
                };
            let record = TaskRecord {
                job,
                detail: TaskDetail::Map {
                    block: m.block,
                    locality,
                },
                node,
                assigned_at,
                input_ready_at,
                completed_at: self.now,
            };
            (node, m.degraded, record, loser)
        };
        if degraded {
            rec.emit(self.now, || SimEvent::PhaseEnd {
                job: job.0,
                task: task.0 as u32,
                node: node.0,
                speculative,
                phase: DegradedPhase::Process,
            });
        }
        let locality = record.map_locality().expect("map record has locality");
        rec.emit(self.now, || SimEvent::MapDone {
            job: job.0,
            task: task.0 as u32,
            node: node.0,
            locality: obs_locality(locality),
            speculative,
        });
        self.records.push(record);
        self.free_map[node.index()] += 1;
        if let Some((loser_node, pending, flows, proc_event)) = loser {
            for flow in flows {
                if self.flow_owner.remove(&flow).is_some() {
                    let _ = self.net.cancel_flow(self.now, flow);
                }
            }
            if let Some(ev) = proc_event {
                self.cal.cancel(ev);
            }
            self.free_map[loser_node.index()] += 1;
            if degraded {
                // The loser's open phase: still fetching if flows were
                // pending, otherwise it had begun processing.
                let phase = if pending > 0 {
                    DegradedPhase::FetchK
                } else {
                    DegradedPhase::Process
                };
                rec.emit(self.now, || SimEvent::PhaseEnd {
                    job: job.0,
                    task: task.0 as u32,
                    node: loser_node.0,
                    speculative: !speculative,
                    phase,
                });
            }
            rec.emit(self.now, || SimEvent::MapCancelled {
                job: job.0,
                task: task.0 as u32,
                node: loser_node.0,
                speculative: !speculative,
            });
        }
        if self.cfg.oob_heartbeats {
            self.cal.schedule(
                self.now,
                Event::Heartbeat {
                    node,
                    periodic: false,
                },
            );
        }

        // Feed assigned reducers with this map's output (batched: one
        // rate reallocation for the whole fan-out).
        let bytes = self.jobs[job.index()].shuffle_bytes_per_reducer(self.cfg.block_bytes);
        let reducers: Vec<(usize, NodeId)> = self.jobs[job.index()]
            .reduces
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.assigned_to.map(|n| (i, n)))
            .collect();
        let specs: Vec<(usize, usize, u64)> = reducers
            .iter()
            .map(|&(_, rnode)| (node.index(), rnode.index(), bytes))
            .collect();
        for (flow, &(reduce, _)) in self
            .net
            .start_flows(self.now, &specs)
            .into_iter()
            .zip(&reducers)
        {
            self.flow_owner
                .insert(flow, FlowPurpose::Shuffle { job, reduce });
        }

        // Map-only jobs finish with their last map.
        let j = &mut self.jobs[job.index()];
        if j.spec.is_map_only() && j.completed_maps == j.maps.len() {
            j.finished_at = Some(self.now);
            self.fifo.retain(|&id| id != job);
            rec.emit(self.now, || SimEvent::JobFinished { job: job.0 });
        }
        self.refresh_net_check();
    }

    fn on_reduce_done(&mut self, job: JobId, index: usize, rec: &mut Recorder<'_>) {
        let record = {
            let j = &mut self.jobs[job.index()];
            let r = &j.reduces[index];
            j.completed_reduces += 1;
            TaskRecord {
                job,
                detail: TaskDetail::Reduce { index },
                node: r.assigned_to.expect("completed reduce was assigned"),
                assigned_at: r.assigned_at,
                input_ready_at: r.input_ready_at,
                completed_at: self.now,
            }
        };
        let node = record.node;
        rec.emit(self.now, || SimEvent::ReduceDone {
            job: job.0,
            index: index as u32,
            node: node.0,
        });
        self.records.push(record);
        self.free_reduce[node.index()] += 1;
        if self.cfg.oob_heartbeats {
            self.cal.schedule(
                self.now,
                Event::Heartbeat {
                    node,
                    periodic: false,
                },
            );
        }
        let j = &mut self.jobs[job.index()];
        if j.completed_reduces == j.reduces.len() {
            j.finished_at = Some(self.now);
            self.fifo.retain(|&id| id != job);
            rec.emit(self.now, || SimEvent::JobFinished { job: job.0 });
        }
    }

    // ---- task launch machinery ------------------------------------------

    fn start_map_task(
        &mut self,
        job: JobId,
        task: MapTaskId,
        slave: NodeId,
        rec: &mut Recorder<'_>,
    ) {
        let locality = self.jobs[job.index()].maps[task.0]
            .locality
            .expect("take_* set locality");
        if rec.is_enabled() && !self.obs_job_started[job.index()] {
            self.obs_job_started[job.index()] = true;
            rec.emit(self.now, || SimEvent::JobStarted { job: job.0 });
        }
        self.start_map_attempt(job, task, slave, locality, false, rec);
    }

    /// Starts one attempt (primary or speculative backup) of a map task:
    /// fetch the input if it is not node-local, then process.
    fn start_map_attempt(
        &mut self,
        job: JobId,
        task: MapTaskId,
        slave: NodeId,
        locality: MapLocality,
        speculative: bool,
        rec: &mut Recorder<'_>,
    ) {
        rec.emit(self.now, || SimEvent::MapLaunched {
            job: job.0,
            task: task.0 as u32,
            node: slave.0,
            locality: obs_locality(locality),
            speculative,
        });
        match locality {
            MapLocality::NodeLocal => {
                self.mark_attempt_ready(job, task, speculative);
                self.schedule_map_processing(job, task, speculative, rec);
            }
            MapLocality::RackLocal | MapLocality::Remote => {
                let holder = self.jobs[job.index()].maps[task.0].holder;
                let flow = self.net.start_flow(
                    self.now,
                    holder.index(),
                    slave.index(),
                    self.cfg.block_bytes,
                );
                self.flow_owner.insert(
                    flow,
                    FlowPurpose::MapFetch {
                        job,
                        task,
                        speculative,
                    },
                );
                self.set_attempt_pending(job, task, speculative, vec![flow]);
            }
            MapLocality::Degraded => {
                let block = self.jobs[job.index()].maps[task.0].block;
                let fetch = self
                    .cfg
                    .degraded_fetch_blocks
                    .unwrap_or_else(|| self.store.layout().params().k());
                let plan = DegradedReadPlan::plan_with_fetch_count(
                    &self.store,
                    &self.topo,
                    &self.cstate,
                    block,
                    slave,
                    self.cfg.source_selection,
                    &mut self.rng,
                    fetch,
                );
                if rec.is_enabled() {
                    let (local, same_rack, cross_rack) = plan.source_breakdown(&self.topo);
                    rec.emit(self.now, || SimEvent::DegradedPlan {
                        job: job.0,
                        task: task.0 as u32,
                        node: slave.0,
                        local: local as u32,
                        same_rack: same_rack as u32,
                        cross_rack: cross_rack as u32,
                    });
                }
                rec.emit(self.now, || SimEvent::PhaseBegin {
                    job: job.0,
                    task: task.0 as u32,
                    node: slave.0,
                    speculative,
                    phase: DegradedPhase::FetchK,
                });
                let specs: Vec<(usize, usize, u64)> = plan
                    .network_sources()
                    .map(|(_, holder)| (holder.index(), slave.index(), self.cfg.block_bytes))
                    .collect();
                let flows = self.net.start_flows(self.now, &specs);
                for &flow in &flows {
                    self.flow_owner.insert(
                        flow,
                        FlowPurpose::MapFetch {
                            job,
                            task,
                            speculative,
                        },
                    );
                }
                let none_pending = flows.is_empty();
                self.set_attempt_pending(job, task, speculative, flows);
                if none_pending {
                    self.mark_attempt_ready(job, task, speculative);
                    self.schedule_map_processing(job, task, speculative, rec);
                }
            }
        }
        self.refresh_net_check();
    }

    fn set_attempt_pending(
        &mut self,
        job: JobId,
        task: MapTaskId,
        speculative: bool,
        flows: Vec<FlowId>,
    ) {
        let m = &mut self.jobs[job.index()].maps[task.0];
        if speculative {
            let a = m.spec.as_mut().expect("speculative attempt exists");
            a.pending_flows = flows.len();
            a.flows = flows;
        } else {
            m.pending_flows = flows.len();
            m.flows = flows;
        }
    }

    fn mark_attempt_ready(&mut self, job: JobId, task: MapTaskId, speculative: bool) {
        let m = &mut self.jobs[job.index()].maps[task.0];
        if speculative {
            m.spec
                .as_mut()
                .expect("speculative attempt exists")
                .input_ready_at = self.now;
        } else {
            m.input_ready_at = self.now;
        }
    }

    fn schedule_map_processing(
        &mut self,
        job: JobId,
        task: MapTaskId,
        speculative: bool,
        rec: &mut Recorder<'_>,
    ) {
        let (mean, std) = {
            let spec = &self.jobs[job.index()].spec;
            (spec.map_time_mean, spec.map_time_std)
        };
        let node = if speculative {
            self.jobs[job.index()].maps[task.0]
                .spec
                .as_ref()
                .expect("speculative attempt exists")
                .node
        } else {
            self.jobs[job.index()].maps[task.0]
                .assigned_to
                .expect("processing an assigned map")
        };
        if self.jobs[job.index()].maps[task.0].degraded {
            // Input is complete: close the fetch, decode instantaneously
            // (the simulator does not model decode CPU time), process.
            for (phase, begin) in [
                (DegradedPhase::FetchK, false),
                (DegradedPhase::Decode, true),
                (DegradedPhase::Decode, false),
                (DegradedPhase::Process, true),
            ] {
                rec.emit(self.now, || {
                    let (job, task, node) = (job.0, task.0 as u32, node.0);
                    if begin {
                        SimEvent::PhaseBegin {
                            job,
                            task,
                            node,
                            speculative,
                            phase,
                        }
                    } else {
                        SimEvent::PhaseEnd {
                            job,
                            task,
                            node,
                            speculative,
                            phase,
                        }
                    }
                });
            }
        }
        let duration = self.sample_task_time(mean, std, node);
        let ev = self.cal.schedule(
            self.now + duration,
            Event::MapDone {
                job,
                task,
                speculative,
            },
        );
        let m = &mut self.jobs[job.index()].maps[task.0];
        if speculative {
            m.spec
                .as_mut()
                .expect("speculative attempt exists")
                .proc_event = Some(ev);
        } else {
            m.proc_event = Some(ev);
        }
    }

    /// Hadoop-style speculation: when a slave has free slots and the
    /// FIFO head has nothing left to assign, launch a backup copy of the
    /// slowest running map whose elapsed time exceeds
    /// `speculative_threshold x` the job's mean completed-map runtime.
    fn assign_speculative(&mut self, slave: NodeId, rec: &mut Recorder<'_>) {
        while self.free_map[slave.index()] > 0 {
            let mut candidate: Option<(JobId, MapTaskId, f64)> = None;
            for &job in &self.fifo {
                let j = &self.jobs[job.index()];
                if !j.degraded_pool.is_empty() || j.unassigned_normal > 0 {
                    break; // assignable work exists; no speculation yet
                }
                if j.completed_maps == 0 {
                    continue; // no runtime estimate yet
                }
                let mean = j.completed_map_runtime_secs / j.completed_maps as f64;
                let threshold = self.cfg.speculative_threshold * mean;
                for (i, m) in j.maps.iter().enumerate() {
                    if m.done || m.spec.is_some() {
                        continue;
                    }
                    let Some(node) = m.assigned_to else { continue };
                    if node == slave {
                        continue; // back up on a different node
                    }
                    let elapsed = self.now.duration_since(m.assigned_at).as_secs_f64();
                    if elapsed > threshold && candidate.is_none_or(|(_, _, best)| elapsed > best) {
                        candidate = Some((job, MapTaskId(i), elapsed));
                    }
                }
                break; // only the head job speculates, as in FIFO Hadoop
            }
            let Some((job, task, _)) = candidate else {
                break;
            };
            let degraded = self.jobs[job.index()].maps[task.0].degraded;
            let locality = if degraded {
                MapLocality::Degraded
            } else {
                let holder = self.jobs[job.index()].maps[task.0].holder;
                self.classify(holder, slave)
            };
            self.free_map[slave.index()] -= 1;
            self.jobs[job.index()].maps[task.0].spec = Some(SpecAttempt {
                node: slave,
                assigned_at: self.now,
                input_ready_at: self.now,
                pending_flows: 0,
                locality,
                flows: Vec::new(),
                proc_event: None,
            });
            self.start_map_attempt(job, task, slave, locality, true, rec);
        }
    }

    fn start_reduce_processing(&mut self, job: JobId, reduce: usize, rec: &mut Recorder<'_>) {
        let (mean, std) = {
            let spec = &self.jobs[job.index()].spec;
            (spec.reduce_time_mean, spec.reduce_time_std)
        };
        let node = {
            let r = &mut self.jobs[job.index()].reduces[reduce];
            r.processing = true;
            r.input_ready_at = self.now;
            r.assigned_to.expect("processing an assigned reduce")
        };
        rec.emit(self.now, || SimEvent::ReduceShuffled {
            job: job.0,
            index: reduce as u32,
            node: node.0,
        });
        let duration = self.sample_task_time(mean, std, node);
        self.cal.schedule(
            self.now + duration,
            Event::ReduceDone { job, index: reduce },
        );
    }

    fn sample_task_time(
        &mut self,
        mean: SimDuration,
        std: SimDuration,
        node: NodeId,
    ) -> SimDuration {
        let base = self
            .rng
            .normal_duration(mean, std, self.cfg.task_time_floor);
        let speed = self.topo.spec(node).speed_factor;
        SimDuration::from_secs_f64(base.as_secs_f64() / speed)
    }

    fn assign_reduces(&mut self, slave: NodeId, rec: &mut Recorder<'_>) {
        while self.free_reduce[slave.index()] > 0 {
            // First FIFO job with an unassigned reducer past slowstart.
            let candidate = self.fifo.iter().copied().find(|&id| {
                let j = &self.jobs[id.index()];
                j.next_reduce < j.reduces.len()
                    && (j.completed_maps as f64) >= self.cfg.reduce_slowstart * j.maps.len() as f64
            });
            let Some(job) = candidate else { break };
            let (reduce, bytes, outputs) = {
                let j = &mut self.jobs[job.index()];
                let reduce = j.next_reduce;
                j.next_reduce += 1;
                let r = &mut j.reduces[reduce];
                r.assigned_to = Some(slave);
                r.assigned_at = self.now;
                let bytes = j.shuffle_bytes_per_reducer(self.cfg.block_bytes);
                (reduce, bytes, j.completed_map_outputs.clone())
            };
            self.free_reduce[slave.index()] -= 1;
            rec.emit(self.now, || SimEvent::ReduceLaunched {
                job: job.0,
                index: reduce as u32,
                node: slave.0,
            });
            // Fetch output of already-completed maps (batched).
            let specs: Vec<(usize, usize, u64)> = outputs
                .iter()
                .map(|&(_, from)| (from.index(), slave.index(), bytes))
                .collect();
            for flow in self.net.start_flows(self.now, &specs) {
                self.flow_owner
                    .insert(flow, FlowPurpose::Shuffle { job, reduce });
            }
            // A reducer of a job with zero maps shuffled would be ready
            // immediately; jobs always have maps, so nothing to do here.
        }
        self.refresh_net_check();
    }

    fn refresh_net_check(&mut self) {
        let next = self.net.next_completion();
        match (self.net_check, next) {
            (Some((_, at)), Some(want)) if at == want => {}
            (Some((id, _)), Some(want)) => {
                self.cal.cancel(id);
                let id = self.cal.schedule(want, Event::NetCheck);
                self.net_check = Some((id, want));
            }
            (Some((id, _)), None) => {
                self.cal.cancel(id);
                self.net_check = None;
            }
            (None, Some(want)) => {
                let id = self.cal.schedule(want, Event::NetCheck);
                self.net_check = Some((id, want));
            }
            (None, None) => {}
        }
    }

    // ---- scheduler-facing helpers (used by `sched::Heartbeat`) ---------

    pub(crate) fn mark_assigned(&mut self, job: JobId, task: MapTaskId, slave: NodeId) {
        let j = &mut self.jobs[job.index()];
        if j.started_at.is_none() {
            j.started_at = Some(self.now);
        }
        j.launched_maps += 1;
        let m = &mut j.maps[task.0];
        debug_assert!(m.assigned_to.is_none(), "double assignment of {task}");
        m.assigned_to = Some(slave);
        m.assigned_at = self.now;
        self.free_map[slave.index()] -= 1;
    }

    /// Classifies where `holder`'s block sits relative to `slave`.
    pub(crate) fn classify(&self, holder: NodeId, slave: NodeId) -> MapLocality {
        if holder == slave {
            MapLocality::NodeLocal
        } else if self.topo.same_rack(holder, slave) {
            MapLocality::RackLocal
        } else {
            MapLocality::Remote
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::Heartbeat;
    use ecstore::placement::RackAwarePlacement;

    /// Locality-first over all free slots: the engine tests need *some*
    /// policy; the real ones live in the `scheduler` crate.
    struct Greedy;

    impl MapScheduler for Greedy {
        fn assign_maps(&mut self, hb: &mut Heartbeat<'_>) {
            'outer: while hb.free_map_slots() > 0 {
                for job in hb.jobs() {
                    if hb.take_node_local(job).is_some()
                        || hb.take_rack_local(job).is_some()
                        || hb.take_remote(job).is_some()
                        || hb.take_degraded(job).is_some()
                    {
                        continue 'outer;
                    }
                }
                break;
            }
        }

        fn name(&self) -> &'static str {
            "greedy"
        }
    }

    fn base_engine(failure: FailureScenario, seed: u64, spec: JobSpec) -> Engine {
        let topo = Topology::homogeneous(2, 4, 2, 1);
        Engine::builder(topo)
            .code(CodeParams::new(4, 2).unwrap(), 32)
            .placement(&RackAwarePlacement)
            .failure(failure)
            .seed(seed)
            .job(spec)
            .build()
            .unwrap()
    }

    fn map_only_spec(secs: u64) -> JobSpec {
        JobSpec::builder("t")
            .map_time(SimDuration::from_secs(secs), SimDuration::ZERO)
            .map_only()
            .build()
    }

    #[test]
    fn normal_mode_map_only_runtime() {
        // 32 maps, 8 nodes x 2 slots = 16 slots, 10s maps:
        // two waves of processing ≈ 20s (+ heartbeat staggering).
        let engine = base_engine(FailureScenario::none(), 1, map_only_spec(10));
        let result = engine.run(Box::new(Greedy)).unwrap();
        let job = &result.jobs[0];
        let runtime = job.runtime().as_secs_f64();
        assert!((20.0..28.0).contains(&runtime), "runtime {runtime}");
        assert_eq!(result.tasks.len(), 32);
        assert_eq!(result.map_count(MapLocality::Degraded), 0);
        // Mostly node-local in normal mode under a greedy local-first
        // policy; placement balances total (native+parity) blocks, so a
        // few tasks are stolen rack-locally or remotely.
        assert!(result.map_count(MapLocality::NodeLocal) >= 24);
    }

    #[test]
    fn failure_mode_creates_degraded_tasks() {
        let topo = Topology::homogeneous(2, 4, 2, 1);
        let failed = topo.node(0);
        let engine = base_engine(FailureScenario::nodes([failed]), 2, map_only_spec(10));
        let lost = engine
            .store()
            .lost_native_blocks(engine.cluster_state())
            .len();
        assert!(lost > 0, "seeded placement must put natives on node0");
        let result = engine.run(Box::new(Greedy)).unwrap();
        assert_eq!(result.map_count(MapLocality::Degraded), lost);
        // Degraded reads took nonzero time (k=2 block downloads).
        let reads = result.degraded_read_secs();
        assert_eq!(reads.len(), lost);
        assert!(reads.iter().all(|&t| t > 0.0));
        // No task ran on the failed node.
        assert!(result.tasks.iter().all(|t| t.node != failed));
    }

    #[test]
    fn reduce_phase_completes_with_shuffle() {
        let spec = JobSpec::builder("wr")
            .map_time(SimDuration::from_secs(5), SimDuration::ZERO)
            .reduce_time(SimDuration::from_secs(8), SimDuration::ZERO)
            .reduce_tasks(4)
            .shuffle_ratio(0.01)
            .build();
        let engine = base_engine(FailureScenario::none(), 3, spec);
        let result = engine.run(Box::new(Greedy)).unwrap();
        let reduces: Vec<_> = result
            .tasks
            .iter()
            .filter(|t| matches!(t.detail, TaskDetail::Reduce { .. }))
            .collect();
        assert_eq!(reduces.len(), 4);
        // Reducers finish after every map.
        let last_map = result
            .tasks
            .iter()
            .filter(|t| t.map_locality().is_some())
            .map(|t| t.completed_at)
            .max()
            .unwrap();
        assert!(reduces.iter().all(|r| r.completed_at > last_map));
        // Reduce runtime includes shuffle wait + ~8s processing.
        assert!(reduces.iter().all(|r| r.runtime().as_secs_f64() >= 8.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            base_engine(FailureScenario::nodes([NodeId(1)]), seed, map_only_spec(10))
                .run(Box::new(Greedy))
                .unwrap()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must reproduce exactly");
        let c = run(8);
        assert!(a != c || a.makespan != c.makespan, "seeds should differ");
    }

    #[test]
    fn multi_job_fifo_order() {
        let topo = Topology::homogeneous(2, 4, 2, 1);
        let j0 = JobSpec::builder("first")
            .map_time(SimDuration::from_secs(5), SimDuration::ZERO)
            .map_only()
            .build();
        let j1 = JobSpec::builder("second")
            .map_time(SimDuration::from_secs(5), SimDuration::ZERO)
            .map_only()
            .submit_at(SimTime::from_secs(1))
            .build();
        let engine = Engine::builder(topo)
            .code(CodeParams::new(4, 2).unwrap(), 32)
            .placement(&RackAwarePlacement)
            .seed(5)
            .job(j0)
            .job(j1)
            .build()
            .unwrap();
        let result = engine.run(Box::new(Greedy)).unwrap();
        assert_eq!(result.jobs.len(), 2);
        // FIFO: job0 finishes no later than job1.
        assert!(result.jobs[0].finished_at <= result.jobs[1].finished_at);
        assert_eq!(
            result.tasks.iter().filter(|t| t.job == JobId(0)).count(),
            32
        );
        assert_eq!(
            result.tasks.iter().filter(|t| t.job == JobId(1)).count(),
            32
        );
    }

    #[test]
    fn slot_capacity_respected() {
        let engine = base_engine(FailureScenario::none(), 9, map_only_spec(10));
        let result = engine.run(Box::new(Greedy)).unwrap();
        // Reconstruct concurrent occupancy per node from records.
        for node in 0..8u32 {
            let node = NodeId(node);
            let mut events: Vec<(SimTime, i32)> = Vec::new();
            for t in result.tasks.iter().filter(|t| t.node == node) {
                events.push((t.assigned_at, 1));
                events.push((t.completed_at, -1));
            }
            events.sort();
            let mut occupancy = 0;
            for (_, delta) in events {
                occupancy += delta;
                assert!(occupancy <= 2, "node {node} exceeded its 2 map slots");
            }
        }
    }

    #[test]
    fn build_errors() {
        let topo = Topology::homogeneous(2, 4, 2, 1);
        // No jobs.
        let err = Engine::builder(topo.clone())
            .code(CodeParams::new(4, 2).unwrap(), 32)
            .placement(&RackAwarePlacement)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::NoJobs);
        // Missing code.
        let err = Engine::builder(topo.clone())
            .placement(&RackAwarePlacement)
            .job(map_only_spec(1))
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::Missing("code"));
        // Bad layout (not multiple of k).
        let err = Engine::builder(topo.clone())
            .code(CodeParams::new(4, 2).unwrap(), 31)
            .placement(&RackAwarePlacement)
            .job(map_only_spec(1))
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::Layout(_)));
        // Data loss: fail 6 of 8 nodes. Each node appears in only half
        // of the 16 stripes, so some stripe must keep fewer than k = 2
        // survivors.
        let err = Engine::builder(topo.clone())
            .code(CodeParams::new(4, 2).unwrap(), 32)
            .placement(&RackAwarePlacement)
            .failure(FailureScenario::nodes((0..6).map(|i| topo.node(i))))
            .seed(1)
            .job(map_only_spec(1))
            .build()
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, BuildError::DataLoss { .. }), "{err:?}");
    }

    #[test]
    fn double_failure_still_runs() {
        // (8,6) tolerates two failures; 4 racks satisfy the placement
        // constraint (4 racks x parity 2 >= n = 8).
        let topo = Topology::homogeneous(4, 3, 2, 1);
        let engine = Engine::builder(topo.clone())
            .code(CodeParams::new(8, 6).unwrap(), 36)
            .placement(&RackAwarePlacement)
            .failure(FailureScenario::nodes([topo.node(0), topo.node(6)]))
            .seed(4)
            .job(map_only_spec(5))
            .build()
            .unwrap();
        let result = engine.run(Box::new(Greedy)).unwrap();
        assert!(result.map_count(MapLocality::Degraded) > 0);
        assert_eq!(result.tasks.len(), 36);
    }
}

#[cfg(test)]
mod feature_tests {
    use super::*;
    use crate::sched::Heartbeat;
    use ecstore::placement::RackAwarePlacement;

    struct Greedy;

    impl MapScheduler for Greedy {
        fn assign_maps(&mut self, hb: &mut Heartbeat<'_>) {
            'outer: while hb.free_map_slots() > 0 {
                for job in hb.jobs() {
                    if hb.take_node_local(job).is_some()
                        || hb.take_rack_local(job).is_some()
                        || hb.take_remote(job).is_some()
                        || hb.take_degraded(job).is_some()
                    {
                        continue 'outer;
                    }
                }
                break;
            }
        }

        fn name(&self) -> &'static str {
            "greedy"
        }
    }

    fn engine_with(config: EngineConfig, seed: u64) -> Engine {
        let topo = Topology::homogeneous(2, 4, 2, 1);
        Engine::builder(topo.clone())
            .code(CodeParams::new(4, 2).unwrap(), 32)
            .placement(&RackAwarePlacement)
            .failure(FailureScenario::nodes([topo.node(0)]))
            .config(config)
            .seed(seed)
            .job(
                JobSpec::builder("t")
                    .map_time(SimDuration::from_secs(10), SimDuration::ZERO)
                    .map_only()
                    .build(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn oob_heartbeats_never_slow_the_job() {
        let base = EngineConfig::default();
        let oob = EngineConfig {
            oob_heartbeats: true,
            ..base
        };
        for seed in 0..3 {
            let slow = engine_with(base, seed).run(Box::new(Greedy)).unwrap();
            let fast = engine_with(oob, seed).run(Box::new(Greedy)).unwrap();
            assert!(
                fast.jobs[0].runtime() <= slow.jobs[0].runtime(),
                "seed {seed}: OOB {} > periodic {}",
                fast.jobs[0].runtime(),
                slow.jobs[0].runtime()
            );
            assert_eq!(fast.tasks.len(), slow.tasks.len());
        }
    }

    #[test]
    fn traced_run_matches_untraced_and_emits_lifecycle() {
        use obs::event::SimEvent;
        use obs::sink::VecSink;

        let plain = engine_with(EngineConfig::default(), 3)
            .run(Box::new(Greedy))
            .unwrap();
        let mut sink = VecSink::new();
        let traced = engine_with(EngineConfig::default(), 3)
            .run_traced(Box::new(Greedy), &mut sink)
            .unwrap();
        assert_eq!(plain, traced, "tracing must not perturb the run");
        assert!(!sink.events.is_empty());
        // Timestamps are globally non-decreasing.
        for pair in sink.events.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
        }
        let count =
            |pred: &dyn Fn(&SimEvent) -> bool| sink.events.iter().filter(|(_, e)| pred(e)).count();
        // One failed node in this fixture, announced at t=0.
        assert_eq!(count(&|e| matches!(e, SimEvent::NodeFailed { .. })), 1);
        assert_eq!(sink.events[0].0, SimTime::ZERO);
        // 32 maps: every launch completes (no speculation configured).
        assert_eq!(count(&|e| matches!(e, SimEvent::MapLaunched { .. })), 32);
        assert_eq!(count(&|e| matches!(e, SimEvent::MapDone { .. })), 32);
        assert_eq!(count(&|e| matches!(e, SimEvent::MapCancelled { .. })), 0);
        assert_eq!(count(&|e| matches!(e, SimEvent::JobSubmitted { .. })), 1);
        assert_eq!(count(&|e| matches!(e, SimEvent::JobStarted { .. })), 1);
        assert_eq!(count(&|e| matches!(e, SimEvent::JobFinished { .. })), 1);
        assert_eq!(count(&|e| matches!(e, SimEvent::TaskQueued { .. })), 32);
        // Degraded tasks fetch over the network and announce their plans.
        let plans = count(&|e| matches!(e, SimEvent::DegradedPlan { .. }));
        assert!(plans > 0, "failure mode must produce degraded plans");
        assert!(count(&|e| matches!(e, SimEvent::FlowStarted { .. })) > 0);
        assert_eq!(
            count(&|e| matches!(e, SimEvent::FlowStarted { .. })),
            count(&|e| matches!(e, SimEvent::FlowFinished { .. })),
        );
        // Every degraded attempt walks fetch_k -> decode -> process, and
        // begins/ends balance exactly.
        assert_eq!(
            count(&|e| matches!(e, SimEvent::PhaseBegin { .. })),
            count(&|e| matches!(e, SimEvent::PhaseEnd { .. })),
        );
        assert_eq!(
            count(&|e| matches!(
                e,
                SimEvent::PhaseBegin {
                    phase: obs::event::DegradedPhase::FetchK,
                    ..
                }
            )),
            plans
        );
    }

    #[test]
    fn utilization_log_present_only_when_enabled() {
        let off = engine_with(EngineConfig::default(), 1)
            .run(Box::new(Greedy))
            .unwrap();
        assert!(off.utilization.is_empty());

        let on = engine_with(
            EngineConfig {
                log_network_utilization: true,
                ..EngineConfig::default()
            },
            1,
        )
        .run(Box::new(Greedy))
        .unwrap();
        assert!(!on.utilization.is_empty());
        // Samples tile the run without gaps or overlap.
        for pair in on.utilization.windows(2) {
            assert!(pair[0].until <= pair[1].since);
        }
        // Some window saw degraded-read traffic cross a rack downlink.
        assert!(on.utilization.iter().any(|s| s.rack_down_bits > 0.0));
        // Runs are otherwise identical.
        assert_eq!(off.jobs, on.jobs);
        assert_eq!(off.tasks, on.tasks);
    }
}

#[cfg(test)]
mod speculation_tests {
    use super::*;
    use crate::metrics::TaskDetail;
    use crate::sched::Heartbeat;
    use ecstore::placement::RackAwarePlacement;

    struct Greedy;

    impl MapScheduler for Greedy {
        fn assign_maps(&mut self, hb: &mut Heartbeat<'_>) {
            'outer: while hb.free_map_slots() > 0 {
                for job in hb.jobs() {
                    if hb.take_node_local(job).is_some()
                        || hb.take_rack_local(job).is_some()
                        || hb.take_remote(job).is_some()
                        || hb.take_degraded(job).is_some()
                    {
                        continue 'outer;
                    }
                }
                break;
            }
        }

        fn name(&self) -> &'static str {
            "greedy"
        }
    }

    /// A heterogeneous cluster where one node is 10x slower: the classic
    /// straggler setup. Half of the blocks land on fast nodes.
    fn straggler_engine(speculative: bool, seed: u64) -> Engine {
        let topo = Topology::homogeneous(2, 4, 2, 1).with_speed_factor(NodeId(3), 0.1);
        Engine::builder(topo)
            .code(CodeParams::new(4, 2).unwrap(), 32)
            .placement(&RackAwarePlacement)
            .config(EngineConfig {
                speculative,
                ..EngineConfig::default()
            })
            .seed(seed)
            .job(
                JobSpec::builder("straggle")
                    .map_time(SimDuration::from_secs(10), SimDuration::ZERO)
                    .map_only()
                    .build(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn speculation_off_is_the_default_and_changes_nothing() {
        // A run with the flag explicitly off must equal the default.
        let a = straggler_engine(false, 1).run(Box::new(Greedy)).unwrap();
        let b = straggler_engine(false, 1).run(Box::new(Greedy)).unwrap();
        assert_eq!(a, b);
        assert!(!EngineConfig::default().speculative);
    }

    #[test]
    fn speculation_cuts_straggler_tail() {
        for seed in 0..3 {
            let plain = straggler_engine(false, seed).run(Box::new(Greedy)).unwrap();
            let spec = straggler_engine(true, seed).run(Box::new(Greedy)).unwrap();
            // Every block still processed exactly once (one record per map).
            assert_eq!(spec.tasks.len(), plain.tasks.len());
            let mut blocks: Vec<_> = spec
                .tasks
                .iter()
                .filter_map(|t| match t.detail {
                    TaskDetail::Map { block, .. } => Some(block),
                    TaskDetail::Reduce { .. } => None,
                })
                .collect();
            blocks.sort();
            blocks.dedup();
            assert_eq!(blocks.len(), 32, "seed {seed}: a map recorded twice");
            // The job ends no later (backups only help), and with a 10x
            // straggler it should end strictly earlier.
            assert!(
                spec.jobs[0].runtime() <= plain.jobs[0].runtime(),
                "seed {seed}: speculation slowed the job"
            );
        }
        // At least one seed shows a strict improvement.
        let improved = (0..3).any(|seed| {
            let plain = straggler_engine(false, seed).run(Box::new(Greedy)).unwrap();
            let spec = straggler_engine(true, seed).run(Box::new(Greedy)).unwrap();
            spec.jobs[0].runtime() < plain.jobs[0].runtime()
        });
        assert!(improved, "speculation never rescued the straggler");
    }

    #[test]
    fn speculation_respects_slot_capacity() {
        let result = straggler_engine(true, 2).run(Box::new(Greedy)).unwrap();
        // Winner records only; occupancy cannot be reconstructed from
        // records alone under speculation (loser attempts are invisible),
        // but every recorded completion must be on a live node with sane
        // ordering.
        for t in &result.tasks {
            assert!(t.assigned_at <= t.input_ready_at);
            assert!(t.input_ready_at <= t.completed_at);
        }
    }

    #[test]
    fn speculation_is_deterministic() {
        let a = straggler_engine(true, 7).run(Box::new(Greedy)).unwrap();
        let b = straggler_engine(true, 7).run(Box::new(Greedy)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn speculation_works_in_failure_mode() {
        let topo = Topology::homogeneous(2, 4, 2, 1).with_speed_factor(NodeId(3), 0.1);
        let engine = Engine::builder(topo.clone())
            .code(CodeParams::new(4, 2).unwrap(), 32)
            .placement(&RackAwarePlacement)
            .failure(FailureScenario::nodes([topo.node(0)]))
            .config(EngineConfig {
                speculative: true,
                ..EngineConfig::default()
            })
            .seed(5)
            .job(
                JobSpec::builder("sf")
                    .map_time(SimDuration::from_secs(10), SimDuration::ZERO)
                    .map_only()
                    .build(),
            )
            .build()
            .unwrap();
        let result = engine.run(Box::new(Greedy)).unwrap();
        assert_eq!(result.tasks.len(), 32);
        assert!(result.map_count(MapLocality::Degraded) > 0);
        assert!(result.tasks.iter().all(|t| t.node != topo.node(0)));
    }
}
