//! Job and task identifiers and specifications.

use simkit::time::{SimDuration, SimTime};
use std::fmt;

/// Identifies a job; jobs are numbered in submission (FIFO) order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct JobId(pub u32);

impl JobId {
    /// Dense index of this job.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Identifies a map task within a job. Map tasks correspond 1:1 to the
/// native blocks of the stored file, so the id doubles as the dense
/// native-block index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MapTaskId(pub usize);

impl fmt::Display for MapTaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "map{}", self.0)
    }
}

/// The locality class of a launched map task (Section II-A, plus the
/// paper's new *degraded* class for failure mode).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MapLocality {
    /// Input block stored on the executing node.
    NodeLocal,
    /// Input block stored on another node of the same rack.
    RackLocal,
    /// Input block stored in a different rack.
    Remote,
    /// Input block lost; reconstructed via a degraded read.
    Degraded,
}

impl MapLocality {
    /// True for node-local or rack-local — the paper collectively calls
    /// these "local".
    pub fn is_local(self) -> bool {
        matches!(self, MapLocality::NodeLocal | MapLocality::RackLocal)
    }
}

impl fmt::Display for MapLocality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MapLocality::NodeLocal => "node-local",
            MapLocality::RackLocal => "rack-local",
            MapLocality::Remote => "remote",
            MapLocality::Degraded => "degraded",
        };
        f.write_str(s)
    }
}

/// The workload description of one MapReduce job.
///
/// Map task count is implied by the stored file (one map task per native
/// block). Build with [`JobSpec::builder`].
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Human-readable name (e.g. "WordCount").
    pub name: String,
    /// Mean map-task processing time.
    pub map_time_mean: SimDuration,
    /// Standard deviation of map-task processing time.
    pub map_time_std: SimDuration,
    /// Mean reduce-task processing time.
    pub reduce_time_mean: SimDuration,
    /// Standard deviation of reduce-task processing time.
    pub reduce_time_std: SimDuration,
    /// Number of reduce tasks (0 = map-only job).
    pub num_reduce_tasks: usize,
    /// Intermediate data emitted per map task, as a fraction of the
    /// input block size (the paper's 1%–30% sweep in Figure 7(e)).
    pub shuffle_ratio: f64,
    /// When the job is submitted to the FIFO queue.
    pub submit_at: SimTime,
}

impl JobSpec {
    /// Starts building a job with the paper's Section V-B defaults:
    /// map N(20 s, 1 s), reduce N(30 s, 2 s), 30 reducers, 1% shuffle,
    /// submitted at time zero.
    pub fn builder(name: &str) -> JobSpecBuilder {
        JobSpecBuilder {
            spec: JobSpec {
                name: name.to_string(),
                map_time_mean: SimDuration::from_secs(20),
                map_time_std: SimDuration::from_secs(1),
                reduce_time_mean: SimDuration::from_secs(30),
                reduce_time_std: SimDuration::from_secs(2),
                num_reduce_tasks: 30,
                shuffle_ratio: 0.01,
                submit_at: SimTime::ZERO,
            },
        }
    }

    /// True if the job has no reduce phase.
    pub fn is_map_only(&self) -> bool {
        self.num_reduce_tasks == 0
    }

    /// Checks the spec for values the engine cannot simulate. Specs can
    /// arrive from hand-edited arrival traces with any field contents,
    /// so [`Engine::builder`](crate::engine) rejects invalid ones at
    /// build time instead of trusting the builder's assertions.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.map_time_mean.is_zero() {
            return Err("map_time_mean must be positive".to_string());
        }
        if !self.shuffle_ratio.is_finite() || !(0.0..=1.0).contains(&self.shuffle_ratio) {
            return Err(format!(
                "shuffle_ratio must be a finite fraction in [0, 1], got {}",
                self.shuffle_ratio
            ));
        }
        if self.num_reduce_tasks == 0 && self.shuffle_ratio != 0.0 {
            return Err(format!(
                "a map-only job (0 reduce tasks) cannot shuffle, got shuffle_ratio {}",
                self.shuffle_ratio
            ));
        }
        if self.num_reduce_tasks > 0 && self.reduce_time_mean.is_zero() {
            return Err("reduce_time_mean must be positive when reduce tasks exist".to_string());
        }
        Ok(())
    }
}

/// Builder for [`JobSpec`].
#[derive(Clone, Debug)]
pub struct JobSpecBuilder {
    spec: JobSpec,
}

impl JobSpecBuilder {
    /// Sets the map-task processing time distribution.
    pub fn map_time(mut self, mean: SimDuration, std: SimDuration) -> Self {
        self.spec.map_time_mean = mean;
        self.spec.map_time_std = std;
        self
    }

    /// Sets the reduce-task processing time distribution.
    pub fn reduce_time(mut self, mean: SimDuration, std: SimDuration) -> Self {
        self.spec.reduce_time_mean = mean;
        self.spec.reduce_time_std = std;
        self
    }

    /// Sets the reduce-task count.
    pub fn reduce_tasks(mut self, count: usize) -> Self {
        self.spec.num_reduce_tasks = count;
        self
    }

    /// Makes the job map-only (no reducers, no shuffle).
    pub fn map_only(mut self) -> Self {
        self.spec.num_reduce_tasks = 0;
        self.spec.shuffle_ratio = 0.0;
        self
    }

    /// Sets the shuffle ratio (map output bytes / block bytes).
    ///
    /// # Panics
    ///
    /// Panics if the ratio is negative or not finite.
    pub fn shuffle_ratio(mut self, ratio: f64) -> Self {
        assert!(
            ratio >= 0.0 && ratio.is_finite(),
            "bad shuffle ratio {ratio}"
        );
        self.spec.shuffle_ratio = ratio;
        self
    }

    /// Sets the submission time.
    pub fn submit_at(mut self, at: SimTime) -> Self {
        self.spec.submit_at = at;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> JobSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_paper() {
        let spec = JobSpec::builder("default").build();
        assert_eq!(spec.map_time_mean, SimDuration::from_secs(20));
        assert_eq!(spec.map_time_std, SimDuration::from_secs(1));
        assert_eq!(spec.reduce_time_mean, SimDuration::from_secs(30));
        assert_eq!(spec.reduce_time_std, SimDuration::from_secs(2));
        assert_eq!(spec.num_reduce_tasks, 30);
        assert!((spec.shuffle_ratio - 0.01).abs() < 1e-12);
        assert_eq!(spec.submit_at, SimTime::ZERO);
        assert!(!spec.is_map_only());
    }

    #[test]
    fn map_only_clears_shuffle() {
        let spec = JobSpec::builder("scan").map_only().build();
        assert!(spec.is_map_only());
        assert_eq!(spec.shuffle_ratio, 0.0);
    }

    #[test]
    fn builder_overrides() {
        let spec = JobSpec::builder("x")
            .map_time(SimDuration::from_secs(3), SimDuration::ZERO)
            .reduce_time(SimDuration::from_secs(60), SimDuration::from_secs(5))
            .reduce_tasks(8)
            .shuffle_ratio(0.3)
            .submit_at(SimTime::from_secs(120))
            .build();
        assert_eq!(spec.map_time_mean, SimDuration::from_secs(3));
        assert_eq!(spec.num_reduce_tasks, 8);
        assert_eq!(spec.submit_at, SimTime::from_secs(120));
    }

    #[test]
    fn locality_classes() {
        assert!(MapLocality::NodeLocal.is_local());
        assert!(MapLocality::RackLocal.is_local());
        assert!(!MapLocality::Remote.is_local());
        assert!(!MapLocality::Degraded.is_local());
        assert_eq!(MapLocality::Degraded.to_string(), "degraded");
    }

    #[test]
    fn id_display() {
        assert_eq!(JobId(2).to_string(), "job2");
        assert_eq!(MapTaskId(7).to_string(), "map7");
        assert_eq!(JobId(3).index(), 3);
    }

    #[test]
    #[should_panic(expected = "bad shuffle ratio")]
    fn rejects_negative_shuffle() {
        let _ = JobSpec::builder("x").shuffle_ratio(-0.1);
    }

    #[test]
    fn validate_accepts_defaults_and_map_only() {
        assert_eq!(JobSpec::builder("ok").build().validate(), Ok(()));
        assert_eq!(
            JobSpec::builder("scan").map_only().build().validate(),
            Ok(())
        );
    }

    #[test]
    fn validate_rejects_out_of_range_fields() {
        let mut spec = JobSpec::builder("bad").build();
        spec.shuffle_ratio = 1.5;
        assert_eq!(
            spec.validate().unwrap_err(),
            "shuffle_ratio must be a finite fraction in [0, 1], got 1.5"
        );
        spec.shuffle_ratio = f64::NAN;
        assert!(spec.validate().is_err());

        let mut spec = JobSpec::builder("bad").build();
        spec.map_time_mean = SimDuration::ZERO;
        assert_eq!(
            spec.validate().unwrap_err(),
            "map_time_mean must be positive"
        );

        let mut spec = JobSpec::builder("bad").build();
        spec.num_reduce_tasks = 0; // still has the 1% default shuffle
        assert_eq!(
            spec.validate().unwrap_err(),
            "a map-only job (0 reduce tasks) cannot shuffle, got shuffle_ratio 0.01"
        );

        let mut spec = JobSpec::builder("bad").build();
        spec.reduce_time_mean = SimDuration::ZERO;
        assert_eq!(
            spec.validate().unwrap_err(),
            "reduce_time_mean must be positive when reduce tasks exist"
        );
    }
}
