//! `mapreduce` — a discrete event MapReduce execution engine for
//! erasure-coded storage clusters, reproducing the simulator of Section V
//! of the degraded-first scheduling paper (DSN 2014).
//!
//! The engine models:
//!
//! * a master that assigns tasks only in response to periodic slave
//!   **heartbeats** (3 s, as in the paper's simulator);
//! * per-node **map and reduce slots**;
//! * map tasks classified as node-local, rack-local, remote, or
//!   **degraded** (input block lost to a node failure, reconstructed via
//!   a degraded read of `k` surviving blocks);
//! * block fetches, degraded reads and **shuffle** traffic all competing
//!   on the shared [`netsim`] network;
//! * a FIFO multi-job queue.
//!
//! Scheduling policy is pluggable through [`sched::MapScheduler`]; the
//! paper's three policies (locality-first, basic degraded-first,
//! enhanced degraded-first) live in the `scheduler` crate.
//!
//! # Example
//!
//! A tiny run with an inline locality-first-like policy:
//!
//! ```
//! use cluster::{FailureScenario, Topology};
//! use ecstore::placement::RackAwarePlacement;
//! use erasure::CodeParams;
//! use mapreduce::engine::{Engine, EngineConfig};
//! use mapreduce::job::JobSpec;
//! use mapreduce::sched::{Heartbeat, MapScheduler};
//! use simkit::time::SimDuration;
//!
//! struct Greedy;
//! impl MapScheduler for Greedy {
//!     fn assign_maps(&mut self, hb: &mut Heartbeat<'_>) {
//!         while hb.free_map_slots() > 0 {
//!             let Some(job) = hb.jobs().first().copied() else { break };
//!             if hb.take_node_local(job).is_none()
//!                 && hb.take_rack_local(job).is_none()
//!                 && hb.take_remote(job).is_none()
//!                 && hb.take_degraded(job).is_none()
//!             {
//!                 break;
//!             }
//!         }
//!     }
//!     fn name(&self) -> &'static str {
//!         "greedy"
//!     }
//! }
//!
//! let topo = Topology::homogeneous(2, 2, 2, 1);
//! let job = JobSpec::builder("demo")
//!     .map_time(SimDuration::from_secs(5), SimDuration::ZERO)
//!     .map_only()
//!     .build();
//! let engine = Engine::builder(topo)
//!     .code(CodeParams::new(4, 2).unwrap(), 8)
//!     .placement(&RackAwarePlacement)
//!     .failure(FailureScenario::none())
//!     .config(EngineConfig::default())
//!     .seed(7)
//!     .job(job)
//!     .build()
//!     .unwrap();
//! let result = engine.run(Box::new(Greedy)).unwrap();
//! assert_eq!(result.jobs.len(), 1);
//! ```

pub mod engine;
pub mod job;
pub mod metrics;
pub mod sched;

pub use engine::{Engine, EngineBuilder, EngineConfig, RunError};
pub use job::{JobId, JobSpec, MapLocality, MapTaskId};
pub use metrics::{JobResult, RunResult, TaskRecord};
pub use sched::{Heartbeat, MapScheduler};
