//! Run results: per-job runtimes and per-task records, plus the
//! aggregations the paper's figures report (remote-task counts, degraded
//! read times, per-type mean task runtimes).

use cluster::NodeId;
use ecstore::BlockRef;
use netsim::UtilizationSample;
use simkit::time::{SimDuration, SimTime};

use crate::job::{JobId, MapLocality};

/// What one finished task did.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TaskDetail {
    /// A map task over `block` with the given launch locality.
    Map {
        /// Input block.
        block: BlockRef,
        /// Locality class at launch.
        locality: MapLocality,
    },
    /// A reduce task.
    Reduce {
        /// Reduce partition index within the job.
        index: usize,
    },
}

/// Timing record of one finished task.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskRecord {
    /// Owning job.
    pub job: JobId,
    /// What the task was.
    pub detail: TaskDetail,
    /// Node that executed the task.
    pub node: NodeId,
    /// When the task was assigned a slot (its launch).
    pub assigned_at: SimTime,
    /// When its input was available (block fetched / degraded read done /
    /// all shuffle data received). Equals `assigned_at` for node-local
    /// maps.
    pub input_ready_at: SimTime,
    /// When the task finished.
    pub completed_at: SimTime,
}

impl TaskRecord {
    /// Total task runtime (launch to completion) — Table I's definition.
    pub fn runtime(&self) -> SimDuration {
        self.completed_at.duration_since(self.assigned_at)
    }

    /// Time spent acquiring input (degraded read time for degraded
    /// tasks, fetch time for remote tasks, shuffle wait for reducers).
    pub fn input_wait(&self) -> SimDuration {
        self.input_ready_at.duration_since(self.assigned_at)
    }

    /// The locality if this is a map record.
    pub fn map_locality(&self) -> Option<MapLocality> {
        match self.detail {
            TaskDetail::Map { locality, .. } => Some(locality),
            TaskDetail::Reduce { .. } => None,
        }
    }
}

/// Outcome of one job.
#[derive(Clone, Debug, PartialEq)]
pub struct JobResult {
    /// The job.
    pub id: JobId,
    /// Its name.
    pub name: String,
    /// Submission time.
    pub submitted_at: SimTime,
    /// Launch of its first map task.
    pub started_at: SimTime,
    /// Completion of its last task.
    pub finished_at: SimTime,
}

impl JobResult {
    /// The paper's runtime metric: first map launch → last task
    /// completion.
    pub fn runtime(&self) -> SimDuration {
        self.finished_at.duration_since(self.started_at)
    }

    /// Queueing + execution as seen by the submitter.
    pub fn turnaround(&self) -> SimDuration {
        self.finished_at.duration_since(self.submitted_at)
    }
}

/// Everything measured in one simulation run.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct RunResult {
    /// Per-job outcomes, in submission order.
    pub jobs: Vec<JobResult>,
    /// Every finished task.
    pub tasks: Vec<TaskRecord>,
    /// End of the whole run.
    pub makespan: SimDuration,
    /// Rack-downlink utilization over time (empty unless
    /// [`crate::engine::EngineConfig::log_network_utilization`] is set).
    pub utilization: Vec<UtilizationSample>,
}

impl RunResult {
    /// Records for one job.
    pub fn tasks_of(&self, job: JobId) -> impl Iterator<Item = &TaskRecord> + '_ {
        self.tasks.iter().filter(move |t| t.job == job)
    }

    /// Number of launched map tasks with the given locality (Figure 8(a)
    /// counts `Remote`).
    pub fn map_count(&self, locality: MapLocality) -> usize {
        self.tasks
            .iter()
            .filter(|t| t.map_locality() == Some(locality))
            .count()
    }

    /// Degraded read times in seconds — the Figure 8(b) metric ("the time
    /// from issuing a degraded read request until k blocks are
    /// downloaded").
    pub fn degraded_read_secs(&self) -> Vec<f64> {
        self.tasks
            .iter()
            .filter(|t| t.map_locality() == Some(MapLocality::Degraded))
            .map(|t| t.input_wait().as_secs_f64())
            .collect()
    }

    /// Mean runtime in seconds of tasks selected by `filter` — Table I's
    /// per-type breakdown. Returns `None` if nothing matches.
    pub fn mean_task_runtime_secs(&self, filter: impl Fn(&TaskRecord) -> bool) -> Option<f64> {
        let mut sum = 0.0;
        let mut count = 0usize;
        for t in self.tasks.iter().filter(|t| filter(t)) {
            sum += t.runtime().as_secs_f64();
            count += 1;
        }
        (count > 0).then(|| sum / count as f64)
    }

    /// Mean runtime of "normal" maps (local + remote, not degraded).
    pub fn mean_normal_map_secs(&self) -> Option<f64> {
        self.mean_task_runtime_secs(
            |t| matches!(t.map_locality(), Some(l) if l != MapLocality::Degraded),
        )
    }

    /// Mean runtime of degraded maps.
    pub fn mean_degraded_map_secs(&self) -> Option<f64> {
        self.mean_task_runtime_secs(|t| t.map_locality() == Some(MapLocality::Degraded))
    }

    /// Mean runtime of reduce tasks.
    pub fn mean_reduce_secs(&self) -> Option<f64> {
        self.mean_task_runtime_secs(|t| matches!(t.detail, TaskDetail::Reduce { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecstore::StripeId;

    fn map_record(job: u32, locality: MapLocality, a: u64, f: u64, c: u64) -> TaskRecord {
        TaskRecord {
            job: JobId(job),
            detail: TaskDetail::Map {
                block: BlockRef {
                    stripe: StripeId(0),
                    pos: 0,
                },
                locality,
            },
            node: NodeId(0),
            assigned_at: SimTime::from_secs(a),
            input_ready_at: SimTime::from_secs(f),
            completed_at: SimTime::from_secs(c),
        }
    }

    #[test]
    fn task_timings() {
        let t = map_record(0, MapLocality::Degraded, 10, 25, 40);
        assert_eq!(t.runtime(), SimDuration::from_secs(30));
        assert_eq!(t.input_wait(), SimDuration::from_secs(15));
        assert_eq!(t.map_locality(), Some(MapLocality::Degraded));
    }

    #[test]
    fn job_timings() {
        let j = JobResult {
            id: JobId(0),
            name: "x".into(),
            submitted_at: SimTime::from_secs(5),
            started_at: SimTime::from_secs(8),
            finished_at: SimTime::from_secs(68),
        };
        assert_eq!(j.runtime(), SimDuration::from_secs(60));
        assert_eq!(j.turnaround(), SimDuration::from_secs(63));
    }

    #[test]
    fn aggregates() {
        let result = RunResult {
            jobs: vec![],
            tasks: vec![
                map_record(0, MapLocality::NodeLocal, 0, 0, 20),
                map_record(0, MapLocality::Remote, 0, 10, 30),
                map_record(0, MapLocality::Degraded, 0, 15, 35),
                map_record(1, MapLocality::Degraded, 5, 10, 25),
                TaskRecord {
                    job: JobId(0),
                    detail: TaskDetail::Reduce { index: 0 },
                    node: NodeId(1),
                    assigned_at: SimTime::ZERO,
                    input_ready_at: SimTime::from_secs(40),
                    completed_at: SimTime::from_secs(70),
                },
            ],
            makespan: SimDuration::from_secs(70),
            utilization: Vec::new(),
        };
        assert_eq!(result.map_count(MapLocality::Remote), 1);
        assert_eq!(result.map_count(MapLocality::Degraded), 2);
        assert_eq!(result.degraded_read_secs(), vec![15.0, 5.0]);
        assert_eq!(result.mean_normal_map_secs(), Some(25.0));
        assert_eq!(result.mean_degraded_map_secs(), Some((35.0 + 20.0) / 2.0));
        assert_eq!(result.mean_reduce_secs(), Some(70.0));
        assert_eq!(result.tasks_of(JobId(1)).count(), 1);
        assert_eq!(result.mean_task_runtime_secs(|_| false), None);
    }
}
