//! The scheduler interface: a policy sees one heartbeat at a time and
//! claims map tasks for the reporting slave.
//!
//! [`Heartbeat`] is both the *view* (task pools, launch counters, the
//! load and rack-timing estimates of the paper's enhanced heuristics)
//! and the *actuator* (`take_*` methods claim a task and consume a map
//! slot). Reduce-task assignment is not policy-controlled — as in
//! Hadoop, reducers have no locality and the engine hands them out FIFO.

use cluster::{NodeId, RackId};
use simkit::time::SimTime;

use crate::engine::Engine;
use crate::job::{JobId, MapLocality, MapTaskId};

/// A map-task scheduling policy (the paper's Algorithms 1–3 implement
/// this in the `scheduler` crate).
pub trait MapScheduler {
    /// Claims tasks for the slave whose heartbeat is being served.
    fn assign_maps(&mut self, hb: &mut Heartbeat<'_>);

    /// Short policy name for reports ("LF", "BDF", "EDF").
    fn name(&self) -> &str;
}

/// One slave heartbeat being served by the master.
pub struct Heartbeat<'a> {
    engine: &'a mut Engine,
    slave: NodeId,
    assigned: Vec<(JobId, MapTaskId)>,
}

impl<'a> Heartbeat<'a> {
    pub(crate) fn new(engine: &'a mut Engine, slave: NodeId) -> Heartbeat<'a> {
        Heartbeat {
            engine,
            slave,
            assigned: Vec::new(),
        }
    }

    pub(crate) fn into_assigned(self) -> Vec<(JobId, MapTaskId)> {
        self.assigned
    }

    /// The reporting slave.
    pub fn slave(&self) -> NodeId {
        self.slave
    }

    /// The slave's rack.
    pub fn rack(&self) -> RackId {
        self.engine.topo.rack_of(self.slave)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now
    }

    /// Number of racks in the cluster.
    pub fn num_racks(&self) -> usize {
        self.engine.topo.num_racks()
    }

    /// Free map slots remaining on the slave (decreases as tasks are
    /// taken during this heartbeat).
    pub fn free_map_slots(&self) -> u32 {
        self.engine.free_map[self.slave.index()]
    }

    /// Running (submitted, unfinished) jobs in FIFO order.
    pub fn jobs(&self) -> Vec<JobId> {
        self.engine.fifo.clone()
    }

    // ---- per-job counters (Algorithm 2's M, m, M_d, m_d) ---------------

    /// Total map tasks of the job (`M`).
    pub fn total_maps(&self, job: JobId) -> usize {
        self.engine.jobs[job.index()].maps.len()
    }

    /// Map tasks already launched (`m`).
    pub fn launched_maps(&self, job: JobId) -> usize {
        self.engine.jobs[job.index()].launched_maps
    }

    /// Total degraded tasks of the job (`M_d`).
    pub fn total_degraded(&self, job: JobId) -> usize {
        self.engine.jobs[job.index()].degraded_pool.len()
            + self.engine.jobs[job.index()].launched_degraded
    }

    /// Degraded tasks already launched (`m_d`).
    pub fn launched_degraded(&self, job: JobId) -> usize {
        self.engine.jobs[job.index()].launched_degraded
    }

    /// True if the job still has unassigned degraded tasks.
    pub fn has_degraded(&self, job: JobId) -> bool {
        !self.engine.jobs[job.index()].degraded_pool.is_empty()
    }

    /// True if the job still has unassigned normal (non-degraded) tasks.
    pub fn has_normal(&self, job: JobId) -> bool {
        self.engine.jobs[job.index()].unassigned_normal > 0
    }

    // ---- enhanced-heuristic estimates (Section IV-C) --------------------

    /// `t_s`: estimated seconds the given slave needs to finish its
    /// remaining node-local map tasks — pool size × mean map time ÷
    /// slots ÷ speed factor. Heterogeneity-aware, as the paper requires.
    pub fn slave_local_work_secs(&self, job: JobId, node: NodeId) -> f64 {
        let j = &self.engine.jobs[job.index()];
        let pool = j.node_local_pool[node.index()].len() as f64;
        let spec = self.engine.topo.spec(node);
        pool * j.spec.map_time_mean.as_secs_f64() / spec.map_slots as f64 / spec.speed_factor
    }

    /// `E[t_s]`: mean of [`Heartbeat::slave_local_work_secs`] over live
    /// slaves.
    pub fn mean_local_work_secs(&self, job: JobId) -> f64 {
        let alive = self.engine.cstate.alive_nodes();
        if alive.is_empty() {
            return 0.0;
        }
        alive
            .iter()
            .map(|&n| self.slave_local_work_secs(job, n))
            .sum::<f64>()
            / alive.len() as f64
    }

    /// `t_r`: seconds since the last degraded task was assigned to the
    /// rack (`+∞` if none ever was).
    pub fn secs_since_degraded_assign(&self, rack: RackId) -> f64 {
        match self.engine.last_degraded_assign[rack.index()] {
            Some(at) => self.engine.now.saturating_duration_since(at).as_secs_f64(),
            None => f64::INFINITY,
        }
    }

    /// `E[t_r]`: mean of [`Heartbeat::secs_since_degraded_assign`] over
    /// all racks (`+∞` if any rack has never received one).
    pub fn mean_secs_since_degraded_assign(&self) -> f64 {
        let racks = self.engine.topo.num_racks();
        (0..racks)
            .map(|r| self.secs_since_degraded_assign(RackId(r as u32)))
            .sum::<f64>()
            / racks as f64
    }

    /// The rack-awareness threshold `(R−1)·k·S / (R·W)`: the expected
    /// inter-rack time of one degraded read (Section IV-B/IV-C).
    pub fn degraded_read_threshold_secs(&self) -> f64 {
        let r = self.engine.topo.num_racks() as f64;
        let k = self.engine.store.layout().params().k() as f64;
        let bits = self.engine.cfg.block_bytes as f64 * 8.0;
        let w = self.engine.cfg.net.rack_bps as f64;
        (r - 1.0) * k * bits / (r * w)
    }

    // ---- task claiming ---------------------------------------------------

    /// Claims an unassigned map task whose block is stored on this slave.
    pub fn take_node_local(&mut self, job: JobId) -> Option<MapTaskId> {
        if self.free_map_slots() == 0 {
            return None;
        }
        let slave = self.slave;
        let task = self.engine.jobs[job.index()].node_local_pool[slave.index()].pop()?;
        self.claim_normal(job, task, MapLocality::NodeLocal);
        Some(task)
    }

    /// Claims an unassigned map task whose block is stored on another
    /// node of this slave's rack, preferring the node with the largest
    /// backlog.
    pub fn take_rack_local(&mut self, job: JobId) -> Option<MapTaskId> {
        if self.free_map_slots() == 0 {
            return None;
        }
        let slave = self.slave;
        let rack = self.engine.topo.rack_of(slave);
        let members: Vec<NodeId> = self.engine.topo.nodes_in_rack(rack).to_vec();
        let source = members
            .into_iter()
            .filter(|&m| m != slave)
            .max_by_key(|&m| {
                (
                    self.engine.jobs[job.index()].node_local_pool[m.index()].len(),
                    std::cmp::Reverse(m),
                )
            })
            .filter(|&m| !self.engine.jobs[job.index()].node_local_pool[m.index()].is_empty())?;
        let task = self.engine.jobs[job.index()].node_local_pool[source.index()]
            .pop()
            .expect("non-empty pool");
        self.claim_normal(job, task, MapLocality::RackLocal);
        Some(task)
    }

    /// Claims any remaining normal task (its block will be fetched across
    /// racks), preferring the node with the largest backlog.
    pub fn take_remote(&mut self, job: JobId) -> Option<MapTaskId> {
        if self.free_map_slots() == 0 {
            return None;
        }
        let slave = self.slave;
        let source = self
            .engine
            .topo
            .node_ids()
            .filter(|&m| m != slave)
            .max_by_key(|&m| {
                (
                    self.engine.jobs[job.index()].node_local_pool[m.index()].len(),
                    std::cmp::Reverse(m),
                )
            })
            .filter(|&m| !self.engine.jobs[job.index()].node_local_pool[m.index()].is_empty())?;
        let task = self.engine.jobs[job.index()].node_local_pool[source.index()]
            .pop()
            .expect("non-empty pool");
        let locality = self.engine.classify(source, slave);
        self.claim_normal(job, task, locality);
        Some(task)
    }

    /// Claims an unassigned degraded task and records the rack-timing
    /// bookkeeping used by [`Heartbeat::secs_since_degraded_assign`].
    pub fn take_degraded(&mut self, job: JobId) -> Option<MapTaskId> {
        if self.free_map_slots() == 0 {
            return None;
        }
        let task = self.engine.jobs[job.index()].degraded_pool.pop()?;
        let slave = self.slave;
        self.engine.jobs[job.index()].launched_degraded += 1;
        self.engine.jobs[job.index()].maps[task.0].locality = Some(MapLocality::Degraded);
        self.engine.mark_assigned(job, task, slave);
        let rack = self.engine.topo.rack_of(slave);
        self.engine.last_degraded_assign[rack.index()] = Some(self.engine.now);
        self.assigned.push((job, task));
        Some(task)
    }

    fn claim_normal(&mut self, job: JobId, task: MapTaskId, locality: MapLocality) {
        let slave = self.slave;
        self.engine.jobs[job.index()].unassigned_normal -= 1;
        self.engine.jobs[job.index()].maps[task.0].locality = Some(locality);
        self.engine.mark_assigned(job, task, slave);
        self.assigned.push((job, task));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use crate::job::JobSpec;
    use cluster::{FailureScenario, Topology};
    use ecstore::placement::RackAwarePlacement;
    use erasure::CodeParams;
    use simkit::time::SimDuration;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Captures the view the very first heartbeat sees, then behaves
    /// greedily so the run completes.
    struct Spy {
        seen: Rc<RefCell<Option<Snapshot>>>,
    }

    #[derive(Debug, Clone)]
    struct Snapshot {
        slave: NodeId,
        rack: RackId,
        free_slots: u32,
        jobs: Vec<JobId>,
        total_maps: usize,
        total_degraded: usize,
        launched_maps: usize,
        launched_degraded: usize,
        t_s: f64,
        mean_t_s: f64,
        t_r: f64,
        mean_t_r: f64,
        threshold: f64,
        has_degraded: bool,
        has_normal: bool,
    }

    impl MapScheduler for Spy {
        fn assign_maps(&mut self, hb: &mut Heartbeat<'_>) {
            if self.seen.borrow().is_none() {
                let job = hb.jobs()[0];
                *self.seen.borrow_mut() = Some(Snapshot {
                    slave: hb.slave(),
                    rack: hb.rack(),
                    free_slots: hb.free_map_slots(),
                    jobs: hb.jobs(),
                    total_maps: hb.total_maps(job),
                    total_degraded: hb.total_degraded(job),
                    launched_maps: hb.launched_maps(job),
                    launched_degraded: hb.launched_degraded(job),
                    t_s: hb.slave_local_work_secs(job, hb.slave()),
                    mean_t_s: hb.mean_local_work_secs(job),
                    t_r: hb.secs_since_degraded_assign(hb.rack()),
                    mean_t_r: hb.mean_secs_since_degraded_assign(),
                    threshold: hb.degraded_read_threshold_secs(),
                    has_degraded: hb.has_degraded(job),
                    has_normal: hb.has_normal(job),
                });
            }
            'outer: while hb.free_map_slots() > 0 {
                for job in hb.jobs() {
                    if hb.take_node_local(job).is_some()
                        || hb.take_rack_local(job).is_some()
                        || hb.take_remote(job).is_some()
                        || hb.take_degraded(job).is_some()
                    {
                        continue 'outer;
                    }
                }
                break;
            }
        }

        fn name(&self) -> &'static str {
            "spy"
        }
    }

    #[test]
    fn heartbeat_view_exposes_paper_estimates() {
        let topo = Topology::homogeneous(2, 4, 2, 1);
        let seen = Rc::new(RefCell::new(None));
        let spy = Spy { seen: seen.clone() };
        let engine = Engine::builder(topo.clone())
            .code(CodeParams::new(4, 2).unwrap(), 32)
            .placement(&RackAwarePlacement)
            .failure(FailureScenario::nodes([topo.node(0)]))
            .config(EngineConfig {
                block_bytes: 100_000_000, // 0.8 Gbit
                net: netsim::NetConfig::uniform(1_000_000_000),
                ..EngineConfig::default()
            })
            .seed(3)
            .job(
                JobSpec::builder("spyjob")
                    .map_time(SimDuration::from_secs(8), SimDuration::ZERO)
                    .map_only()
                    .build(),
            )
            .build()
            .unwrap();
        let lost = engine
            .store()
            .lost_native_blocks(engine.cluster_state())
            .len();
        engine.run(Box::new(spy)).unwrap();

        let snap = seen.borrow().clone().expect("first heartbeat captured");
        assert_eq!(snap.jobs.len(), 1);
        assert_eq!(snap.free_slots, 2);
        assert_eq!(snap.total_maps, 32);
        assert_eq!(snap.total_degraded, lost);
        assert_eq!(snap.launched_maps, 0);
        assert_eq!(snap.launched_degraded, 0);
        assert!(snap.has_degraded);
        assert!(snap.has_normal);
        assert_eq!(snap.rack, topo.rack_of(snap.slave));
        // t_s = pool * mean(8s) / slots(2) / speed(1.0); pools are a few
        // blocks per node.
        assert!(snap.t_s >= 0.0);
        assert!(snap.mean_t_s > 0.0, "cluster has unassigned local work");
        assert!(
            (snap.t_s / 4.0).fract().abs() < 1e-9,
            "t_s is a multiple of 8/2"
        );
        // No degraded task assigned yet: both rack timings are infinite.
        assert!(snap.t_r.is_infinite());
        assert!(snap.mean_t_r.is_infinite());
        // threshold = (R-1) k S / (R W) = (1/2)*2*0.8Gbit/1Gbps = 0.8s.
        assert!((snap.threshold - 0.8).abs() < 1e-9, "{}", snap.threshold);
    }

    #[test]
    fn rack_timing_updates_after_degraded_assignment() {
        // After the run there were degraded assignments; verify the
        // engine tracked per-rack times by observing a later heartbeat.
        struct LateSpy {
            saw_finite_tr: Rc<RefCell<bool>>,
        }
        impl MapScheduler for LateSpy {
            fn assign_maps(&mut self, hb: &mut Heartbeat<'_>) {
                if hb.secs_since_degraded_assign(hb.rack()).is_finite() {
                    *self.saw_finite_tr.borrow_mut() = true;
                }
                'outer: while hb.free_map_slots() > 0 {
                    for job in hb.jobs() {
                        if hb.take_degraded(job).is_some()
                            || hb.take_node_local(job).is_some()
                            || hb.take_rack_local(job).is_some()
                            || hb.take_remote(job).is_some()
                        {
                            continue 'outer;
                        }
                    }
                    break;
                }
            }
            fn name(&self) -> &'static str {
                "latespy"
            }
        }
        let topo = Topology::homogeneous(2, 4, 2, 1);
        let flag = Rc::new(RefCell::new(false));
        let engine = Engine::builder(topo.clone())
            .code(CodeParams::new(4, 2).unwrap(), 32)
            .placement(&RackAwarePlacement)
            .failure(FailureScenario::nodes([topo.node(1)]))
            .seed(5)
            .job(
                JobSpec::builder("late")
                    .map_time(SimDuration::from_secs(5), SimDuration::ZERO)
                    .map_only()
                    .build(),
            )
            .build()
            .unwrap();
        engine
            .run(Box::new(LateSpy {
                saw_finite_tr: flag.clone(),
            }))
            .unwrap();
        assert!(
            *flag.borrow(),
            "t_r never became finite despite degraded launches"
        );
    }
}
