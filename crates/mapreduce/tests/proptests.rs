//! Property-based tests for the MapReduce engine: conservation and
//! ordering invariants over randomized cluster/job/failure
//! configurations, under a greedy reference policy.

use cluster::{FailureScenario, Topology};
use ecstore::placement::RackAwarePlacement;
use erasure::CodeParams;
use mapreduce::engine::{Engine, EngineConfig};
use mapreduce::job::JobSpec;
use mapreduce::metrics::TaskDetail;
use mapreduce::sched::{Heartbeat, MapScheduler};
use mapreduce::MapLocality;
use proptest::prelude::*;
use simkit::time::SimDuration;

struct Greedy;

impl MapScheduler for Greedy {
    fn assign_maps(&mut self, hb: &mut Heartbeat<'_>) {
        'outer: while hb.free_map_slots() > 0 {
            for job in hb.jobs() {
                if hb.take_node_local(job).is_some()
                    || hb.take_rack_local(job).is_some()
                    || hb.take_remote(job).is_some()
                    || hb.take_degraded(job).is_some()
                {
                    continue 'outer;
                }
            }
            break;
        }
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

#[derive(Debug, Clone)]
struct Config {
    racks: usize,
    nodes_per_rack: usize,
    map_slots: u32,
    stripes: usize,
    map_secs: u64,
    reduce_tasks: usize,
    fail_node: Option<usize>,
    seed: u64,
}

fn config() -> impl Strategy<Value = Config> {
    (
        2usize..=4, // racks
        2usize..=4, // nodes per rack
        1u32..=3,   // map slots
        2usize..=8, // stripes
        1u64..=15,  // map secs
        0usize..=4, // reduce tasks
        proptest::option::of(0usize..16),
        any::<u64>(),
    )
        .prop_map(
            |(racks, nodes_per_rack, map_slots, stripes, map_secs, reduce_tasks, fail, seed)| {
                Config {
                    racks,
                    nodes_per_rack,
                    map_slots,
                    stripes,
                    map_secs,
                    reduce_tasks,
                    fail_node: fail.map(|f| f % (racks * nodes_per_rack)),
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_invariants_hold(cfg in config()) {
        // (4,2) fits every generated topology: racks*parity >= 4 needs
        // racks >= 2; n=4 <= nodes.
        let topo = Topology::homogeneous(cfg.racks, cfg.nodes_per_rack, cfg.map_slots, 1);
        let num_native = cfg.stripes * 2;
        let failure = match cfg.fail_node {
            Some(f) => FailureScenario::nodes([topo.node(f)]),
            None => FailureScenario::none(),
        };
        let job = JobSpec::builder("prop")
            .map_time(SimDuration::from_secs(cfg.map_secs), SimDuration::ZERO)
            .reduce_time(SimDuration::from_secs(5), SimDuration::ZERO)
            .reduce_tasks(cfg.reduce_tasks)
            .shuffle_ratio(if cfg.reduce_tasks > 0 { 0.01 } else { 0.0 })
            .build();
        let engine = Engine::builder(topo.clone())
            .code(CodeParams::new(4, 2).unwrap(), num_native)
            .placement(&RackAwarePlacement)
            .failure(failure.clone())
            .config(EngineConfig {
                block_bytes: 8 * 1024 * 1024,
                ..EngineConfig::default()
            })
            .seed(cfg.seed)
            .job(job)
            .build()
            .expect("engine builds");
        let lost = engine.store().lost_native_blocks(engine.cluster_state()).len();
        let result = engine.run(Box::new(Greedy)).expect("run completes");

        // 1. Every native block processed exactly once; reduces complete.
        let mut blocks: Vec<_> = result
            .tasks
            .iter()
            .filter_map(|t| match t.detail {
                TaskDetail::Map { block, .. } => Some(block),
                TaskDetail::Reduce { .. } => None,
            })
            .collect();
        prop_assert_eq!(blocks.len(), num_native);
        blocks.sort();
        blocks.dedup();
        prop_assert_eq!(blocks.len(), num_native, "a block ran twice");
        let reduces = result
            .tasks
            .iter()
            .filter(|t| matches!(t.detail, TaskDetail::Reduce { .. }))
            .count();
        prop_assert_eq!(reduces, cfg.reduce_tasks);

        // 2. Degraded task count equals lost native blocks.
        prop_assert_eq!(result.map_count(MapLocality::Degraded), lost);

        // 3. No task on the failed node.
        if let Some(f) = cfg.fail_node {
            let failed = topo.node(f);
            prop_assert!(result.tasks.iter().all(|t| t.node != failed));
        }

        // 4. Timing ordering per task.
        for t in &result.tasks {
            prop_assert!(t.assigned_at <= t.input_ready_at);
            prop_assert!(t.input_ready_at <= t.completed_at);
        }

        // 5. Map-slot capacity never exceeded (sweep-line per node).
        for node in topo.node_ids() {
            let mut events: Vec<(simkit::time::SimTime, i64)> = Vec::new();
            for t in result.tasks.iter().filter(|t| {
                t.node == node && matches!(t.detail, TaskDetail::Map { .. })
            }) {
                events.push((t.assigned_at, 1));
                events.push((t.completed_at, -1));
            }
            events.sort();
            let mut occ = 0i64;
            for (_, d) in events {
                occ += d;
                prop_assert!(occ <= cfg.map_slots as i64, "{node} over capacity");
            }
        }

        // 6. The run replays identically.
        let engine2 = Engine::builder(topo)
            .code(CodeParams::new(4, 2).unwrap(), num_native)
            .placement(&RackAwarePlacement)
            .failure(failure)
            .config(EngineConfig {
                block_bytes: 8 * 1024 * 1024,
                ..EngineConfig::default()
            })
            .seed(cfg.seed)
            .job(JobSpec::builder("prop")
                .map_time(SimDuration::from_secs(cfg.map_secs), SimDuration::ZERO)
                .reduce_time(SimDuration::from_secs(5), SimDuration::ZERO)
                .reduce_tasks(cfg.reduce_tasks)
                .shuffle_ratio(if cfg.reduce_tasks > 0 { 0.01 } else { 0.0 })
                .build())
            .build()
            .expect("engine rebuilds");
        let replay = engine2.run(Box::new(Greedy)).expect("replay completes");
        prop_assert_eq!(result, replay);
    }

    #[test]
    fn normal_mode_runtime_scales_with_work(
        map_secs in 2u64..20,
        stripes in 2usize..10,
        seed in any::<u64>(),
    ) {
        // Runtime grows when work grows, all else equal.
        let run = |secs: u64, stripes: usize| {
            let topo = Topology::homogeneous(2, 2, 2, 1);
            Engine::builder(topo)
                .code(CodeParams::new(4, 2).unwrap(), stripes * 2)
                .placement(&RackAwarePlacement)
                .seed(seed)
                .job(
                    JobSpec::builder("w")
                        .map_time(SimDuration::from_secs(secs), SimDuration::ZERO)
                        .map_only()
                        .build(),
                )
                .build()
                .unwrap()
                .run(Box::new(Greedy))
                .unwrap()
                .jobs[0]
                .runtime()
        };
        // Heartbeat phase can shift launch/completion edges by up to one
        // period, so compare with that slack.
        let slack = SimDuration::from_secs(3);
        let base = run(map_secs, stripes);
        let more_work = run(map_secs * 2, stripes);
        prop_assert!(more_work + slack >= base, "doubling task time shortened the job");
        let more_blocks = run(map_secs, stripes * 2);
        prop_assert!(more_blocks + slack >= base, "doubling blocks shortened the job");
    }
}
