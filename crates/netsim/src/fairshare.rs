//! Max-min fair rate allocation by progressive filling.
//!
//! Given a set of flows, each using a set of links with fixed capacities,
//! the max-min fair allocation repeatedly finds the most contended link,
//! freezes its flows at an equal share of its remaining capacity, and
//! subtracts that share along their paths. The result is the classic
//! water-filling allocation: no flow can increase its rate without
//! decreasing that of a flow with an equal or smaller rate.
//!
//! Two implementations live here:
//!
//! * [`FairshareWorkspace::compute`] — the production path: all scratch
//!   state lives in a reusable workspace (no allocations once warm), and
//!   the freeze loop walks per-link flow lists instead of re-scanning
//!   every flow each round.
//! * [`max_min_rates_ref`] — the straightforward textbook version this
//!   module originally shipped, retained as the oracle: the workspace
//!   path produces **bit-identical** rates (same freeze set and same
//!   `best_share` every round, hence the same clamped subtraction
//!   sequence on every link).

/// Computes max-min fair rates.
///
/// * `capacities[l]` — capacity of link `l` in bits/second.
/// * `paths[f]` — the link indices flow `f` traverses (may be empty for a
///   loopback flow, which gets `f64::INFINITY`).
///
/// Returns one rate per flow, in bits/second. Convenience wrapper over
/// [`FairshareWorkspace::compute`] for one-shot callers; event loops
/// should hold a workspace to amortize the scratch allocations.
///
/// # Panics
///
/// Panics if a path references an unknown link or a capacity is not
/// positive.
pub fn max_min_rates(capacities: &[f64], paths: &[Vec<usize>]) -> Vec<f64> {
    let mut ws = FairshareWorkspace::new();
    let mut rates = Vec::new();
    let paths32: Vec<Vec<u32>> = paths
        .iter()
        .map(|p| {
            p.iter()
                .map(|&l| u32::try_from(l).expect("link index fits u32"))
                .collect()
        })
        .collect();
    ws.compute(capacities, &paths32, &mut rates);
    rates
}

/// Scratch state for [`FairshareWorkspace::compute`]. Create once, reuse
/// for every allocation; all internal buffers retain their capacity
/// between calls, so a warm workspace allocates nothing.
#[derive(Clone, Debug, Default)]
pub struct FairshareWorkspace {
    /// Remaining capacity per link.
    remaining: Vec<f64>,
    /// Unfrozen flows crossing each link.
    load: Vec<u32>,
    /// Flow → links, CSR: flow `f` uses `path_flat[path_off[f]..path_off[f+1]]`.
    path_off: Vec<u32>,
    path_flat: Vec<u32>,
    /// Link → flows, CSR: link `l` carries `link_flows[link_off[l]..link_off[l+1]]`.
    link_off: Vec<u32>,
    link_flows: Vec<u32>,
    /// Per-flow freeze flag.
    frozen: Vec<bool>,
    /// Bottleneck links of the current round.
    round_links: Vec<u32>,
}

impl FairshareWorkspace {
    /// An empty workspace.
    pub fn new() -> FairshareWorkspace {
        FairshareWorkspace::default()
    }

    /// Computes max-min fair rates into `rates` (cleared and resized to
    /// one entry per flow). Semantics — including every floating-point
    /// result — match [`max_min_rates_ref`]; see the module docs.
    ///
    /// # Panics
    ///
    /// Panics if a path references an unknown link or a capacity is not
    /// positive.
    pub fn compute<I>(&mut self, capacities: &[f64], paths: I, rates: &mut Vec<f64>)
    where
        I: IntoIterator,
        I::Item: AsRef<[u32]>,
    {
        assert!(
            capacities.iter().all(|&c| c > 0.0 && c.is_finite()),
            "link capacities must be positive and finite"
        );
        let num_links = capacities.len();

        rates.clear();
        self.remaining.clear();
        self.remaining.extend_from_slice(capacities);
        self.load.clear();
        self.load.resize(num_links, 0);
        self.frozen.clear();

        // Pass 1: copy paths into the flow CSR (the only look at the
        // caller's paths), count link loads, and freeze loopback
        // (empty-path) flows at infinity.
        self.path_off.clear();
        self.path_flat.clear();
        self.path_off.push(0);
        let mut unfrozen_left = 0usize;
        for path in paths {
            let path = path.as_ref();
            for &l in path {
                assert!((l as usize) < num_links, "path references unknown link {l}");
                self.load[l as usize] += 1;
                self.path_flat.push(l);
            }
            self.path_off.push(self.path_flat.len() as u32);
            if path.is_empty() {
                rates.push(f64::INFINITY);
                self.frozen.push(true);
            } else {
                rates.push(0.0);
                self.frozen.push(false);
                unfrozen_left += 1;
            }
        }
        let num_flows = rates.len();

        // Pass 2: invert into the link CSR by counting sort, so the
        // freeze loop can enumerate exactly the flows crossing a
        // bottleneck link (in ascending flow order).
        self.link_off.clear();
        self.link_off.resize(num_links + 1, 0);
        for &l in &self.path_flat {
            self.link_off[l as usize + 1] += 1;
        }
        for l in 0..num_links {
            self.link_off[l + 1] += self.link_off[l];
        }
        self.link_flows.clear();
        self.link_flows.resize(self.path_flat.len(), 0);
        {
            // `load` already holds the final counts; use a scratch cursor
            // per link inside round_links' buffer to avoid another vec.
            let cursor = &mut self.round_links;
            cursor.clear();
            cursor.extend_from_slice(&self.link_off[..num_links]);
            for f in 0..num_flows {
                let (s, e) = (self.path_off[f] as usize, self.path_off[f + 1] as usize);
                for &l in &self.path_flat[s..e] {
                    let c = &mut cursor[l as usize];
                    self.link_flows[*c as usize] = f as u32;
                    *c += 1;
                }
            }
        }

        // Progressive filling. Each round: find the smallest per-flow
        // share among loaded links, mark every link at that share (up to
        // fp tolerance) as a bottleneck, and freeze the flows crossing
        // them — identical rounds, in the identical order, as the
        // reference implementation.
        while unfrozen_left > 0 {
            let mut best_share = f64::INFINITY;
            for l in 0..num_links {
                if self.load[l] > 0 {
                    let share = self.remaining[l] / self.load[l] as f64;
                    if share < best_share {
                        best_share = share;
                    }
                }
            }
            debug_assert!(best_share.is_finite(), "no bottleneck among loaded links");
            // A small relative tolerance groups links whose shares are
            // equal up to floating-point noise.
            let tol = best_share * 1e-12;
            self.round_links.clear();
            for l in 0..num_links {
                if self.load[l] > 0 && self.remaining[l] / self.load[l] as f64 <= best_share + tol {
                    self.round_links.push(l as u32);
                }
            }
            for i in 0..self.round_links.len() {
                let l = self.round_links[i] as usize;
                let (s, e) = (self.link_off[l] as usize, self.link_off[l + 1] as usize);
                for j in s..e {
                    let f = self.link_flows[j] as usize;
                    if self.frozen[f] {
                        continue;
                    }
                    self.frozen[f] = true;
                    rates[f] = best_share;
                    unfrozen_left -= 1;
                    let (ps, pe) = (self.path_off[f] as usize, self.path_off[f + 1] as usize);
                    for &pl in &self.path_flat[ps..pe] {
                        let r = &mut self.remaining[pl as usize];
                        *r = (*r - best_share).max(0.0);
                        self.load[pl as usize] -= 1;
                    }
                }
            }
        }
    }
}

/// Reference implementation of [`max_min_rates`]: allocates its scratch
/// per call and re-scans every flow each freeze round. Retained as the
/// oracle for property tests and the baseline for `bench_snapshot`.
///
/// # Panics
///
/// Panics if a path references an unknown link or a capacity is not
/// positive.
pub fn max_min_rates_ref(capacities: &[f64], paths: &[Vec<usize>]) -> Vec<f64> {
    assert!(
        capacities.iter().all(|&c| c > 0.0 && c.is_finite()),
        "link capacities must be positive and finite"
    );
    let num_links = capacities.len();
    let num_flows = paths.len();
    for path in paths {
        for &l in path {
            assert!(l < num_links, "path references unknown link {l}");
        }
    }

    let mut rates = vec![0.0f64; num_flows];
    let mut frozen = vec![false; num_flows];
    let mut remaining: Vec<f64> = capacities.to_vec();
    // Number of unfrozen flows crossing each link.
    let mut load = vec![0usize; num_links];
    let mut unfrozen_left = 0usize;
    for (f, path) in paths.iter().enumerate() {
        if path.is_empty() {
            rates[f] = f64::INFINITY;
            frozen[f] = true;
        } else {
            unfrozen_left += 1;
            for &l in path {
                load[l] += 1;
            }
        }
    }

    while unfrozen_left > 0 {
        // The bottleneck link: smallest per-flow share among loaded links.
        let mut best_share = f64::INFINITY;
        for l in 0..num_links {
            if load[l] > 0 {
                let share = remaining[l] / load[l] as f64;
                if share < best_share {
                    best_share = share;
                }
            }
        }
        debug_assert!(best_share.is_finite(), "no bottleneck among loaded links");
        // Freeze every unfrozen flow crossing a bottleneck link. A small
        // relative tolerance groups links whose shares are equal up to
        // floating-point noise.
        let tol = best_share * 1e-12;
        let mut bottleneck = vec![false; num_links];
        for l in 0..num_links {
            if load[l] > 0 && remaining[l] / load[l] as f64 <= best_share + tol {
                bottleneck[l] = true;
            }
        }
        for f in 0..num_flows {
            if frozen[f] || !paths[f].iter().any(|&l| bottleneck[l]) {
                continue;
            }
            rates[f] = best_share;
            frozen[f] = true;
            unfrozen_left -= 1;
            for &l in &paths[f] {
                remaining[l] = (remaining[l] - best_share).max(0.0);
                load[l] -= 1;
            }
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    const GBPS: f64 = 1e9;

    #[test]
    fn single_flow_gets_full_bottleneck() {
        let rates = max_min_rates(&[GBPS, 0.1 * GBPS], &[vec![0, 1]]);
        assert_eq!(rates, vec![0.1 * GBPS]);
    }

    #[test]
    fn equal_flows_split_equally() {
        // The paper's motivating scenario: two degraded reads sharing one
        // rack downlink each get half the bandwidth.
        let rates = max_min_rates(&[0.1 * GBPS], &[vec![0], vec![0]]);
        assert!((rates[0] - 0.05 * GBPS).abs() < 1.0);
        assert!((rates[1] - 0.05 * GBPS).abs() < 1.0);
    }

    #[test]
    fn water_filling_redistribution() {
        // Link 0: 1 Gbps shared by flows A and B; flow B also crosses
        // link 1 at 0.2 Gbps. B is frozen at 0.2; A then gets 0.8.
        let rates = max_min_rates(&[GBPS, 0.2 * GBPS], &[vec![0], vec![0, 1]]);
        assert!((rates[1] - 0.2 * GBPS).abs() < 1.0, "B {}", rates[1]);
        assert!((rates[0] - 0.8 * GBPS).abs() < 1.0, "A {}", rates[0]);
    }

    #[test]
    fn loopback_flows_are_infinite() {
        let rates = max_min_rates(&[GBPS], &[vec![], vec![0]]);
        assert_eq!(rates[0], f64::INFINITY);
        assert_eq!(rates[1], GBPS);
    }

    #[test]
    fn no_flows() {
        assert!(max_min_rates(&[GBPS], &[]).is_empty());
    }

    #[test]
    fn allocation_is_feasible_and_pareto() {
        // Random-ish topology: 5 links, 8 flows; verify (1) no link is
        // oversubscribed, (2) every flow has a saturated link on its path
        // whose other flows are not smaller (max-min certificate).
        let caps = [GBPS, 0.5 * GBPS, 0.25 * GBPS, 2.0 * GBPS, 0.75 * GBPS];
        let paths: Vec<Vec<usize>> = vec![
            vec![0, 1],
            vec![1, 2],
            vec![2, 3],
            vec![0, 3],
            vec![4],
            vec![0, 4],
            vec![1, 4],
            vec![2],
        ];
        let rates = max_min_rates(&caps, &paths);
        let mut usage = [0.0f64; 5];
        for (f, path) in paths.iter().enumerate() {
            assert!(rates[f] > 0.0);
            for &l in path {
                usage[l] += rates[f];
            }
        }
        for l in 0..5 {
            assert!(
                usage[l] <= caps[l] * (1.0 + 1e-9),
                "link {l} oversubscribed"
            );
        }
        for (f, path) in paths.iter().enumerate() {
            let has_certificate = path.iter().any(|&l| {
                let saturated = usage[l] >= caps[l] * (1.0 - 1e-9);
                let is_max_on_link = paths
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.contains(&l))
                    .all(|(g, _)| rates[g] <= rates[f] * (1.0 + 1e-9));
                saturated && is_max_on_link
            });
            assert!(has_certificate, "flow {f} has no bottleneck certificate");
        }
    }

    #[test]
    fn workspace_matches_reference_bit_for_bit() {
        // A contended mesh with ties, loopbacks, and repeated links.
        let caps = [
            GBPS,
            0.5 * GBPS,
            0.25 * GBPS,
            2.0 * GBPS,
            0.75 * GBPS,
            0.1 * GBPS,
        ];
        let paths: Vec<Vec<usize>> = vec![
            vec![0, 1],
            vec![],
            vec![1, 2],
            vec![2, 3],
            vec![0, 3],
            vec![4],
            vec![0, 4],
            vec![1, 4],
            vec![2],
            vec![5],
            vec![5],
            vec![0, 5],
            vec![],
        ];
        let reference = max_min_rates_ref(&caps, &paths);
        let via_workspace = max_min_rates(&caps, &paths);
        let ref_bits: Vec<u64> = reference.iter().map(|r| r.to_bits()).collect();
        let ws_bits: Vec<u64> = via_workspace.iter().map(|r| r.to_bits()).collect();
        assert_eq!(ref_bits, ws_bits);
    }

    #[test]
    fn workspace_reuse_is_clean_across_calls() {
        let mut ws = FairshareWorkspace::new();
        let mut rates = vec![99.0; 7];
        ws.compute(&[GBPS, 0.5 * GBPS], &[vec![0u32, 1], vec![1]], &mut rates);
        assert_eq!(rates.len(), 2);
        let first = rates.clone();
        // A different, smaller problem must not see stale state.
        ws.compute(&[GBPS], &[vec![0u32]], &mut rates);
        assert_eq!(rates, vec![GBPS]);
        // And re-running the first problem reproduces it exactly.
        ws.compute(&[GBPS, 0.5 * GBPS], &[vec![0u32, 1], vec![1]], &mut rates);
        assert_eq!(rates, first);
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn rejects_unknown_link() {
        let _ = max_min_rates(&[GBPS], &[vec![3]]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_capacity() {
        let _ = max_min_rates(&[0.0], &[vec![0]]);
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn reference_rejects_unknown_link() {
        let _ = max_min_rates_ref(&[GBPS], &[vec![3]]);
    }
}
