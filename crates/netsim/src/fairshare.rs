//! Max-min fair rate allocation by progressive filling.
//!
//! Given a set of flows, each using a set of links with fixed capacities,
//! the max-min fair allocation repeatedly finds the most contended link,
//! freezes its flows at an equal share of its remaining capacity, and
//! subtracts that share along their paths. The result is the classic
//! water-filling allocation: no flow can increase its rate without
//! decreasing that of a flow with an equal or smaller rate.

/// Computes max-min fair rates.
///
/// * `capacities[l]` — capacity of link `l` in bits/second.
/// * `paths[f]` — the link indices flow `f` traverses (may be empty for a
///   loopback flow, which gets `f64::INFINITY`).
///
/// Returns one rate per flow, in bits/second.
///
/// # Panics
///
/// Panics if a path references an unknown link or a capacity is not
/// positive.
pub fn max_min_rates(capacities: &[f64], paths: &[Vec<usize>]) -> Vec<f64> {
    assert!(
        capacities.iter().all(|&c| c > 0.0 && c.is_finite()),
        "link capacities must be positive and finite"
    );
    let num_links = capacities.len();
    let num_flows = paths.len();
    for path in paths {
        for &l in path {
            assert!(l < num_links, "path references unknown link {l}");
        }
    }

    let mut rates = vec![0.0f64; num_flows];
    let mut frozen = vec![false; num_flows];
    let mut remaining: Vec<f64> = capacities.to_vec();
    // Number of unfrozen flows crossing each link.
    let mut load = vec![0usize; num_links];
    let mut unfrozen_left = 0usize;
    for (f, path) in paths.iter().enumerate() {
        if path.is_empty() {
            rates[f] = f64::INFINITY;
            frozen[f] = true;
        } else {
            unfrozen_left += 1;
            for &l in path {
                load[l] += 1;
            }
        }
    }

    while unfrozen_left > 0 {
        // The bottleneck link: smallest per-flow share among loaded links.
        let mut best_share = f64::INFINITY;
        for l in 0..num_links {
            if load[l] > 0 {
                let share = remaining[l] / load[l] as f64;
                if share < best_share {
                    best_share = share;
                }
            }
        }
        debug_assert!(best_share.is_finite(), "no bottleneck among loaded links");
        // Freeze every unfrozen flow crossing a bottleneck link. A small
        // relative tolerance groups links whose shares are equal up to
        // floating-point noise.
        let tol = best_share * 1e-12;
        let mut bottleneck = vec![false; num_links];
        for l in 0..num_links {
            if load[l] > 0 && remaining[l] / load[l] as f64 <= best_share + tol {
                bottleneck[l] = true;
            }
        }
        for f in 0..num_flows {
            if frozen[f] || !paths[f].iter().any(|&l| bottleneck[l]) {
                continue;
            }
            rates[f] = best_share;
            frozen[f] = true;
            unfrozen_left -= 1;
            for &l in &paths[f] {
                remaining[l] = (remaining[l] - best_share).max(0.0);
                load[l] -= 1;
            }
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    const GBPS: f64 = 1e9;

    #[test]
    fn single_flow_gets_full_bottleneck() {
        let rates = max_min_rates(&[GBPS, 0.1 * GBPS], &[vec![0, 1]]);
        assert_eq!(rates, vec![0.1 * GBPS]);
    }

    #[test]
    fn equal_flows_split_equally() {
        // The paper's motivating scenario: two degraded reads sharing one
        // rack downlink each get half the bandwidth.
        let rates = max_min_rates(&[0.1 * GBPS], &[vec![0], vec![0]]);
        assert!((rates[0] - 0.05 * GBPS).abs() < 1.0);
        assert!((rates[1] - 0.05 * GBPS).abs() < 1.0);
    }

    #[test]
    fn water_filling_redistribution() {
        // Link 0: 1 Gbps shared by flows A and B; flow B also crosses
        // link 1 at 0.2 Gbps. B is frozen at 0.2; A then gets 0.8.
        let rates = max_min_rates(&[GBPS, 0.2 * GBPS], &[vec![0], vec![0, 1]]);
        assert!((rates[1] - 0.2 * GBPS).abs() < 1.0, "B {}", rates[1]);
        assert!((rates[0] - 0.8 * GBPS).abs() < 1.0, "A {}", rates[0]);
    }

    #[test]
    fn loopback_flows_are_infinite() {
        let rates = max_min_rates(&[GBPS], &[vec![], vec![0]]);
        assert_eq!(rates[0], f64::INFINITY);
        assert_eq!(rates[1], GBPS);
    }

    #[test]
    fn no_flows() {
        assert!(max_min_rates(&[GBPS], &[]).is_empty());
    }

    #[test]
    fn allocation_is_feasible_and_pareto() {
        // Random-ish topology: 5 links, 8 flows; verify (1) no link is
        // oversubscribed, (2) every flow has a saturated link on its path
        // whose other flows are not smaller (max-min certificate).
        let caps = [GBPS, 0.5 * GBPS, 0.25 * GBPS, 2.0 * GBPS, 0.75 * GBPS];
        let paths: Vec<Vec<usize>> = vec![
            vec![0, 1],
            vec![1, 2],
            vec![2, 3],
            vec![0, 3],
            vec![4],
            vec![0, 4],
            vec![1, 4],
            vec![2],
        ];
        let rates = max_min_rates(&caps, &paths);
        let mut usage = [0.0f64; 5];
        for (f, path) in paths.iter().enumerate() {
            assert!(rates[f] > 0.0);
            for &l in path {
                usage[l] += rates[f];
            }
        }
        for l in 0..5 {
            assert!(usage[l] <= caps[l] * (1.0 + 1e-9), "link {l} oversubscribed");
        }
        for (f, path) in paths.iter().enumerate() {
            let has_certificate = path.iter().any(|&l| {
                let saturated = usage[l] >= caps[l] * (1.0 - 1e-9);
                let is_max_on_link = paths
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.contains(&l))
                    .all(|(g, _)| rates[g] <= rates[f] * (1.0 + 1e-9));
                saturated && is_max_on_link
            });
            assert!(has_certificate, "flow {f} has no bottleneck certificate");
        }
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn rejects_unknown_link() {
        let _ = max_min_rates(&[GBPS], &[vec![3]]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_capacity() {
        let _ = max_min_rates(&[0.0], &[vec![0]]);
    }
}
