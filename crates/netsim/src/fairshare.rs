//! Max-min fair rate allocation by progressive filling.
//!
//! Given a set of flows, each using a set of links with fixed capacities,
//! the max-min fair allocation repeatedly finds the most contended link,
//! freezes its flows at an equal share of its remaining capacity, and
//! subtracts that share along their paths. The result is the classic
//! water-filling allocation: no flow can increase its rate without
//! decreasing that of a flow with an equal or smaller rate.
//!
//! Three implementations live here:
//!
//! * [`FairshareWorkspace::compute_sparse`] — the production path: a
//!   **bounded-recompute** allocator that touches only the links the
//!   given paths actually cross. Per call it is `O(total path length +
//!   active links · rounds)`, independent of how many links the
//!   network has — the property that makes per-event reallocation
//!   affordable on a 10,000-node topology, where a handful of flows
//!   share a few dozen of the ~20,000 links.
//! * [`FairshareWorkspace::compute`] — the dense workspace path:
//!   scratch state lives in a reusable workspace and the freeze loop
//!   walks per-link flow lists, but every round still scans all links.
//!   Retained as the bit-identity anchor for the sparse path and as
//!   the `bench_snapshot` baseline for the bounded-recompute speedup.
//! * [`max_min_rates_ref`] — the straightforward textbook version this
//!   module originally shipped, retained as the oracle.
//!
//! All three produce **bit-identical** rates: links with no unfrozen
//! flow never contribute to a round's `best_share`, so restricting
//! every scan to the active (path-referenced) links — enumerated in
//! ascending link order, exactly as the dense scan visits them —
//! reproduces the same freeze rounds, the same `best_share` every
//! round, and hence the same clamped subtraction sequence per link.

/// Computes max-min fair rates.
///
/// * `capacities[l]` — capacity of link `l` in bits/second.
/// * `paths[f]` — the link indices flow `f` traverses (may be empty for a
///   loopback flow, which gets `f64::INFINITY`).
///
/// Returns one rate per flow, in bits/second. Convenience wrapper over
/// [`FairshareWorkspace::compute`] for one-shot callers; event loops
/// should hold a workspace to amortize the scratch allocations.
///
/// # Panics
///
/// Panics if a path references an unknown link or a capacity is not
/// positive.
pub fn max_min_rates(capacities: &[f64], paths: &[Vec<usize>]) -> Vec<f64> {
    let mut ws = FairshareWorkspace::new();
    let mut rates = Vec::new();
    let paths32: Vec<Vec<u32>> = paths
        .iter()
        .map(|p| {
            p.iter()
                .map(|&l| u32::try_from(l).expect("link index fits u32"))
                .collect()
        })
        .collect();
    ws.compute(capacities, &paths32, &mut rates);
    rates
}

/// Scratch state for [`FairshareWorkspace::compute`]. Create once, reuse
/// for every allocation; all internal buffers retain their capacity
/// between calls, so a warm workspace allocates nothing.
#[derive(Clone, Debug, Default)]
pub struct FairshareWorkspace {
    /// Remaining capacity per link.
    remaining: Vec<f64>,
    /// Unfrozen flows crossing each link.
    load: Vec<u32>,
    /// Flow → links, CSR: flow `f` uses `path_flat[path_off[f]..path_off[f+1]]`.
    path_off: Vec<u32>,
    path_flat: Vec<u32>,
    /// Link → flows, CSR: link `l` carries `link_flows[link_off[l]..link_off[l+1]]`.
    link_off: Vec<u32>,
    link_flows: Vec<u32>,
    /// Per-flow freeze flag.
    frozen: Vec<bool>,
    /// Bottleneck links of the current round.
    round_links: Vec<u32>,
    /// Sparse-path scratch: original link id → epoch stamp. A link is
    /// "known this call" iff its stamp equals `epoch`.
    link_epoch: Vec<u32>,
    /// Sparse-path scratch: original link id → dense index, valid only
    /// when the epoch stamp matches.
    link_dense: Vec<u32>,
    /// Sparse-path scratch: dense index → original link id, ascending.
    active: Vec<u32>,
    /// Current sparse-call epoch (see `link_epoch`).
    epoch: u32,
}

impl FairshareWorkspace {
    /// An empty workspace.
    pub fn new() -> FairshareWorkspace {
        FairshareWorkspace::default()
    }

    /// Computes max-min fair rates into `rates` (cleared and resized to
    /// one entry per flow). Semantics — including every floating-point
    /// result — match [`max_min_rates_ref`]; see the module docs.
    ///
    /// # Panics
    ///
    /// Panics if a path references an unknown link or a capacity is not
    /// positive.
    pub fn compute<I>(&mut self, capacities: &[f64], paths: I, rates: &mut Vec<f64>)
    where
        I: IntoIterator,
        I::Item: AsRef<[u32]>,
    {
        assert!(
            capacities.iter().all(|&c| c > 0.0 && c.is_finite()),
            "link capacities must be positive and finite"
        );
        let num_links = capacities.len();

        rates.clear();
        self.remaining.clear();
        self.remaining.extend_from_slice(capacities);
        self.load.clear();
        self.load.resize(num_links, 0);
        self.frozen.clear();

        // Pass 1: copy paths into the flow CSR (the only look at the
        // caller's paths), count link loads, and freeze loopback
        // (empty-path) flows at infinity.
        self.path_off.clear();
        self.path_flat.clear();
        self.path_off.push(0);
        let mut unfrozen_left = 0usize;
        for path in paths {
            let path = path.as_ref();
            for &l in path {
                assert!((l as usize) < num_links, "path references unknown link {l}");
                self.load[l as usize] += 1;
                self.path_flat.push(l);
            }
            self.path_off.push(self.path_flat.len() as u32);
            if path.is_empty() {
                rates.push(f64::INFINITY);
                self.frozen.push(true);
            } else {
                rates.push(0.0);
                self.frozen.push(false);
                unfrozen_left += 1;
            }
        }
        let num_flows = rates.len();

        // Pass 2: invert into the link CSR by counting sort, so the
        // freeze loop can enumerate exactly the flows crossing a
        // bottleneck link (in ascending flow order).
        self.link_off.clear();
        self.link_off.resize(num_links + 1, 0);
        for &l in &self.path_flat {
            self.link_off[l as usize + 1] += 1;
        }
        for l in 0..num_links {
            self.link_off[l + 1] += self.link_off[l];
        }
        self.link_flows.clear();
        self.link_flows.resize(self.path_flat.len(), 0);
        {
            // `load` already holds the final counts; use a scratch cursor
            // per link inside round_links' buffer to avoid another vec.
            let cursor = &mut self.round_links;
            cursor.clear();
            cursor.extend_from_slice(&self.link_off[..num_links]);
            for f in 0..num_flows {
                let (s, e) = (self.path_off[f] as usize, self.path_off[f + 1] as usize);
                for &l in &self.path_flat[s..e] {
                    let c = &mut cursor[l as usize];
                    self.link_flows[*c as usize] = f as u32;
                    *c += 1;
                }
            }
        }

        // Progressive filling. Each round: find the smallest per-flow
        // share among loaded links, mark every link at that share (up to
        // fp tolerance) as a bottleneck, and freeze the flows crossing
        // them — identical rounds, in the identical order, as the
        // reference implementation.
        while unfrozen_left > 0 {
            let mut best_share = f64::INFINITY;
            for l in 0..num_links {
                if self.load[l] > 0 {
                    let share = self.remaining[l] / self.load[l] as f64;
                    if share < best_share {
                        best_share = share;
                    }
                }
            }
            debug_assert!(best_share.is_finite(), "no bottleneck among loaded links");
            // A small relative tolerance groups links whose shares are
            // equal up to floating-point noise.
            let tol = best_share * 1e-12;
            self.round_links.clear();
            for l in 0..num_links {
                if self.load[l] > 0 && self.remaining[l] / self.load[l] as f64 <= best_share + tol {
                    self.round_links.push(l as u32);
                }
            }
            for i in 0..self.round_links.len() {
                let l = self.round_links[i] as usize;
                let (s, e) = (self.link_off[l] as usize, self.link_off[l + 1] as usize);
                for j in s..e {
                    let f = self.link_flows[j] as usize;
                    if self.frozen[f] {
                        continue;
                    }
                    self.frozen[f] = true;
                    rates[f] = best_share;
                    unfrozen_left -= 1;
                    let (ps, pe) = (self.path_off[f] as usize, self.path_off[f + 1] as usize);
                    for &pl in &self.path_flat[ps..pe] {
                        let r = &mut self.remaining[pl as usize];
                        *r = (*r - best_share).max(0.0);
                        self.load[pl as usize] -= 1;
                    }
                }
            }
        }
    }

    /// Bounded-recompute max-min fair rates: identical semantics — and
    /// identical floating-point results — to [`FairshareWorkspace::compute`],
    /// but every per-round scan walks only the links the given paths
    /// cross. Cost per call is `O(total path length + active links ·
    /// rounds)` instead of `O(num links · rounds)`; `capacities` is
    /// only indexed at active links, never traversed.
    ///
    /// The one scan proportional to the full link count is a lazy,
    /// amortized resize of two epoch-stamped lookup tables the first
    /// time a larger link id appears; steady-state calls allocate and
    /// clear nothing.
    ///
    /// # Panics
    ///
    /// Panics if a path references an unknown link (`>= capacities.len()`)
    /// or the capacity of a *referenced* link is not positive and
    /// finite. (Unreferenced links' capacities are never inspected —
    /// the price of never touching them.)
    pub fn compute_sparse<I>(&mut self, capacities: &[f64], paths: I, rates: &mut Vec<f64>)
    where
        I: IntoIterator,
        I::Item: AsRef<[u32]>,
    {
        let num_links = capacities.len();
        if self.link_epoch.len() < num_links {
            self.link_epoch.resize(num_links, 0);
            self.link_dense.resize(num_links, 0);
        }
        if self.epoch == u32::MAX {
            self.link_epoch.iter_mut().for_each(|e| *e = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        let epoch = self.epoch;

        rates.clear();
        self.frozen.clear();
        self.active.clear();

        // Pass 1: copy paths into the flow CSR (original link ids for
        // now), collect the set of referenced links, and freeze
        // loopback (empty-path) flows at infinity.
        self.path_off.clear();
        self.path_flat.clear();
        self.path_off.push(0);
        let mut unfrozen_left = 0usize;
        for path in paths {
            let path = path.as_ref();
            for &l in path {
                assert!((l as usize) < num_links, "path references unknown link {l}");
                if self.link_epoch[l as usize] != epoch {
                    self.link_epoch[l as usize] = epoch;
                    self.active.push(l);
                }
                self.path_flat.push(l);
            }
            self.path_off.push(self.path_flat.len() as u32);
            if path.is_empty() {
                rates.push(f64::INFINITY);
                self.frozen.push(true);
            } else {
                rates.push(0.0);
                self.frozen.push(false);
                unfrozen_left += 1;
            }
        }
        let num_flows = rates.len();

        // Dense link ids in ascending original order, so every scan
        // below visits links exactly as the dense path's `0..num_links`
        // loop would.
        self.active.sort_unstable();
        let num_active = self.active.len();
        self.remaining.clear();
        self.load.clear();
        self.load.resize(num_active, 0);
        for (d, &l) in self.active.iter().enumerate() {
            let cap = capacities[l as usize];
            assert!(
                cap > 0.0 && cap.is_finite(),
                "link capacities must be positive and finite"
            );
            self.link_dense[l as usize] = d as u32;
            self.remaining.push(cap);
        }

        // Translate the flow CSR to dense ids and count link loads.
        for l in &mut self.path_flat {
            let d = self.link_dense[*l as usize];
            self.load[d as usize] += 1;
            *l = d;
        }

        // Pass 2: invert into the link CSR by counting sort (ascending
        // flow order per link), as in the dense path.
        self.link_off.clear();
        self.link_off.resize(num_active + 1, 0);
        for &l in &self.path_flat {
            self.link_off[l as usize + 1] += 1;
        }
        for l in 0..num_active {
            self.link_off[l + 1] += self.link_off[l];
        }
        self.link_flows.clear();
        self.link_flows.resize(self.path_flat.len(), 0);
        {
            let cursor = &mut self.round_links;
            cursor.clear();
            cursor.extend_from_slice(&self.link_off[..num_active]);
            for f in 0..num_flows {
                let (s, e) = (self.path_off[f] as usize, self.path_off[f + 1] as usize);
                for &l in &self.path_flat[s..e] {
                    let c = &mut cursor[l as usize];
                    self.link_flows[*c as usize] = f as u32;
                    *c += 1;
                }
            }
        }

        // Progressive filling over the active links only. Links outside
        // `active` carry no flow, so the dense path's scans skip them
        // via the `load > 0` guard; restricting the loop to `active`
        // removes them from the scan without changing a single
        // floating-point operation.
        while unfrozen_left > 0 {
            let mut best_share = f64::INFINITY;
            for l in 0..num_active {
                if self.load[l] > 0 {
                    let share = self.remaining[l] / self.load[l] as f64;
                    if share < best_share {
                        best_share = share;
                    }
                }
            }
            debug_assert!(best_share.is_finite(), "no bottleneck among loaded links");
            let tol = best_share * 1e-12;
            self.round_links.clear();
            for l in 0..num_active {
                if self.load[l] > 0 && self.remaining[l] / self.load[l] as f64 <= best_share + tol {
                    self.round_links.push(l as u32);
                }
            }
            for i in 0..self.round_links.len() {
                let l = self.round_links[i] as usize;
                let (s, e) = (self.link_off[l] as usize, self.link_off[l + 1] as usize);
                for j in s..e {
                    let f = self.link_flows[j] as usize;
                    if self.frozen[f] {
                        continue;
                    }
                    self.frozen[f] = true;
                    rates[f] = best_share;
                    unfrozen_left -= 1;
                    let (ps, pe) = (self.path_off[f] as usize, self.path_off[f + 1] as usize);
                    for &pl in &self.path_flat[ps..pe] {
                        let r = &mut self.remaining[pl as usize];
                        *r = (*r - best_share).max(0.0);
                        self.load[pl as usize] -= 1;
                    }
                }
            }
        }
    }
}

/// Reference implementation of [`max_min_rates`]: allocates its scratch
/// per call and re-scans every flow each freeze round. Retained as the
/// oracle for property tests and the baseline for `bench_snapshot`.
///
/// # Panics
///
/// Panics if a path references an unknown link or a capacity is not
/// positive.
pub fn max_min_rates_ref(capacities: &[f64], paths: &[Vec<usize>]) -> Vec<f64> {
    assert!(
        capacities.iter().all(|&c| c > 0.0 && c.is_finite()),
        "link capacities must be positive and finite"
    );
    let num_links = capacities.len();
    let num_flows = paths.len();
    for path in paths {
        for &l in path {
            assert!(l < num_links, "path references unknown link {l}");
        }
    }

    let mut rates = vec![0.0f64; num_flows];
    let mut frozen = vec![false; num_flows];
    let mut remaining: Vec<f64> = capacities.to_vec();
    // Number of unfrozen flows crossing each link.
    let mut load = vec![0usize; num_links];
    let mut unfrozen_left = 0usize;
    for (f, path) in paths.iter().enumerate() {
        if path.is_empty() {
            rates[f] = f64::INFINITY;
            frozen[f] = true;
        } else {
            unfrozen_left += 1;
            for &l in path {
                load[l] += 1;
            }
        }
    }

    while unfrozen_left > 0 {
        // The bottleneck link: smallest per-flow share among loaded links.
        let mut best_share = f64::INFINITY;
        for l in 0..num_links {
            if load[l] > 0 {
                let share = remaining[l] / load[l] as f64;
                if share < best_share {
                    best_share = share;
                }
            }
        }
        debug_assert!(best_share.is_finite(), "no bottleneck among loaded links");
        // Freeze every unfrozen flow crossing a bottleneck link. A small
        // relative tolerance groups links whose shares are equal up to
        // floating-point noise.
        let tol = best_share * 1e-12;
        let mut bottleneck = vec![false; num_links];
        for l in 0..num_links {
            if load[l] > 0 && remaining[l] / load[l] as f64 <= best_share + tol {
                bottleneck[l] = true;
            }
        }
        for f in 0..num_flows {
            if frozen[f] || !paths[f].iter().any(|&l| bottleneck[l]) {
                continue;
            }
            rates[f] = best_share;
            frozen[f] = true;
            unfrozen_left -= 1;
            for &l in &paths[f] {
                remaining[l] = (remaining[l] - best_share).max(0.0);
                load[l] -= 1;
            }
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    const GBPS: f64 = 1e9;

    #[test]
    fn single_flow_gets_full_bottleneck() {
        let rates = max_min_rates(&[GBPS, 0.1 * GBPS], &[vec![0, 1]]);
        assert_eq!(rates, vec![0.1 * GBPS]);
    }

    #[test]
    fn equal_flows_split_equally() {
        // The paper's motivating scenario: two degraded reads sharing one
        // rack downlink each get half the bandwidth.
        let rates = max_min_rates(&[0.1 * GBPS], &[vec![0], vec![0]]);
        assert!((rates[0] - 0.05 * GBPS).abs() < 1.0);
        assert!((rates[1] - 0.05 * GBPS).abs() < 1.0);
    }

    #[test]
    fn water_filling_redistribution() {
        // Link 0: 1 Gbps shared by flows A and B; flow B also crosses
        // link 1 at 0.2 Gbps. B is frozen at 0.2; A then gets 0.8.
        let rates = max_min_rates(&[GBPS, 0.2 * GBPS], &[vec![0], vec![0, 1]]);
        assert!((rates[1] - 0.2 * GBPS).abs() < 1.0, "B {}", rates[1]);
        assert!((rates[0] - 0.8 * GBPS).abs() < 1.0, "A {}", rates[0]);
    }

    #[test]
    fn loopback_flows_are_infinite() {
        let rates = max_min_rates(&[GBPS], &[vec![], vec![0]]);
        assert_eq!(rates[0], f64::INFINITY);
        assert_eq!(rates[1], GBPS);
    }

    #[test]
    fn no_flows() {
        assert!(max_min_rates(&[GBPS], &[]).is_empty());
    }

    #[test]
    fn allocation_is_feasible_and_pareto() {
        // Random-ish topology: 5 links, 8 flows; verify (1) no link is
        // oversubscribed, (2) every flow has a saturated link on its path
        // whose other flows are not smaller (max-min certificate).
        let caps = [GBPS, 0.5 * GBPS, 0.25 * GBPS, 2.0 * GBPS, 0.75 * GBPS];
        let paths: Vec<Vec<usize>> = vec![
            vec![0, 1],
            vec![1, 2],
            vec![2, 3],
            vec![0, 3],
            vec![4],
            vec![0, 4],
            vec![1, 4],
            vec![2],
        ];
        let rates = max_min_rates(&caps, &paths);
        let mut usage = [0.0f64; 5];
        for (f, path) in paths.iter().enumerate() {
            assert!(rates[f] > 0.0);
            for &l in path {
                usage[l] += rates[f];
            }
        }
        for l in 0..5 {
            assert!(
                usage[l] <= caps[l] * (1.0 + 1e-9),
                "link {l} oversubscribed"
            );
        }
        for (f, path) in paths.iter().enumerate() {
            let has_certificate = path.iter().any(|&l| {
                let saturated = usage[l] >= caps[l] * (1.0 - 1e-9);
                let is_max_on_link = paths
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.contains(&l))
                    .all(|(g, _)| rates[g] <= rates[f] * (1.0 + 1e-9));
                saturated && is_max_on_link
            });
            assert!(has_certificate, "flow {f} has no bottleneck certificate");
        }
    }

    #[test]
    fn workspace_matches_reference_bit_for_bit() {
        // A contended mesh with ties, loopbacks, and repeated links.
        let caps = [
            GBPS,
            0.5 * GBPS,
            0.25 * GBPS,
            2.0 * GBPS,
            0.75 * GBPS,
            0.1 * GBPS,
        ];
        let paths: Vec<Vec<usize>> = vec![
            vec![0, 1],
            vec![],
            vec![1, 2],
            vec![2, 3],
            vec![0, 3],
            vec![4],
            vec![0, 4],
            vec![1, 4],
            vec![2],
            vec![5],
            vec![5],
            vec![0, 5],
            vec![],
        ];
        let reference = max_min_rates_ref(&caps, &paths);
        let via_workspace = max_min_rates(&caps, &paths);
        let ref_bits: Vec<u64> = reference.iter().map(|r| r.to_bits()).collect();
        let ws_bits: Vec<u64> = via_workspace.iter().map(|r| r.to_bits()).collect();
        assert_eq!(ref_bits, ws_bits);
    }

    #[test]
    fn sparse_matches_dense_bit_for_bit() {
        // Same contended mesh as the dense/reference pin, plus a huge
        // capacity vector where almost every link is untouched.
        let mut caps = vec![3.3 * GBPS; 4096];
        for (l, c) in [
            (0usize, GBPS),
            (100, 0.5 * GBPS),
            (2000, 0.25 * GBPS),
            (2001, 2.0 * GBPS),
            (4000, 0.75 * GBPS),
            (4095, 0.1 * GBPS),
        ] {
            caps[l] = c;
        }
        let paths: Vec<Vec<u32>> = vec![
            vec![0, 100],
            vec![],
            vec![100, 2000],
            vec![2000, 2001],
            vec![0, 2001],
            vec![4000],
            vec![0, 4000],
            vec![100, 4000],
            vec![2000],
            vec![4095],
            vec![4095],
            vec![0, 4095],
            vec![],
        ];
        let mut ws = FairshareWorkspace::new();
        let mut dense = Vec::new();
        ws.compute(&caps, &paths, &mut dense);
        let mut sparse = Vec::new();
        ws.compute_sparse(&caps, &paths, &mut sparse);
        let dense_bits: Vec<u64> = dense.iter().map(|r| r.to_bits()).collect();
        let sparse_bits: Vec<u64> = sparse.iter().map(|r| r.to_bits()).collect();
        assert_eq!(dense_bits, sparse_bits);
    }

    #[test]
    fn sparse_never_reads_untouched_capacities() {
        // Untouched links may carry garbage capacities (NaN, zero):
        // the sparse path must not inspect them.
        let caps = [GBPS, f64::NAN, 0.0, -5.0, 0.5 * GBPS];
        let paths: Vec<Vec<u32>> = vec![vec![0, 4], vec![4]];
        let mut ws = FairshareWorkspace::new();
        let mut rates = Vec::new();
        ws.compute_sparse(&caps, &paths, &mut rates);
        let mut expected = Vec::new();
        ws.compute(&[GBPS, GBPS, GBPS, GBPS, 0.5 * GBPS], &paths, &mut expected);
        assert_eq!(rates, expected);
    }

    #[test]
    fn sparse_reuse_is_clean_across_calls_and_epochs() {
        let mut ws = FairshareWorkspace::new();
        let mut rates = Vec::new();
        ws.compute_sparse(&[GBPS, 0.5 * GBPS], &[vec![0u32, 1], vec![1]], &mut rates);
        let first = rates.clone();
        // A different problem over a larger link space.
        ws.compute_sparse(&vec![GBPS; 64], &[vec![63u32]], &mut rates);
        assert_eq!(rates, vec![GBPS]);
        // Shrinking back must not see stale dense mappings.
        ws.compute_sparse(&[GBPS, 0.5 * GBPS], &[vec![0u32, 1], vec![1]], &mut rates);
        assert_eq!(rates, first);
        // No flows at all.
        ws.compute_sparse(&[GBPS], core::iter::empty::<&[u32]>(), &mut rates);
        assert!(rates.is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn sparse_rejects_unknown_link() {
        let mut ws = FairshareWorkspace::new();
        let mut rates = Vec::new();
        ws.compute_sparse(&[GBPS], &[vec![3u32]], &mut rates);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn sparse_rejects_zero_capacity_on_touched_link() {
        let mut ws = FairshareWorkspace::new();
        let mut rates = Vec::new();
        ws.compute_sparse(&[0.0], &[vec![0u32]], &mut rates);
    }

    #[test]
    fn workspace_reuse_is_clean_across_calls() {
        let mut ws = FairshareWorkspace::new();
        let mut rates = vec![99.0; 7];
        ws.compute(&[GBPS, 0.5 * GBPS], &[vec![0u32, 1], vec![1]], &mut rates);
        assert_eq!(rates.len(), 2);
        let first = rates.clone();
        // A different, smaller problem must not see stale state.
        ws.compute(&[GBPS], &[vec![0u32]], &mut rates);
        assert_eq!(rates, vec![GBPS]);
        // And re-running the first problem reproduces it exactly.
        ws.compute(&[GBPS, 0.5 * GBPS], &[vec![0u32, 1], vec![1]], &mut rates);
        assert_eq!(rates, first);
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn rejects_unknown_link() {
        let _ = max_min_rates(&[GBPS], &[vec![3]]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_capacity() {
        let _ = max_min_rates(&[0.0], &[vec![0]]);
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn reference_rejects_unknown_link() {
        let _ = max_min_rates_ref(&[GBPS], &[vec![3]]);
    }
}
