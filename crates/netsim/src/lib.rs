//! `netsim` — a flow-level network simulator for two-level (rack/core)
//! cluster topologies with max-min fair bandwidth sharing.
//!
//! The paper's CSIM simulator models the network as links that transfers
//! hold for a duration; its motivating example divides a rack's download
//! bandwidth among concurrent degraded reads ("this doubles the download
//! time, from 10s to 20s"). This crate reproduces that behaviour exactly
//! with a fluid-flow model: every active flow traverses a path of links
//! (source NIC → source rack uplink → destination rack downlink →
//! destination NIC), and rates are assigned by progressive filling
//! (max-min fairness). Rates only change when a flow starts or ends, so
//! between those instants progress is linear and completion times are
//! exact.
//!
//! # Example
//!
//! ```
//! use netsim::{NetConfig, Network};
//! use simkit::time::SimTime;
//!
//! // Two racks of two nodes, 1 Gbps everywhere.
//! let mut net = Network::new(&[2, 2], NetConfig::uniform(1_000_000_000));
//! let now = SimTime::ZERO;
//! let f = net.start_flow(now, 0, 2, 128 * 1024 * 1024); // cross-rack
//! let done_at = net.next_completion().unwrap();
//! let finished = net.complete_flows(done_at);
//! assert_eq!(finished, vec![f]);
//! ```

pub mod fairshare;
pub mod network;

pub use network::{
    FlowId, FlowLogEntry, FlowLogKind, FlowRoute, FlowStats, NetConfig, Network, UtilizationSample,
};
