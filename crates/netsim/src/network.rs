//! The fluid-flow network: tracks active flows over a two-level tree
//! topology, advances their progress piecewise-linearly, and reports
//! completions.
//!
//! # Topology
//!
//! The link layout matches the paper's Figure 1:
//!
//! ```text
//!                    core switch (unconstrained)
//!                   /                         \
//!        rack 0 up/down (W)           rack 1 up/down (W)
//!         /        \                    /         \
//!   node NICs up/down             node NICs up/down
//! ```
//!
//! An intra-rack flow traverses `[src NIC up, dst NIC down]`; an
//! inter-rack flow additionally crosses `[src rack uplink, dst rack
//! downlink]`. The rack downlink of capacity `W` is the paper's "download
//! bandwidth of each rack".

use std::collections::HashMap;

use simkit::time::{SimDuration, SimTime};

use crate::fairshare::FairshareWorkspace;

/// Identifies an active or finished flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(u64);

impl FlowId {
    /// The raw id, for logging.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// Link capacities for the two-level tree.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetConfig {
    /// Capacity of each node NIC (both directions), bits/second.
    pub node_bps: u64,
    /// Capacity of each rack uplink and downlink (the paper's `W`),
    /// bits/second.
    pub rack_bps: u64,
}

impl NetConfig {
    /// The same capacity on every link.
    pub fn uniform(bps: u64) -> NetConfig {
        NetConfig {
            node_bps: bps,
            rack_bps: bps,
        }
    }

    /// The paper's default: 1 Gbps NICs and rack links.
    pub fn gigabit() -> NetConfig {
        NetConfig::uniform(1_000_000_000)
    }
}

/// Completion record for a finished flow.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowStats {
    /// When the flow was started.
    pub started: SimTime,
    /// When the flow finished (or was cancelled).
    pub finished: SimTime,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Source node index.
    pub src: usize,
    /// Destination node index.
    pub dst: usize,
}

impl FlowStats {
    /// Transfer duration.
    pub fn duration(&self) -> SimDuration {
        self.finished.duration_since(self.started)
    }
}

/// A flow's route, stored inline: every route in the two-level tree is
/// at most 4 links (`src NIC up, src rack up, dst rack down, dst NIC
/// down`), so no heap allocation is ever needed.
#[derive(Clone, Copy, Debug)]
struct Path {
    len: u8,
    links: [u32; 4],
}

impl Path {
    const EMPTY: Path = Path {
        len: 0,
        links: [0; 4],
    };

    fn of(links: &[usize]) -> Path {
        let mut p = Path::EMPTY;
        for &l in links {
            p.links[p.len as usize] = u32::try_from(l).expect("link index fits u32");
            p.len += 1;
        }
        p
    }

    fn as_slice(&self) -> &[u32] {
        &self.links[..self.len as usize]
    }
}

impl AsRef<[u32]> for Path {
    fn as_ref(&self) -> &[u32] {
        self.as_slice()
    }
}

/// A flow's route as the flow event log exposes it: the link indices the
/// flow traverses (empty for loopback).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowRoute {
    len: u8,
    links: [u32; 4],
}

impl FlowRoute {
    /// The traversed link indices.
    pub fn as_slice(&self) -> &[u32] {
        &self.links[..self.len as usize]
    }
}

/// What happened to a flow, as recorded by the opt-in flow event log.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FlowLogKind {
    /// The flow was registered.
    Started {
        /// Source node index.
        src: usize,
        /// Destination node index.
        dst: usize,
        /// Payload size in bytes.
        bytes: u64,
        /// Links the flow traverses.
        route: FlowRoute,
    },
    /// Max-min reallocation assigned the flow a new rate. Loopback flows
    /// (infinite rate) never log rate changes.
    RateChanged {
        /// The new rate in bits per second.
        rate_bps: f64,
    },
    /// The flow left the network.
    Finished {
        /// True if cancelled before delivering all bytes.
        cancelled: bool,
    },
}

/// One timestamped entry of the flow event log.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowLogEntry {
    /// When it happened.
    pub at: SimTime,
    /// The flow concerned.
    pub flow: FlowId,
    /// What happened.
    pub kind: FlowLogKind,
}

#[derive(Clone, Debug)]
struct ActiveFlow {
    id: FlowId,
    src: usize,
    dst: usize,
    bytes: u64,
    remaining_bits: f64,
    rate_bps: f64,
    path: Path,
    started: SimTime,
}

/// One entry of the utilization log: over `(since, until]`, the rack
/// downlinks moved `rack_down_bits` in aggregate out of
/// `rack_down_capacity_bits` possible.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UtilizationSample {
    /// Window start.
    pub since: SimTime,
    /// Window end.
    pub until: SimTime,
    /// Bits that crossed any rack downlink during the window.
    pub rack_down_bits: f64,
    /// Aggregate rack-downlink capacity of the window.
    pub rack_down_capacity_bits: f64,
}

impl UtilizationSample {
    /// Fraction of aggregate rack-downlink capacity in use (0..=1).
    pub fn fraction(&self) -> f64 {
        if self.rack_down_capacity_bits <= 0.0 {
            0.0
        } else {
            (self.rack_down_bits / self.rack_down_capacity_bits).min(1.0)
        }
    }
}

/// The live network state. See the [crate docs](crate) for the model.
#[derive(Clone, Debug)]
pub struct Network {
    /// rack index of each node.
    node_rack: Vec<usize>,
    capacities: Vec<f64>,
    num_racks: usize,
    flows: Vec<ActiveFlow>,
    // detlint::allow(D1, reason = "lookup-only FlowId->slot index, never iterated; O(1) on the reallocate hot path")
    index_of: HashMap<FlowId, usize>,
    next_id: u64,
    last_advanced: SimTime,
    /// Cached earliest completion given current rates.
    next_done: Option<SimTime>,
    /// When set, every advance appends a rack-downlink utilization
    /// sample (the paper's "unused network resources" evidence).
    utilization_log: Option<Vec<UtilizationSample>>,
    /// When set, flow starts, rate changes and completions append
    /// entries here for the observability layer to drain. `None` (the
    /// default) keeps the hot paths branch-only, preserving bit-identical
    /// untraced runs.
    flow_log: Option<Vec<FlowLogEntry>>,
    rack_bps: f64,
    /// Reused scratch for rate reallocation — flows start/finish on
    /// every simulated transfer, so this path must not allocate.
    fairshare: FairshareWorkspace,
    rates_buf: Vec<f64>,
}

/// Residual bits below which a flow counts as finished (absorbs the
/// microsecond-rounding of completion times).
const DONE_EPS_BITS: f64 = 1e-3;

impl Network {
    /// Builds the network for racks of the given sizes.
    ///
    /// Link indexing: for node `i`, uplink `2i`, downlink `2i+1`; for
    /// rack `r`, uplink `2N + 2r`, downlink `2N + 2r + 1`.
    ///
    /// # Panics
    ///
    /// Panics if there are no nodes or a capacity is zero.
    pub fn new(rack_sizes: &[usize], config: NetConfig) -> Network {
        assert!(config.node_bps > 0 && config.rack_bps > 0, "zero capacity");
        let mut node_rack = Vec::new();
        for (r, &size) in rack_sizes.iter().enumerate() {
            for _ in 0..size {
                node_rack.push(r);
            }
        }
        assert!(!node_rack.is_empty(), "network with no nodes");
        let num_nodes = node_rack.len();
        let num_racks = rack_sizes.len();
        let mut capacities = Vec::with_capacity(2 * num_nodes + 2 * num_racks);
        capacities.extend(std::iter::repeat_n(config.node_bps as f64, 2 * num_nodes));
        capacities.extend(std::iter::repeat_n(config.rack_bps as f64, 2 * num_racks));
        Network {
            node_rack,
            capacities,
            num_racks,
            flows: Vec::new(),
            // detlint::allow(D1, reason = "see the field declaration: lookup-only index")
            index_of: HashMap::new(),
            next_id: 0,
            last_advanced: SimTime::ZERO,
            next_done: None,
            utilization_log: None,
            flow_log: None,
            rack_bps: config.rack_bps as f64,
            fairshare: FairshareWorkspace::new(),
            rates_buf: Vec::new(),
        }
    }

    /// Starts recording rack-downlink utilization samples on every
    /// network advance. Call before the first flow starts.
    pub fn enable_utilization_log(&mut self) {
        if self.utilization_log.is_none() {
            self.utilization_log = Some(Vec::new());
        }
    }

    /// The recorded utilization samples (empty unless
    /// [`Network::enable_utilization_log`] was called).
    pub fn utilization_log(&self) -> &[UtilizationSample] {
        self.utilization_log.as_deref().unwrap_or(&[])
    }

    /// Starts recording per-flow lifecycle entries (start, rate change,
    /// finish) for the observability layer. Call before the first flow
    /// starts; logging stays enabled for the network's lifetime.
    pub fn enable_flow_log(&mut self) {
        if self.flow_log.is_none() {
            self.flow_log = Some(Vec::new());
        }
    }

    /// Drains the accumulated flow log entries, in the order they were
    /// recorded. Returns an empty vector unless
    /// [`Network::enable_flow_log`] was called.
    pub fn take_flow_log(&mut self) -> Vec<FlowLogEntry> {
        match &mut self.flow_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.node_rack.len()
    }

    /// Number of racks.
    pub fn num_racks(&self) -> usize {
        self.num_racks
    }

    /// Number of currently active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// The `(src, dst)` node pair of an active flow, or `None` if the
    /// flow has finished or was cancelled. Lets callers that track
    /// flows by id (e.g. a scheduler reacting to a node failure) find
    /// every transfer touching a given node without shadowing endpoint
    /// state of their own.
    pub fn flow_endpoints(&self, id: FlowId) -> Option<(usize, usize)> {
        let idx = *self.index_of.get(&id)?;
        let flow = &self.flows[idx];
        Some((flow.src, flow.dst))
    }

    fn path_for(&self, src: usize, dst: usize) -> Path {
        assert!(
            src < self.num_nodes() && dst < self.num_nodes(),
            "unknown node"
        );
        if src == dst {
            return Path::EMPTY; // loopback: no network traversal
        }
        let n = self.num_nodes();
        let (sr, dr) = (self.node_rack[src], self.node_rack[dst]);
        if sr == dr {
            Path::of(&[2 * src, 2 * dst + 1])
        } else {
            Path::of(&[2 * src, 2 * n + 2 * sr, 2 * n + 2 * dr + 1, 2 * dst + 1])
        }
    }

    /// Registers a flow without advancing time or reallocating rates —
    /// the shared tail of [`Network::start_flow`] and
    /// [`Network::start_flows`].
    fn push_flow(&mut self, now: SimTime, src: usize, dst: usize, bytes: u64) -> FlowId {
        let id = FlowId(self.next_id);
        self.next_id += 1;
        let path = self.path_for(src, dst);
        if let Some(log) = &mut self.flow_log {
            log.push(FlowLogEntry {
                at: now,
                flow: id,
                kind: FlowLogKind::Started {
                    src,
                    dst,
                    bytes,
                    route: FlowRoute {
                        len: path.len,
                        links: path.links,
                    },
                },
            });
        }
        self.index_of.insert(id, self.flows.len());
        self.flows.push(ActiveFlow {
            id,
            src,
            dst,
            bytes,
            remaining_bits: (bytes as f64) * 8.0,
            rate_bps: 0.0,
            path,
            started: now,
        });
        id
    }

    /// Starts a flow of `bytes` from `src` to `dst` at time `now`.
    /// Loopback flows (`src == dst`) complete at `now`.
    ///
    /// # Panics
    ///
    /// Panics if a node index is unknown or `now` precedes the last
    /// network update.
    pub fn start_flow(&mut self, now: SimTime, src: usize, dst: usize, bytes: u64) -> FlowId {
        self.advance_to(now);
        let id = self.push_flow(now, src, dst, bytes);
        self.reallocate(now);
        id
    }

    /// Starts several flows at the same instant with a single rate
    /// reallocation — equivalent to (but much cheaper than) calling
    /// [`Network::start_flow`] once per `(src, dst, bytes)` triple.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Network::start_flow`].
    pub fn start_flows(&mut self, now: SimTime, specs: &[(usize, usize, u64)]) -> Vec<FlowId> {
        self.advance_to(now);
        let mut ids = Vec::with_capacity(specs.len());
        for &(src, dst, bytes) in specs {
            ids.push(self.push_flow(now, src, dst, bytes));
        }
        if !ids.is_empty() {
            self.reallocate(now);
        }
        ids
    }

    /// Cancels an active flow, returning its stats if it existed.
    pub fn cancel_flow(&mut self, now: SimTime, id: FlowId) -> Option<FlowStats> {
        self.advance_to(now);
        let idx = self.index_of.remove(&id)?;
        let flow = self.flows.swap_remove(idx);
        if let Some(moved) = self.flows.get(idx) {
            self.index_of.insert(moved.id, idx);
        }
        if let Some(log) = &mut self.flow_log {
            log.push(FlowLogEntry {
                at: now,
                flow: id,
                kind: FlowLogKind::Finished { cancelled: true },
            });
        }
        self.reallocate(now);
        Some(FlowStats {
            started: flow.started,
            finished: now,
            bytes: flow.bytes,
            src: flow.src,
            dst: flow.dst,
        })
    }

    /// The earliest instant at which some active flow completes, if any.
    /// Completion times are rounded **up** to a whole microsecond, so
    /// advancing to this instant always finishes the flow.
    pub fn next_completion(&self) -> Option<SimTime> {
        self.next_done
    }

    /// Advances the fluid model to `now` and removes every flow that has
    /// finished, returning their stats in deterministic (start) order.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the last network update.
    pub fn complete_flows(&mut self, now: SimTime) -> Vec<FlowId> {
        self.drain_finished(now).into_iter().map(|s| s.0).collect()
    }

    /// Like [`Network::complete_flows`] but returning full stats.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the last network update.
    pub fn drain_finished(&mut self, now: SimTime) -> Vec<(FlowId, FlowStats)> {
        self.advance_to(now);
        let mut done: Vec<(FlowId, FlowStats)> = Vec::new();
        let mut i = 0;
        while i < self.flows.len() {
            if self.flows[i].remaining_bits <= DONE_EPS_BITS {
                let flow = self.flows.swap_remove(i);
                self.index_of.remove(&flow.id);
                if let Some(moved) = self.flows.get(i) {
                    self.index_of.insert(moved.id, i);
                }
                done.push((
                    flow.id,
                    FlowStats {
                        started: flow.started,
                        finished: now,
                        bytes: flow.bytes,
                        src: flow.src,
                        dst: flow.dst,
                    },
                ));
            } else {
                i += 1;
            }
        }
        done.sort_by_key(|(id, _)| *id);
        if let Some(log) = &mut self.flow_log {
            for (id, _) in &done {
                log.push(FlowLogEntry {
                    at: now,
                    flow: *id,
                    kind: FlowLogKind::Finished { cancelled: false },
                });
            }
        }
        if !done.is_empty() {
            self.reallocate(now);
        }
        done
    }

    fn advance_to(&mut self, now: SimTime) {
        assert!(
            now >= self.last_advanced,
            "network time went backwards: {now} < {}",
            self.last_advanced
        );
        let dt = now.duration_since(self.last_advanced).as_secs_f64();
        if dt > 0.0 {
            let mut rack_down_bits = 0.0f64;
            let n = self.num_nodes();
            for flow in &mut self.flows {
                if flow.rate_bps.is_infinite() {
                    flow.remaining_bits = 0.0;
                } else {
                    flow.remaining_bits = (flow.remaining_bits - flow.rate_bps * dt).max(0.0);
                    if self.utilization_log.is_some()
                        && flow
                            .path
                            .as_slice()
                            .iter()
                            .any(|&l| l as usize >= 2 * n && l % 2 == 1)
                    {
                        rack_down_bits += flow.rate_bps * dt;
                    }
                }
            }
            if let Some(log) = &mut self.utilization_log {
                log.push(UtilizationSample {
                    since: self.last_advanced,
                    until: now,
                    rack_down_bits,
                    rack_down_capacity_bits: self.num_racks as f64 * self.rack_bps * dt,
                });
            }
        }
        self.last_advanced = now;
    }

    fn reallocate(&mut self, now: SimTime) {
        // Bounded recompute: only the links current flows cross are
        // touched, which keeps per-event reallocation independent of
        // the topology's total link count (bit-identical to the dense
        // `compute`; see fairshare module docs).
        self.fairshare.compute_sparse(
            &self.capacities,
            self.flows.iter().map(|f| &f.path),
            &mut self.rates_buf,
        );
        let mut earliest: Option<SimTime> = None;
        for (flow, &rate) in self.flows.iter_mut().zip(self.rates_buf.iter()) {
            // Fairshare rates are a deterministic function of the flow
            // set, so exact f64 comparison suffices to detect changes.
            if rate != flow.rate_bps && rate.is_finite() {
                if let Some(log) = &mut self.flow_log {
                    log.push(FlowLogEntry {
                        at: now,
                        flow: flow.id,
                        kind: FlowLogKind::RateChanged { rate_bps: rate },
                    });
                }
            }
            flow.rate_bps = rate;
            if rate.is_infinite() {
                // Loopback flows never traverse a link; they complete at once.
                flow.remaining_bits = 0.0;
            }
            let done_at = if flow.remaining_bits <= DONE_EPS_BITS {
                now
            } else {
                let secs = flow.remaining_bits / rate;
                let micros = (secs * 1e6).ceil() as u64;
                now + SimDuration::from_micros(micros.max(1))
            };
            earliest = Some(match earliest {
                Some(e) if e <= done_at => e,
                _ => done_at,
            });
        }
        self.next_done = earliest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GBPS: u64 = 1_000_000_000;
    const MBPS_100: u64 = 100_000_000;
    /// 128 MB, the paper's default block size.
    const BLOCK: u64 = 128 * 1024 * 1024;

    fn secs(t: SimTime) -> f64 {
        t.as_secs_f64()
    }

    #[test]
    fn single_cross_rack_transfer_time() {
        // One 128 MB block over a 100 Mbps path: ~10.7s (the paper's
        // motivating example rounds this to 10s).
        let mut net = Network::new(&[3, 2], NetConfig::uniform(MBPS_100));
        net.start_flow(SimTime::ZERO, 0, 3, BLOCK);
        let done = net.next_completion().unwrap();
        assert!((secs(done) - 10.74).abs() < 0.01, "{}", secs(done));
        assert_eq!(net.complete_flows(done).len(), 1);
        assert_eq!(net.active_flows(), 0);
    }

    #[test]
    fn flow_endpoints_track_liveness() {
        let mut net = Network::new(&[3, 2], NetConfig::uniform(MBPS_100));
        let a = net.start_flow(SimTime::ZERO, 0, 3, BLOCK);
        let b = net.start_flow(SimTime::ZERO, 4, 1, BLOCK);
        assert_eq!(net.flow_endpoints(a), Some((0, 3)));
        assert_eq!(net.flow_endpoints(b), Some((4, 1)));
        net.cancel_flow(SimTime::from_secs(1), a);
        assert_eq!(net.flow_endpoints(a), None);
        assert_eq!(net.flow_endpoints(b), Some((4, 1)));
        let done = net.next_completion().unwrap();
        net.complete_flows(done);
        assert_eq!(net.flow_endpoints(b), None);
    }

    #[test]
    fn two_competing_downloads_double_the_time() {
        // Section III: two degraded reads into the same rack "double the
        // download time, from 10s to 20s".
        let mut net = Network::new(&[3, 2], NetConfig::uniform(MBPS_100));
        // Nodes 0,1 in rack 0 each download a block from rack 1.
        net.start_flow(SimTime::ZERO, 3, 0, BLOCK);
        net.start_flow(SimTime::ZERO, 4, 1, BLOCK);
        let done = net.next_completion().unwrap();
        assert!((secs(done) - 2.0 * 10.74).abs() < 0.05, "{}", secs(done));
        // Both finish together (equal shares of the rack downlink).
        assert_eq!(net.complete_flows(done).len(), 2);
    }

    #[test]
    fn independent_racks_do_not_interfere() {
        let mut net = Network::new(&[2, 2, 2], NetConfig::uniform(MBPS_100));
        net.start_flow(SimTime::ZERO, 0, 2, BLOCK); // rack0 -> rack1
        net.start_flow(SimTime::ZERO, 4, 1, BLOCK); // rack2 -> rack0
                                                    // rack1-down and rack0-down are different links; both flows run
                                                    // at full speed.
        let done = net.next_completion().unwrap();
        assert!((secs(done) - 10.74).abs() < 0.01, "{}", secs(done));
        assert_eq!(net.complete_flows(done).len(), 2);
    }

    #[test]
    fn rate_rises_when_competitor_finishes() {
        // Flow A starts alone; B joins halfway; A slows to half rate;
        // when A ends, B speeds back up.
        let mut net = Network::new(&[2, 1], NetConfig::uniform(MBPS_100));
        let t0 = SimTime::ZERO;
        let a = net.start_flow(t0, 2, 0, BLOCK);
        let t1 = SimTime::from_secs(5);
        // Same destination NIC contended? No: choose dst 1, sharing only
        // the rack0 downlink.
        let b = net.start_flow(t1, 2, 1, BLOCK);
        // A has ~5.74s of work left at full rate, so ~11.48s shared.
        let done_a = net.next_completion().unwrap();
        let finished = net.complete_flows(done_a);
        assert_eq!(finished, vec![a]);
        assert!(
            (secs(done_a) - (5.0 + 11.48)).abs() < 0.05,
            "{}",
            secs(done_a)
        );
        // B transferred (done_a - t1) at half rate; the rest at full rate.
        let done_b = net.next_completion().unwrap();
        let t_b_total = secs(done_b) - 5.0;
        assert!(
            (t_b_total - (11.48 + (10.74 - 11.48 / 2.0))).abs() < 0.1,
            "{t_b_total}"
        );
        assert_eq!(net.complete_flows(done_b), vec![b]);
    }

    #[test]
    fn loopback_completes_immediately() {
        let mut net = Network::new(&[2], NetConfig::gigabit());
        let now = SimTime::from_secs(3);
        let f = net.start_flow(now, 1, 1, BLOCK);
        assert_eq!(net.next_completion(), Some(now));
        let done = net.drain_finished(now);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, f);
        assert_eq!(done[0].1.duration(), SimDuration::ZERO);
    }

    #[test]
    fn cancel_releases_bandwidth() {
        let mut net = Network::new(&[2, 2], NetConfig::uniform(MBPS_100));
        let a = net.start_flow(SimTime::ZERO, 2, 0, BLOCK);
        let _b = net.start_flow(SimTime::ZERO, 3, 1, BLOCK);
        let t = SimTime::from_secs(4);
        let stats = net.cancel_flow(t, a).unwrap();
        assert_eq!(stats.finished, t);
        assert!(net.cancel_flow(t, a).is_none(), "double cancel");
        // b now runs at full rate: had moved 4s at half rate = 2s worth;
        // 8.74s left at full rate.
        let done = net.next_completion().unwrap();
        assert!((secs(done) - (4.0 + 8.74)).abs() < 0.05, "{}", secs(done));
    }

    #[test]
    fn nic_limits_fanin() {
        // Four sources in other racks converge on one node whose NIC is
        // the bottleneck (rack links are fat).
        let cfg = NetConfig {
            node_bps: MBPS_100,
            rack_bps: GBPS,
        };
        let mut net = Network::new(&[1, 4], cfg);
        for s in 1..5 {
            net.start_flow(SimTime::ZERO, s, 0, BLOCK);
        }
        let done = net.next_completion().unwrap();
        // 4 blocks through a single 100 Mbps NIC: ~4 * 10.74.
        assert!((secs(done) - 4.0 * 10.74).abs() < 0.1, "{}", secs(done));
        assert_eq!(net.complete_flows(done).len(), 4);
    }

    #[test]
    fn flow_stats_record_endpoints() {
        let mut net = Network::new(&[2, 1], NetConfig::gigabit());
        net.start_flow(SimTime::from_secs(1), 0, 2, 1_000_000);
        let done = net.next_completion().unwrap();
        let stats = net.drain_finished(done);
        let (_, s) = stats[0];
        assert_eq!(s.src, 0);
        assert_eq!(s.dst, 2);
        assert_eq!(s.bytes, 1_000_000);
        assert_eq!(s.started, SimTime::from_secs(1));
        assert!(s.finished > s.started);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn rejects_time_reversal() {
        let mut net = Network::new(&[1, 1], NetConfig::gigabit());
        net.start_flow(SimTime::from_secs(5), 0, 1, 100);
        net.start_flow(SimTime::from_secs(4), 1, 0, 100);
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn rejects_unknown_node() {
        let mut net = Network::new(&[1, 1], NetConfig::gigabit());
        net.start_flow(SimTime::ZERO, 0, 9, 100);
    }

    #[test]
    fn deterministic_completion_order() {
        // Flows finishing at the same instant drain in start order.
        let mut net = Network::new(&[2, 2], NetConfig::uniform(MBPS_100));
        let a = net.start_flow(SimTime::ZERO, 2, 0, BLOCK);
        let b = net.start_flow(SimTime::ZERO, 3, 1, BLOCK);
        let done = net.next_completion().unwrap();
        assert_eq!(net.complete_flows(done), vec![a, b]);
    }
}

#[cfg(test)]
mod utilization_tests {
    use super::*;

    #[test]
    fn utilization_log_tracks_rack_downlink_usage() {
        let mut net = Network::new(&[2, 2], NetConfig::uniform(100_000_000));
        net.enable_utilization_log();
        // One cross-rack flow saturating rack1's downlink for ~10.7s.
        net.start_flow(SimTime::ZERO, 0, 2, 128 * 1024 * 1024);
        let done = net.next_completion().unwrap();
        net.complete_flows(done);
        let log = net.utilization_log();
        assert!(!log.is_empty());
        let total_bits: f64 = log.iter().map(|s| s.rack_down_bits).sum();
        assert!(
            (total_bits - 128.0 * 1024.0 * 1024.0 * 8.0).abs() < 1e6,
            "{total_bits}"
        );
        // One of two rack downlinks busy => 50% aggregate utilization.
        for sample in log {
            assert!((sample.fraction() - 0.5).abs() < 0.01, "{:?}", sample);
            assert!(sample.until > sample.since);
        }
    }

    #[test]
    fn intra_rack_flows_do_not_count() {
        let mut net = Network::new(&[2, 2], NetConfig::gigabit());
        net.enable_utilization_log();
        net.start_flow(SimTime::ZERO, 0, 1, 1_000_000); // same rack
        let done = net.next_completion().unwrap();
        net.complete_flows(done);
        let total: f64 = net.utilization_log().iter().map(|s| s.rack_down_bits).sum();
        assert_eq!(total, 0.0);
    }

    #[test]
    fn log_disabled_by_default() {
        let mut net = Network::new(&[1, 1], NetConfig::gigabit());
        net.start_flow(SimTime::ZERO, 0, 1, 1_000);
        let done = net.next_completion().unwrap();
        net.complete_flows(done);
        assert!(net.utilization_log().is_empty());
    }
}

#[cfg(test)]
mod flow_log_tests {
    use super::*;

    const BLOCK: u64 = 128 * 1024 * 1024;

    #[test]
    fn logs_full_flow_lifecycle() {
        let mut net = Network::new(&[2, 2], NetConfig::uniform(100_000_000));
        net.enable_flow_log();
        let a = net.start_flow(SimTime::ZERO, 0, 2, BLOCK);
        let entries = net.take_flow_log();
        assert_eq!(entries.len(), 2, "{entries:?}");
        match entries[0].kind {
            FlowLogKind::Started {
                src,
                dst,
                bytes,
                route,
            } => {
                assert_eq!((src, dst, bytes), (0, 2, BLOCK));
                // Cross-rack: NIC up, rack0 up, rack1 down, NIC down.
                assert_eq!(route.as_slice(), &[0, 8, 11, 5]);
            }
            ref other => panic!("expected Started, got {other:?}"),
        }
        assert!(
            matches!(entries[1].kind, FlowLogKind::RateChanged { rate_bps } if rate_bps == 1e8),
            "{entries:?}"
        );
        let done = net.next_completion().unwrap();
        net.complete_flows(done);
        let entries = net.take_flow_log();
        assert_eq!(
            entries,
            vec![FlowLogEntry {
                at: done,
                flow: a,
                kind: FlowLogKind::Finished { cancelled: false },
            }]
        );
        // Drained: nothing left.
        assert!(net.take_flow_log().is_empty());
    }

    #[test]
    fn logs_rate_changes_on_contention() {
        let mut net = Network::new(&[2, 1], NetConfig::uniform(100_000_000));
        net.enable_flow_log();
        let a = net.start_flow(SimTime::ZERO, 2, 0, BLOCK);
        net.take_flow_log();
        // Second flow shares the rack downlink: both drop to half rate.
        net.start_flow(SimTime::from_secs(2), 2, 1, BLOCK);
        let entries = net.take_flow_log();
        let a_changes: Vec<f64> = entries
            .iter()
            .filter_map(|e| match e.kind {
                FlowLogKind::RateChanged { rate_bps } if e.flow == a => Some(rate_bps),
                _ => None,
            })
            .collect();
        assert_eq!(a_changes, vec![5e7]);
    }

    #[test]
    fn cancel_logs_cancelled_finish() {
        let mut net = Network::new(&[1, 1], NetConfig::gigabit());
        net.enable_flow_log();
        let a = net.start_flow(SimTime::ZERO, 0, 1, BLOCK);
        net.take_flow_log();
        net.cancel_flow(SimTime::from_millis(10), a);
        let entries = net.take_flow_log();
        assert_eq!(entries.len(), 1);
        assert!(matches!(
            entries[0].kind,
            FlowLogKind::Finished { cancelled: true }
        ));
    }

    #[test]
    fn loopback_flows_log_no_rate_changes() {
        let mut net = Network::new(&[2], NetConfig::gigabit());
        net.enable_flow_log();
        net.start_flow(SimTime::ZERO, 1, 1, BLOCK);
        let entries = net.take_flow_log();
        assert_eq!(entries.len(), 1, "{entries:?}");
        assert!(matches!(entries[0].kind, FlowLogKind::Started { route, .. }
            if route.as_slice().is_empty()));
    }

    #[test]
    fn disabled_log_returns_empty() {
        let mut net = Network::new(&[1, 1], NetConfig::gigabit());
        net.start_flow(SimTime::ZERO, 0, 1, 1_000);
        assert!(net.take_flow_log().is_empty());
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;

    #[test]
    fn batch_start_equals_sequential_start() {
        let specs = [
            (0usize, 2usize, 64_000_000u64),
            (1, 3, 32_000_000),
            (2, 0, 8_000_000),
        ];
        let run = |batch: bool| {
            let mut net = Network::new(&[2, 2], NetConfig::uniform(100_000_000));
            if batch {
                net.start_flows(SimTime::ZERO, &specs);
            } else {
                for &(s, d, b) in &specs {
                    net.start_flow(SimTime::ZERO, s, d, b);
                }
            }
            let mut finished = Vec::new();
            while let Some(t) = net.next_completion() {
                for (id, stats) in net.drain_finished(t) {
                    finished.push((id.as_u64(), stats.finished, stats.src, stats.dst));
                }
                if net.active_flows() == 0 {
                    break;
                }
            }
            finished
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut net = Network::new(&[1, 1], NetConfig::gigabit());
        assert!(net.start_flows(SimTime::ZERO, &[]).is_empty());
        assert_eq!(net.active_flows(), 0);
        assert_eq!(net.next_completion(), None);
    }
}
