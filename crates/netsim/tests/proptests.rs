//! Property-based tests for the flow-level network: feasibility and
//! max-min optimality of rate allocations, byte conservation, and
//! monotonicity of completion under contention.

use netsim::fairshare::{max_min_rates, max_min_rates_ref, FairshareWorkspace};
use netsim::{NetConfig, Network};
use proptest::prelude::*;
use simkit::time::SimTime;

fn random_paths(num_links: usize, max_flows: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(
        proptest::collection::btree_set(0..num_links, 1..=num_links.min(4)),
        0..max_flows,
    )
    .prop_map(|flows| flows.into_iter().map(|s| s.into_iter().collect()).collect())
}

proptest! {
    #[test]
    fn allocation_is_feasible(
        caps in proptest::collection::vec(1e6f64..1e10, 1..8),
        seed_paths in random_paths(8, 12),
    ) {
        let num_links = caps.len();
        let paths: Vec<Vec<usize>> = seed_paths
            .into_iter()
            .map(|p| p.into_iter().filter(|&l| l < num_links).collect::<Vec<_>>())
            .filter(|p: &Vec<usize>| !p.is_empty())
            .collect();
        let rates = max_min_rates(&caps, &paths);
        prop_assert_eq!(rates.len(), paths.len());
        let mut usage = vec![0.0f64; num_links];
        for (f, path) in paths.iter().enumerate() {
            prop_assert!(rates[f] > 0.0, "flow {f} starved");
            for &l in path {
                usage[l] += rates[f];
            }
        }
        for l in 0..num_links {
            prop_assert!(usage[l] <= caps[l] * (1.0 + 1e-6), "link {l} oversubscribed");
        }
    }

    #[test]
    fn every_flow_has_a_bottleneck(
        caps in proptest::collection::vec(1e6f64..1e9, 1..6),
        seed_paths in random_paths(6, 8),
    ) {
        let num_links = caps.len();
        let paths: Vec<Vec<usize>> = seed_paths
            .into_iter()
            .map(|p| p.into_iter().filter(|&l| l < num_links).collect::<Vec<_>>())
            .filter(|p: &Vec<usize>| !p.is_empty())
            .collect();
        let rates = max_min_rates(&caps, &paths);
        let mut usage = vec![0.0f64; num_links];
        for (f, path) in paths.iter().enumerate() {
            for &l in path {
                usage[l] += rates[f];
            }
        }
        // Max-min certificate: every flow crosses a saturated link where
        // it has (one of) the largest rates.
        for (f, path) in paths.iter().enumerate() {
            let ok = path.iter().any(|&l| {
                usage[l] >= caps[l] * (1.0 - 1e-6)
                    && paths
                        .iter()
                        .enumerate()
                        .filter(|(_, q)| q.contains(&l))
                        .all(|(g, _)| rates[g] <= rates[f] * (1.0 + 1e-6))
            });
            prop_assert!(ok, "flow {f} lacks a bottleneck certificate");
        }
    }

    #[test]
    fn workspace_allocator_matches_reference_bit_for_bit(
        caps in proptest::collection::vec(1e6f64..1e10, 1..8),
        seed_paths in random_paths(8, 16),
        loopbacks in 0usize..3,
    ) {
        // The incremental workspace allocator must reproduce the naive
        // reference implementation exactly — same freeze rounds, same
        // floating-point operations, hence bit-identical rates.
        let num_links = caps.len();
        let mut paths: Vec<Vec<usize>> = seed_paths
            .into_iter()
            .map(|p| p.into_iter().filter(|&l| l < num_links).collect::<Vec<_>>())
            .collect();
        for _ in 0..loopbacks {
            paths.push(Vec::new());
        }
        let reference = max_min_rates_ref(&caps, &paths);
        let via_wrapper = max_min_rates(&caps, &paths);
        let ref_bits: Vec<u64> = reference.iter().map(|r| r.to_bits()).collect();
        prop_assert_eq!(
            &ref_bits,
            &via_wrapper.iter().map(|r| r.to_bits()).collect::<Vec<_>>()
        );
        // A reused (dirty) workspace must agree too.
        let mut ws = FairshareWorkspace::new();
        let mut rates = Vec::new();
        let paths32: Vec<Vec<u32>> = paths
            .iter()
            .map(|p| p.iter().map(|&l| l as u32).collect())
            .collect();
        ws.compute(&caps, &paths32, &mut rates);
        ws.compute(&caps, &paths32, &mut rates);
        prop_assert_eq!(
            &ref_bits,
            &rates.iter().map(|r| r.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sparse_allocator_matches_reference_bit_for_bit(
        caps in proptest::collection::vec(1e6f64..1e10, 1..12),
        seed_paths in random_paths(12, 20),
        loopbacks in 0usize..3,
        pad_links in 0usize..512,
    ) {
        // The bounded-recompute (sparse) allocator must reproduce the
        // reference exactly even when the capacity vector is mostly
        // untouched padding — same freeze rounds, same floating-point
        // operations, bit-identical rates.
        let num_real = caps.len();
        let mut caps = caps;
        caps.extend(std::iter::repeat_n(7.7e9, pad_links));
        let mut paths: Vec<Vec<usize>> = seed_paths
            .into_iter()
            .map(|p| p.into_iter().filter(|&l| l < num_real).collect::<Vec<_>>())
            .collect();
        for _ in 0..loopbacks {
            paths.push(Vec::new());
        }
        let reference = max_min_rates_ref(&caps, &paths);
        let ref_bits: Vec<u64> = reference.iter().map(|r| r.to_bits()).collect();
        let paths32: Vec<Vec<u32>> = paths
            .iter()
            .map(|p| p.iter().map(|&l| l as u32).collect())
            .collect();
        // A reused (dirty) workspace must agree too, across epochs.
        let mut ws = FairshareWorkspace::new();
        let mut rates = Vec::new();
        ws.compute_sparse(&caps, &paths32, &mut rates);
        ws.compute_sparse(&caps, &paths32, &mut rates);
        prop_assert_eq!(
            &ref_bits,
            &rates.iter().map(|r| r.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn bytes_are_conserved(
        transfers in proptest::collection::vec((0usize..6, 0usize..6, 1u64..64_000_000), 1..20),
        bw in 1u64..=4,
    ) {
        // Deliver every flow; total delivered time must cover bytes at
        // link speed, and all flows complete.
        let mut net = Network::new(&[3, 3], NetConfig::uniform(bw * 100_000_000));
        let mut now = SimTime::ZERO;
        let mut started = 0usize;
        for &(src, dst, bytes) in &transfers {
            net.start_flow(now, src, dst, bytes);
            started += 1;
        }
        let mut finished = 0usize;
        let mut guard = 0;
        while let Some(t) = net.next_completion() {
            prop_assert!(t >= now, "completion in the past");
            now = t;
            let done = net.drain_finished(now);
            for (_, stats) in &done {
                // A flow's duration is at least its serialized time over
                // the fastest possible path (one link at full speed would
                // be bytes*8/(4*bw) at most; we check a weak lower bound:
                // nonzero for nonzero inter-node payloads).
                if stats.src != stats.dst && stats.bytes > 0 {
                    prop_assert!(stats.duration().as_micros() > 0);
                }
                finished += 1;
            }
            guard += 1;
            prop_assert!(guard < 10_000, "network failed to converge");
        }
        prop_assert_eq!(finished, started);
        prop_assert_eq!(net.active_flows(), 0);
    }

    #[test]
    fn contention_never_speeds_a_flow_up(
        bytes in 1_000_000u64..512_000_000,
        competitors in 0usize..6,
    ) {
        // Measure a cross-rack flow alone, then with competitors sharing
        // its destination rack downlink; the observed flow must finish
        // no earlier under contention.
        let solo = {
            let mut net = Network::new(&[4, 4], NetConfig::uniform(100_000_000));
            net.start_flow(SimTime::ZERO, 4, 0, bytes);
            net.next_completion().unwrap()
        };
        let contended = {
            let mut net = Network::new(&[4, 4], NetConfig::uniform(100_000_000));
            let main = net.start_flow(SimTime::ZERO, 4, 0, bytes);
            for c in 0..competitors {
                net.start_flow(SimTime::ZERO, 5 + (c % 3), 1 + (c % 3), u64::MAX / 1024);
            }
            // Drain until the observed flow completes.
            let mut done_at = None;
            while done_at.is_none() {
                let t = net.next_completion().expect("main flow must finish");
                for (id, stats) in net.drain_finished(t) {
                    if id == main {
                        done_at = Some(stats.finished);
                    }
                }
            }
            done_at.unwrap()
        };
        prop_assert!(contended >= solo, "contended {contended} < solo {solo}");
    }
}
