//! In-memory aggregation of an event stream into the derived quantities
//! behind the paper's Figures 5, 7 and 8: per-interval slot and link
//! utilization, degraded-read latency percentiles, per-type mean task
//! runtimes, and the overlap between degraded fetches and normal map
//! work (the mechanism degraded-first scheduling exploits).
//!
//! The counters are defined to match `mapreduce::metrics` *exactly* —
//! same winner-only accounting, same completion-order summation — and a
//! cross-check test in the workspace keeps the two from drifting.

use std::collections::{BTreeMap, BTreeSet};

use simkit::stats::{percentile_sorted, QuantileSketch};
use simkit::time::{SimDuration, SimTime};

use crate::event::{DegradedPhase, LinkSet, Locality, SimEvent};
use crate::sink::EventSink;

/// How the aggregator stores per-sample data.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AggregatorMode {
    /// Keep every sample: per-bucket series, full latency vectors.
    /// Memory grows with the trace; exact percentiles.
    #[default]
    Exact,
    /// Bounded memory for week-long traces: time series roll up into at
    /// most `max_windows` windows (pair-merged and width-doubled when
    /// the run outgrows them) and latency percentiles come from
    /// fixed-size [`QuantileSketch`]es (relative error
    /// [`QuantileSketch::RELATIVE_ERROR`]). Resident state is
    /// independent of event count.
    Windowed {
        /// Initial window width in seconds (doubles on rollup).
        window_secs: u64,
        /// Most windows kept before rolling up.
        max_windows: usize,
    },
}

/// Static configuration of an [`Aggregator`].
#[derive(Clone, Debug)]
pub struct AggregatorConfig {
    /// Width of a utilization interval (exact mode; windowed mode uses
    /// its own window width).
    pub bucket: SimDuration,
    /// Total map slots in the cluster (alive nodes × slots per node),
    /// the denominator of slot utilization. Zero disables the metric.
    pub total_map_slots: u64,
    /// Capacity in bit/s per link index, the denominator of per-link
    /// utilization. Links beyond the vector report raw bit/s instead.
    pub link_capacities_bps: Vec<f64>,
    /// Exact sample retention or bounded windowed rollups.
    pub mode: AggregatorMode,
}

impl Default for AggregatorConfig {
    fn default() -> AggregatorConfig {
        AggregatorConfig {
            bucket: SimDuration::from_secs(10),
            total_map_slots: 0,
            link_capacities_bps: Vec::new(),
            mode: AggregatorMode::Exact,
        }
    }
}

/// Bounded-memory replacement for the exact per-sample records: window
/// rollup bookkeeping, quantile sketches, and scalar accumulators.
struct WindowedState {
    /// Current effective window width; doubles on rollup.
    window_micros: u64,
    /// Rollup trigger: series never exceed this many windows.
    max_windows: usize,
    /// Per-window peak of the jobs-in-flight step function.
    jif_window_peak: Vec<usize>,
    fetch_sketch: QuantileSketch,
    latency_sketch: QuantileSketch,
    queue_sketch: QuantileSketch,
    /// Completed maps by locality: node-local, rack-local, remote,
    /// degraded.
    maps_by_locality: [usize; 4],
    reduces: usize,
    /// `(runtime sum, count)` accumulators for mean task runtimes.
    normal_map: (f64, usize),
    degraded_map: (f64, usize),
    reduce_runtime: (f64, usize),
}

impl WindowedState {
    fn new(window_secs: u64, max_windows: usize) -> WindowedState {
        WindowedState {
            window_micros: window_secs.saturating_mul(1_000_000),
            max_windows,
            jif_window_peak: Vec::new(),
            fetch_sketch: QuantileSketch::new(),
            latency_sketch: QuantileSketch::new(),
            queue_sketch: QuantileSketch::new(),
            maps_by_locality: [0; 4],
            reduces: 0,
            normal_map: (0.0, 0),
            degraded_map: (0.0, 0),
            reduce_runtime: (0.0, 0),
        }
    }
}

/// Pair-merges a rolled-up series in place: `v[i] = v[2i] ⊕ v[2i+1]`.
fn pair_merge<T: Copy>(v: &mut Vec<T>, combine: impl Fn(T, T) -> T) {
    let mut out = Vec::with_capacity(v.len().div_ceil(2));
    for pair in v.chunks(2) {
        out.push(match *pair {
            [a, b] => combine(a, b),
            [a] => a,
            _ => continue,
        });
    }
    *v = out;
}

fn locality_index(locality: Locality) -> usize {
    match locality {
        Locality::NodeLocal => 0,
        Locality::RackLocal => 1,
        Locality::Remote => 2,
        Locality::Degraded => 3,
    }
}

/// A finished task as the aggregator saw it, in completion order.
#[derive(Clone, Copy, Debug)]
enum Finished {
    Map {
        locality: Locality,
        runtime_secs: f64,
        fetch_secs: Option<f64>,
    },
    Reduce {
        runtime_secs: f64,
    },
}

/// A live map attempt.
struct Attempt {
    launched_at: SimTime,
    locality: Locality,
    fetch_begin: Option<SimTime>,
    fetch_secs: Option<f64>,
}

/// The [`EventSink`] that folds the stream into [`AggregateReport`].
///
/// All time-weighted metrics (slot busy-seconds, link bits, overlap)
/// are integrated as step functions between consecutive event
/// timestamps, so they are exact for the piecewise-constant processes
/// the simulator produces, not sampled approximations.
pub struct Aggregator {
    cfg: AggregatorConfig,
    last_t: SimTime,
    end_t: SimTime,
    // Step-function state.
    active_maps: u64,
    active_normal_maps: u64,
    active_fetches: u64,
    // Integrals.
    busy_slot_secs: Vec<f64>,
    link_bits: BTreeMap<u32, Vec<f64>>,
    overlap_secs: f64,
    fetch_active_secs: f64,
    // Entity state.
    attempts: BTreeMap<(u32, u32, bool), Attempt>,
    reduces: BTreeMap<(u32, u32), SimTime>,
    /// Live flows: traversed links, current rate, and requested bytes
    /// (the last lets `fetch_cancelled` attribute redundant traffic).
    flows: BTreeMap<u64, (LinkSet, f64, u64)>,
    link_rate: BTreeMap<u32, f64>,
    // Records.
    finished: Vec<Finished>,
    jobs_submitted: usize,
    jobs_finished: usize,
    job_submitted_at: BTreeMap<u32, SimTime>,
    job_started_at: BTreeMap<u32, SimTime>,
    job_latency_secs: Vec<f64>,
    job_queue_delay_secs: Vec<f64>,
    jobs_in_flight: usize,
    jobs_in_flight_steps: Vec<(f64, usize)>,
    peak_jobs_in_flight: usize,
    tasks_queued_degraded: usize,
    speculative_launches: usize,
    cancelled_attempts: usize,
    redundant_fetches_issued: usize,
    redundant_extra_flows: usize,
    fetch_cancel_wins: usize,
    redundant_cancelled_bytes: u64,
    nodes_failed: usize,
    nodes_recovered: usize,
    maps_relaunched: usize,
    primaries_seen: BTreeSet<(u32, u32)>,
    /// `Some` in [`AggregatorMode::Windowed`]; the unbounded sample
    /// vectors above stay empty then.
    win: Option<WindowedState>,
}

impl Aggregator {
    /// An empty aggregator.
    pub fn new(cfg: AggregatorConfig) -> Aggregator {
        assert!(!cfg.bucket.is_zero(), "bucket width must be positive");
        let win = match cfg.mode {
            AggregatorMode::Exact => None,
            AggregatorMode::Windowed {
                window_secs,
                max_windows,
            } => {
                assert!(window_secs > 0, "window width must be positive");
                assert!(max_windows >= 1, "need at least one window");
                Some(WindowedState::new(window_secs, max_windows))
            }
        };
        Aggregator {
            cfg,
            win,
            last_t: SimTime::ZERO,
            end_t: SimTime::ZERO,
            active_maps: 0,
            active_normal_maps: 0,
            active_fetches: 0,
            busy_slot_secs: Vec::new(),
            link_bits: BTreeMap::new(),
            overlap_secs: 0.0,
            fetch_active_secs: 0.0,
            attempts: BTreeMap::new(),
            reduces: BTreeMap::new(),
            flows: BTreeMap::new(),
            link_rate: BTreeMap::new(),
            finished: Vec::new(),
            jobs_submitted: 0,
            jobs_finished: 0,
            job_submitted_at: BTreeMap::new(),
            job_started_at: BTreeMap::new(),
            job_latency_secs: Vec::new(),
            job_queue_delay_secs: Vec::new(),
            jobs_in_flight: 0,
            jobs_in_flight_steps: Vec::new(),
            peak_jobs_in_flight: 0,
            tasks_queued_degraded: 0,
            speculative_launches: 0,
            cancelled_attempts: 0,
            redundant_fetches_issued: 0,
            redundant_extra_flows: 0,
            fetch_cancel_wins: 0,
            redundant_cancelled_bytes: 0,
            nodes_failed: 0,
            nodes_recovered: 0,
            maps_relaunched: 0,
            primaries_seen: BTreeSet::new(),
        }
    }

    /// In windowed mode, doubles the window width (pair-merging every
    /// series) until the window holding `micros` is inside the cap.
    fn ensure_window_for(&mut self, micros: u64) {
        let Some(w) = &mut self.win else { return };
        while micros / w.window_micros >= w.max_windows as u64 {
            w.window_micros = w.window_micros.saturating_mul(2);
            pair_merge(&mut w.jif_window_peak, usize::max);
            pair_merge(&mut self.busy_slot_secs, |a, b| a + b);
            for bits in self.link_bits.values_mut() {
                pair_merge(bits, |a, b| a + b);
            }
        }
    }

    /// Integrates the current step-function state over `[last_t, to)`,
    /// splitting the span across interval buckets (exact mode) or
    /// rolled-up windows (windowed mode).
    fn advance(&mut self, to: SimTime) {
        debug_assert!(to >= self.last_t, "events arrived out of order");
        self.ensure_window_for(to.as_micros());
        let bucket = match &self.win {
            Some(w) => w.window_micros,
            None => self.cfg.bucket.as_micros(),
        };
        let mut cur = self.last_t.as_micros();
        let end = to.as_micros();
        while cur < end {
            let bucket_idx = (cur / bucket) as usize;
            let seg_end = end.min((cur / bucket + 1) * bucket);
            let dt = (seg_end - cur) as f64 / 1e6;
            if self.active_maps > 0 {
                if self.busy_slot_secs.len() <= bucket_idx {
                    self.busy_slot_secs.resize(bucket_idx + 1, 0.0);
                }
                self.busy_slot_secs[bucket_idx] += self.active_maps as f64 * dt;
            }
            for (&link, &rate) in &self.link_rate {
                if rate > 0.0 {
                    let bits = self.link_bits.entry(link).or_default();
                    if bits.len() <= bucket_idx {
                        bits.resize(bucket_idx + 1, 0.0);
                    }
                    bits[bucket_idx] += rate * dt;
                }
            }
            if self.active_fetches > 0 {
                self.fetch_active_secs += dt;
                if self.active_normal_maps > 0 {
                    self.overlap_secs += dt;
                }
            }
            if let Some(w) = &mut self.win {
                // The jobs-in-flight level held throughout this segment.
                if w.jif_window_peak.len() <= bucket_idx {
                    w.jif_window_peak.resize(bucket_idx + 1, 0);
                }
                w.jif_window_peak[bucket_idx] =
                    w.jif_window_peak[bucket_idx].max(self.jobs_in_flight);
            }
            cur = seg_end;
        }
        self.last_t = to;
        self.end_t = self.end_t.max(to);
    }

    fn close_attempt(&mut self, key: (u32, u32, bool)) -> Option<Attempt> {
        let attempt = self.attempts.remove(&key)?;
        self.active_maps -= 1;
        if attempt.locality != Locality::Degraded {
            self.active_normal_maps -= 1;
        }
        if attempt.fetch_begin.is_some() {
            // Closed mid-fetch (a cancelled losing attempt).
            self.active_fetches -= 1;
        }
        Some(attempt)
    }

    fn step_jobs_in_flight(&mut self, at: SimTime, delta: isize) {
        self.jobs_in_flight = self.jobs_in_flight.saturating_add_signed(delta);
        self.peak_jobs_in_flight = self.peak_jobs_in_flight.max(self.jobs_in_flight);
        if self.win.is_some() {
            // Bounded form: fold the new level into this window's peak
            // instead of recording the full step function.
            self.ensure_window_for(at.as_micros());
            let level = self.jobs_in_flight;
            let Some(w) = &mut self.win else { return };
            let idx = (at.as_micros() / w.window_micros) as usize;
            if w.jif_window_peak.len() <= idx {
                w.jif_window_peak.resize(idx + 1, 0);
            }
            w.jif_window_peak[idx] = w.jif_window_peak[idx].max(level);
            return;
        }
        let point = (at.as_secs_f64(), self.jobs_in_flight);
        // Coalesce same-timestamp changes into the last value.
        match self.jobs_in_flight_steps.last_mut() {
            Some(last) if last.0 == point.0 => *last = point,
            _ => self.jobs_in_flight_steps.push(point),
        }
    }

    /// Number of elements resident in every growable container. In
    /// windowed mode this is bounded by the window cap plus the number
    /// of *live* entities (attempts, flows, in-flight jobs), so it is
    /// independent of how many events the trace contained; tests assert
    /// that structurally.
    pub fn resident_state_size(&self) -> usize {
        self.busy_slot_secs.len()
            + self.link_bits.values().map(Vec::len).sum::<usize>()
            + self.link_bits.len()
            + self.link_rate.len()
            + self.attempts.len()
            + self.reduces.len()
            + self.flows.len()
            + self.finished.len()
            + self.job_submitted_at.len()
            + self.job_started_at.len()
            + self.job_latency_secs.len()
            + self.job_queue_delay_secs.len()
            + self.jobs_in_flight_steps.len()
            + self.primaries_seen.len()
            + self.win.as_ref().map_or(0, |w| w.jif_window_peak.len())
    }

    /// Folds the stream into the final report.
    pub fn report(&self) -> AggregateReport {
        match &self.win {
            None => self.report_exact(),
            Some(w) => self.report_windowed(w),
        }
    }

    /// Report from full sample vectors (exact mode).
    fn report_exact(&self) -> AggregateReport {
        let mut fetch_sorted: Vec<f64> = self
            .finished
            .iter()
            .filter_map(|f| match f {
                Finished::Map {
                    locality: Locality::Degraded,
                    fetch_secs,
                    ..
                } => *fetch_secs,
                _ => None,
            })
            .collect();
        fetch_sorted.sort_by(f64::total_cmp);
        let mut latency_sorted = self.job_latency_secs.clone();
        latency_sorted.sort_by(f64::total_cmp);
        let mut queue_sorted = self.job_queue_delay_secs.clone();
        queue_sorted.sort_by(f64::total_cmp);
        let mean = |select: &dyn Fn(&Finished) -> Option<f64>| -> Option<f64> {
            let mut sum = 0.0;
            let mut count = 0usize;
            for f in &self.finished {
                if let Some(x) = select(f) {
                    sum += x;
                    count += 1;
                }
            }
            (count > 0).then(|| sum / count as f64)
        };
        let count_maps = |want: Locality| {
            self.finished
                .iter()
                .filter(|f| matches!(f, Finished::Map { locality, .. } if *locality == want))
                .count()
        };
        let bucket_secs = self.cfg.bucket.as_secs_f64();
        let slot_utilization: Vec<f64> = if self.cfg.total_map_slots == 0 {
            Vec::new()
        } else {
            let denom = self.cfg.total_map_slots as f64 * bucket_secs;
            self.busy_slot_secs.iter().map(|&b| b / denom).collect()
        };
        let link_utilization: Vec<LinkUsage> = self
            .link_bits
            .iter()
            .map(|(&link, bits)| {
                let total_bits: f64 = bits.iter().sum();
                let span_secs = bits.len() as f64 * bucket_secs;
                let mean_bps = total_bits / span_secs;
                let peak_bps = bits.iter().fold(0.0f64, |a, &b| a.max(b / bucket_secs));
                let capacity = self.cfg.link_capacities_bps.get(link as usize).copied();
                LinkUsage {
                    link,
                    mean_bps,
                    peak_bps,
                    mean_utilization: capacity.map(|c| mean_bps / c),
                }
            })
            .collect();
        AggregateReport {
            makespan_secs: self.end_t.as_secs_f64(),
            jobs_submitted: self.jobs_submitted,
            jobs_finished: self.jobs_finished,
            maps_node_local: count_maps(Locality::NodeLocal),
            maps_rack_local: count_maps(Locality::RackLocal),
            maps_remote: count_maps(Locality::Remote),
            maps_degraded: count_maps(Locality::Degraded),
            reduces: self
                .finished
                .iter()
                .filter(|f| matches!(f, Finished::Reduce { .. }))
                .count(),
            tasks_queued_degraded: self.tasks_queued_degraded,
            speculative_launches: self.speculative_launches,
            cancelled_attempts: self.cancelled_attempts,
            redundant_fetches_issued: self.redundant_fetches_issued,
            redundant_extra_flows: self.redundant_extra_flows,
            fetch_cancel_wins: self.fetch_cancel_wins,
            redundant_cancelled_bytes: self.redundant_cancelled_bytes,
            nodes_failed: self.nodes_failed,
            nodes_recovered: self.nodes_recovered,
            maps_relaunched: self.maps_relaunched,
            mean_normal_map_secs: mean(&|f| match f {
                Finished::Map {
                    locality,
                    runtime_secs,
                    ..
                } if *locality != Locality::Degraded => Some(*runtime_secs),
                _ => None,
            }),
            mean_degraded_map_secs: mean(&|f| match f {
                Finished::Map {
                    locality: Locality::Degraded,
                    runtime_secs,
                    ..
                } => Some(*runtime_secs),
                _ => None,
            }),
            mean_reduce_secs: mean(&|f| match f {
                Finished::Reduce { runtime_secs } => Some(*runtime_secs),
                _ => None,
            }),
            degraded_read_secs: self
                .finished
                .iter()
                .filter_map(|f| match f {
                    Finished::Map {
                        locality: Locality::Degraded,
                        fetch_secs,
                        ..
                    } => *fetch_secs,
                    _ => None,
                })
                .collect(),
            degraded_read_p50: percentile_opt(&fetch_sorted, 0.50),
            degraded_read_p95: percentile_opt(&fetch_sorted, 0.95),
            degraded_read_p99: percentile_opt(&fetch_sorted, 0.99),
            job_latency_secs: self.job_latency_secs.clone(),
            job_latency_p50: percentile_opt(&latency_sorted, 0.50),
            job_latency_p95: percentile_opt(&latency_sorted, 0.95),
            job_latency_p99: percentile_opt(&latency_sorted, 0.99),
            job_queue_delay_secs: self.job_queue_delay_secs.clone(),
            job_queue_delay_p50: percentile_opt(&queue_sorted, 0.50),
            job_queue_delay_p95: percentile_opt(&queue_sorted, 0.95),
            job_queue_delay_p99: percentile_opt(&queue_sorted, 0.99),
            jobs_in_flight_steps: self.jobs_in_flight_steps.clone(),
            jobs_in_flight_window_peak: Vec::new(),
            peak_jobs_in_flight: self.peak_jobs_in_flight,
            bucket_secs,
            slot_utilization,
            link_utilization,
            overlap_secs: self.overlap_secs,
            degraded_fetch_active_secs: self.fetch_active_secs,
        }
    }

    /// Report from bounded rollups and sketches (windowed mode).
    fn report_windowed(&self, w: &WindowedState) -> AggregateReport {
        let bucket_secs = w.window_micros as f64 / 1e6;
        let slot_utilization: Vec<f64> = if self.cfg.total_map_slots == 0 {
            Vec::new()
        } else {
            let denom = self.cfg.total_map_slots as f64 * bucket_secs;
            self.busy_slot_secs.iter().map(|&b| b / denom).collect()
        };
        let link_utilization: Vec<LinkUsage> = self
            .link_bits
            .iter()
            .map(|(&link, bits)| {
                let total_bits: f64 = bits.iter().sum();
                let span_secs = bits.len() as f64 * bucket_secs;
                let mean_bps = total_bits / span_secs;
                let peak_bps = bits.iter().fold(0.0f64, |a, &b| a.max(b / bucket_secs));
                let capacity = self.cfg.link_capacities_bps.get(link as usize).copied();
                LinkUsage {
                    link,
                    mean_bps,
                    peak_bps,
                    mean_utilization: capacity.map(|c| mean_bps / c),
                }
            })
            .collect();
        let mean = |acc: (f64, usize)| (acc.1 > 0).then(|| acc.0 / acc.1 as f64);
        let quantile = |sk: &QuantileSketch, p: f64| sk.quantile(p).ok();
        AggregateReport {
            makespan_secs: self.end_t.as_secs_f64(),
            jobs_submitted: self.jobs_submitted,
            jobs_finished: self.jobs_finished,
            maps_node_local: w.maps_by_locality[0],
            maps_rack_local: w.maps_by_locality[1],
            maps_remote: w.maps_by_locality[2],
            maps_degraded: w.maps_by_locality[3],
            reduces: w.reduces,
            tasks_queued_degraded: self.tasks_queued_degraded,
            speculative_launches: self.speculative_launches,
            cancelled_attempts: self.cancelled_attempts,
            redundant_fetches_issued: self.redundant_fetches_issued,
            redundant_extra_flows: self.redundant_extra_flows,
            fetch_cancel_wins: self.fetch_cancel_wins,
            redundant_cancelled_bytes: self.redundant_cancelled_bytes,
            nodes_failed: self.nodes_failed,
            nodes_recovered: self.nodes_recovered,
            maps_relaunched: self.maps_relaunched,
            mean_normal_map_secs: mean(w.normal_map),
            mean_degraded_map_secs: mean(w.degraded_map),
            mean_reduce_secs: mean(w.reduce_runtime),
            // Per-sample vectors are not retained in windowed mode.
            degraded_read_secs: Vec::new(),
            degraded_read_p50: quantile(&w.fetch_sketch, 0.50),
            degraded_read_p95: quantile(&w.fetch_sketch, 0.95),
            degraded_read_p99: quantile(&w.fetch_sketch, 0.99),
            job_latency_secs: Vec::new(),
            job_latency_p50: quantile(&w.latency_sketch, 0.50),
            job_latency_p95: quantile(&w.latency_sketch, 0.95),
            job_latency_p99: quantile(&w.latency_sketch, 0.99),
            job_queue_delay_secs: Vec::new(),
            job_queue_delay_p50: quantile(&w.queue_sketch, 0.50),
            job_queue_delay_p95: quantile(&w.queue_sketch, 0.95),
            job_queue_delay_p99: quantile(&w.queue_sketch, 0.99),
            jobs_in_flight_steps: Vec::new(),
            jobs_in_flight_window_peak: w.jif_window_peak.clone(),
            peak_jobs_in_flight: self.peak_jobs_in_flight,
            bucket_secs,
            slot_utilization,
            link_utilization,
            overlap_secs: self.overlap_secs,
            degraded_fetch_active_secs: self.fetch_active_secs,
        }
    }
}

fn percentile_opt(sorted: &[f64], p: f64) -> Option<f64> {
    // `p` is a compile-time constant here, so the only error path is an
    // empty sample, which maps to `None`.
    percentile_sorted(sorted, p).ok()
}

impl EventSink for Aggregator {
    fn record(&mut self, at: SimTime, event: &SimEvent) {
        self.advance(at);
        match *event {
            SimEvent::JobSubmitted { job, .. } => {
                self.jobs_submitted += 1;
                self.job_submitted_at.entry(job).or_insert(at);
                self.step_jobs_in_flight(at, 1);
            }
            SimEvent::JobStarted { job } => {
                // First launch only: queueing delay is submit → first start.
                if let std::collections::btree_map::Entry::Vacant(e) =
                    self.job_started_at.entry(job)
                {
                    e.insert(at);
                    if let Some(&submitted) = self.job_submitted_at.get(&job) {
                        let delay = at.duration_since(submitted).as_secs_f64();
                        match &mut self.win {
                            // Durations are finite by construction.
                            Some(w) => drop(w.queue_sketch.record(delay)),
                            None => self.job_queue_delay_secs.push(delay),
                        }
                    }
                }
            }
            SimEvent::JobFinished { job } => {
                self.jobs_finished += 1;
                if let Some(&submitted) = self.job_submitted_at.get(&job) {
                    let latency = at.duration_since(submitted).as_secs_f64();
                    match &mut self.win {
                        Some(w) => drop(w.latency_sketch.record(latency)),
                        None => self.job_latency_secs.push(latency),
                    }
                }
                self.step_jobs_in_flight(at, -1);
                if self.win.is_some() {
                    // Bounded memory: a finished job's bookkeeping (and
                    // its tasks' relaunch markers) is never needed again.
                    self.job_submitted_at.remove(&job);
                    self.job_started_at.remove(&job);
                    let stale: Vec<(u32, u32)> = self
                        .primaries_seen
                        .range((job, 0)..=(job, u32::MAX))
                        .copied()
                        .collect();
                    for key in stale {
                        self.primaries_seen.remove(&key);
                    }
                }
            }
            SimEvent::TaskQueued { degraded, .. } => {
                if degraded {
                    self.tasks_queued_degraded += 1;
                }
            }
            SimEvent::MapLaunched {
                job,
                task,
                locality,
                speculative,
                ..
            } => {
                self.active_maps += 1;
                if locality != Locality::Degraded {
                    self.active_normal_maps += 1;
                }
                if speculative {
                    self.speculative_launches += 1;
                } else if !self.primaries_seen.insert((job, task)) {
                    // A second primary launch of the same task: churn
                    // re-executed work lost to a failed node.
                    self.maps_relaunched += 1;
                }
                self.attempts.insert(
                    (job, task, speculative),
                    Attempt {
                        launched_at: at,
                        locality,
                        fetch_begin: None,
                        fetch_secs: None,
                    },
                );
            }
            SimEvent::PhaseBegin {
                job,
                task,
                speculative,
                phase,
                ..
            } => {
                if phase == DegradedPhase::FetchK {
                    if let Some(a) = self.attempts.get_mut(&(job, task, speculative)) {
                        a.fetch_begin = Some(at);
                        self.active_fetches += 1;
                    }
                }
            }
            SimEvent::PhaseEnd {
                job,
                task,
                speculative,
                phase,
                ..
            } => {
                if phase == DegradedPhase::FetchK {
                    if let Some(a) = self.attempts.get_mut(&(job, task, speculative)) {
                        if let Some(begin) = a.fetch_begin.take() {
                            a.fetch_secs = Some(at.duration_since(begin).as_secs_f64());
                            self.active_fetches -= 1;
                        }
                    }
                }
            }
            SimEvent::MapDone {
                job,
                task,
                locality,
                speculative,
                ..
            } => {
                if let Some(a) = self.close_attempt((job, task, speculative)) {
                    let runtime_secs = at.duration_since(a.launched_at).as_secs_f64();
                    match &mut self.win {
                        Some(w) => {
                            w.maps_by_locality[locality_index(locality)] += 1;
                            if locality == Locality::Degraded {
                                w.degraded_map.0 += runtime_secs;
                                w.degraded_map.1 += 1;
                                if let Some(fetch) = a.fetch_secs {
                                    let _ = w.fetch_sketch.record(fetch);
                                }
                            } else {
                                w.normal_map.0 += runtime_secs;
                                w.normal_map.1 += 1;
                            }
                        }
                        None => self.finished.push(Finished::Map {
                            locality,
                            runtime_secs,
                            fetch_secs: a.fetch_secs,
                        }),
                    }
                }
            }
            SimEvent::MapCancelled {
                job,
                task,
                speculative,
                ..
            } => {
                if self.close_attempt((job, task, speculative)).is_some() {
                    self.cancelled_attempts += 1;
                }
            }
            SimEvent::DegradedPlan { .. } => {}
            SimEvent::RedundantFetchIssued { extra, .. } => {
                self.redundant_fetches_issued += 1;
                self.redundant_extra_flows += extra as usize;
            }
            SimEvent::FetchCancelled { flow, .. } => {
                self.fetch_cancel_wins += 1;
                // The engine emits this before the flow's cancelled
                // `flow_finished`, so the byte count is still live.
                if let Some(&(_, _, bytes)) = self.flows.get(&flow) {
                    self.redundant_cancelled_bytes += bytes;
                }
            }
            SimEvent::ReduceLaunched { job, index, .. } => {
                self.reduces.insert((job, index), at);
            }
            SimEvent::ReduceShuffled { .. } => {}
            SimEvent::ReduceDone { job, index, .. } => {
                if let Some(launched) = self.reduces.remove(&(job, index)) {
                    let runtime_secs = at.duration_since(launched).as_secs_f64();
                    match &mut self.win {
                        Some(w) => {
                            w.reduces += 1;
                            w.reduce_runtime.0 += runtime_secs;
                            w.reduce_runtime.1 += 1;
                        }
                        None => self.finished.push(Finished::Reduce { runtime_secs }),
                    }
                }
            }
            SimEvent::FlowStarted {
                flow, links, bytes, ..
            } => {
                self.flows.insert(flow, (links, 0.0, bytes));
            }
            SimEvent::FlowRate { flow, rate_bps } => {
                if let Some((links, rate, _)) = self.flows.get_mut(&flow) {
                    let (links, old) = (*links, *rate);
                    *rate = rate_bps;
                    for &link in links.as_slice() {
                        let sum = self.link_rate.entry(link).or_insert(0.0);
                        *sum = (*sum + rate_bps - old).max(0.0);
                    }
                }
            }
            SimEvent::FlowFinished { flow, .. } => {
                if let Some((links, rate, _)) = self.flows.remove(&flow) {
                    for &link in links.as_slice() {
                        let sum = self.link_rate.entry(link).or_insert(0.0);
                        *sum = (*sum - rate).max(0.0);
                    }
                }
            }
            SimEvent::NodeFailed { .. } => self.nodes_failed += 1,
            SimEvent::NodeRecovered { .. } => self.nodes_recovered += 1,
            SimEvent::RepairStarted { .. } | SimEvent::RepairFinished { .. } => {}
        }
    }
}

/// Usage summary of one network link.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkUsage {
    /// Link index.
    pub link: u32,
    /// Mean throughput over the observed span, bit/s.
    pub mean_bps: f64,
    /// Highest per-bucket mean throughput, bit/s.
    pub peak_bps: f64,
    /// `mean_bps / capacity`, when the capacity is known.
    pub mean_utilization: Option<f64>,
}

/// Everything the aggregator derives from one traced run.
#[derive(Clone, Debug, PartialEq)]
pub struct AggregateReport {
    /// Timestamp of the last event, seconds.
    pub makespan_secs: f64,
    /// Jobs submitted.
    pub jobs_submitted: usize,
    /// Jobs that finished.
    pub jobs_finished: usize,
    /// Completed maps launched node-local.
    pub maps_node_local: usize,
    /// Completed maps launched rack-local.
    pub maps_rack_local: usize,
    /// Completed maps launched remote.
    pub maps_remote: usize,
    /// Completed maps launched degraded.
    pub maps_degraded: usize,
    /// Completed reduce tasks.
    pub reduces: usize,
    /// Map tasks that entered the queue needing a degraded read.
    pub tasks_queued_degraded: usize,
    /// Speculative (backup) attempts launched.
    pub speculative_launches: usize,
    /// Attempts cancelled after losing to the other attempt.
    pub cancelled_attempts: usize,
    /// Degraded reads that issued redundant (beyond-k) source fetches.
    pub redundant_fetches_issued: usize,
    /// Extra network flows issued beyond the decode quorum, summed over
    /// all redundant degraded reads.
    pub redundant_extra_flows: usize,
    /// In-flight fetch flows cancelled because the decode quorum
    /// completed first (the redundant policy's "wins").
    pub fetch_cancel_wins: usize,
    /// Requested bytes of the cancelled straggler fetches — the traffic
    /// the redundant policy paid for and then abandoned.
    pub redundant_cancelled_bytes: u64,
    /// Node failures observed.
    pub nodes_failed: usize,
    /// Node recoveries observed (mid-run churn).
    pub nodes_recovered: usize,
    /// Primary map attempts launched again after a node failure killed
    /// the first launch or destroyed its output (churn re-execution).
    pub maps_relaunched: usize,
    /// Mean runtime of completed non-degraded maps, seconds.
    pub mean_normal_map_secs: Option<f64>,
    /// Mean runtime of completed degraded maps, seconds.
    pub mean_degraded_map_secs: Option<f64>,
    /// Mean runtime of completed reduces, seconds.
    pub mean_reduce_secs: Option<f64>,
    /// Winner fetch durations (degraded read times), completion order —
    /// the Figure 8(b) samples.
    pub degraded_read_secs: Vec<f64>,
    /// Median degraded read time, seconds.
    pub degraded_read_p50: Option<f64>,
    /// 95th-percentile degraded read time, seconds.
    pub degraded_read_p95: Option<f64>,
    /// 99th-percentile degraded read time, seconds.
    pub degraded_read_p99: Option<f64>,
    /// Per-job completion latency (submit → finish), seconds, in
    /// completion order — turnaround as the paper's Figure 7(f) users
    /// experience it.
    pub job_latency_secs: Vec<f64>,
    /// Median job completion latency, seconds.
    pub job_latency_p50: Option<f64>,
    /// 95th-percentile job completion latency, seconds.
    pub job_latency_p95: Option<f64>,
    /// 99th-percentile job completion latency, seconds.
    pub job_latency_p99: Option<f64>,
    /// Per-job queueing delay (submit → first task launch), seconds,
    /// in first-launch order.
    pub job_queue_delay_secs: Vec<f64>,
    /// Median job queueing delay, seconds.
    pub job_queue_delay_p50: Option<f64>,
    /// 95th-percentile job queueing delay, seconds.
    pub job_queue_delay_p95: Option<f64>,
    /// 99th-percentile job queueing delay, seconds.
    pub job_queue_delay_p99: Option<f64>,
    /// Step function of jobs concurrently in flight (submitted but not
    /// finished): `(timestamp_secs, count after the change)`, with
    /// same-timestamp changes coalesced. Empty in windowed mode.
    pub jobs_in_flight_steps: Vec<(f64, usize)>,
    /// Windowed mode's bounded substitute for the step function: the
    /// peak jobs-in-flight level per rollup window. Empty in exact mode.
    pub jobs_in_flight_window_peak: Vec<usize>,
    /// Highest number of jobs simultaneously in flight.
    pub peak_jobs_in_flight: usize,
    /// Interval width used for the utilization series, seconds.
    pub bucket_secs: f64,
    /// Per-interval map-slot utilization in `[0, 1]` (empty when the
    /// config gave no slot count).
    pub slot_utilization: Vec<f64>,
    /// Per-link usage, ascending link index; only links that carried
    /// traffic appear.
    pub link_utilization: Vec<LinkUsage>,
    /// Seconds during which a degraded fetch and a normal map ran
    /// concurrently — degraded-first's exploited window.
    pub overlap_secs: f64,
    /// Seconds during which at least one degraded fetch was active.
    pub degraded_fetch_active_secs: f64,
}

impl AggregateReport {
    /// Fraction of degraded-fetch time overlapped with normal map work.
    pub fn overlap_fraction(&self) -> Option<f64> {
        (self.degraded_fetch_active_secs > 0.0)
            .then(|| self.overlap_secs / self.degraded_fetch_active_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agg() -> Aggregator {
        Aggregator::new(AggregatorConfig {
            bucket: SimDuration::from_secs(10),
            total_map_slots: 2,
            link_capacities_bps: vec![1e9, 1e9],
            mode: AggregatorMode::Exact,
        })
    }

    fn windowed(window_secs: u64, max_windows: usize) -> Aggregator {
        Aggregator::new(AggregatorConfig {
            bucket: SimDuration::from_secs(10),
            total_map_slots: 2,
            link_capacities_bps: vec![1e9, 1e9],
            mode: AggregatorMode::Windowed {
                window_secs,
                max_windows,
            },
        })
    }

    fn launch(job: u32, task: u32, locality: Locality) -> SimEvent {
        SimEvent::MapLaunched {
            job,
            task,
            node: 0,
            locality,
            speculative: false,
        }
    }

    fn done(job: u32, task: u32, locality: Locality) -> SimEvent {
        SimEvent::MapDone {
            job,
            task,
            node: 0,
            locality,
            speculative: false,
        }
    }

    fn phase(job: u32, task: u32, begin: bool) -> SimEvent {
        let (node, speculative, phase) = (0, false, DegradedPhase::FetchK);
        if begin {
            SimEvent::PhaseBegin {
                job,
                task,
                node,
                speculative,
                phase,
            }
        } else {
            SimEvent::PhaseEnd {
                job,
                task,
                node,
                speculative,
                phase,
            }
        }
    }

    #[test]
    fn counts_and_means_follow_completion_order() {
        let mut a = agg();
        let t = SimTime::from_secs;
        a.record(t(0), &launch(0, 0, Locality::NodeLocal));
        a.record(t(0), &launch(0, 1, Locality::Degraded));
        a.record(t(0), &phase(0, 1, true));
        a.record(t(15), &phase(0, 1, false));
        a.record(t(20), &done(0, 0, Locality::NodeLocal));
        a.record(t(35), &done(0, 1, Locality::Degraded));
        let r = a.report();
        assert_eq!(r.maps_node_local, 1);
        assert_eq!(r.maps_degraded, 1);
        assert_eq!(r.mean_normal_map_secs, Some(20.0));
        assert_eq!(r.mean_degraded_map_secs, Some(35.0));
        assert_eq!(r.degraded_read_secs, vec![15.0]);
        assert_eq!(r.degraded_read_p50, Some(15.0));
        assert_eq!(r.makespan_secs, 35.0);
    }

    #[test]
    fn slot_utilization_integrates_step_function() {
        let mut a = agg();
        let t = SimTime::from_secs;
        // Two maps busy for [0, 5), one for [5, 20): bucket 0 (10s wide,
        // 2 slots) holds 2*5 + 1*5 = 15 busy-slot-seconds of 20 → 0.75.
        a.record(t(0), &launch(0, 0, Locality::NodeLocal));
        a.record(t(0), &launch(0, 1, Locality::NodeLocal));
        a.record(t(5), &done(0, 0, Locality::NodeLocal));
        a.record(t(20), &done(0, 1, Locality::NodeLocal));
        let r = a.report();
        assert_eq!(r.slot_utilization, vec![0.75, 0.5]);
    }

    #[test]
    fn overlap_requires_both_kinds_active() {
        let mut a = agg();
        let t = SimTime::from_secs;
        a.record(t(0), &launch(0, 0, Locality::Degraded));
        a.record(t(0), &phase(0, 0, true));
        // Normal map joins at t=4, fetch ends at t=10.
        a.record(t(4), &launch(0, 1, Locality::NodeLocal));
        a.record(t(10), &phase(0, 0, false));
        a.record(t(12), &done(0, 0, Locality::Degraded));
        a.record(t(12), &done(0, 1, Locality::NodeLocal));
        let r = a.report();
        assert_eq!(r.degraded_fetch_active_secs, 10.0);
        assert_eq!(r.overlap_secs, 6.0);
        assert_eq!(r.overlap_fraction(), Some(0.6));
    }

    #[test]
    fn link_bits_accumulate_per_bucket() {
        let mut a = agg();
        let t = SimTime::from_secs;
        a.record(
            t(0),
            &SimEvent::FlowStarted {
                flow: 1,
                src: 0,
                dst: 1,
                bytes: 0,
                links: LinkSet::from_slice(&[0, 1]),
            },
        );
        a.record(
            t(0),
            &SimEvent::FlowRate {
                flow: 1,
                rate_bps: 1e9,
            },
        );
        a.record(
            t(5),
            &SimEvent::FlowFinished {
                flow: 1,
                cancelled: false,
            },
        );
        // Force integration past the flow's lifetime.
        a.record(t(10), &SimEvent::NodeFailed { node: 0 });
        let r = a.report();
        let l0 = &r.link_utilization[0];
        assert_eq!(l0.link, 0);
        // 5e9 bits over one 10s bucket → 5e8 mean, 50% of 1 Gb/s.
        assert_eq!(l0.mean_bps, 5e8);
        assert_eq!(l0.mean_utilization, Some(0.5));
        assert_eq!(l0.peak_bps, 5e8);
    }

    #[test]
    fn per_job_latency_queueing_and_in_flight() {
        let mut a = agg();
        let t = SimTime::from_secs;
        let submit = |job| SimEvent::JobSubmitted {
            job,
            maps: 1,
            reduces: 0,
        };
        a.record(t(0), &submit(0));
        a.record(t(5), &SimEvent::JobStarted { job: 0 });
        // A relaunch must not add a second queue-delay sample.
        a.record(t(6), &SimEvent::JobStarted { job: 0 });
        a.record(t(10), &submit(1));
        a.record(t(30), &SimEvent::JobStarted { job: 1 });
        a.record(t(40), &SimEvent::JobFinished { job: 0 });
        a.record(t(90), &SimEvent::JobFinished { job: 1 });
        let r = a.report();
        assert_eq!(r.job_queue_delay_secs, vec![5.0, 20.0]);
        assert_eq!(r.job_latency_secs, vec![40.0, 80.0]);
        assert_eq!(r.job_latency_p50, Some(60.0));
        assert_eq!(r.job_queue_delay_p99, Some(5.0 + (20.0 - 5.0) * 0.99));
        assert_eq!(r.peak_jobs_in_flight, 2);
        assert_eq!(
            r.jobs_in_flight_steps,
            vec![(0.0, 1), (10.0, 2), (40.0, 1), (90.0, 0)]
        );
    }

    #[test]
    fn windowed_matches_exact_when_no_rollup_happens() {
        // window width == exact bucket width, enough windows: the
        // integrated series must be identical, and counts/means agree.
        let mut exact = agg();
        let mut win = windowed(10, 1024);
        let t = SimTime::from_secs;
        let events = [
            (0, launch(0, 0, Locality::NodeLocal)),
            (0, launch(0, 1, Locality::Degraded)),
            (0, phase(0, 1, true)),
            (15, phase(0, 1, false)),
            (20, done(0, 0, Locality::NodeLocal)),
            (35, done(0, 1, Locality::Degraded)),
        ];
        for (secs, ev) in &events {
            exact.record(t(*secs), ev);
            win.record(t(*secs), ev);
        }
        let re = exact.report();
        let rw = win.report();
        assert_eq!(rw.slot_utilization, re.slot_utilization);
        assert_eq!(rw.bucket_secs, re.bucket_secs);
        assert_eq!(rw.maps_node_local, re.maps_node_local);
        assert_eq!(rw.maps_degraded, re.maps_degraded);
        assert_eq!(rw.mean_normal_map_secs, re.mean_normal_map_secs);
        assert_eq!(rw.mean_degraded_map_secs, re.mean_degraded_map_secs);
        assert_eq!(rw.overlap_secs, re.overlap_secs);
        assert_eq!(rw.makespan_secs, re.makespan_secs);
        // One degraded fetch of 15 s: the sketch median must sit within
        // its documented relative error of the exact sample.
        let (e50, w50) = (re.degraded_read_p50.unwrap(), rw.degraded_read_p50.unwrap());
        assert!((w50 - e50).abs() <= e50 * QuantileSketch::RELATIVE_ERROR);
    }

    #[test]
    fn windowed_rolls_up_instead_of_growing() {
        // 4 windows of 1 s, but activity spanning 64 s: widths double
        // until everything fits, and totals are preserved.
        let mut a = windowed(1, 4);
        let t = SimTime::from_secs;
        a.record(t(0), &launch(0, 0, Locality::NodeLocal));
        a.record(t(64), &done(0, 0, Locality::NodeLocal));
        let r = a.report();
        assert!(r.slot_utilization.len() <= 4, "{:?}", r.slot_utilization);
        // 64 busy-slot-seconds total, regardless of rollup.
        let busy: f64 = r
            .slot_utilization
            .iter()
            .map(|u| u * 2.0 * r.bucket_secs)
            .sum();
        assert!((busy - 64.0).abs() < 1e-9, "{busy}");
        // Width doubled from 1 s to a power of two >= 16 s.
        assert!(r.bucket_secs >= 16.0);
    }

    #[test]
    fn windowed_resident_state_is_independent_of_event_count() {
        // Structural bounded-memory check: after N jobs and after 20·N
        // jobs the resident footprint is identical, because every
        // per-sample record is a fixed-size sketch/counter and finished
        // jobs are drained.
        let run = |jobs: u32| -> usize {
            let mut a = windowed(10, 8);
            let t = SimTime::from_secs;
            for j in 0..jobs {
                let base = u64::from(j) * 40;
                a.record(
                    t(base),
                    &SimEvent::JobSubmitted {
                        job: j,
                        maps: 1,
                        reduces: 0,
                    },
                );
                a.record(t(base + 1), &SimEvent::JobStarted { job: j });
                a.record(t(base + 1), &launch(j, 0, Locality::Degraded));
                a.record(t(base + 1), &phase(j, 0, true));
                a.record(t(base + 5), &phase(j, 0, false));
                a.record(t(base + 20), &done(j, 0, Locality::Degraded));
                a.record(t(base + 21), &SimEvent::JobFinished { job: j });
            }
            a.resident_state_size()
        };
        let small = run(25);
        let large = run(500);
        // All jobs finished and drained, so the only resident elements
        // are the two rollup rings, each capped at max_windows = 8.
        // The bound comes from the config, not from the event count.
        assert!(small <= 16, "resident {small} exceeds the window cap");
        assert!(large <= 16, "resident {large} exceeds the window cap");
        assert!(
            large <= small + 2,
            "windowed aggregator state grew with event count: {small} -> {large}"
        );
        // And the exact aggregator does grow, so the assertion above is
        // actually discriminating.
        let run_exact = |jobs: u32| -> usize {
            let mut a = agg();
            let t = SimTime::from_secs;
            for j in 0..jobs {
                let base = u64::from(j) * 40;
                a.record(
                    t(base),
                    &SimEvent::JobSubmitted {
                        job: j,
                        maps: 1,
                        reduces: 0,
                    },
                );
                a.record(t(base + 21), &SimEvent::JobFinished { job: j });
            }
            a.resident_state_size()
        };
        assert!(run_exact(500) > run_exact(25));
    }

    #[test]
    fn windowed_jobs_in_flight_peaks_track_levels() {
        let mut a = windowed(10, 64);
        let t = SimTime::from_secs;
        let submit = |job| SimEvent::JobSubmitted {
            job,
            maps: 1,
            reduces: 0,
        };
        a.record(t(0), &submit(0));
        a.record(t(5), &submit(1));
        a.record(t(12), &SimEvent::JobFinished { job: 0 });
        a.record(t(35), &SimEvent::JobFinished { job: 1 });
        let r = a.report();
        assert_eq!(r.peak_jobs_in_flight, 2);
        assert!(r.jobs_in_flight_steps.is_empty());
        // Window 0 saw 2 concurrent jobs, window 1 still had 2 at entry
        // (until t=12), window 2-3 had 1.
        assert_eq!(r.jobs_in_flight_window_peak, vec![2, 2, 1, 1]);
    }

    #[test]
    fn redundant_fetch_counters_attribute_cancelled_bytes() {
        let mut a = agg();
        let t = SimTime::from_secs;
        a.record(t(0), &launch(0, 0, Locality::Degraded));
        a.record(
            t(0),
            &SimEvent::RedundantFetchIssued {
                job: 0,
                task: 0,
                node: 0,
                speculative: false,
                extra: 2,
            },
        );
        for flow in [1u64, 2] {
            a.record(
                t(0),
                &SimEvent::FlowStarted {
                    flow,
                    src: 1,
                    dst: 0,
                    bytes: 1 << 20,
                    links: LinkSet::from_slice(&[0]),
                },
            );
        }
        // Quorum reached: flow 2 is cancelled, flow 1 won.
        a.record(
            t(4),
            &SimEvent::FetchCancelled {
                job: 0,
                task: 0,
                node: 0,
                speculative: false,
                flow: 2,
            },
        );
        a.record(
            t(4),
            &SimEvent::FlowFinished {
                flow: 2,
                cancelled: true,
            },
        );
        a.record(
            t(4),
            &SimEvent::FlowFinished {
                flow: 1,
                cancelled: false,
            },
        );
        let r = a.report();
        assert_eq!(r.redundant_fetches_issued, 1);
        assert_eq!(r.redundant_extra_flows, 2);
        assert_eq!(r.fetch_cancel_wins, 1);
        assert_eq!(r.redundant_cancelled_bytes, 1 << 20);
    }

    #[test]
    fn cancelled_attempt_mid_fetch_keeps_state_balanced() {
        let mut a = agg();
        let t = SimTime::from_secs;
        a.record(t(0), &launch(0, 0, Locality::Degraded));
        a.record(t(0), &phase(0, 0, true));
        a.record(
            t(3),
            &SimEvent::MapCancelled {
                job: 0,
                task: 0,
                node: 0,
                speculative: false,
            },
        );
        assert_eq!(a.active_fetches, 0);
        assert_eq!(a.active_maps, 0);
        let r = a.report();
        assert_eq!(r.cancelled_attempts, 1);
        assert_eq!(r.maps_degraded, 0);
        assert_eq!(r.degraded_fetch_active_secs, 3.0);
    }
}
