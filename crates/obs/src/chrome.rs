//! Chrome `chrome://tracing` / Perfetto trace-event exporter.
//!
//! Renders the event stream as a timeline: one thread lane per map slot
//! and per reduce slot (grouped into per-role processes), duration
//! slices for tasks with the degraded fetch/decode/process phases nested
//! inside, async arrows for network flows, one counter track per
//! network link, and instant markers for failures. Timestamps are
//! already microseconds, the trace-event native unit.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::io::{self, Write};

use simkit::time::SimTime;

use crate::event::{LinkSet, SimEvent};
use crate::sink::EventSink;

/// Process ids of the synthetic trace processes.
const PID_MAPS: u32 = 1;
const PID_REDUCES: u32 = 2;
const PID_NET: u32 = 3;
const PID_JOBS: u32 = 4;
const PID_REPAIR: u32 = 5;

/// Cluster shape the exporter needs to label lanes and links.
#[derive(Clone, Copy, Debug)]
pub struct ChromeConfig {
    /// Number of nodes (`links 0..2*nodes` are node up/down pairs).
    pub num_nodes: u32,
    /// Number of racks (`links 2*nodes..2*nodes+2*racks` are rack pairs).
    pub num_racks: u32,
    /// Map slots per node (lane count per node in the map process).
    pub map_slots: u32,
    /// Reduce slots per node.
    pub reduce_slots: u32,
}

impl ChromeConfig {
    /// Human label for a link index under the workspace's link layout.
    fn link_label(&self, link: u32) -> String {
        let node_links = 2 * self.num_nodes;
        if link < node_links {
            let dir = if link.is_multiple_of(2) { "up" } else { "down" };
            format!("node{}.{dir}", link / 2)
        } else {
            let dir = if (link - node_links).is_multiple_of(2) {
                "up"
            } else {
                "down"
            };
            format!("rack{}.{dir}", (link - node_links) / 2)
        }
    }
}

/// Per-attempt state while its slice is open.
struct OpenAttempt {
    tid: u32,
    node: u32,
    name: String,
}

/// An [`EventSink`] that buffers trace events and writes a complete
/// Chrome JSON trace on [`ChromeTraceSink::finish`].
pub struct ChromeTraceSink<W: Write> {
    out: W,
    cfg: ChromeConfig,
    events: Vec<String>,
    /// Per-node map slot occupancy (grows past `map_slots` only if the
    /// stream launches more concurrent attempts than configured).
    map_busy: Vec<Vec<bool>>,
    reduce_busy: Vec<Vec<bool>>,
    /// Open map attempts keyed by `(job, task, speculative)`.
    attempts: BTreeMap<(u32, u32, bool), OpenAttempt>,
    /// Open reduce tasks keyed by `(job, index)` → `(tid, node, name)`.
    reduces: BTreeMap<(u32, u32), OpenAttempt>,
    /// Flow id → (async slice name, links, current rate).
    flows: BTreeMap<u64, (String, LinkSet, f64)>,
    /// Current aggregate rate per link.
    link_rate: BTreeMap<u32, f64>,
    /// Repair task → `(lane tid, slice name)`; lanes are grouped by the
    /// replacement node the repair writes to.
    repairs: BTreeMap<u32, (u32, String)>,
    /// Repairs currently in flight, for the overlay counter track.
    active_repairs: u32,
    /// `(pid, tid, label)` lanes seen, for thread-name metadata.
    lanes: BTreeSet<(u32, u32, String)>,
}

impl<W: Write> ChromeTraceSink<W> {
    /// A sink for a cluster of the given shape writing to `out`.
    pub fn new(out: W, cfg: ChromeConfig) -> ChromeTraceSink<W> {
        ChromeTraceSink {
            out,
            cfg,
            events: Vec::new(),
            map_busy: vec![vec![false; cfg.map_slots as usize]; cfg.num_nodes as usize],
            reduce_busy: vec![vec![false; cfg.reduce_slots as usize]; cfg.num_nodes as usize],
            attempts: BTreeMap::new(),
            reduces: BTreeMap::new(),
            flows: BTreeMap::new(),
            link_rate: BTreeMap::new(),
            repairs: BTreeMap::new(),
            active_repairs: 0,
            lanes: BTreeSet::new(),
        }
    }

    /// Allocates the lowest free slot lane on `node`, growing if needed.
    fn alloc(busy: &mut [Vec<bool>], node: u32) -> u32 {
        let slots = &mut busy[node as usize];
        let slot = slots.iter().position(|b| !b).unwrap_or_else(|| {
            slots.push(false);
            slots.len() - 1
        });
        slots[slot] = true;
        slot as u32
    }

    /// `tid` for slot `slot` of `node`; 256 lanes per node keeps tids
    /// disjoint across nodes for any realistic slot count.
    fn tid(node: u32, slot: u32) -> u32 {
        node * 256 + slot
    }

    fn push(&mut self, json: String) {
        self.events.push(json);
    }

    fn duration(&mut self, ph: char, at: SimTime, pid: u32, tid: u32, name: &str) {
        self.push(format!(
            "{{\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"name\":\"{name}\"}}",
            at.as_micros()
        ));
    }

    fn instant(&mut self, at: SimTime, pid: u32, tid: u32, name: &str, scope: char) {
        self.push(format!(
            "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"name\":\"{name}\",\"s\":\"{scope}\"}}",
            at.as_micros()
        ));
    }

    fn counter(&mut self, at: SimTime, name: &str, value: f64) {
        assert!(value.is_finite());
        self.push(format!(
            "{{\"ph\":\"C\",\"pid\":{PID_NET},\"tid\":0,\"ts\":{},\"name\":\"{name}\",\
             \"args\":{{\"bps\":{value}}}}}",
            at.as_micros()
        ));
    }

    /// Overlay counter track: repairs currently in flight, rendered in
    /// the repair process alongside the per-replacement lanes.
    fn repair_counter(&mut self, at: SimTime) {
        let value = self.active_repairs;
        self.push(format!(
            "{{\"ph\":\"C\",\"pid\":{PID_REPAIR},\"tid\":0,\"ts\":{},\
             \"name\":\"active repairs\",\"args\":{{\"count\":{value}}}}}",
            at.as_micros()
        ));
    }

    /// Applies a rate delta to every link a flow traverses and emits the
    /// updated counters.
    fn shift_link_rates(&mut self, at: SimTime, links: LinkSet, delta: f64) {
        if delta == 0.0 {
            return;
        }
        for &link in links.as_slice() {
            let rate = self.link_rate.entry(link).or_insert(0.0);
            *rate = (*rate + delta).max(0.0);
            let (rate, label) = (*rate, self.cfg.link_label(link));
            self.counter(at, &label, rate);
        }
    }

    fn open_map_lane(&mut self, node: u32, label_prefix: &str) -> u32 {
        let slot = Self::alloc(&mut self.map_busy, node);
        let tid = Self::tid(node, slot);
        self.lanes
            .insert((PID_MAPS, tid, format!("{label_prefix}{node} map{slot}")));
        tid
    }

    fn close_map_attempt(&mut self, at: SimTime, key: (u32, u32, bool)) {
        if let Some(open) = self.attempts.remove(&key) {
            let name = open.name.clone();
            self.duration('E', at, PID_MAPS, open.tid, &name);
            let slot = open.tid - open.node * 256;
            self.map_busy[open.node as usize][slot as usize] = false;
        }
    }

    /// Writes the complete trace (events + lane metadata) and flushes.
    pub fn finish(mut self) -> io::Result<W> {
        let processes = [
            (PID_MAPS, "map slots"),
            (PID_REDUCES, "reduce slots"),
            (PID_NET, "network"),
            (PID_JOBS, "jobs"),
            (PID_REPAIR, "repair"),
        ];
        let mut meta = String::new();
        for (i, (pid, name)) in processes.iter().enumerate() {
            let _ = write!(
                meta,
                "{}{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{name}\"}}}},\
                 {{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_sort_index\",\
                 \"args\":{{\"sort_index\":{i}}}}}",
                if i == 0 { "" } else { "," },
            );
        }
        for (pid, tid, label) in &self.lanes {
            let _ = write!(
                meta,
                ",{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{label}\"}}}}"
            );
        }
        self.out
            .write_all(b"{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
        self.out.write_all(meta.as_bytes())?;
        for event in &self.events {
            self.out.write_all(b",")?;
            self.out.write_all(event.as_bytes())?;
        }
        self.out.write_all(b"]}\n")?;
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> EventSink for ChromeTraceSink<W> {
    fn record(&mut self, at: SimTime, event: &SimEvent) {
        match *event {
            SimEvent::JobSubmitted { job, maps, reduces } => {
                self.lanes.insert((PID_JOBS, job, format!("job{job}")));
                self.push(format!(
                    "{{\"ph\":\"i\",\"pid\":{PID_JOBS},\"tid\":{job},\"ts\":{},\
                     \"name\":\"submitted\",\"s\":\"t\",\
                     \"args\":{{\"maps\":{maps},\"reduces\":{reduces}}}}}",
                    at.as_micros()
                ));
            }
            SimEvent::JobStarted { job } => {
                self.lanes.insert((PID_JOBS, job, format!("job{job}")));
                let name = format!("job{job}");
                self.duration('B', at, PID_JOBS, job, &name);
            }
            SimEvent::JobFinished { job } => {
                let name = format!("job{job}");
                self.duration('E', at, PID_JOBS, job, &name);
            }
            SimEvent::TaskQueued { .. } => {}
            SimEvent::MapLaunched {
                job,
                task,
                node,
                locality,
                speculative,
            } => {
                let tid = self.open_map_lane(node, "n");
                let name = format!(
                    "j{job}.m{task} {}{}",
                    locality.name(),
                    if speculative { " spec" } else { "" }
                );
                self.duration('B', at, PID_MAPS, tid, &name);
                self.attempts
                    .insert((job, task, speculative), OpenAttempt { tid, node, name });
            }
            SimEvent::MapDone {
                job,
                task,
                speculative,
                ..
            } => self.close_map_attempt(at, (job, task, speculative)),
            SimEvent::MapCancelled {
                job,
                task,
                speculative,
                ..
            } => self.close_map_attempt(at, (job, task, speculative)),
            SimEvent::DegradedPlan {
                job,
                task,
                local,
                same_rack,
                cross_rack,
                ..
            } => {
                if let Some(open) = self.attempts.get(&(job, task, false)) {
                    let tid = open.tid;
                    self.push(format!(
                        "{{\"ph\":\"i\",\"pid\":{PID_MAPS},\"tid\":{tid},\"ts\":{},\
                         \"name\":\"degraded_plan\",\"s\":\"t\",\"args\":{{\"local\":{local},\
                         \"same_rack\":{same_rack},\"cross_rack\":{cross_rack}}}}}",
                        at.as_micros()
                    ));
                }
            }
            SimEvent::RedundantFetchIssued {
                job,
                task,
                speculative,
                extra,
                ..
            } => {
                if let Some(open) = self.attempts.get(&(job, task, speculative)) {
                    let tid = open.tid;
                    self.push(format!(
                        "{{\"ph\":\"i\",\"pid\":{PID_MAPS},\"tid\":{tid},\"ts\":{},\
                         \"name\":\"redundant_fetch +{extra}\",\"s\":\"t\"}}",
                        at.as_micros()
                    ));
                }
            }
            SimEvent::FetchCancelled {
                job,
                task,
                speculative,
                flow,
                ..
            } => {
                if let Some(open) = self.attempts.get(&(job, task, speculative)) {
                    let tid = open.tid;
                    self.push(format!(
                        "{{\"ph\":\"i\",\"pid\":{PID_MAPS},\"tid\":{tid},\"ts\":{},\
                         \"name\":\"fetch_cancelled f{flow}\",\"s\":\"t\"}}",
                        at.as_micros()
                    ));
                }
            }
            SimEvent::PhaseBegin {
                job,
                task,
                speculative,
                phase,
                ..
            } => {
                if let Some(open) = self.attempts.get(&(job, task, speculative)) {
                    let tid = open.tid;
                    self.duration('B', at, PID_MAPS, tid, phase.name());
                }
            }
            SimEvent::PhaseEnd {
                job,
                task,
                speculative,
                phase,
                ..
            } => {
                if let Some(open) = self.attempts.get(&(job, task, speculative)) {
                    let tid = open.tid;
                    self.duration('E', at, PID_MAPS, tid, phase.name());
                }
            }
            SimEvent::ReduceLaunched { job, index, node } => {
                let slot = Self::alloc(&mut self.reduce_busy, node);
                let tid = Self::tid(node, slot);
                self.lanes
                    .insert((PID_REDUCES, tid, format!("n{node} red{slot}")));
                let name = format!("j{job}.r{index}");
                self.duration('B', at, PID_REDUCES, tid, &name);
                self.duration('B', at, PID_REDUCES, tid, "shuffle");
                self.reduces
                    .insert((job, index), OpenAttempt { tid, node, name });
            }
            SimEvent::ReduceShuffled { job, index, .. } => {
                if let Some(open) = self.reduces.get(&(job, index)) {
                    let tid = open.tid;
                    self.duration('E', at, PID_REDUCES, tid, "shuffle");
                }
            }
            SimEvent::ReduceDone { job, index, .. } => {
                if let Some(open) = self.reduces.remove(&(job, index)) {
                    let name = open.name.clone();
                    self.duration('E', at, PID_REDUCES, open.tid, &name);
                    let slot = open.tid - open.node * 256;
                    self.reduce_busy[open.node as usize][slot as usize] = false;
                }
            }
            SimEvent::FlowStarted {
                flow,
                src,
                dst,
                bytes,
                links,
            } => {
                let name = format!("f{src}-{dst}");
                self.push(format!(
                    "{{\"ph\":\"b\",\"pid\":{PID_NET},\"tid\":0,\"ts\":{},\"cat\":\"flow\",\
                     \"id\":{flow},\"name\":\"{name}\",\"args\":{{\"bytes\":{bytes}}}}}",
                    at.as_micros()
                ));
                self.flows.insert(flow, (name, links, 0.0));
            }
            SimEvent::FlowRate { flow, rate_bps } => {
                if let Some((_, links, rate)) = self.flows.get_mut(&flow) {
                    let (links, old) = (*links, *rate);
                    *rate = rate_bps;
                    self.shift_link_rates(at, links, rate_bps - old);
                }
            }
            SimEvent::FlowFinished { flow, cancelled } => {
                if let Some((name, links, rate)) = self.flows.remove(&flow) {
                    self.shift_link_rates(at, links, -rate);
                    self.push(format!(
                        "{{\"ph\":\"e\",\"pid\":{PID_NET},\"tid\":0,\"ts\":{},\"cat\":\"flow\",\
                         \"id\":{flow},\"name\":\"{name}\",\"args\":{{\"cancelled\":{cancelled}}}}}",
                        at.as_micros()
                    ));
                }
            }
            SimEvent::NodeFailed { node } => {
                let name = format!("node{node} failed");
                self.instant(at, PID_JOBS, 0, &name, 'g');
            }
            SimEvent::NodeRecovered { node } => {
                let name = format!("node{node} recovered");
                self.instant(at, PID_JOBS, 0, &name, 'g');
            }
            SimEvent::RepairStarted {
                task,
                stripe,
                pos,
                replacement,
            } => {
                // One lane per replacement node, so all writes repairing
                // onto the same node stack up visibly in its row.
                let tid = replacement + 1; // tid 0 is the counter track
                self.lanes
                    .insert((PID_REPAIR, tid, format!("repair > n{replacement}")));
                let name = format!("s{stripe}.{pos}>n{replacement}");
                self.duration('B', at, PID_REPAIR, tid, &name);
                self.repairs.insert(task, (tid, name));
                self.active_repairs += 1;
                self.repair_counter(at);
            }
            SimEvent::RepairFinished { task } => {
                if let Some((tid, name)) = self.repairs.remove(&task) {
                    self.duration('E', at, PID_REPAIR, tid, &name);
                    self.active_repairs = self.active_repairs.saturating_sub(1);
                    self.repair_counter(at);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DegradedPhase, Locality};
    use crate::json::Json;

    fn cfg() -> ChromeConfig {
        ChromeConfig {
            num_nodes: 4,
            num_racks: 2,
            map_slots: 2,
            reduce_slots: 2,
        }
    }

    #[test]
    fn link_labels_follow_layout() {
        let c = cfg();
        assert_eq!(c.link_label(0), "node0.up");
        assert_eq!(c.link_label(7), "node3.down");
        assert_eq!(c.link_label(8), "rack0.up");
        assert_eq!(c.link_label(11), "rack1.down");
    }

    #[test]
    fn trace_is_valid_json_with_balanced_slices() {
        let mut sink = ChromeTraceSink::new(Vec::new(), cfg());
        let t = SimTime::from_micros;
        sink.record(t(0), &SimEvent::NodeFailed { node: 1 });
        sink.record(
            t(1),
            &SimEvent::MapLaunched {
                job: 0,
                task: 0,
                node: 2,
                locality: Locality::Degraded,
                speculative: false,
            },
        );
        for phase in [
            DegradedPhase::FetchK,
            DegradedPhase::Decode,
            DegradedPhase::Process,
        ] {
            sink.record(
                t(2),
                &SimEvent::PhaseBegin {
                    job: 0,
                    task: 0,
                    node: 2,
                    speculative: false,
                    phase,
                },
            );
            sink.record(
                t(3),
                &SimEvent::PhaseEnd {
                    job: 0,
                    task: 0,
                    node: 2,
                    speculative: false,
                    phase,
                },
            );
        }
        sink.record(
            t(4),
            &SimEvent::MapDone {
                job: 0,
                task: 0,
                node: 2,
                locality: Locality::Degraded,
                speculative: false,
            },
        );
        let out = String::from_utf8(sink.finish().unwrap()).unwrap();
        let doc = Json::parse(&out).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let begins = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("B"))
            .count();
        let ends = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("E"))
            .count();
        assert_eq!(begins, ends, "unbalanced B/E slices");
        assert!(begins >= 4, "map slice plus three phases");
    }

    #[test]
    fn slots_are_reused_after_completion() {
        let mut sink = ChromeTraceSink::new(Vec::new(), cfg());
        let launch = |task| SimEvent::MapLaunched {
            job: 0,
            task,
            node: 0,
            locality: Locality::NodeLocal,
            speculative: false,
        };
        let done = |task| SimEvent::MapDone {
            job: 0,
            task,
            node: 0,
            locality: Locality::NodeLocal,
            speculative: false,
        };
        sink.record(SimTime::from_micros(0), &launch(0));
        sink.record(SimTime::from_micros(0), &launch(1));
        sink.record(SimTime::from_micros(5), &done(0));
        sink.record(SimTime::from_micros(6), &launch(2));
        // Task 2 must land in task 0's freed slot, not a third lane.
        assert_eq!(sink.map_busy[0], vec![true, true]);
        sink.record(SimTime::from_micros(7), &done(1));
        sink.record(SimTime::from_micros(8), &done(2));
        assert_eq!(sink.map_busy[0], vec![false, false]);
    }

    #[test]
    fn repair_lanes_group_by_replacement_node() {
        let mut sink = ChromeTraceSink::new(Vec::new(), cfg());
        let t = SimTime::from_micros;
        // Two repairs onto node 3, one onto node 1: two lanes total.
        for (task, pos, replacement) in [(0u32, 0u32, 3u32), (1, 1, 3), (2, 2, 1)] {
            sink.record(
                t(u64::from(task)),
                &SimEvent::RepairStarted {
                    task,
                    stripe: 0,
                    pos,
                    replacement,
                },
            );
        }
        for task in [0, 1, 2] {
            sink.record(t(10 + u64::from(task)), &SimEvent::RepairFinished { task });
        }
        assert_eq!(sink.active_repairs, 0);
        let out = String::from_utf8(sink.finish().unwrap()).unwrap();
        Json::parse(&out).expect("valid JSON");
        assert!(out.contains("\"name\":\"repair > n3\""));
        assert!(out.contains("\"name\":\"repair > n1\""));
        assert!(out.contains("\"name\":\"active repairs\""));
        assert!(!out.contains("repair workers"));
    }

    #[test]
    fn redundant_and_cancelled_fetch_markers_land_on_the_attempt_lane() {
        let mut sink = ChromeTraceSink::new(Vec::new(), cfg());
        let t = SimTime::from_micros;
        sink.record(
            t(0),
            &SimEvent::MapLaunched {
                job: 0,
                task: 5,
                node: 2,
                locality: Locality::Degraded,
                speculative: false,
            },
        );
        sink.record(
            t(1),
            &SimEvent::RedundantFetchIssued {
                job: 0,
                task: 5,
                node: 2,
                speculative: false,
                extra: 2,
            },
        );
        sink.record(
            t(9),
            &SimEvent::FetchCancelled {
                job: 0,
                task: 5,
                node: 2,
                speculative: false,
                flow: 41,
            },
        );
        sink.record(
            t(12),
            &SimEvent::MapDone {
                job: 0,
                task: 5,
                node: 2,
                locality: Locality::Degraded,
                speculative: false,
            },
        );
        let out = String::from_utf8(sink.finish().unwrap()).unwrap();
        Json::parse(&out).expect("valid JSON");
        assert!(out.contains("\"name\":\"redundant_fetch +2\""));
        assert!(out.contains("\"name\":\"fetch_cancelled f41\""));
    }

    #[test]
    fn counters_track_flow_rates() {
        let mut sink = ChromeTraceSink::new(Vec::new(), cfg());
        let links = LinkSet::from_slice(&[0, 8, 11, 7]);
        sink.record(
            SimTime::ZERO,
            &SimEvent::FlowStarted {
                flow: 1,
                src: 0,
                dst: 3,
                bytes: 100,
                links,
            },
        );
        sink.record(
            SimTime::from_micros(1),
            &SimEvent::FlowRate {
                flow: 1,
                rate_bps: 5e8,
            },
        );
        assert_eq!(sink.link_rate[&8], 5e8);
        sink.record(
            SimTime::from_micros(2),
            &SimEvent::FlowFinished {
                flow: 1,
                cancelled: false,
            },
        );
        assert_eq!(sink.link_rate[&8], 0.0);
        let out = String::from_utf8(sink.finish().unwrap()).unwrap();
        Json::parse(&out).expect("valid JSON");
        assert!(out.contains("\"name\":\"rack0.up\""));
    }
}
